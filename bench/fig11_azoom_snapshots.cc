// Figure 11: aZoom^T with fixed dataset size and group-by cardinality,
// varying only the number of snapshots (coarsening the temporal
// resolution). Expected shape (paper): near-flat for OG/VE on growth-only
// data whose attributes never change (WikiTalk, SNB — one tuple per
// vertex regardless of resolution), increasing for NGrams (multi-state
// vertices), and steeply linear for RG.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

struct DatasetCase {
  const char* name;
  VeGraph (*base)();
  AZoomSpec (*spec)();
  std::vector<int64_t> factors;  // resolution coarsening factors
};

}  // namespace

int main(int argc, char** argv) {
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, &WikiTalkAZoom, {8, 4, 2, 1}},
      {"SNB", &SnbBase, &SnbAZoom, {6, 3, 2, 1}},
      {"NGrams", &NGramsBase, &NGramsAZoom, {8, 4, 2, 1}},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOg, Representation::kVe, Representation::kRg}) {
      for (int64_t factor : c.factors) {
        VeGraph coarse = gen::CoarsenResolution(c.base(), factor);
        int64_t snapshots =
            static_cast<int64_t>(coarse.ChangePoints().size()) - 1;
        // RG's per-snapshot replay is the point of this figure, but at
        // full resolution it dwarfs the rest; cap it (the paper caps RG
        // with a timeout).
        if (rep == Representation::kRg && factor < c.factors[1]) continue;
        std::string key = std::string(c.name) + "/factor:" +
                          std::to_string(factor);
        std::string bench_name = std::string("aZoom/") + c.name + "/" +
                                 RepresentationName(rep) +
                                 "/snapshots:" + std::to_string(snapshots);
        AZoomSpec spec = c.spec();
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, coarse, rep, spec](benchmark::State& state) {
              TGraph graph = Prepared(key, coarse, rep);
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.AZoom(spec);
                TG_CHECK(zoomed.ok());
                benchmark::DoNotOptimize(zoomed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
