// Figure 10: aZoom^T runtime as the loaded data size grows (varying the
// number of snapshots of each dataset's history), for RG / VE / OG.
// Expected shape (paper): OG and VE on par and scaling smoothly; RG far
// slower and degrading fastest with history length.

#include "bench/bench_util.h"
#include "gen/transform.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

struct DatasetCase {
  const char* name;
  VeGraph (*base)();
  AZoomSpec (*spec)();
  std::vector<int64_t> slices;  // time points of history to load
};

void RunAZoom(benchmark::State& state, const std::string& key,
              const VeGraph& slice, Representation rep, const AZoomSpec& spec) {
  TGraph graph = Prepared(key, slice, rep);
  for (auto _ : state) {
    PhaseMetrics phase("azoom", &state);
    Result<TGraph> zoomed = graph.AZoom(spec);
    TG_CHECK(zoomed.ok());
    benchmark::DoNotOptimize(zoomed->Materialize());
  }
  state.counters["input_records"] = static_cast<double>(
      slice.NumVertexRecords() + slice.NumEdgeRecords());
}

}  // namespace

int main(int argc, char** argv) {
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, &WikiTalkAZoom, {15, 30, 45, 60}},
      {"SNB", &SnbBase, &SnbAZoom, {9, 18, 27, 36}},
      {"NGrams", &NGramsBase, &NGramsAZoom, {25, 50, 75, 100}},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOg, Representation::kVe, Representation::kRg}) {
      for (int64_t points : c.slices) {
        // RG replays every snapshot; at full history it is far off the
        // chart (the paper reports timeouts), so cap it at half.
        if (rep == Representation::kRg && points > c.slices[1]) continue;
        VeGraph slice = gen::SliceTime(
            c.base(), Interval(c.base().lifetime().start,
                               c.base().lifetime().start + points));
        std::string key = std::string(c.name) + "/points:" +
                          std::to_string(points);
        std::string bench_name = std::string("aZoom/") + c.name + "/" +
                                 RepresentationName(rep) +
                                 "/history:" + std::to_string(points);
        AZoomSpec spec = c.spec();
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, slice, rep, spec](benchmark::State& state) {
              RunAZoom(state, key, slice, rep, spec);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
