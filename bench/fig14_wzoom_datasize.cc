// Figure 14: wZoom^T with a fixed window size over growing temporal slices
// of each dataset, nodes=exists / edges=exists, on all four
// representations. Expected shape (paper): OGC clearly fastest, then OG,
// then VE, with RG slowest.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    int64_t window;
    std::vector<int64_t> slices;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, 3, {15, 30, 45, 60}},
      {"SNB", &SnbBase, 3, {9, 18, 27, 36}},
      {"NGrams", &NGramsBase, 25, {25, 50, 75, 100}},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOgc, Representation::kOg, Representation::kVe,
          Representation::kRg}) {
      for (int64_t points : c.slices) {
        if (rep == Representation::kRg && points > c.slices[1]) continue;
        VeGraph slice = gen::SliceTime(
            c.base(), Interval(c.base().lifetime().start,
                               c.base().lifetime().start + points));
        WZoomSpec spec{WindowSpec::TimePoints(c.window), Quantifier::Exists(),
                       Quantifier::Exists(), {}, {}};
        std::string key = std::string(c.name) + "/points:" +
                          std::to_string(points);
        std::string bench_name = std::string("wZoom/") + c.name + "/" +
                                 RepresentationName(rep) +
                                 "/history:" + std::to_string(points);
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, slice, rep, spec](benchmark::State& state) {
              TGraph graph = Prepared(key, slice, rep);
              for (auto _ : state) {
                PhaseMetrics phase("wzoom", &state);
                Result<TGraph> zoomed = graph.WZoom(spec);
                TG_CHECK(zoomed.ok());
                benchmark::DoNotOptimize(zoomed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
