// Figure 13: aZoom^T with fixed dataset size and snapshot count, varying
// the frequency of vertex-attribute change (synthetic churn on a global
// grid). Expected shape (paper): RG flat (it stores each vertex once per
// snapshot regardless), OG and VE degrading as churn increases (longer
// history arrays / more tuples).

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    std::vector<int64_t> periods;  // change every N time points; 0 = never
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, {0, 20, 10, 5, 2}},
      {"SNB", &SnbBase, {0, 18, 9, 4, 2}},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOg, Representation::kVe, Representation::kRg}) {
      for (int64_t period : c.periods) {
        if (rep == Representation::kRg && period != 0 && period != c.periods[2]) {
          continue;  // two RG points suffice to show flatness
        }
        VeGraph churned =
            period == 0
                ? c.base()
                : gen::WithAttributeChurn(c.base(), "volatile", period,
                                          /*cardinality=*/1000, /*seed=*/5);
        // Group by the churned attribute (cardinality stays the same order
        // of magnitude as the original experiments).
        AZoomSpec spec;
        spec.group_of = GroupByProperty(period == 0 ? "editCount" : "volatile");
        if (c.base().lifetime() == SnbBase().lifetime() && period == 0) {
          spec.group_of = GroupByProperty("firstName");
        }
        spec.aggregator = MakeAggregator("cluster", "key",
                                         {{"members", AggKind::kCount, ""}});
        std::string key = std::string(c.name) + "/period:" +
                          std::to_string(period);
        std::string bench_name =
            std::string("aZoom/") + c.name + "/" + RepresentationName(rep) +
            "/changes_per_entity:" +
            std::to_string(period == 0 ? 0
                                       : c.base().lifetime().duration() / period);
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, churned, rep, spec](benchmark::State& state) {
              TGraph graph = Prepared(key, churned, rep);
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.AZoom(spec);
                TG_CHECK(zoomed.ok());
                benchmark::DoNotOptimize(zoomed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
