// Figure 17: aZoom^T·wZoom^T versus wZoom^T·aZoom^T for different group-by
// cardinalities (random group projection, exists quantifier — the setting
// in which reordering is safe for growth-only data). Expected shape
// (paper): aZoom-first grows with cardinality (larger intermediate graph);
// wZoom-first stays flat and wins on NGrams-like data, whose vertices are
// not growth-only.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    int64_t window;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, 6},
      {"SNB", &SnbBase, 6},
      {"NGrams", &NGramsBase, 10},
  };
  const int64_t cardinalities[] = {10, 1000, 100000};
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep : {Representation::kOg, Representation::kVe}) {
      for (bool azoom_first : {true, false}) {
        for (int64_t cardinality : cardinalities) {
          VeGraph projected = gen::WithRandomGroups(c.base(), cardinality);
          WZoomSpec wspec{WindowSpec::TimePoints(c.window),
                          Quantifier::Exists(), Quantifier::Exists(), {}, {}};
          std::string key = std::string(c.name) + "/groups:" +
                            std::to_string(cardinality);
          std::string bench_name =
              std::string("chain/") + c.name + "/" + RepresentationName(rep) +
              (azoom_first ? "/aZoom-wZoom" : "/wZoom-aZoom") +
              "/cardinality:" + std::to_string(cardinality);
          benchmark::RegisterBenchmark(
              bench_name.c_str(),
              [key, projected, rep, wspec, azoom_first](benchmark::State& state) {
                TGraph graph = Prepared(key, projected, rep);
                AZoomSpec aspec = RandomGroupAZoom();
                for (auto _ : state) {
                  Result<TGraph> result =
                      azoom_first ? graph.AZoom(aspec)->WZoom(wspec)
                                  : graph.WZoom(wspec)->AZoom(aspec);
                  TG_CHECK(result.ok());
                  benchmark::DoNotOptimize(result->Coalesce().Materialize());
                }
              })
              ->Unit(benchmark::kMillisecond)
              ->Iterations(1);
        }
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
