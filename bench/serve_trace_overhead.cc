// Measures the serving-latency overhead of per-query tracing: interleaved
// A/B batches of the same uncached zoom query against an in-process
// tgraphd, where the A requests carry kFlagTrace (the query is sampled,
// every span records, and the Chrome trace rides back on the response)
// and the B requests do not. Interleaving keeps both populations exposed
// to the same machine noise, so the pooled p95 ratio isolates what
// sampling-on tracing costs.
//
// Exits nonzero when traced p95 exceeds untraced p95 by more than
// --threshold percent (default 5) — the regression gate CI runs.
//
//   serve_trace_overhead [--iters N] [--batch N] [--threshold PCT]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/graph_io.h"

namespace {

using namespace tgraph;         // NOLINT
using namespace tgraph::bench;  // NOLINT

double Percentile(std::vector<int64_t> micros, double p) {
  if (micros.empty()) return 0.0;
  std::sort(micros.begin(), micros.end());
  size_t index = static_cast<size_t>(p * (micros.size() - 1));
  return static_cast<double>(micros[index]);
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 30;      // batches per arm
  int batch = 4;       // requests per batch
  double threshold = 5.0;
  for (int i = 1; i < argc; ++i) {
    auto int_arg = [&](const char* name, int* out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (int_arg("--iters", &iters) || int_arg("--batch", &batch)) continue;
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  std::string dir =
      (std::filesystem::temp_directory_path() / "tgz_bench_trace_overhead")
          .string();
  TG_CHECK_OK(
      storage::WriteVeGraph(SnbBase(), dir, storage::GraphWriteOptions()));

  server::ServerOptions options;
  options.port = 0;
  options.workers = 4;
  server::Server server(Ctx(), options);
  TG_CHECK_OK(server.Start());
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server.port()));

  const std::string script =
      "LOAD '" + dir +
      "' AS g;\n"
      "SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;\n"
      "INFO cohorts;";

  auto run = [&](bool traced) {
    int64_t start = obs::Tracer::NowMicros();
    // no_cache so every request re-executes the zoom — tracing overhead
    // lives on the execute path, not the cache-hit path.
    Result<server::Response> response =
        client.Query(script, /*no_cache=*/true, /*want_trace=*/traced);
    TG_CHECK(response.ok()) << response.status();
    TG_CHECK(response->has_trace() == traced);
    return obs::Tracer::NowMicros() - start;
  };

  // Warm up both arms: first-touch catalog load, allocator, page cache.
  for (int i = 0; i < 3; ++i) {
    run(true);
    run(false);
  }

  std::vector<int64_t> traced_us, untraced_us;
  for (int i = 0; i < iters; ++i) {
    for (int j = 0; j < batch; ++j) traced_us.push_back(run(true));
    for (int j = 0; j < batch; ++j) untraced_us.push_back(run(false));
  }
  server.Drain();

  double traced_p95 = Percentile(traced_us, 0.95);
  double untraced_p95 = Percentile(untraced_us, 0.95);
  double traced_p50 = Percentile(traced_us, 0.50);
  double untraced_p50 = Percentile(untraced_us, 0.50);
  double overhead_pct =
      untraced_p95 > 0 ? (traced_p95 / untraced_p95 - 1.0) * 100.0 : 0.0;

  std::printf("samples_per_arm %zu\n", traced_us.size());
  std::printf("untraced_p50_us %.0f\n", untraced_p50);
  std::printf("traced_p50_us %.0f\n", traced_p50);
  std::printf("untraced_p95_us %.0f\n", untraced_p95);
  std::printf("traced_p95_us %.0f\n", traced_p95);
  std::printf("trace_overhead_p95_pct %.2f\n", overhead_pct);

  if (overhead_pct > threshold) {
    std::fprintf(stderr,
                 "FAIL: traced p95 %.0fus exceeds untraced p95 %.0fus by "
                 "%.2f%% (threshold %.2f%%)\n",
                 traced_p95, untraced_p95, overhead_pct, threshold);
    return 1;
  }
  std::printf("OK: trace overhead %.2f%% <= %.2f%%\n", overhead_pct,
              threshold);
  return 0;
}
