// tgraphd serving benchmark: loopback QPS and request-latency percentiles
// for the repeated-zoom workload, with and without the result cache. The
// cached rows show what the canonicalized-plan cache is worth once a zoom
// result is resident: the server answers from memory instead of
// re-executing the dataflow. items_per_second is the QPS; p50/p95/p99
// request latencies are reported as microsecond counters.
//
// The serve/ingest and serve/mixed groups measure the streaming write
// path: pure kIngest batch throughput (events/s, WAL-durable on ack),
// and a mixed workload where every client interleaves reads of the live
// graph with ~25% writes — read latencies are reported while the delta
// grows and background compactions rewrite the base generation
// underneath the readers.
//
// The serve/view group measures materialized views over the same live
// graph: a kView read (incrementally maintained on every ingest epoch)
// against the identical zoom recomputed uncached per request, and a
// mixed read/write/view workload whose counters include the view
// staleness lag (epoch publish -> snapshot republish) drawn from the
// server's view.staleness_micros histogram.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ingest/event.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/graph_io.h"

namespace {

using namespace tgraph;         // NOLINT
using namespace tgraph::bench;  // NOLINT

std::string DatasetDir() {
  static std::string dir = [] {
    std::string path =
        (std::filesystem::temp_directory_path() / "tgz_bench_serve").string();
    TG_CHECK_OK(storage::WriteVeGraph(SnbBase(), path,
                                      storage::GraphWriteOptions()));
    return path;
  }();
  return dir;
}

server::Server* ServerInstance() {
  static auto* instance = [] {
    server::ServerOptions options;
    options.port = 0;
    options.workers = 4;
    options.queue_depth = 64;
    // Low enough that the mixed workload crosses it repeatedly — the
    // read percentiles then include requests racing a live compaction.
    options.ingest_delta_events = 512;
    auto* created = new server::Server(Ctx(), options);
    TG_CHECK_OK(created->Start());
    return created;
  }();
  return instance;
}

std::string LiveDir() {
  static std::string dir =
      (std::filesystem::temp_directory_path() / "tgz_bench_serve_live")
          .string();
  return dir;
}

std::string ZoomScript() {
  return "LOAD '" + DatasetDir() +
         "' AS g;\n"
         "SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;\n"
         "INFO cohorts;";
}

int64_t NowMicros() { return obs::Tracer::NowMicros(); }

double Percentile(std::vector<int64_t>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (sorted_micros.size() - 1));
  return static_cast<double>(sorted_micros[index]);
}

void ServeBench(benchmark::State& state, bool cached) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));
  if (cached) {
    // Prime the cache so every timed request is a hit.
    TG_CHECK_OK(client.Query(ZoomScript()).status());
  }

  std::vector<int64_t> latencies_us;
  {
    PhaseMetrics phase(cached ? "serve_cached" : "serve_uncached", &state);
    for (auto _ : state) {
      int64_t start = NowMicros();
      Result<server::Response> response =
          client.Query(ZoomScript(), /*no_cache=*/!cached);
      TG_CHECK_OK(response.status());
      latencies_us.push_back(NowMicros() - start);
      if (cached && !response->cache_hit()) {
        state.SkipWithError("expected a cache hit");
        return;
      }
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto report = [&](const char* name, double p) {
    state.counters[name] = benchmark::Counter(
        Percentile(latencies_us, p), benchmark::Counter::kAvgThreads);
  };
  report("p50_us", 0.50);
  report("p95_us", 0.95);
  report("p99_us", 0.99);
  state.SetItemsProcessed(state.iterations());
}

// --- streaming write path --------------------------------------------------

// Cross-batch timestamps must strictly advance, so batch construction and
// the Ingest round-trip happen under one writer lock (the single-writer
// model every log-structured store assumes); readers never take it.
std::mutex g_writer_mu;
std::atomic<int64_t> g_next_ts{1};
std::atomic<int64_t> g_next_vid{1};

std::vector<ingest::Event> NextBatch(size_t count) {
  std::vector<ingest::Event> events;
  events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ingest::Event event;
    event.kind = ingest::EventKind::kAddVertex;
    event.id = g_next_vid.fetch_add(1);
    event.at = g_next_ts.fetch_add(1);
    event.props = Properties{{"type", "person"}};
    events.push_back(std::move(event));
  }
  return events;
}

std::string LiveScript() {
  return "LOAD '" + LiveDir() + "' AS g;\nINFO g;";
}

constexpr size_t kIngestBatch = 8;

void IngestBench(benchmark::State& state) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));
  {
    PhaseMetrics phase("serve_ingest", &state);
    for (auto _ : state) {
      std::lock_guard<std::mutex> lock(g_writer_mu);
      TG_CHECK_OK(client.Ingest(LiveDir(), NextBatch(kIngestBatch)).status());
    }
  }
  // items_per_second = WAL-durable events per second.
  state.SetItemsProcessed(state.iterations() * kIngestBatch);
}

void MixedBench(benchmark::State& state) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));

  std::vector<int64_t> read_us;
  int64_t batches_written = 0;
  {
    PhaseMetrics phase("serve_mixed", &state);
    size_t iteration = 0;
    for (auto _ : state) {
      // Deterministic 1-in-4 writes, phase-shifted per thread so the
      // writers spread out instead of convoying on the writer lock.
      bool write =
          (iteration++ + static_cast<size_t>(state.thread_index())) % 4 == 0;
      if (write) {
        std::lock_guard<std::mutex> lock(g_writer_mu);
        TG_CHECK_OK(
            client.Ingest(LiveDir(), NextBatch(kIngestBatch)).status());
        ++batches_written;
      } else {
        int64_t start = NowMicros();
        TG_CHECK_OK(client.Query(LiveScript()).status());
        read_us.push_back(NowMicros() - start);
      }
    }
  }

  std::sort(read_us.begin(), read_us.end());
  auto report = [&](const char* name, double p) {
    state.counters[name] = benchmark::Counter(Percentile(read_us, p),
                                              benchmark::Counter::kAvgThreads);
  };
  report("read_p50_us", 0.50);
  report("read_p95_us", 0.95);
  report("read_p99_us", 0.99);
  state.counters["events_written"] =
      benchmark::Counter(static_cast<double>(batches_written * kIngestBatch));
  state.SetItemsProcessed(state.iterations());
}

// --- materialized views ----------------------------------------------------

// The view and the recompute script run the SAME zoom over the SAME live
// graph, so their percentiles are directly comparable: the view pays its
// maintenance cost on the write path (epoch listener), the recompute pays
// on every read.
constexpr char kViewName[] = "bench_live";

std::string RecomputeScript() {
  return "LOAD '" + LiveDir() +
         "' AS g;\n"
         "SET z = AZOOM g BY type AGGREGATE COUNT() AS n;\n"
         "INFO z;";
}

void EnsureBenchView(server::Client* client) {
  static bool registered = [client] {
    // The source live graph must exist before the view can materialize.
    std::lock_guard<std::mutex> lock(g_writer_mu);
    TG_CHECK_OK(client->Ingest(LiveDir(), NextBatch(kIngestBatch)).status());
    TG_CHECK_OK(client
                    ->Query("CREATE VIEW " + std::string(kViewName) +
                            " ON '" + LiveDir() +
                            "' AS AZOOM BY type AGGREGATE COUNT() AS n;")
                    .status());
    return true;
  }();
  (void)registered;
}

void ViewReadBench(benchmark::State& state, bool from_view) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));
  EnsureBenchView(&client);

  std::vector<int64_t> latencies_us;
  {
    PhaseMetrics phase(from_view ? "serve_view" : "serve_view_recompute",
                       &state);
    for (auto _ : state) {
      int64_t start = NowMicros();
      if (from_view) {
        TG_CHECK_OK(client.View(kViewName).status());
      } else {
        TG_CHECK_OK(
            client.Query(RecomputeScript(), /*no_cache=*/true).status());
      }
      latencies_us.push_back(NowMicros() - start);
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto report = [&](const char* name, double p) {
    state.counters[name] = benchmark::Counter(
        Percentile(latencies_us, p), benchmark::Counter::kAvgThreads);
  };
  report("p50_us", 0.50);
  report("p95_us", 0.95);
  report("p99_us", 0.99);
  state.SetItemsProcessed(state.iterations());
}

void MixedViewBench(benchmark::State& state) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));
  EnsureBenchView(&client);

  obs::MetricsSnapshot before;
  if (state.thread_index() == 0) {
    before = obs::MetricsRegistry::Global().Snapshot();
  }

  std::vector<int64_t> view_us;
  std::vector<int64_t> recompute_us;
  {
    PhaseMetrics phase("serve_mixed_view", &state);
    size_t iteration = 0;
    for (auto _ : state) {
      size_t slot =
          (iteration++ + static_cast<size_t>(state.thread_index())) % 4;
      if (slot == 0) {
        // 25% writes; each ack also covers the synchronous view refresh
        // the epoch listener runs before publishing.
        std::lock_guard<std::mutex> lock(g_writer_mu);
        TG_CHECK_OK(
            client.Ingest(LiveDir(), NextBatch(kIngestBatch)).status());
      } else if (slot == 3) {
        int64_t start = NowMicros();
        TG_CHECK_OK(
            client.Query(RecomputeScript(), /*no_cache=*/true).status());
        recompute_us.push_back(NowMicros() - start);
      } else {
        int64_t start = NowMicros();
        TG_CHECK_OK(client.View(kViewName).status());
        view_us.push_back(NowMicros() - start);
      }
    }
  }

  std::sort(view_us.begin(), view_us.end());
  std::sort(recompute_us.begin(), recompute_us.end());
  auto report = [&](const char* name, std::vector<int64_t>& sorted,
                    double p) {
    state.counters[name] = benchmark::Counter(
        Percentile(sorted, p), benchmark::Counter::kAvgThreads);
  };
  report("view_p50_us", view_us, 0.50);
  report("view_p95_us", view_us, 0.95);
  report("view_p99_us", view_us, 0.99);
  report("recompute_p50_us", recompute_us, 0.50);
  report("recompute_p95_us", recompute_us, 0.95);
  report("recompute_p99_us", recompute_us, 0.99);

  if (state.thread_index() == 0) {
    // Staleness lag (epoch publish -> snapshot republish) for refreshes
    // triggered during this run, from the server's own histogram.
    obs::HistogramSnapshot staleness =
        obs::MetricsRegistry::Global()
            .Snapshot()
            .DeltaSince(before)
            .histograms[obs::metric_names::kViewStalenessMicros];
    state.counters["staleness_p50_us"] = benchmark::Counter(
        static_cast<double>(staleness.ApproxPercentile(0.50)));
    state.counters["staleness_p99_us"] = benchmark::Counter(
        static_cast<double>(staleness.ApproxPercentile(0.99)));
    state.counters["staleness_max_us"] =
        benchmark::Counter(static_cast<double>(staleness.max));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  DatasetDir();      // generate + write outside any timed region
  ServerInstance();  // bind before benchmarks spawn client threads

  for (bool cached : {false, true}) {
    std::string name =
        std::string("serve/azoom/") + (cached ? "cached" : "uncached");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [cached](benchmark::State& state) { ServeBench(state, cached); })
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        (name + "/clients:4").c_str(),
        [cached](benchmark::State& state) { ServeBench(state, cached); })
        ->Threads(4)
        ->UseRealTime();
  }

  benchmark::RegisterBenchmark("serve/ingest/append", IngestBench)
      ->UseRealTime();
  benchmark::RegisterBenchmark("serve/mixed/write_frac:25", MixedBench)
      ->UseRealTime();
  benchmark::RegisterBenchmark("serve/mixed/write_frac:25/clients:4",
                               MixedBench)
      ->Threads(4)
      ->UseRealTime();

  benchmark::RegisterBenchmark(
      "serve/view/read",
      [](benchmark::State& state) { ViewReadBench(state, true); })
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      "serve/view/recompute",
      [](benchmark::State& state) { ViewReadBench(state, false); })
      ->UseRealTime();
  benchmark::RegisterBenchmark("serve/view/mixed/write_frac:25",
                               MixedViewBench)
      ->UseRealTime();
  benchmark::RegisterBenchmark("serve/view/mixed/write_frac:25/clients:4",
                               MixedViewBench)
      ->Threads(4)
      ->UseRealTime();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ServerInstance()->Drain();
  std::error_code ec;
  std::filesystem::remove_all(DatasetDir(), ec);
  std::filesystem::remove_all(LiveDir(), ec);
  return 0;
}
