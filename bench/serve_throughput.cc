// tgraphd serving benchmark: loopback QPS and request-latency percentiles
// for the repeated-zoom workload, with and without the result cache. The
// cached rows show what the canonicalized-plan cache is worth once a zoom
// result is resident: the server answers from memory instead of
// re-executing the dataflow. items_per_second is the QPS; p50/p95/p99
// request latencies are reported as microsecond counters.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/graph_io.h"

namespace {

using namespace tgraph;         // NOLINT
using namespace tgraph::bench;  // NOLINT

std::string DatasetDir() {
  static std::string dir = [] {
    std::string path =
        (std::filesystem::temp_directory_path() / "tgz_bench_serve").string();
    TG_CHECK_OK(storage::WriteVeGraph(SnbBase(), path,
                                      storage::GraphWriteOptions()));
    return path;
  }();
  return dir;
}

server::Server* ServerInstance() {
  static auto* instance = [] {
    server::ServerOptions options;
    options.port = 0;
    options.workers = 4;
    options.queue_depth = 64;
    auto* created = new server::Server(Ctx(), options);
    TG_CHECK_OK(created->Start());
    return created;
  }();
  return instance;
}

std::string ZoomScript() {
  return "LOAD '" + DatasetDir() +
         "' AS g;\n"
         "SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;\n"
         "INFO cohorts;";
}

int64_t NowMicros() { return obs::Tracer::NowMicros(); }

double Percentile(std::vector<int64_t>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (sorted_micros.size() - 1));
  return static_cast<double>(sorted_micros[index]);
}

void ServeBench(benchmark::State& state, bool cached) {
  server::Server* server = ServerInstance();
  server::Client client;
  TG_CHECK_OK(client.Connect("127.0.0.1", server->port()));
  if (cached) {
    // Prime the cache so every timed request is a hit.
    TG_CHECK_OK(client.Query(ZoomScript()).status());
  }

  std::vector<int64_t> latencies_us;
  {
    PhaseMetrics phase(cached ? "serve_cached" : "serve_uncached", &state);
    for (auto _ : state) {
      int64_t start = NowMicros();
      Result<server::Response> response =
          client.Query(ZoomScript(), /*no_cache=*/!cached);
      TG_CHECK_OK(response.status());
      latencies_us.push_back(NowMicros() - start);
      if (cached && !response->cache_hit()) {
        state.SkipWithError("expected a cache hit");
        return;
      }
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto report = [&](const char* name, double p) {
    state.counters[name] = benchmark::Counter(
        Percentile(latencies_us, p), benchmark::Counter::kAvgThreads);
  };
  report("p50_us", 0.50);
  report("p95_us", 0.95);
  report("p99_us", 0.99);
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  DatasetDir();      // generate + write outside any timed region
  ServerInstance();  // bind before benchmarks spawn client threads

  for (bool cached : {false, true}) {
    std::string name =
        std::string("serve/azoom/") + (cached ? "cached" : "uncached");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [cached](benchmark::State& state) { ServeBench(state, cached); })
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        (name + "/clients:4").c_str(),
        [cached](benchmark::State& state) { ServeBench(state, cached); })
        ->Threads(4)
        ->UseRealTime();
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ServerInstance()->Drain();
  std::error_code ec;
  std::filesystem::remove_all(DatasetDir(), ec);
  return 0;
}
