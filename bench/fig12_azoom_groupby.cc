// Figure 12: aZoom^T with fixed dataset size and snapshot count, varying
// the group-by cardinality (random group ids projected onto vertices).
// Expected shape (paper): flat — the runtime of aZoom^T does not depend on
// how many output nodes are created, on any representation.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase},
      {"SNB", &SnbBase},
      {"NGrams", &NGramsBase},
  };
  const int64_t cardinalities[] = {10, 100, 1000, 10000, 100000};
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOg, Representation::kVe, Representation::kRg}) {
      // The paper omits RG from Figure 12 for visibility (~29 min flat);
      // we include one RG point per dataset as the reference.
      for (int64_t cardinality : cardinalities) {
        if (rep == Representation::kRg && cardinality != 1000) continue;
        VeGraph projected = gen::WithRandomGroups(c.base(), cardinality);
        std::string key = std::string(c.name) + "/groups:" +
                          std::to_string(cardinality);
        std::string bench_name = std::string("aZoom/") + c.name + "/" +
                                 RepresentationName(rep) +
                                 "/cardinality:" + std::to_string(cardinality);
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, projected, rep](benchmark::State& state) {
              TGraph graph = Prepared(key, projected, rep);
              AZoomSpec spec = RandomGroupAZoom();
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.AZoom(spec);
                TG_CHECK(zoomed.ok());
                benchmark::DoNotOptimize(zoomed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
