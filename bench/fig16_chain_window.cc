// Figure 16: chaining aZoom^T then wZoom^T, with and without switching the
// physical representation in between (VE, OG, VE->OG, OG->VE), varying the
// wZoom window size. Expected shape (paper): OG best overall; switching
// does not change the picture much; VE and OG->VE trail.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

struct Plan {
  const char* label;
  Representation azoom_rep;
  Representation wzoom_rep;
};

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    AZoomSpec (*spec)();
    std::vector<int64_t> windows;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, &WikiTalkAZoom, {3, 6, 12, 24}},
      {"SNB", &SnbBase, &SnbAZoom, {3, 6, 12, 18}},
      {"NGrams", &NGramsBase, &NGramsAZoom, {10, 25, 50}},
  };
  const Plan plans[] = {
      {"VE", Representation::kVe, Representation::kVe},
      {"OG", Representation::kOg, Representation::kOg},
      {"VE-OG", Representation::kVe, Representation::kOg},
      {"OG-VE", Representation::kOg, Representation::kVe},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (const Plan& plan : plans) {
      for (int64_t window : c.windows) {
        WZoomSpec wspec{WindowSpec::TimePoints(window), Quantifier::All(),
                        Quantifier::All(), {}, {}};
        std::string key = std::string(c.name) + "/full";
        std::string bench_name = std::string("chain/") + c.name + "/" +
                                 plan.label +
                                 "/window:" + std::to_string(window);
        VeGraph base = c.base();
        AZoomSpec aspec = c.spec();
        Plan p = plan;
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, base, p, aspec, wspec](benchmark::State& state) {
              TGraph graph = Prepared(key, base, p.azoom_rep);
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.AZoom(aspec);
                TG_CHECK(zoomed.ok());
                // Representation switch mid-chain (identity when the two
                // representations coincide).
                Result<TGraph> switched = zoomed->As(p.wzoom_rep);
                TG_CHECK(switched.ok());
                Result<TGraph> windowed = switched->WZoom(wspec);
                TG_CHECK(windowed.ok());
                benchmark::DoNotOptimize(windowed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
