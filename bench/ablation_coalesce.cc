// Ablation (Section 4, "Coalescing"): lazy versus eager coalescing across
// an operator sequence. aZoom^T neither needs a coalesced input nor
// produces one, so in a chain aZoom -> aZoom -> wZoom the system only has
// to coalesce once (before wZoom); a policy that coalesces after every
// operator pays for two extra passes over intermediate results. Expected
// shape: lazy < eager on every dataset and representation.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

// Second-level zoom: collapses the 1000 random groups into 10 super-groups
// by the numeric group key.
AZoomSpec SuperGroupAZoom() {
  AZoomSpec spec;
  spec.group_of = [](VertexId, const Properties& props)
      -> std::optional<GroupKey> {
    const PropertyValue* group = props.Find("group");
    if (group == nullptr) return std::nullopt;
    return PropertyValue(group->AsInt() % 10);
  };
  spec.aggregator = MakeAggregator(
      "supercluster", "group", {{"members", AggKind::kSum, "members"}});
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    int64_t window;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, 6},
      {"SNB", &SnbBase, 6},
      {"NGrams", &NGramsBase, 10},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep : {Representation::kVe, Representation::kOg}) {
      for (bool lazy : {true, false}) {
        std::string bench_name = std::string("chain2/") + c.name + "/" +
                                 RepresentationName(rep) + "/" +
                                 (lazy ? "lazy" : "eager");
        std::string key = std::string(c.name) + "/groups:1000";
        VeGraph projected = gen::WithRandomGroups(c.base(), 1000);
        WZoomSpec wspec{WindowSpec::TimePoints(c.window), Quantifier::All(),
                        Quantifier::All(), {}, {}};
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, projected, rep, wspec, lazy](benchmark::State& state) {
              TGraph graph = Prepared(key, projected, rep);
              AZoomSpec fine = RandomGroupAZoom();
              AZoomSpec coarse = SuperGroupAZoom();
              for (auto _ : state) {
                Result<TGraph> step1 = graph.AZoom(fine);
                TG_CHECK(step1.ok());
                TGraph mid1 = lazy ? *step1 : step1->Coalesce();
                if (!lazy) mid1.Materialize();
                Result<TGraph> step2 = mid1.AZoom(coarse);
                TG_CHECK(step2.ok());
                TGraph mid2 = lazy ? *step2 : step2->Coalesce();
                if (!lazy) mid2.Materialize();
                Result<TGraph> windowed = mid2.WZoom(wspec);
                TG_CHECK(windowed.ok());
                benchmark::DoNotOptimize(windowed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
