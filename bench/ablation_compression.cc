// Ablation (tgraph-store v3): what the per-segment encodings buy and
// cost. For each benchmark dataset the same graph is written twice —
// --store-version 2 (raw segments) and 3 (measured per-segment encoding
// selection with raw fallback) — and both containers are measured on:
//   bytes      — file size on disk (the compression claim)
//   cold load  — open + full load, mmap and decode from scratch
//   selective  — open + narrow ranged load with zone-map pushdown (the
//                selective-decode claim: pruned partitions are never
//                decoded, so the decode tax shrinks with selectivity)
// plus the v3 footer's per-encoding segment histogram and the pruned vs
// decoded partition counters of the selective leg.
//
// Prints one human-readable block per dataset and writes the machine-
// readable trajectory to BENCH_compression.json (override the path with
// argv[1]). Acceptance gate tracked in EXPERIMENTS.md: the NGrams-like
// store must shrink >= 3x with a cold load no slower than the v2
// baseline.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "storage/graph_io.h"
#include "storage/store_format.h"
#include "storage/store_reader.h"

namespace {

using namespace tgraph;           // NOLINT
using namespace tgraph::bench;    // NOLINT
using namespace tgraph::storage;  // NOLINT

constexpr int kRepeats = 5;

std::string Dir(const std::string& dataset, const std::string& leg) {
  return (std::filesystem::temp_directory_path() /
          ("tgz_bench_compression_" + dataset + "_" + leg))
      .string();
}

double MinMillis(const std::vector<double>& samples) {
  double best = samples[0];
  for (double s : samples) best = std::min(best, s);
  return best;
}

/// One open-and-load pass, timed end to end (the cold path: header and
/// footer parse, mmap, checksum, decode, graph build).
double TimedLoadMillis(const std::string& dir,
                       const std::optional<Interval>& range) {
  LoadOptions options;
  options.time_range = range;
  auto start = std::chrono::steady_clock::now();
  Result<VeGraph> g = LoadVeGraph(Ctx(), dir, options);
  TG_CHECK_OK(g.status());
  benchmark::DoNotOptimize(g->NumEdgeRecords());
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct LegResult {
  uintmax_t bytes = 0;
  double cold_ms = 0;
  double selective_ms = 0;
  int64_t partitions_pruned = 0;    // selective leg
  int64_t partitions_decoded = 0;   // selective leg
  int64_t segments_decoded = 0;     // selective leg (0 for v2: raw is
                                    // served zero-copy, never decoded)
};

struct DatasetResult {
  std::string name;
  LegResult v2;
  LegResult v3;
  std::map<std::string, int> encodings;  // v3 per-encoding segment counts
};

LegResult MeasureLeg(const std::string& dir, const Interval& narrow) {
  LegResult result;
  result.bytes = std::filesystem::file_size(StorePath(dir));
  std::vector<double> cold, selective;
  for (int r = 0; r < kRepeats; ++r) {
    cold.push_back(TimedLoadMillis(dir, std::nullopt));
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::MetricsSnapshot before = registry.Snapshot();
  for (int r = 0; r < kRepeats; ++r) {
    selective.push_back(TimedLoadMillis(dir, narrow));
  }
  obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  auto counter = [&](const char* name) -> int64_t {
    auto it = delta.counters.find(name);
    return it == delta.counters.end() ? 0 : it->second / kRepeats;
  };
  result.cold_ms = MinMillis(cold);
  result.selective_ms = MinMillis(selective);
  result.partitions_pruned = counter(obs::metric_names::kStorePartitionsPruned);
  result.partitions_decoded =
      counter(obs::metric_names::kStorePartitionsDecoded);
  result.segments_decoded = counter(obs::metric_names::kStoreSegmentsDecoded);
  return result;
}

std::map<std::string, int> EncodingHistogram(const std::string& dir) {
  Result<std::unique_ptr<StoreReader>> reader =
      StoreReader::Open(StorePath(dir));
  TG_CHECK_OK(reader.status());
  std::map<std::string, int> histogram;
  for (const TableMeta& table : (*reader)->footer().tables) {
    for (const PartitionMeta& partition : table.partitions) {
      for (const SegmentMeta& segment : partition.segments) {
        ++histogram[SegmentEncodingName(segment.encoding)];
      }
    }
  }
  return histogram;
}

void AppendLegJson(std::string* out, const char* name, const LegResult& leg) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"bytes\": %llu, \"cold_load_ms\": %.2f, "
                "\"selective_query_ms\": %.2f, \"partitions_pruned\": %lld, "
                "\"partitions_decoded\": %lld, \"segments_decoded\": %lld}",
                name, static_cast<unsigned long long>(leg.bytes), leg.cold_ms,
                leg.selective_ms,
                static_cast<long long>(leg.partitions_pruned),
                static_cast<long long>(leg.partitions_decoded),
                static_cast<long long>(leg.segments_decoded));
  *out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_compression.json";
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
  };
  DatasetCase cases[] = {{"WikiTalk", &WikiTalkBase},
                         {"SNB", &SnbBase},
                         {"NGrams", &NGramsBase}};

  std::vector<DatasetResult> results;
  for (const DatasetCase& c : cases) {
    VeGraph g = c.base();
    GraphWriteOptions options;
    options.row_group_size = 4096;
    // Structural locality clusters rows by interval start, which is what
    // gives the zone maps pruning power on the selective leg (temporal
    // locality would make every partition span the whole lifetime).
    options.sort_order = SortOrder::kStructuralLocality;
    options.store_version = 2;
    TG_CHECK_OK(WriteVeStore(g, Dir(c.name, "v2"), options));
    options.store_version = 3;
    TG_CHECK_OK(WriteVeStore(g, Dir(c.name, "v3"), options));

    Interval lifetime = g.lifetime();
    TimePoint mid = (lifetime.start + lifetime.end) / 2;
    Interval narrow(mid, mid + 6);

    DatasetResult result;
    result.name = c.name;
    result.v2 = MeasureLeg(Dir(c.name, "v2"), narrow);
    result.v3 = MeasureLeg(Dir(c.name, "v3"), narrow);
    result.encodings = EncodingHistogram(Dir(c.name, "v3"));
    results.push_back(result);

    double ratio = static_cast<double>(result.v2.bytes) /
                   static_cast<double>(result.v3.bytes);
    std::printf("%s\n", c.name);
    std::printf("  bytes          v2 %9llu   v3 %9llu   (%.2fx smaller)\n",
                static_cast<unsigned long long>(result.v2.bytes),
                static_cast<unsigned long long>(result.v3.bytes), ratio);
    std::printf("  cold load      v2 %7.2f ms  v3 %7.2f ms\n",
                result.v2.cold_ms, result.v3.cold_ms);
    std::printf("  selective      v2 %7.2f ms  v3 %7.2f ms\n",
                result.v2.selective_ms, result.v3.selective_ms);
    std::printf(
        "  selective scan pruned %lld / decoded %lld partitions, "
        "%lld segments decoded\n",
        static_cast<long long>(result.v3.partitions_pruned),
        static_cast<long long>(result.v3.partitions_decoded),
        static_cast<long long>(result.v3.segments_decoded));
    std::printf("  v3 encodings   ");
    for (const auto& [name, count] : result.encodings) {
      std::printf("%s=%d ", name.c_str(), count);
    }
    std::printf("\n");
    std::filesystem::remove_all(Dir(c.name, "v2"));
    std::filesystem::remove_all(Dir(c.name, "v3"));
  }

  std::string json = "{\n  \"benchmark\": \"ablation_compression\",\n"
                     "  \"datasets\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const DatasetResult& r = results[i];
    json += "    {\n      \"name\": \"" + r.name + "\",\n";
    AppendLegJson(&json, "v2_raw", r.v2);
    json += ",\n";
    AppendLegJson(&json, "v3_encoded", r.v3);
    json += ",\n      \"compression_ratio\": ";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(r.v2.bytes) /
                      static_cast<double>(r.v3.bytes));
    json += buffer;
    json += ",\n      \"v3_segment_encodings\": {";
    bool first = true;
    for (const auto& [name, count] : r.encodings) {
      if (!first) json += ", ";
      first = false;
      json += "\"" + name + "\": " + std::to_string(count);
    }
    json += "}\n    }";
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  TG_CHECK(f != nullptr) << json_path;
  TG_CHECK(std::fwrite(json.data(), 1, json.size(), f) == json.size());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
