// Ablation: the rule-based pipeline optimizer (the query-optimization
// direction the paper's conclusion announces), measured on a naively
// written chain — eager coalesces, a mid-chain representation switch, a
// trailing slice, and wZoom-before-aZoom — against its optimized rewrite
// (lazy coalescing, slice pushdown, one up-front conversion to OG,
// aZoom-first under exists quantification). Expected shape: the optimized
// plan wins on every dataset, most on the attribute-stable ones where the
// reorder rule fires.

#include "bench/bench_util.h"
#include "tgraph/pipeline.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    int64_t window;
    bool attributes_stable;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, 6, true},
      {"SNB", &SnbBase, 6, true},
      {"NGrams", &NGramsBase, 10, false},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    VeGraph projected = gen::WithRandomGroups(c.base(), 1000);
    Interval lifetime = projected.lifetime();
    Interval focus(lifetime.start,
                   lifetime.start + (lifetime.duration() * 2) / 3);

    // A chain as a user might naively write it.
    Pipeline naive;
    naive.Coalesce()
        .WZoom(WZoomSpec{WindowSpec::TimePoints(c.window),
                         Quantifier::Exists(), Quantifier::Exists(), {}, {}})
        .Coalesce()
        .Convert(Representation::kVe)
        .AZoom(RandomGroupAZoom())
        .Coalesce()
        .Slice(focus);

    Pipeline::Hints hints;
    hints.attributes_stable = c.attributes_stable;
    Pipeline optimized = naive.Optimized(hints);
    printf("# %s naive plan:\n%s# %s optimized plan:\n%s", c.name,
           naive.Explain().c_str(), c.name, optimized.Explain().c_str());

    for (bool use_optimized : {false, true}) {
      std::string bench_name = std::string("pipeline/") + c.name + "/" +
                               (use_optimized ? "optimized" : "naive");
      std::string key = std::string(c.name) + "/groups:1000";
      Pipeline plan = use_optimized ? optimized : naive;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [key, projected, plan](benchmark::State& state) {
            TGraph graph = Prepared(key, projected, Representation::kVe);
            for (auto _ : state) {
              Result<TGraph> result = plan.Run(graph);
              TG_CHECK(result.ok());
              benchmark::DoNotOptimize(result->Materialize());
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
