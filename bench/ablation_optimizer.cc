// Ablation: rule-based vs cost-based pipeline optimization (the query
// optimization the paper's conclusion announces). A naively written chain
// — eager coalesces, a mid-chain representation switch, a trailing slice
// — runs three ways on a uniform and a Zipf-skewed power-law input:
//
//   naive  the chain exactly as written
//   rules  Pipeline::Optimized — the four rewrite rules, no statistics
//   cost   Pipeline::OptimizedWithCost — candidates priced against a
//          profile trained by instrumented runs of the same operators on
//          each representation (what tgraphd accumulates from its own
//          query history)
//
// Expected shape: `cost` matches `rules` on the uniform input (the rule
// plan is in the candidate set, so pricing can only confirm it) and wins
// on the skewed input, where observed per-representation costs justify an
// up-front conversion the rules refuse to insert. Training time is
// outside every timed region, mirroring a warm-started server.

#include "bench/bench_util.h"
#include "opt/planner.h"
#include "tgraph/pipeline.h"
#include "tgraph/stats.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

WZoomSpec ExistsWindows(int64_t size) {
  return WZoomSpec{WindowSpec::TimePoints(size), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
}

/// Profiles the workload's operators on each lossless representation of
/// the input (plus every pairwise conversion), the way a resident server
/// learns from executing queries: one instrumented run per cell.
opt::Stats TrainStats(const VeGraph& ve, const std::string& key,
                      int64_t window, Interval focus) {
  opt::Stats stats;
  constexpr Representation kReps[] = {
      Representation::kVe, Representation::kOg, Representation::kRg};
  for (Representation rep : kReps) {
    TGraph graph = Prepared(key, ve, rep);
    Pipeline probe;
    probe.Slice(focus)
        .AZoom(RandomGroupAZoom())
        .WZoom(ExistsWindows(window))
        .Coalesce();
    Result<TGraph> run = probe.Run(graph, &stats);
    TG_CHECK(run.ok()) << run.status();
    for (Representation target : kReps) {
      if (target == rep) continue;
      Pipeline convert;
      convert.Convert(target);
      Result<TGraph> converted = convert.Run(graph, &stats);
      TG_CHECK(converted.ok()) << converted.status();
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  struct InputCase {
    const char* name;
    double zipf_exponent;
    double hub_fraction;
  };
  InputCase cases[] = {
      {"uniform", 0.0, 0.0},
      {"zipf", 1.2, 0.15},
  };
  const int64_t window = 4;

  for (InputCase& c : cases) {
    gen::PowerLawConfig config;
    config.num_vertices = 3000;
    config.num_edges = 30000;
    config.num_snapshots = 16;
    config.zipf_exponent = c.zipf_exponent;
    config.hub_fraction = c.hub_fraction;
    VeGraph base = gen::GeneratePowerLaw(Ctx(), config);
    PrintDataset(c.name, base);
    Interval lifetime = base.lifetime();
    Interval focus(lifetime.start,
                   lifetime.start + (lifetime.duration() * 2) / 3);
    std::string key = std::string("powerlaw/") + c.name;

    // A chain as a user might naively write it.
    Pipeline naive;
    naive.Coalesce()
        .WZoom(ExistsWindows(window))
        .Coalesce()
        .Convert(Representation::kVe)
        .AZoom(RandomGroupAZoom())
        .Coalesce()
        .Slice(focus);

    Pipeline::Hints hints;
    hints.attributes_stable = true;  // power-law vertices are single-state

    opt::Stats stats = TrainStats(base, key, window, focus);
    TGraph input = Prepared(key, base, Representation::kVe);
    opt::PlanContext context = opt::PlanContext::FromGraph(input);

    Pipeline rules = naive.Optimized(hints);
    Pipeline cost = naive.OptimizedWithCost(stats, hints, context);
    printf("# %s trained observations: %lld\n", c.name,
           static_cast<long long>(stats.TotalObservations()));
    printf("# %s naive plan:\n%s# %s rules plan:\n%s# %s cost plan:\n%s",
           c.name, naive.Explain().c_str(), c.name, rules.Explain().c_str(),
           c.name, cost.Explain().c_str());

    struct PlanCase {
      const char* variant;
      Pipeline plan;
    };
    PlanCase plans[] = {
        {"naive", naive}, {"rules", rules}, {"cost", cost}};
    for (PlanCase& p : plans) {
      std::string bench_name =
          std::string("pipeline/") + c.name + "/" + p.variant;
      Pipeline plan = p.plan;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [key, plan](benchmark::State& state) {
            TGraph graph = Prepared(key, VeGraph(), Representation::kVe);
            for (auto _ : state) {
              Result<TGraph> result = plan.Run(graph);
              TG_CHECK(result.ok());
              benchmark::DoNotOptimize(result->Materialize());
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
