// Figure 15: wZoom^T with fixed data size, varying the temporal window
// size, nodes=all / edges=all. Expected shape (paper): OG and OGC flat in
// the window size; VE slower for small windows (it copies each tuple once
// per overlapped window); RG slowest (reported only on WikiTalk in the
// paper).

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    std::vector<int64_t> windows;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, {2, 3, 6, 12, 24}},
      {"SNB", &SnbBase, {2, 3, 6, 12, 18}},
      {"NGrams", &NGramsBase, {5, 10, 25, 50}},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOgc, Representation::kOg, Representation::kVe,
          Representation::kRg}) {
      // Like the paper, report RG only for WikiTalk.
      if (rep == Representation::kRg &&
          std::string(c.name) != "WikiTalk") {
        continue;
      }
      for (int64_t window : c.windows) {
        WZoomSpec spec{WindowSpec::TimePoints(window), Quantifier::All(),
                       Quantifier::All(), {}, {}};
        std::string key = std::string(c.name) + "/full";
        std::string bench_name = std::string("wZoom/") + c.name + "/" +
                                 RepresentationName(rep) +
                                 "/window:" + std::to_string(window);
        VeGraph base = c.base();
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, base, rep, spec](benchmark::State& state) {
              TGraph graph = Prepared(key, base, rep);
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.WZoom(spec);
                TG_CHECK(zoomed.ok());
                benchmark::DoNotOptimize(zoomed->Materialize());
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
