#ifndef TGRAPH_BENCH_BENCH_UTIL_H_
#define TGRAPH_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>

#include "gen/generators.h"
#include "gen/stats.h"
#include "gen/transform.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tgraph/tgraph.h"

namespace tgraph::bench {

/// Opt-in benchmark observability, so BENCH_*.json trajectories become
/// stage-attributable without perturbing default timings:
///   TGRAPH_TRACE_OUT=<file>  enable tracing; at exit, write a Chrome
///                            trace and print the span summary ("# obs"
///                            comment lines, ignored by result parsers).
inline void InitBenchObs() {
  static bool initialized = [] {
    const char* trace_out = std::getenv("TGRAPH_TRACE_OUT");
    if (trace_out == nullptr || trace_out[0] == '\0') return true;
    obs::Tracer::Global().Enable();
    static std::string path = trace_out;
    std::atexit([] {
      obs::Tracer& tracer = obs::Tracer::Global();
      if (tracer.WriteChromeTrace(path)) {
        printf("# obs trace: %s (%zu spans)\n", path.c_str(),
               tracer.EventCount());
      }
      std::string summary = tracer.Summary();
      size_t start = 0;
      while (start < summary.size()) {
        size_t end = summary.find('\n', start);
        printf("# obs %s\n", summary.substr(start, end - start).c_str());
        if (end == std::string::npos) break;
        start = end + 1;
      }
    });
    return true;
  }();
  (void)initialized;
}

/// One shared execution context per benchmark binary.
inline dataflow::ExecutionContext* Ctx() {
  static auto* ctx = [] {
    InitBenchObs();
    return new dataflow::ExecutionContext();
  }();
  return ctx;
}

/// \brief Per-phase metric attribution: wraps one timed region, names it
/// with a span, and on destruction reports the dataflow metric deltas the
/// phase caused as benchmark counters (stages, shuffled records/bytes).
///
/// Usage inside a benchmark loop:
///   for (auto _ : state) {
///     PhaseMetrics phase("wzoom", &state);
///     ... timed work ...
///   }
class PhaseMetrics {
 public:
  PhaseMetrics(std::string phase, benchmark::State* state)
      : phase_(std::move(phase)),
        state_(state),
        span_(phase_, "bench"),
        before_(obs::MetricsRegistry::Global().Snapshot()) {}

  ~PhaseMetrics() {
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::Global().Snapshot().DeltaSince(before_);
    auto add = [&](const char* metric, const char* label) {
      auto it = delta.counters.find(metric);
      if (it == delta.counters.end() || it->second == 0) return;
      (*state_)
          .counters[phase_ + "." + label] += static_cast<double>(it->second);
    };
    add(obs::metric_names::kStages, "stages");
    add(obs::metric_names::kShuffleRecords, "shuffled_records");
    add(obs::metric_names::kShuffleBytes, "shuffled_bytes");
  }

 private:
  std::string phase_;
  benchmark::State* state_;
  obs::Span span_;
  obs::MetricsSnapshot before_;
};

/// Benchmark-scale stand-ins for the paper's datasets. The paper runs on a
/// 64-core cluster with up to 1.3B edges and a 30-minute timeout; these are
/// scaled so every figure regenerates in seconds on one machine while
/// keeping each dataset's evolution signature (growth-only vs churning,
/// attribute structure, evolution rate).

inline VeGraph WikiTalkBase() {
  static VeGraph* graph = [] {
    gen::WikiTalkConfig config;
    config.num_users = 8000;
    config.num_months = 60;
    config.events_per_user_month = 0.6;
    return new VeGraph(gen::GenerateWikiTalk(Ctx(), config));
  }();
  return *graph;
}

inline VeGraph SnbBase() {
  static VeGraph* graph = [] {
    gen::SnbConfig config;
    config.num_persons = 8000;
    config.num_months = 36;
    config.avg_friendships = 12;
    config.num_first_names = 500;
    return new VeGraph(gen::GenerateSnb(Ctx(), config));
  }();
  return *graph;
}

inline VeGraph NGramsBase() {
  static VeGraph* graph = [] {
    gen::NGramsConfig config;
    config.num_words = 6000;
    config.num_years = 100;
    config.appearances_per_year = 1800;
    return new VeGraph(gen::GenerateNGrams(Ctx(), config));
  }();
  return *graph;
}

/// Converts a (coalesced) VE graph into the requested representation,
/// memoizing per (pointer-identity is unavailable, so callers pass a cache
/// key). Preparation cost is outside the timed region, mirroring the
/// paper's "materialized in memory" starting point per representation.
inline TGraph Prepared(const std::string& key, const VeGraph& ve,
                       Representation rep) {
  static std::map<std::string, TGraph>* cache =
      new std::map<std::string, TGraph>();
  std::string full_key = key + "/" + RepresentationName(rep);
  auto it = cache->find(full_key);
  if (it == cache->end()) {
    TGraph as_rep = *TGraph::FromVe(ve, /*coalesced=*/true).As(rep);
    as_rep.Materialize();
    it = cache->emplace(full_key, std::move(as_rep)).first;
  }
  return it->second;
}

/// The aZoom^T specs the paper uses per dataset (Section 5.1: WikiTalk
/// groups by username, SNB by firstName, NGrams by word).
inline AZoomSpec WikiTalkAZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("name");
  spec.aggregator =
      MakeAggregator("account", "name", {{"entities", AggKind::kCount, ""}});
  return spec;
}

inline AZoomSpec SnbAZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("firstName");
  spec.aggregator = MakeAggregator("cohort", "firstName",
                                   {{"people", AggKind::kCount, ""}});
  return spec;
}

inline AZoomSpec NGramsAZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("word");
  spec.aggregator =
      MakeAggregator("term", "word", {{"entities", AggKind::kCount, ""}});
  return spec;
}

/// The synthetic group-id zoom of Figures 12 and 17.
inline AZoomSpec RandomGroupAZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator =
      MakeAggregator("cluster", "group", {{"members", AggKind::kCount, ""}});
  return spec;
}

/// Prints a dataset header line so benchmark output is self-describing.
inline void PrintDataset(const char* name, const VeGraph& graph) {
  printf("# %s: %s\n", name, gen::ComputeStats(graph).ToString().c_str());
}

}  // namespace tgraph::bench

#endif  // TGRAPH_BENCH_BENCH_UTIL_H_
