// Ablation (Section 4, "Data loading"): what the storage backend costs.
// Three legs per dataset:
//   text       — the v1 delta-varint columnar files, streamed and decoded
//   store-cold — tgraph-store v2, reopened (header/footer parse + mmap)
//                every iteration
//   store-warm — tgraph-store v2 through an already-open mmap reader,
//                the resident-server (tgraphd catalog) serving path
// Each leg loads the full graph and a narrow time range; ranged loads
// report the zone-map pushdown counters (groups scanned vs total). Also
// keeps the paper's original sort-order comparison for ranged text loads.
// Expected shape: v2 cold beats text by >3x (no varint decode, parallel
// partition scans); warm beats cold by the reopen cost; ranged loads scan
// a fraction of the groups.

#include <filesystem>

#include "bench/bench_util.h"
#include "storage/graph_io.h"
#include "storage/store_reader.h"

namespace {

using namespace tgraph;          // NOLINT
using namespace tgraph::bench;   // NOLINT
using namespace tgraph::storage; // NOLINT

std::string Dir(const char* dataset, const char* backend) {
  return (std::filesystem::temp_directory_path() /
          (std::string("tgz_bench_") + dataset + "_" + backend))
      .string();
}

void ReportPushdown(benchmark::State& state, const LoadMetrics& metrics) {
  state.counters["vertex_groups_scanned"] =
      static_cast<double>(metrics.vertex_groups_scanned);
  state.counters["vertex_groups_total"] =
      static_cast<double>(metrics.vertex_groups_total);
  state.counters["edge_groups_scanned"] =
      static_cast<double>(metrics.edge_groups_scanned);
  state.counters["edge_groups_total"] =
      static_cast<double>(metrics.edge_groups_total);
}

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
  };
  DatasetCase cases[] = {{"WikiTalk", &WikiTalkBase},
                         {"SNB", &SnbBase},
                         {"NGrams", &NGramsBase}};

  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    GraphWriteOptions write_options;
    write_options.row_group_size = 4096;
    TG_CHECK_OK(WriteVeGraph(c.base(), Dir(c.name, "text"), write_options));
    TG_CHECK_OK(WriteVeStore(c.base(), Dir(c.name, "store"), write_options));

    Interval lifetime = c.base().lifetime();
    TimePoint mid = (lifetime.start + lifetime.end) / 2;
    Interval narrow(mid, mid + 6);

    for (const char* mode : {"full", "range"}) {
      bool ranged = std::string(mode) == "range";
      std::optional<Interval> range =
          ranged ? std::optional<Interval>(narrow) : std::nullopt;

      // Leg 1: v1 text files, streamed.
      std::string text_dir = Dir(c.name, "text");
      benchmark::RegisterBenchmark(
          (std::string("load/") + c.name + "/text/" + mode).c_str(),
          [text_dir, range](benchmark::State& state) {
            LoadOptions load;
            load.time_range = range;
            LoadMetrics metrics;
            for (auto _ : state) {
              Result<VeGraph> g = LoadVeGraph(Ctx(), text_dir, load, &metrics);
              TG_CHECK(g.ok());
              benchmark::DoNotOptimize(g->NumEdgeRecords());
            }
            ReportPushdown(state, metrics);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);

      // Leg 2: v2 container, reopened every iteration.
      std::string store_dir = Dir(c.name, "store");
      benchmark::RegisterBenchmark(
          (std::string("load/") + c.name + "/store-cold/" + mode).c_str(),
          [store_dir, range](benchmark::State& state) {
            LoadOptions load;
            load.time_range = range;
            LoadMetrics metrics;
            for (auto _ : state) {
              Result<VeGraph> g = LoadVeGraph(Ctx(), store_dir, load, &metrics);
              TG_CHECK(g.ok());
              benchmark::DoNotOptimize(g->NumEdgeRecords());
            }
            ReportPushdown(state, metrics);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);

      // Leg 3: v2 through a shared, already-mapped reader.
      benchmark::RegisterBenchmark(
          (std::string("load/") + c.name + "/store-warm/" + mode).c_str(),
          [store_dir, range](benchmark::State& state) {
            Result<std::unique_ptr<StoreReader>> reader =
                StoreReader::Open(StorePath(store_dir));
            TG_CHECK(reader.ok());
            (*reader)->Prefetch();
            LoadOptions load;
            load.time_range = range;
            LoadMetrics metrics;
            for (auto _ : state) {
              Result<VeGraph> g =
                  LoadVeGraphFromStore(Ctx(), **reader, load, &metrics);
              TG_CHECK(g.ok());
              benchmark::DoNotOptimize(g->NumEdgeRecords());
            }
            ReportPushdown(state, metrics);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

    // The paper's sort-order leg: ranged text loads from a structurally
    // sorted copy, to keep the original ablation comparable.
    GraphWriteOptions structural = write_options;
    structural.sort_order = SortOrder::kStructuralLocality;
    TG_CHECK_OK(
        WriteVeGraph(c.base(), Dir(c.name, "text_structural"), structural));
    std::string structural_dir = Dir(c.name, "text_structural");
    benchmark::RegisterBenchmark(
        (std::string("load/") + c.name + "/text-structural/range").c_str(),
        [structural_dir, narrow](benchmark::State& state) {
          LoadOptions load;
          load.time_range = narrow;
          LoadMetrics metrics;
          for (auto _ : state) {
            Result<VeGraph> g =
                LoadVeGraph(Ctx(), structural_dir, load, &metrics);
            TG_CHECK(g.ok());
            benchmark::DoNotOptimize(g->NumEdgeRecords());
          }
          ReportPushdown(state, metrics);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
