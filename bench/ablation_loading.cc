// Ablation (Section 4, "Data loading"): the effect of the on-disk sort
// order on load time. The paper reports that RG loads ~30% faster from
// structurally sorted files (snapshot rows together) than from temporally
// sorted ones, and that time-ranged loads benefit from filter pushdown.
// Expected shape: structural sort beats temporal for RG and for ranged
// loads; pushdown scans a fraction of the row groups on sorted files.

#include <filesystem>

#include "bench/bench_util.h"
#include "storage/graph_io.h"

namespace {

using namespace tgraph;          // NOLINT
using namespace tgraph::bench;   // NOLINT
using namespace tgraph::storage; // NOLINT

std::string Dir(const char* dataset, SortOrder order) {
  return (std::filesystem::temp_directory_path() /
          (std::string("tgz_bench_") + dataset + "_" + SortOrderName(order)))
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
  };
  DatasetCase cases[] = {{"WikiTalk", &WikiTalkBase}, {"SNB", &SnbBase}};

  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (SortOrder order :
         {SortOrder::kTemporalLocality, SortOrder::kStructuralLocality}) {
      GraphWriteOptions write_options;
      write_options.sort_order = order;
      write_options.row_group_size = 4096;
      TG_CHECK_OK(WriteVeGraph(c.base(), Dir(c.name, order), write_options));

      for (const char* mode : {"full", "range"}) {
        for (const char* target : {"VE", "RG"}) {
          std::string bench_name = std::string("load/") + c.name + "/" +
                                   target + "/" + SortOrderName(order) + "/" +
                                   mode;
          std::string dir = Dir(c.name, order);
          bool ranged = std::string(mode) == "range";
          bool as_rg = std::string(target) == "RG";
          Interval lifetime = c.base().lifetime();
          benchmark::RegisterBenchmark(
              bench_name.c_str(),
              [dir, ranged, as_rg, lifetime](benchmark::State& state) {
                LoadOptions load;
                if (ranged) {
                  TimePoint mid = (lifetime.start + lifetime.end) / 2;
                  load.time_range = Interval(mid, mid + 6);
                }
                LoadMetrics metrics;
                for (auto _ : state) {
                  if (as_rg) {
                    Result<RgGraph> g = LoadRgGraph(Ctx(), dir, load, &metrics);
                    TG_CHECK(g.ok());
                    benchmark::DoNotOptimize(g->NumEdgeRecords());
                  } else {
                    Result<VeGraph> g = LoadVeGraph(Ctx(), dir, load, &metrics);
                    TG_CHECK(g.ok());
                    benchmark::DoNotOptimize(g->NumEdgeRecords());
                  }
                }
                state.counters["edge_groups_scanned"] =
                    static_cast<double>(metrics.edge_groups_scanned);
                state.counters["edge_groups_total"] =
                    static_cast<double>(metrics.edge_groups_total);
              })
              ->Unit(benchmark::kMillisecond)
              ->Iterations(1);
        }
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
