// Table 1 of the paper: the dataset summary (vertices, edges, snapshots,
// evolution rate). Regenerates the same columns for the benchmark-scale
// synthetic stand-ins, demonstrating that each generator reproduces its
// dataset's evolution signature: WikiTalk-like and NGrams-like have low
// edit similarity (paper: 14.4 and 16.6-18.2), SNB-like is growth-only
// with a high rate (paper: 89-91).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tgraph;        // NOLINT
  using namespace tgraph::bench; // NOLINT

  struct Row {
    const char* name;
    const char* paper;
    VeGraph graph;
  };
  Row rows[] = {
      {"WikiTalk-like", "2.9M/10.7M/179 snaps/ev 14.4", WikiTalkBase()},
      {"SNB-like", "65K-3.3M/1.9M-202M/36 snaps/ev 89-91", SnbBase()},
      {"NGrams-like", "28-48M/0.6-1.3B/287-328 snaps/ev 16.6-18.2",
       NGramsBase()},
  };

  printf("%-14s %10s %10s %12s %12s %7s %8s   %s\n", "dataset", "vertices",
         "edges", "v-records", "e-records", "snaps", "ev.rate",
         "paper (full scale)");
  for (Row& row : rows) {
    gen::DatasetStats stats = gen::ComputeStats(row.graph);
    printf("%-14s %10lld %10lld %12lld %12lld %7lld %8.1f   %s\n", row.name,
           static_cast<long long>(stats.num_vertices),
           static_cast<long long>(stats.num_edges),
           static_cast<long long>(stats.num_vertex_records),
           static_cast<long long>(stats.num_edge_records),
           static_cast<long long>(stats.num_snapshots), stats.evolution_rate,
           row.paper);
  }
  return 0;
}
