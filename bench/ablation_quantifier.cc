// Ablation (Section 5.2): the effect of the existence quantifier on
// wZoom^T. The paper notes that "all" quantifiers make wZoom^T slightly
// faster than "exists" because fewer nodes and edges are kept in the
// result. Expected shape: all <= most <= exists in runtime, with larger
// outputs down the list.

#include "bench/bench_util.h"

namespace {

using namespace tgraph;        // NOLINT
using namespace tgraph::bench; // NOLINT

}  // namespace

int main(int argc, char** argv) {
  struct DatasetCase {
    const char* name;
    VeGraph (*base)();
    int64_t window;
  };
  DatasetCase cases[] = {
      {"WikiTalk", &WikiTalkBase, 6},
      {"SNB", &SnbBase, 6},
      {"NGrams", &NGramsBase, 10},
  };
  struct QuantifierCase {
    const char* label;
    Quantifier quantifier;
  };
  const QuantifierCase quantifiers[] = {
      {"all", Quantifier::All()},
      {"most", Quantifier::Most()},
      {"at_least_0.25", Quantifier::AtLeast(0.25)},
      {"exists", Quantifier::Exists()},
  };
  for (DatasetCase& c : cases) {
    PrintDataset(c.name, c.base());
    for (Representation rep :
         {Representation::kOgc, Representation::kOg, Representation::kVe}) {
      for (const QuantifierCase& q : quantifiers) {
        WZoomSpec spec{WindowSpec::TimePoints(c.window), q.quantifier,
                       q.quantifier, {}, {}};
        std::string bench_name = std::string("wZoom/") + c.name + "/" +
                                 RepresentationName(rep) + "/" + q.label;
        std::string key = std::string(c.name) + "/full";
        VeGraph base = c.base();
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [key, base, rep, spec](benchmark::State& state) {
              TGraph graph = Prepared(key, base, rep);
              int64_t output_records = 0;
              for (auto _ : state) {
                Result<TGraph> zoomed = graph.WZoom(spec);
                TG_CHECK(zoomed.ok());
                output_records = zoomed->Materialize();
              }
              state.counters["output_records"] =
                  static_cast<double>(output_records);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
