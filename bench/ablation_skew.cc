// Ablation: skew-aware shuffle rebalancing on power-law inputs.
//
// groupBy throughput over edges keyed by source vertex, generated at
// Zipf exponent 0 (uniform control), 0.8 (moderate), and 1.2 (severe,
// plus a forced super-hub) — with rebalancing on vs. off. Reported per
// case:
//   * items_per_second — grouped records per second (wall clock);
//   * max_over_mean_pre  — max/mean partition size of the plain hash
//     layout (what the reduce stage would have seen);
//   * max_over_mean_post — max/mean of the layout actually executed.
// On a multi-core runner the reduce stage's wall clock tracks the max
// partition, so max_over_mean_post/pre bounds the achievable stage
// speedup; on a single-core runner only the (smaller) algorithmic
// effects show up in items_per_second. See DESIGN.md "Skew-aware
// shuffle rebalancing".

#include "bench/bench_util.h"

#include <utility>
#include <vector>

#include "dataflow/dataset.h"

namespace {

using namespace tgraph;         // NOLINT
using namespace tgraph::bench;  // NOLINT

using KV = std::pair<int64_t, int64_t>;

constexpr int kNumPartitions = 16;

/// Edges of a power-law graph keyed by source vertex — the canonical
/// skewed shuffle workload (all of the hub's edges share one key).
std::vector<KV> KeyedEdges(double zipf_exponent, double hub_fraction) {
  gen::PowerLawConfig config;
  config.num_vertices = 20000;
  config.num_edges = 300000;
  config.zipf_exponent = zipf_exponent;
  config.hub_fraction = hub_fraction;
  config.seed = 7;
  // Generation context is independent of the per-mode benchmark contexts.
  dataflow::ExecutionContext ctx;
  VeGraph g = gen::GeneratePowerLaw(&ctx, config);
  std::vector<KV> keyed;
  for (const VeEdge& e : g.edges().Collect()) {
    keyed.emplace_back(e.src, e.dst);
  }
  return keyed;
}

double MaxOverMean(const obs::HistogramSnapshot& h) {
  return h.count == 0 || h.sum == 0
             ? 0.0
             : static_cast<double>(h.max) / h.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  struct SkewCase {
    const char* name;
    double zipf_exponent;
    double hub_fraction;
  };
  // Exponent 0 with no hub is the uniform control: rebalancing must not
  // regress it (the sketch pass is its only cost).
  SkewCase cases[] = {
      {"zipf0.0", 0.0, 0.0},
      {"zipf0.8", 0.8, 0.1},
      {"zipf1.2", 1.2, 0.2},
  };
  for (const SkewCase& c : cases) {
    std::vector<KV> keyed = KeyedEdges(c.zipf_exponent, c.hub_fraction);
    for (bool rebalance : {false, true}) {
      std::string bench_name = std::string("groupBy/") + c.name + "/" +
                               (rebalance ? "rebalance" : "legacy");
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [keyed, rebalance](benchmark::State& state) {
            dataflow::ShuffleOptions shuffle;  // defaults: on, threshold 4
            shuffle.enable = rebalance;
            dataflow::ExecutionContext ctx(
                dataflow::ContextOptions{.shuffle = shuffle});
            auto source =
                dataflow::Dataset<KV>::FromVector(&ctx, keyed, kNumPartitions);
            // Materialize the source outside the timed region.
            int64_t n = source.Count();
            obs::MetricsSnapshot before =
                obs::MetricsRegistry::Global().Snapshot();
            int64_t groups = 0;
            for (auto _ : state) {
              groups = source.GroupByKey(kNumPartitions).Count();
              benchmark::DoNotOptimize(groups);
            }
            obs::MetricsSnapshot delta =
                obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
            state.SetItemsProcessed(n * static_cast<int64_t>(
                                            state.iterations()));
            state.counters["groups"] = static_cast<double>(groups);
            double pre = MaxOverMean(
                delta.histograms[obs::metric_names::kShufflePartitionSize]);
            // Without a fired plan the executed layout IS the hash layout.
            auto post = delta.histograms.find(
                obs::metric_names::kShufflePartitionSizeRebalanced);
            state.counters["max_over_mean_pre"] = pre;
            state.counters["max_over_mean_post"] =
                post != delta.histograms.end() && post->second.count > 0
                    ? MaxOverMean(post->second)
                    : pre;
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(5);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
