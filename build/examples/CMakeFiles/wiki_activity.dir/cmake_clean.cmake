file(REMOVE_RECURSE
  "CMakeFiles/wiki_activity.dir/wiki_activity.cpp.o"
  "CMakeFiles/wiki_activity.dir/wiki_activity.cpp.o.d"
  "wiki_activity"
  "wiki_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
