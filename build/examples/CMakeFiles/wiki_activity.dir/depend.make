# Empty dependencies file for wiki_activity.
# This may be replaced when dependencies are built.
