# Empty dependencies file for ngrams_decades.
# This may be replaced when dependencies are built.
