file(REMOVE_RECURSE
  "CMakeFiles/ngrams_decades.dir/ngrams_decades.cpp.o"
  "CMakeFiles/ngrams_decades.dir/ngrams_decades.cpp.o.d"
  "ngrams_decades"
  "ngrams_decades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngrams_decades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
