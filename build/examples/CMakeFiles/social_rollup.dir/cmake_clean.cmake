file(REMOVE_RECURSE
  "CMakeFiles/social_rollup.dir/social_rollup.cpp.o"
  "CMakeFiles/social_rollup.dir/social_rollup.cpp.o.d"
  "social_rollup"
  "social_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
