# Empty compiler generated dependencies file for social_rollup.
# This may be replaced when dependencies are built.
