# Empty dependencies file for school_collaboration.
# This may be replaced when dependencies are built.
