file(REMOVE_RECURSE
  "CMakeFiles/school_collaboration.dir/school_collaboration.cpp.o"
  "CMakeFiles/school_collaboration.dir/school_collaboration.cpp.o.d"
  "school_collaboration"
  "school_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
