file(REMOVE_RECURSE
  "CMakeFiles/tgz.dir/tgz.cc.o"
  "CMakeFiles/tgz.dir/tgz.cc.o.d"
  "tgz"
  "tgz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
