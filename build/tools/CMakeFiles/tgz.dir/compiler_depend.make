# Empty compiler generated dependencies file for tgz.
# This may be replaced when dependencies are built.
