file(REMOVE_RECURSE
  "CMakeFiles/fig14_wzoom_datasize.dir/fig14_wzoom_datasize.cc.o"
  "CMakeFiles/fig14_wzoom_datasize.dir/fig14_wzoom_datasize.cc.o.d"
  "fig14_wzoom_datasize"
  "fig14_wzoom_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_wzoom_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
