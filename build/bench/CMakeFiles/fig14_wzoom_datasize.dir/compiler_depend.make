# Empty compiler generated dependencies file for fig14_wzoom_datasize.
# This may be replaced when dependencies are built.
