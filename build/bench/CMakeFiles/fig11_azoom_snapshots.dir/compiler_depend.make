# Empty compiler generated dependencies file for fig11_azoom_snapshots.
# This may be replaced when dependencies are built.
