file(REMOVE_RECURSE
  "CMakeFiles/fig11_azoom_snapshots.dir/fig11_azoom_snapshots.cc.o"
  "CMakeFiles/fig11_azoom_snapshots.dir/fig11_azoom_snapshots.cc.o.d"
  "fig11_azoom_snapshots"
  "fig11_azoom_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_azoom_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
