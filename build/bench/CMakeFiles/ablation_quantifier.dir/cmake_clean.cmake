file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantifier.dir/ablation_quantifier.cc.o"
  "CMakeFiles/ablation_quantifier.dir/ablation_quantifier.cc.o.d"
  "ablation_quantifier"
  "ablation_quantifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
