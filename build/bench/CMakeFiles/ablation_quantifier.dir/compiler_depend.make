# Empty compiler generated dependencies file for ablation_quantifier.
# This may be replaced when dependencies are built.
