file(REMOVE_RECURSE
  "CMakeFiles/fig10_azoom_datasize.dir/fig10_azoom_datasize.cc.o"
  "CMakeFiles/fig10_azoom_datasize.dir/fig10_azoom_datasize.cc.o.d"
  "fig10_azoom_datasize"
  "fig10_azoom_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_azoom_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
