# Empty dependencies file for fig10_azoom_datasize.
# This may be replaced when dependencies are built.
