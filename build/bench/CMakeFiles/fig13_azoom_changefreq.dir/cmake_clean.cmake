file(REMOVE_RECURSE
  "CMakeFiles/fig13_azoom_changefreq.dir/fig13_azoom_changefreq.cc.o"
  "CMakeFiles/fig13_azoom_changefreq.dir/fig13_azoom_changefreq.cc.o.d"
  "fig13_azoom_changefreq"
  "fig13_azoom_changefreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_azoom_changefreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
