# Empty dependencies file for fig13_azoom_changefreq.
# This may be replaced when dependencies are built.
