file(REMOVE_RECURSE
  "CMakeFiles/fig17_chain_order.dir/fig17_chain_order.cc.o"
  "CMakeFiles/fig17_chain_order.dir/fig17_chain_order.cc.o.d"
  "fig17_chain_order"
  "fig17_chain_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_chain_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
