# Empty dependencies file for fig17_chain_order.
# This may be replaced when dependencies are built.
