file(REMOVE_RECURSE
  "CMakeFiles/fig12_azoom_groupby.dir/fig12_azoom_groupby.cc.o"
  "CMakeFiles/fig12_azoom_groupby.dir/fig12_azoom_groupby.cc.o.d"
  "fig12_azoom_groupby"
  "fig12_azoom_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_azoom_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
