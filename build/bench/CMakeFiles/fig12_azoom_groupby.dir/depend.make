# Empty dependencies file for fig12_azoom_groupby.
# This may be replaced when dependencies are built.
