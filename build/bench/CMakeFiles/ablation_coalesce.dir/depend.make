# Empty dependencies file for ablation_coalesce.
# This may be replaced when dependencies are built.
