file(REMOVE_RECURSE
  "CMakeFiles/ablation_coalesce.dir/ablation_coalesce.cc.o"
  "CMakeFiles/ablation_coalesce.dir/ablation_coalesce.cc.o.d"
  "ablation_coalesce"
  "ablation_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
