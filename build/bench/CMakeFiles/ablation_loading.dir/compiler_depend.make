# Empty compiler generated dependencies file for ablation_loading.
# This may be replaced when dependencies are built.
