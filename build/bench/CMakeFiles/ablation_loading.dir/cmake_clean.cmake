file(REMOVE_RECURSE
  "CMakeFiles/ablation_loading.dir/ablation_loading.cc.o"
  "CMakeFiles/ablation_loading.dir/ablation_loading.cc.o.d"
  "ablation_loading"
  "ablation_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
