file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimizer.dir/ablation_optimizer.cc.o"
  "CMakeFiles/ablation_optimizer.dir/ablation_optimizer.cc.o.d"
  "ablation_optimizer"
  "ablation_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
