# Empty dependencies file for ablation_optimizer.
# This may be replaced when dependencies are built.
