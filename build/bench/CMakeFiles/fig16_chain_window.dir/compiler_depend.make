# Empty compiler generated dependencies file for fig16_chain_window.
# This may be replaced when dependencies are built.
