file(REMOVE_RECURSE
  "CMakeFiles/fig15_wzoom_window.dir/fig15_wzoom_window.cc.o"
  "CMakeFiles/fig15_wzoom_window.dir/fig15_wzoom_window.cc.o.d"
  "fig15_wzoom_window"
  "fig15_wzoom_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_wzoom_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
