# Empty compiler generated dependencies file for fig15_wzoom_window.
# This may be replaced when dependencies are built.
