file(REMOVE_RECURSE
  "CMakeFiles/og_test.dir/og_test.cc.o"
  "CMakeFiles/og_test.dir/og_test.cc.o.d"
  "og_test"
  "og_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/og_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
