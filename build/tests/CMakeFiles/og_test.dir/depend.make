# Empty dependencies file for og_test.
# This may be replaced when dependencies are built.
