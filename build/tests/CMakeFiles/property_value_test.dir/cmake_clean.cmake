file(REMOVE_RECURSE
  "CMakeFiles/property_value_test.dir/property_value_test.cc.o"
  "CMakeFiles/property_value_test.dir/property_value_test.cc.o.d"
  "property_value_test"
  "property_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
