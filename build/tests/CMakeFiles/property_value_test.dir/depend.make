# Empty dependencies file for property_value_test.
# This may be replaced when dependencies are built.
