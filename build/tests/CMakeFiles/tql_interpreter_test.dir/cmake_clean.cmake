file(REMOVE_RECURSE
  "CMakeFiles/tql_interpreter_test.dir/tql_interpreter_test.cc.o"
  "CMakeFiles/tql_interpreter_test.dir/tql_interpreter_test.cc.o.d"
  "tql_interpreter_test"
  "tql_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
