# Empty dependencies file for tql_interpreter_test.
# This may be replaced when dependencies are built.
