file(REMOVE_RECURSE
  "CMakeFiles/ve_test.dir/ve_test.cc.o"
  "CMakeFiles/ve_test.dir/ve_test.cc.o.d"
  "ve_test"
  "ve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
