# Empty compiler generated dependencies file for ve_test.
# This may be replaced when dependencies are built.
