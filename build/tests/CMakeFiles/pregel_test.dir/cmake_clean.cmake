file(REMOVE_RECURSE
  "CMakeFiles/pregel_test.dir/pregel_test.cc.o"
  "CMakeFiles/pregel_test.dir/pregel_test.cc.o.d"
  "pregel_test"
  "pregel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
