# Empty dependencies file for rg_test.
# This may be replaced when dependencies are built.
