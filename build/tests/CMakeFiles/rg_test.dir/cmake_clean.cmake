file(REMOVE_RECURSE
  "CMakeFiles/rg_test.dir/rg_test.cc.o"
  "CMakeFiles/rg_test.dir/rg_test.cc.o.d"
  "rg_test"
  "rg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
