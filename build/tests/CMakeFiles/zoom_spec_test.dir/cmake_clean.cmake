file(REMOVE_RECURSE
  "CMakeFiles/zoom_spec_test.dir/zoom_spec_test.cc.o"
  "CMakeFiles/zoom_spec_test.dir/zoom_spec_test.cc.o.d"
  "zoom_spec_test"
  "zoom_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
