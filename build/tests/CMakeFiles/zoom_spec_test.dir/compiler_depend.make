# Empty compiler generated dependencies file for zoom_spec_test.
# This may be replaced when dependencies are built.
