# Empty dependencies file for azoom_test.
# This may be replaced when dependencies are built.
