file(REMOVE_RECURSE
  "CMakeFiles/azoom_test.dir/azoom_test.cc.o"
  "CMakeFiles/azoom_test.dir/azoom_test.cc.o.d"
  "azoom_test"
  "azoom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azoom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
