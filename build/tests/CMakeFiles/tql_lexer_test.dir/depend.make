# Empty dependencies file for tql_lexer_test.
# This may be replaced when dependencies are built.
