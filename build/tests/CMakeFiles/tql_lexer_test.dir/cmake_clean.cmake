file(REMOVE_RECURSE
  "CMakeFiles/tql_lexer_test.dir/tql_lexer_test.cc.o"
  "CMakeFiles/tql_lexer_test.dir/tql_lexer_test.cc.o.d"
  "tql_lexer_test"
  "tql_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
