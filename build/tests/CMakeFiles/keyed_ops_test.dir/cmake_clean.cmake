file(REMOVE_RECURSE
  "CMakeFiles/keyed_ops_test.dir/keyed_ops_test.cc.o"
  "CMakeFiles/keyed_ops_test.dir/keyed_ops_test.cc.o.d"
  "keyed_ops_test"
  "keyed_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
