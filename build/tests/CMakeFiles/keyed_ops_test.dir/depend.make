# Empty dependencies file for keyed_ops_test.
# This may be replaced when dependencies are built.
