file(REMOVE_RECURSE
  "CMakeFiles/tql_parser_test.dir/tql_parser_test.cc.o"
  "CMakeFiles/tql_parser_test.dir/tql_parser_test.cc.o.d"
  "tql_parser_test"
  "tql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
