# Empty compiler generated dependencies file for tql_parser_test.
# This may be replaced when dependencies are built.
