file(REMOVE_RECURSE
  "CMakeFiles/coalesce_test.dir/coalesce_test.cc.o"
  "CMakeFiles/coalesce_test.dir/coalesce_test.cc.o.d"
  "coalesce_test"
  "coalesce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
