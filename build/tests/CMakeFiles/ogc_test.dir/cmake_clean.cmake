file(REMOVE_RECURSE
  "CMakeFiles/ogc_test.dir/ogc_test.cc.o"
  "CMakeFiles/ogc_test.dir/ogc_test.cc.o.d"
  "ogc_test"
  "ogc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
