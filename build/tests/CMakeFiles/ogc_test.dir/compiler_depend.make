# Empty compiler generated dependencies file for ogc_test.
# This may be replaced when dependencies are built.
