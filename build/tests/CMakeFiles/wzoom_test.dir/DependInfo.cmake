
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wzoom_test.cc" "tests/CMakeFiles/wzoom_test.dir/wzoom_test.cc.o" "gcc" "tests/CMakeFiles/wzoom_test.dir/wzoom_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tql/CMakeFiles/tg_tql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/tg_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/tgraph/CMakeFiles/tg_tgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/tg_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/tg_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
