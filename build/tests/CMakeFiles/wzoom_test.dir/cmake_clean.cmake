file(REMOVE_RECURSE
  "CMakeFiles/wzoom_test.dir/wzoom_test.cc.o"
  "CMakeFiles/wzoom_test.dir/wzoom_test.cc.o.d"
  "wzoom_test"
  "wzoom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wzoom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
