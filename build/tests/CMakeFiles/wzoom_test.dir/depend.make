# Empty dependencies file for wzoom_test.
# This may be replaced when dependencies are built.
