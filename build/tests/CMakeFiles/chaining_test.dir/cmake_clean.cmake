file(REMOVE_RECURSE
  "CMakeFiles/chaining_test.dir/chaining_test.cc.o"
  "CMakeFiles/chaining_test.dir/chaining_test.cc.o.d"
  "chaining_test"
  "chaining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
