# Empty dependencies file for chaining_test.
# This may be replaced when dependencies are built.
