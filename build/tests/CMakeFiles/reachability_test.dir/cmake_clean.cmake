file(REMOVE_RECURSE
  "CMakeFiles/reachability_test.dir/reachability_test.cc.o"
  "CMakeFiles/reachability_test.dir/reachability_test.cc.o.d"
  "reachability_test"
  "reachability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
