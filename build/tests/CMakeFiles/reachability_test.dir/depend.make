# Empty dependencies file for reachability_test.
# This may be replaced when dependencies are built.
