# Empty compiler generated dependencies file for tg_common.
# This may be replaced when dependencies are built.
