file(REMOVE_RECURSE
  "libtg_common.a"
)
