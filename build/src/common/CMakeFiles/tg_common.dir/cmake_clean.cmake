file(REMOVE_RECURSE
  "CMakeFiles/tg_common.dir/bitset.cc.o"
  "CMakeFiles/tg_common.dir/bitset.cc.o.d"
  "CMakeFiles/tg_common.dir/interval.cc.o"
  "CMakeFiles/tg_common.dir/interval.cc.o.d"
  "CMakeFiles/tg_common.dir/properties.cc.o"
  "CMakeFiles/tg_common.dir/properties.cc.o.d"
  "CMakeFiles/tg_common.dir/property_value.cc.o"
  "CMakeFiles/tg_common.dir/property_value.cc.o.d"
  "CMakeFiles/tg_common.dir/status.cc.o"
  "CMakeFiles/tg_common.dir/status.cc.o.d"
  "libtg_common.a"
  "libtg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
