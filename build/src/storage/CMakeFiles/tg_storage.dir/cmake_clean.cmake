file(REMOVE_RECURSE
  "CMakeFiles/tg_storage.dir/graph_io.cc.o"
  "CMakeFiles/tg_storage.dir/graph_io.cc.o.d"
  "CMakeFiles/tg_storage.dir/predicate.cc.o"
  "CMakeFiles/tg_storage.dir/predicate.cc.o.d"
  "CMakeFiles/tg_storage.dir/serde.cc.o"
  "CMakeFiles/tg_storage.dir/serde.cc.o.d"
  "CMakeFiles/tg_storage.dir/table.cc.o"
  "CMakeFiles/tg_storage.dir/table.cc.o.d"
  "libtg_storage.a"
  "libtg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
