file(REMOVE_RECURSE
  "libtg_storage.a"
)
