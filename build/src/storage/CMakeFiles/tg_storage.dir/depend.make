# Empty dependencies file for tg_storage.
# This may be replaced when dependencies are built.
