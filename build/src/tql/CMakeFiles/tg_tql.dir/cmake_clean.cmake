file(REMOVE_RECURSE
  "CMakeFiles/tg_tql.dir/interpreter.cc.o"
  "CMakeFiles/tg_tql.dir/interpreter.cc.o.d"
  "CMakeFiles/tg_tql.dir/lexer.cc.o"
  "CMakeFiles/tg_tql.dir/lexer.cc.o.d"
  "CMakeFiles/tg_tql.dir/parser.cc.o"
  "CMakeFiles/tg_tql.dir/parser.cc.o.d"
  "libtg_tql.a"
  "libtg_tql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_tql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
