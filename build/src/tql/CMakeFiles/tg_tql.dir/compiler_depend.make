# Empty compiler generated dependencies file for tg_tql.
# This may be replaced when dependencies are built.
