file(REMOVE_RECURSE
  "libtg_tql.a"
)
