
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgraph/algebra.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/algebra.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/algebra.cc.o.d"
  "/root/repo/src/tgraph/analytics.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/analytics.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/analytics.cc.o.d"
  "/root/repo/src/tgraph/azoom.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/azoom.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/azoom.cc.o.d"
  "/root/repo/src/tgraph/builder.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/builder.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/builder.cc.o.d"
  "/root/repo/src/tgraph/coalesce.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/coalesce.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/coalesce.cc.o.d"
  "/root/repo/src/tgraph/convert.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/convert.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/convert.cc.o.d"
  "/root/repo/src/tgraph/og.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/og.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/og.cc.o.d"
  "/root/repo/src/tgraph/ogc.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/ogc.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/ogc.cc.o.d"
  "/root/repo/src/tgraph/pipeline.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/pipeline.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/pipeline.cc.o.d"
  "/root/repo/src/tgraph/reachability.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/reachability.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/reachability.cc.o.d"
  "/root/repo/src/tgraph/rg.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/rg.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/rg.cc.o.d"
  "/root/repo/src/tgraph/slice.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/slice.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/slice.cc.o.d"
  "/root/repo/src/tgraph/tgraph.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/tgraph.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/tgraph.cc.o.d"
  "/root/repo/src/tgraph/types.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/types.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/types.cc.o.d"
  "/root/repo/src/tgraph/validate.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/validate.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/validate.cc.o.d"
  "/root/repo/src/tgraph/ve.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/ve.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/ve.cc.o.d"
  "/root/repo/src/tgraph/window.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/window.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/window.cc.o.d"
  "/root/repo/src/tgraph/wzoom.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/wzoom.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/wzoom.cc.o.d"
  "/root/repo/src/tgraph/zoom_spec.cc" "src/tgraph/CMakeFiles/tg_tgraph.dir/zoom_spec.cc.o" "gcc" "src/tgraph/CMakeFiles/tg_tgraph.dir/zoom_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sg/CMakeFiles/tg_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/tg_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
