# Empty compiler generated dependencies file for tg_tgraph.
# This may be replaced when dependencies are built.
