file(REMOVE_RECURSE
  "libtg_tgraph.a"
)
