file(REMOVE_RECURSE
  "libtg_gen.a"
)
