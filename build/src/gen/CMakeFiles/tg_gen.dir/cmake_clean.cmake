file(REMOVE_RECURSE
  "CMakeFiles/tg_gen.dir/generators.cc.o"
  "CMakeFiles/tg_gen.dir/generators.cc.o.d"
  "CMakeFiles/tg_gen.dir/stats.cc.o"
  "CMakeFiles/tg_gen.dir/stats.cc.o.d"
  "CMakeFiles/tg_gen.dir/transform.cc.o"
  "CMakeFiles/tg_gen.dir/transform.cc.o.d"
  "libtg_gen.a"
  "libtg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
