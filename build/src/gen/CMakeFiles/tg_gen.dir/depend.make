# Empty dependencies file for tg_gen.
# This may be replaced when dependencies are built.
