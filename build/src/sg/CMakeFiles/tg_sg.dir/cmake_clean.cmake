file(REMOVE_RECURSE
  "CMakeFiles/tg_sg.dir/algorithms.cc.o"
  "CMakeFiles/tg_sg.dir/algorithms.cc.o.d"
  "CMakeFiles/tg_sg.dir/partition.cc.o"
  "CMakeFiles/tg_sg.dir/partition.cc.o.d"
  "CMakeFiles/tg_sg.dir/property_graph.cc.o"
  "CMakeFiles/tg_sg.dir/property_graph.cc.o.d"
  "libtg_sg.a"
  "libtg_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
