# Empty compiler generated dependencies file for tg_sg.
# This may be replaced when dependencies are built.
