
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sg/algorithms.cc" "src/sg/CMakeFiles/tg_sg.dir/algorithms.cc.o" "gcc" "src/sg/CMakeFiles/tg_sg.dir/algorithms.cc.o.d"
  "/root/repo/src/sg/partition.cc" "src/sg/CMakeFiles/tg_sg.dir/partition.cc.o" "gcc" "src/sg/CMakeFiles/tg_sg.dir/partition.cc.o.d"
  "/root/repo/src/sg/property_graph.cc" "src/sg/CMakeFiles/tg_sg.dir/property_graph.cc.o" "gcc" "src/sg/CMakeFiles/tg_sg.dir/property_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/tg_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
