file(REMOVE_RECURSE
  "libtg_sg.a"
)
