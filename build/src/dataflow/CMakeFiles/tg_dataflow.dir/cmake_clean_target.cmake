file(REMOVE_RECURSE
  "libtg_dataflow.a"
)
