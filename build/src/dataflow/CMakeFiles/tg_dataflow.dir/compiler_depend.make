# Empty compiler generated dependencies file for tg_dataflow.
# This may be replaced when dependencies are built.
