file(REMOVE_RECURSE
  "CMakeFiles/tg_dataflow.dir/context.cc.o"
  "CMakeFiles/tg_dataflow.dir/context.cc.o.d"
  "CMakeFiles/tg_dataflow.dir/thread_pool.cc.o"
  "CMakeFiles/tg_dataflow.dir/thread_pool.cc.o.d"
  "libtg_dataflow.a"
  "libtg_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
