#include "common/property_value.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(PropertyValueTest, TypesAndAccessors) {
  EXPECT_TRUE(PropertyValue(int64_t{5}).is_int());
  EXPECT_TRUE(PropertyValue(5).is_int());
  EXPECT_TRUE(PropertyValue(2.5).is_double());
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue("hi").is_string());
  EXPECT_EQ(PropertyValue(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(PropertyValue("abc").AsString(), "abc");
  EXPECT_TRUE(PropertyValue(true).AsBool());
}

TEST(PropertyValueTest, DefaultIsIntZero) {
  PropertyValue v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(PropertyValueTest, AsNumber) {
  EXPECT_DOUBLE_EQ(PropertyValue(3).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(PropertyValue(true).AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(PropertyValue("x").AsNumber(), 0.0);
}

TEST(PropertyValueTest, Equality) {
  EXPECT_EQ(PropertyValue(3), PropertyValue(3));
  EXPECT_NE(PropertyValue(3), PropertyValue(4));
  EXPECT_NE(PropertyValue(3), PropertyValue(3.0));  // typed equality
  EXPECT_EQ(PropertyValue("a"), PropertyValue(std::string("a")));
}

TEST(PropertyValueTest, OrderingWithinType) {
  EXPECT_LT(PropertyValue(1), PropertyValue(2));
  EXPECT_LT(PropertyValue(1.5), PropertyValue(2.5));
  EXPECT_LT(PropertyValue("a"), PropertyValue("b"));
  EXPECT_LT(PropertyValue(false), PropertyValue(true));
}

TEST(PropertyValueTest, OrderingAcrossTypesIsByTypeIndex) {
  // int < double < bool < string by variant index: total deterministic order.
  EXPECT_LT(PropertyValue(100), PropertyValue(0.5));
  EXPECT_LT(PropertyValue(0.5), PropertyValue(false));
  EXPECT_LT(PropertyValue(true), PropertyValue(""));
}

TEST(PropertyValueTest, HashDistinguishesTypeAndValue) {
  EXPECT_NE(PropertyValue(3).Hash(), PropertyValue(4).Hash());
  EXPECT_NE(PropertyValue(3).Hash(), PropertyValue(3.0).Hash());
  EXPECT_EQ(PropertyValue("abc").Hash(), PropertyValue("abc").Hash());
  EXPECT_NE(PropertyValue("abc").Hash(), PropertyValue("abd").Hash());
}

TEST(PropertyValueTest, ToString) {
  EXPECT_EQ(PropertyValue(42).ToString(), "42");
  EXPECT_EQ(PropertyValue("x").ToString(), "x");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(false).ToString(), "false");
}

}  // namespace
}  // namespace tgraph
