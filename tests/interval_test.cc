#include "common/interval.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(IntervalTest, EmptyAndDuration) {
  EXPECT_TRUE(Interval().empty());
  EXPECT_TRUE(Interval(5, 5).empty());
  EXPECT_TRUE(Interval(7, 3).empty());
  EXPECT_FALSE(Interval(3, 7).empty());
  EXPECT_EQ(Interval(3, 7).duration(), 4);
  EXPECT_EQ(Interval(7, 3).duration(), 0);
}

TEST(IntervalTest, ContainsPoint) {
  Interval i(2, 5);
  EXPECT_FALSE(i.Contains(1));
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(4));
  EXPECT_FALSE(i.Contains(5));  // closed-open
}

TEST(IntervalTest, ContainsInterval) {
  Interval i(2, 8);
  EXPECT_TRUE(i.Contains(Interval(2, 8)));
  EXPECT_TRUE(i.Contains(Interval(3, 5)));
  EXPECT_FALSE(i.Contains(Interval(1, 5)));
  EXPECT_FALSE(i.Contains(Interval(5, 9)));
  EXPECT_TRUE(i.Contains(Interval()));  // empty in anything
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(4, 8)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(5, 8)));  // meets, no overlap
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(6, 8)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval()));
}

TEST(IntervalTest, MeetsAndMergeable) {
  EXPECT_TRUE(Interval(1, 5).Meets(Interval(5, 8)));
  EXPECT_FALSE(Interval(1, 5).Meets(Interval(6, 8)));
  EXPECT_TRUE(Interval(1, 5).Mergeable(Interval(5, 8)));
  EXPECT_TRUE(Interval(1, 5).Mergeable(Interval(3, 8)));
  EXPECT_FALSE(Interval(1, 5).Mergeable(Interval(6, 8)));
  EXPECT_TRUE(Interval(1, 5).Mergeable(Interval()));
}

TEST(IntervalTest, IntersectAndMerge) {
  EXPECT_EQ(Interval(1, 5).Intersect(Interval(3, 8)), Interval(3, 5));
  EXPECT_TRUE(Interval(1, 5).Intersect(Interval(5, 8)).empty());
  EXPECT_EQ(Interval(1, 5).Merge(Interval(5, 8)), Interval(1, 8));
  EXPECT_EQ(Interval().Merge(Interval(2, 3)), Interval(2, 3));
  EXPECT_EQ(Interval(2, 3).Merge(Interval()), Interval(2, 3));
}

TEST(IntervalTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Interval(5, 5), Interval(9, 3));
  EXPECT_NE(Interval(1, 2), Interval(1, 3));
  EXPECT_EQ(Interval(1, 2), Interval(1, 2));
}

TEST(IntervalTest, Ordering) {
  EXPECT_LT(Interval(1, 5), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 5));
}

TEST(IntervalTest, Difference) {
  std::vector<Interval> out;
  IntervalDifference(Interval(1, 10), Interval(3, 5), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Interval(1, 3));
  EXPECT_EQ(out[1], Interval(5, 10));

  out.clear();
  IntervalDifference(Interval(1, 10), Interval(0, 20), &out);
  EXPECT_TRUE(out.empty());

  out.clear();
  IntervalDifference(Interval(1, 10), Interval(15, 20), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(1, 10));

  out.clear();
  IntervalDifference(Interval(1, 10), Interval(1, 4), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(4, 10));
}

TEST(IntervalTest, SplitIntervalsMatchesPaperExample) {
  // {[1,7), [2,5)} -> {[1,2), [2,5), [5,7)} (temporal splitters).
  std::vector<Interval> split = SplitIntervals({{1, 7}, {2, 5}});
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0], Interval(1, 2));
  EXPECT_EQ(split[1], Interval(2, 5));
  EXPECT_EQ(split[2], Interval(5, 7));
}

TEST(IntervalTest, SplitIntervalsIgnoresEmpty) {
  EXPECT_TRUE(SplitIntervals({}).empty());
  EXPECT_TRUE(SplitIntervals({{3, 3}}).empty());
  EXPECT_EQ(SplitIntervals({{1, 4}}).size(), 1u);
}

TEST(IntervalTest, CoalesceIntervals) {
  std::vector<Interval> result =
      CoalesceIntervals({{5, 7}, {1, 3}, {3, 5}, {10, 12}});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], Interval(1, 7));
  EXPECT_EQ(result[1], Interval(10, 12));
}

TEST(IntervalTest, CoalesceOverlapping) {
  std::vector<Interval> result = CoalesceIntervals({{1, 6}, {2, 4}, {5, 9}});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Interval(1, 9));
}

TEST(IntervalTest, CoveredDuration) {
  EXPECT_EQ(CoveredDuration({{1, 4}, {2, 6}, {8, 9}}), 6);
  EXPECT_EQ(CoveredDuration({}), 0);
}

}  // namespace
}  // namespace tgraph
