#include "tql/canonical.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tql/parser.h"

namespace tgraph::tql {
namespace {

std::string MustCanonicalize(const std::string& script) {
  Result<std::string> canonical = CanonicalizeScript(script);
  EXPECT_TRUE(canonical.ok()) << script << "\n" << canonical.status();
  return canonical.ok() ? *canonical : std::string();
}

TEST(CanonicalTest, SurfaceVariationsCollapse) {
  // Keyword case, whitespace, comments, and separators must not change
  // the cache key.
  const std::string base = "SET s = AZOOM g BY school";
  EXPECT_EQ(MustCanonicalize(base), MustCanonicalize("set s = azoom g by school"));
  EXPECT_EQ(MustCanonicalize(base),
            MustCanonicalize("  SET   s =\n\tAZOOM g BY school ;"));
  EXPECT_EQ(MustCanonicalize(base),
            MustCanonicalize("-- compute the rollup\nSET s = AZOOM g BY school;\n"));
}

TEST(CanonicalTest, DistinctPlansStayDistinct) {
  EXPECT_NE(MustCanonicalize("SET s = AZOOM g BY school"),
            MustCanonicalize("SET s = AZOOM g BY city"));
  EXPECT_NE(MustCanonicalize("SET s = WZOOM g WINDOW 3"),
            MustCanonicalize("SET s = WZOOM g WINDOW 4"));
  EXPECT_NE(MustCanonicalize("SET s = WZOOM g WINDOW 3"),
            MustCanonicalize("SET s = WZOOM g WINDOW 3 CHANGES"));
  EXPECT_NE(MustCanonicalize("LOAD '/data/wiki' AS g"),
            MustCanonicalize("LOAD '/data/wiki' FROM 3 TO 9 AS g"));
}

TEST(CanonicalTest, CanonicalFormIsAFixedPoint) {
  // The canonical text must itself parse, and canonicalize to itself —
  // otherwise cache keys would depend on how many times a script bounced
  // through the printer.
  const std::vector<std::string> scripts = {
      "LOAD '/data/wiki' AS g; LOAD '/data/wiki' FROM 3 TO 9 AS h",
      "GENERATE snb(scale=0.5, seed=7, months=24) AS g",
      "SET s = AZOOM g BY school "
      "AGGREGATE COUNT() AS students, SUM(w) AS total, AVG(w) AS mean "
      "TYPE 'school' EDGE TYPE 'collaborate'",
      "set s = azoom g by school",
      "SET a = WZOOM g WINDOW 3;"
      "SET b = WZOOM g WINDOW 5 CHANGES NODES ALL EDGES MOST;"
      "SET c = WZOOM g WINDOW 3 NODES ATLEAST 0.25 EDGES EXISTS "
      "RESOLVE school LAST, name FIRST",
      "SET a = SLICE g FROM 2 TO 8;"
      "SET b = SUBGRAPH g WHERE type = 'person' AND age >= 21 "
      "EDGES WHERE HAS(weight);"
      "SET c = COALESCE g;"
      "SET d = CONVERT g TO ogc;"
      "SET e = g",
      "STORE g TO '/out' SORT STRUCTURAL; INFO g; SNAPSHOT g AT 5 LIMIT 3; "
      "DROP g; LIST",
      "SET s = SUBGRAPH g WHERE name = 'O''Brien'",  // quote escaping
  };
  for (const std::string& script : scripts) {
    std::string once = MustCanonicalize(script);
    std::string twice = MustCanonicalize(once);
    EXPECT_EQ(once, twice) << "not a fixed point for: " << script;
  }
}

TEST(CanonicalTest, StoreMakesAScriptUncacheable) {
  Result<std::vector<Statement>> cacheable =
      Parse("LOAD '/data/wiki' AS g; SET s = AZOOM g BY school; INFO s");
  ASSERT_TRUE(cacheable.ok());
  EXPECT_TRUE(IsCacheableScript(*cacheable));

  Result<std::vector<Statement>> with_store =
      Parse("LOAD '/data/wiki' AS g; STORE g TO '/out'");
  ASSERT_TRUE(with_store.ok());
  EXPECT_FALSE(IsCacheableScript(*with_store));
}

TEST(CanonicalTest, ExplainAnalyzeCanonicalizesAndIsUncacheable) {
  // Canonical form prefixes the canonical inner statement, and it is a
  // fixed point like everything else.
  std::string once = MustCanonicalize("explain analyze set s = azoom g by school");
  EXPECT_EQ(once, "EXPLAIN ANALYZE SET s = AZOOM g BY school;\n");
  EXPECT_EQ(once, MustCanonicalize(once));

  // EXPLAIN ANALYZE must always re-execute (its output embeds measured
  // wall times), so it can never be served from the result cache.
  Result<std::vector<Statement>> script =
      Parse("LOAD '/data/wiki' AS g; EXPLAIN ANALYZE SET s = AZOOM g BY school");
  ASSERT_TRUE(script.ok());
  EXPECT_FALSE(IsCacheableScript(*script));
}

TEST(CanonicalTest, UnparsableScriptFailsCleanly) {
  EXPECT_FALSE(CanonicalizeScript("SET s = AZOOM").ok());
  EXPECT_FALSE(CanonicalizeScript("LOAD missing_quotes AS g").ok());
}

}  // namespace
}  // namespace tgraph::tql
