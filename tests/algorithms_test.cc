#include "sg/algorithms.h"

#include <gtest/gtest.h>

#include <map>

namespace tgraph::sg {
namespace {

using dataflow::Dataset;

dataflow::ExecutionContext* Ctx() {
  static auto* ctx = new dataflow::ExecutionContext(
      dataflow::ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

PropertyGraph MakeGraph(int64_t num_vertices,
                        std::vector<std::pair<VertexId, VertexId>> edge_list) {
  std::vector<Vertex> vertices;
  for (int64_t i = 0; i < num_vertices; ++i) {
    vertices.push_back(Vertex{i, Properties{{"type", "n"}}});
  }
  std::vector<Edge> edges;
  EdgeId eid = 0;
  for (auto& [src, dst] : edge_list) {
    edges.push_back(Edge{eid++, src, dst, {}});
  }
  return PropertyGraph(Dataset<Vertex>::FromVector(Ctx(), vertices),
                       Dataset<Edge>::FromVector(Ctx(), edges));
}

TEST(ConnectedComponentsTest, TwoComponents) {
  PropertyGraph g = MakeGraph(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}});
  std::map<VertexId, VertexId> label;
  for (auto& [v, c] : ConnectedComponents(g).Collect()) label[v] = c;
  ASSERT_EQ(label.size(), 7u);
  EXPECT_EQ(label[0], 0);
  EXPECT_EQ(label[1], 0);
  EXPECT_EQ(label[2], 0);
  EXPECT_EQ(label[3], 3);
  EXPECT_EQ(label[4], 3);
  EXPECT_EQ(label[5], 3);
  EXPECT_EQ(label[6], 6);  // isolated vertex forms its own component
}

TEST(ConnectedComponentsTest, DirectionIgnored) {
  PropertyGraph g = MakeGraph(4, {{3, 2}, {2, 1}, {1, 0}});
  for (auto& [v, c] : ConnectedComponents(g).Collect()) {
    EXPECT_EQ(c, 0) << "vertex " << v;
  }
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  PropertyGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::map<VertexId, double> rank;
  for (auto& [v, r] : PageRank(g, 20).Collect()) rank[v] = r;
  ASSERT_EQ(rank.size(), 4u);
  for (auto& [v, r] : rank) {
    EXPECT_NEAR(r, 1.0, 1e-6) << "vertex " << v;
  }
}

TEST(PageRankTest, SinkAttractsRank) {
  // Star into vertex 0: it must out-rank the leaves.
  PropertyGraph g = MakeGraph(4, {{1, 0}, {2, 0}, {3, 0}});
  std::map<VertexId, double> rank;
  for (auto& [v, r] : PageRank(g, 10).Collect()) rank[v] = r;
  EXPECT_GT(rank[0], rank[1]);
  EXPECT_GT(rank[0], rank[2]);
  EXPECT_NEAR(rank[1], rank[2], 1e-9);
  EXPECT_NEAR(rank[1], 0.15, 1e-9);  // leaves have no in-edges
}

TEST(TriangleCountTest, SingleTriangle) {
  PropertyGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  std::map<VertexId, int64_t> triangles;
  for (auto& [v, t] : TriangleCount(g).Collect()) triangles[v] = t;
  EXPECT_EQ(triangles[0], 1);
  EXPECT_EQ(triangles[1], 1);
  EXPECT_EQ(triangles[2], 1);
  EXPECT_EQ(triangles.count(3) != 0u ? triangles[3] : 0, 0);
}

TEST(TriangleCountTest, IgnoresDirectionDuplicatesAndSelfLoops) {
  PropertyGraph g = MakeGraph(
      3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}, {0, 0}});
  std::map<VertexId, int64_t> triangles;
  for (auto& [v, t] : TriangleCount(g).Collect()) triangles[v] = t;
  EXPECT_EQ(triangles[0], 1);
  EXPECT_EQ(triangles[1], 1);
  EXPECT_EQ(triangles[2], 1);
}

TEST(TriangleCountTest, TwoTrianglesSharingAnEdge) {
  PropertyGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 2}});
  std::map<VertexId, int64_t> triangles;
  for (auto& [v, t] : TriangleCount(g).Collect()) triangles[v] = t;
  EXPECT_EQ(triangles[0], 1);
  EXPECT_EQ(triangles[1], 2);
  EXPECT_EQ(triangles[2], 2);
  EXPECT_EQ(triangles[3], 1);
}

}  // namespace
}  // namespace tgraph::sg
