// Differential and behavioral tests for tgraph-store v3: an encoded v3
// container must load canonically identically to the raw v2 container of
// the same graph for every representation, with and without a temporal
// slice, with pushdown on and off; encodings must actually be chosen (and
// shrink the file); pruned partitions must never be decoded; and the
// decoded-segment cache must be shared, metered, and budget-checked.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/graph_io.h"
#include "storage/store_format.h"
#include "storage/store_reader.h"
#include "tests/test_util.h"
#include "tgraph/convert.h"

namespace tgraph::storage {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::CanonicalTopology;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::RandomTGraph;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

struct SliceCase {
  std::optional<Interval> range;
  bool pushdown;
};

std::vector<SliceCase> AllSliceCases() {
  return {{std::nullopt, true},
          {std::nullopt, false},
          {Interval(2, 7), true},
          {Interval(2, 7), false}};
}

GraphWriteOptions Versioned(uint32_t version, int64_t row_group_size = 64) {
  GraphWriteOptions options;
  options.store_version = version;
  options.row_group_size = row_group_size;
  return options;
}

int64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                     const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

/// Per-encoding segment counts of every table in a store file.
std::map<std::string, int> EncodingHistogram(const StoreReader& reader) {
  std::map<std::string, int> histogram;
  for (const TableMeta& table : reader.footer().tables) {
    for (const PartitionMeta& partition : table.partitions) {
      for (const SegmentMeta& segment : partition.segments) {
        ++histogram[SegmentEncodingName(segment.encoding)];
      }
    }
  }
  return histogram;
}

// --- differential identity: encoded v3 vs raw v2 --------------------------

TEST(StoreV3DifferentialTest, VeAndRgMatchRawV2) {
  VeGraph g = RandomTGraph(21, 60, 120, 30);
  std::string v2_dir = TempDir("v3diff_ve_v2");
  std::string v3_dir = TempDir("v3diff_ve_v3");
  TG_CHECK_OK(WriteVeStore(g, v2_dir, Versioned(2)));
  TG_CHECK_OK(WriteVeStore(g, v3_dir, Versioned(3)));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<VeGraph> from_v2 = LoadVeGraph(Ctx(), v2_dir, options);
    Result<VeGraph> from_v3 = LoadVeGraph(Ctx(), v3_dir, options);
    TG_CHECK_OK(from_v2.status());
    TG_CHECK_OK(from_v3.status());
    EXPECT_EQ(Canonical(*from_v3), Canonical(*from_v2))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
    Result<RgGraph> rg_v2 = LoadRgGraph(Ctx(), v2_dir, options);
    Result<RgGraph> rg_v3 = LoadRgGraph(Ctx(), v3_dir, options);
    TG_CHECK_OK(rg_v2.status());
    TG_CHECK_OK(rg_v3.status());
    EXPECT_EQ(Canonical(RgToVe(*rg_v3).Coalesce()),
              Canonical(RgToVe(*rg_v2).Coalesce()))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(v2_dir);
  std::filesystem::remove_all(v3_dir);
}

TEST(StoreV3DifferentialTest, OgMatchesRawV2) {
  OgGraph og = VeToOg(RandomTGraph(23, 40, 80, 25));
  std::string v2_dir = TempDir("v3diff_og_v2");
  std::string v3_dir = TempDir("v3diff_og_v3");
  TG_CHECK_OK(WriteOgStore(og, v2_dir, Versioned(2)));
  TG_CHECK_OK(WriteOgStore(og, v3_dir, Versioned(3)));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<OgGraph> from_v2 = LoadOgGraph(Ctx(), v2_dir, options);
    Result<OgGraph> from_v3 = LoadOgGraph(Ctx(), v3_dir, options);
    TG_CHECK_OK(from_v2.status());
    TG_CHECK_OK(from_v3.status());
    EXPECT_EQ(Canonical(OgToVe(*from_v3).Coalesce()),
              Canonical(OgToVe(*from_v2).Coalesce()))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(v2_dir);
  std::filesystem::remove_all(v3_dir);
}

TEST(StoreV3DifferentialTest, OgcMatchesRawV2) {
  OgcGraph ogc = VeToOgc(RandomTGraph(29, 40, 80, 25));
  std::string v2_dir = TempDir("v3diff_ogc_v2");
  std::string v3_dir = TempDir("v3diff_ogc_v3");
  TG_CHECK_OK(WriteOgcStore(ogc, v2_dir, Versioned(2)));
  TG_CHECK_OK(WriteOgcStore(ogc, v3_dir, Versioned(3)));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<OgcGraph> from_v2 = LoadOgcGraph(Ctx(), v2_dir, options);
    Result<OgcGraph> from_v3 = LoadOgcGraph(Ctx(), v3_dir, options);
    TG_CHECK_OK(from_v2.status());
    TG_CHECK_OK(from_v3.status());
    EXPECT_EQ(CanonicalTopology(OgcToVe(*from_v3)),
              CanonicalTopology(OgcToVe(*from_v2)))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(v2_dir);
  std::filesystem::remove_all(v3_dir);
}

// --- encoding selection ---------------------------------------------------

TEST(StoreV3Test, EncodingsAreChosenAndShrinkTheFile) {
  // Temporal data is the favorable case the encodings were built for:
  // sorted interval columns (delta/FOR), low-cardinality property blobs
  // (dict), and the writer's measured selection must never lose to raw.
  VeGraph g = RandomTGraph(31, 300, 600, 60);
  std::string v2_dir = TempDir("v3_size_v2");
  std::string v3_dir = TempDir("v3_size_v3");
  TG_CHECK_OK(WriteVeStore(g, v2_dir, Versioned(2, 16 * 1024)));
  TG_CHECK_OK(WriteVeStore(g, v3_dir, Versioned(3, 16 * 1024)));
  uintmax_t v2_size = std::filesystem::file_size(StorePath(v2_dir));
  uintmax_t v3_size = std::filesystem::file_size(StorePath(v3_dir));
  EXPECT_LT(v3_size, v2_size);

  Result<std::unique_ptr<StoreReader>> v2 = StoreReader::Open(StorePath(v2_dir));
  Result<std::unique_ptr<StoreReader>> v3 = StoreReader::Open(StorePath(v3_dir));
  TG_CHECK_OK(v2.status());
  TG_CHECK_OK(v3.status());
  EXPECT_EQ((*v2)->version(), kStoreVersion);
  EXPECT_EQ((*v3)->version(), kStoreVersionV3);

  // A v2 file is all-raw by construction.
  std::map<std::string, int> v2_histogram = EncodingHistogram(**v2);
  EXPECT_EQ(v2_histogram.size(), 1u);
  EXPECT_GT(v2_histogram["raw"], 0);
  // The v3 file must have picked at least one int64 encoding; double
  // columns (if any) always stay raw.
  std::map<std::string, int> v3_histogram = EncodingHistogram(**v3);
  EXPECT_GT(v3_histogram["delta_varint"] + v3_histogram["for"], 0);

  // Every encoded segment's descriptor must beat its raw layout — the
  // writer's mandatory-fallback rule, checked from the footer.
  for (const TableMeta& table : (*v3)->footer().tables) {
    for (const PartitionMeta& partition : table.partitions) {
      for (const SegmentMeta& segment : partition.segments) {
        if (segment.encoding != SegmentEncoding::kRaw) {
          EXPECT_LT(segment.byte_size, segment.plain_size);
        } else {
          EXPECT_EQ(segment.byte_size, segment.plain_size);
        }
      }
    }
  }
  std::filesystem::remove_all(v2_dir);
  std::filesystem::remove_all(v3_dir);
}

// --- selective decode and the decoded-segment cache -----------------------

TEST(StoreV3Test, PrunedPartitionsAreNeverDecoded) {
  VeGraph g = RandomTGraph(42, 200, 400, 100);
  std::string dir = TempDir("v3_pruned");
  GraphWriteOptions write_options = Versioned(3, 64);
  write_options.sort_order = SortOrder::kStructuralLocality;
  TG_CHECK_OK(WriteVeStore(g, dir, write_options));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  LoadOptions narrow;
  narrow.time_range = Interval(0, 5);

  obs::MetricsSnapshot before = registry.Snapshot();
  Result<VeGraph> sliced = LoadVeGraph(Ctx(), dir, narrow);
  TG_CHECK_OK(sliced.status());
  obs::MetricsSnapshot sliced_delta = registry.Snapshot().DeltaSince(before);

  before = registry.Snapshot();
  Result<VeGraph> full = LoadVeGraph(Ctx(), dir, {});
  TG_CHECK_OK(full.status());
  obs::MetricsSnapshot full_delta = registry.Snapshot().DeltaSince(before);

  namespace names = obs::metric_names;
  // The narrow slice pruned partitions; the full load pruned none.
  EXPECT_GT(CounterValue(sliced_delta, names::kStorePartitionsPruned), 0);
  EXPECT_EQ(CounterValue(full_delta, names::kStorePartitionsPruned), 0);
  // Pruned partitions are never decoded: the sliced load decoded strictly
  // fewer segments (each load opens its own reader, so nothing is shared
  // between the two deltas).
  int64_t sliced_decodes =
      CounterValue(sliced_delta, names::kStoreSegmentsDecoded);
  int64_t full_decodes = CounterValue(full_delta, names::kStoreSegmentsDecoded);
  EXPECT_GT(full_decodes, 0);
  EXPECT_LT(sliced_decodes, full_decodes);
  EXPECT_LT(CounterValue(sliced_delta, names::kStoreDecodedBytes),
            CounterValue(full_delta, names::kStoreDecodedBytes));
  std::filesystem::remove_all(dir);
}

TEST(StoreV3Test, DecodeCacheIsSharedAcrossLoadsOfOneReader) {
  VeGraph g = RandomTGraph(37, 80, 160, 40);
  std::string dir = TempDir("v3_cache");
  TG_CHECK_OK(WriteVeStore(g, dir, Versioned(3)));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  namespace names = obs::metric_names;
  Result<std::unique_ptr<StoreReader>> reader =
      StoreReader::Open(StorePath(dir));
  TG_CHECK_OK(reader.status());
  EXPECT_EQ((*reader)->decoded_cache_bytes(), 0u);

  obs::MetricsSnapshot before = registry.Snapshot();
  TG_CHECK_OK(LoadVeGraphFromStore(Ctx(), **reader, {}).status());
  obs::MetricsSnapshot first = registry.Snapshot().DeltaSince(before);
  EXPECT_GT(CounterValue(first, names::kStoreSegmentsDecoded), 0);
  uint64_t pinned = (*reader)->decoded_cache_bytes();
  EXPECT_GT(pinned, 0u);
  EXPECT_EQ(static_cast<int64_t>(pinned),
            CounterValue(first, names::kStoreDecodedBytes));

  // Second load off the same reader: zero new decodes, all cache hits,
  // no growth of the pinned bytes.
  before = registry.Snapshot();
  TG_CHECK_OK(LoadVeGraphFromStore(Ctx(), **reader, {}).status());
  obs::MetricsSnapshot second = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(CounterValue(second, names::kStoreSegmentsDecoded), 0);
  EXPECT_GT(CounterValue(second, names::kStoreDecodeCacheHits), 0);
  EXPECT_EQ((*reader)->decoded_cache_bytes(), pinned);

  // Destroying the reader releases its pinned bytes from the global gauge.
  int64_t gauge_before = registry.Snapshot().gauges.at(
      names::kStoreDecodeCacheBytes);
  reader->reset();
  int64_t gauge_after = registry.Snapshot().gauges.at(
      names::kStoreDecodeCacheBytes);
  EXPECT_EQ(gauge_before - gauge_after, static_cast<int64_t>(pinned));
  std::filesystem::remove_all(dir);
}

TEST(StoreV3Test, DecodeCacheBudgetOverflowIsCounted) {
  VeGraph g = RandomTGraph(41, 80, 160, 40);
  std::string dir = TempDir("v3_budget");
  TG_CHECK_OK(WriteVeStore(g, dir, Versioned(3)));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  namespace names = obs::metric_names;
  uint64_t saved = StoreDecodeCacheBudgetBytes();
  SetStoreDecodeCacheBudgetBytes(1);  // everything overflows
  obs::MetricsSnapshot before = registry.Snapshot();
  TG_CHECK_OK(LoadVeGraph(Ctx(), dir, {}).status());
  obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_GT(CounterValue(delta, names::kStoreDecodeCacheOverflows), 0);
  SetStoreDecodeCacheBudgetBytes(saved);
  EXPECT_EQ(StoreDecodeCacheBudgetBytes(), saved);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tgraph::storage
