#include "storage/store_format.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/hash.h"
#include "common/logging.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"

namespace tgraph::storage {
namespace {

std::string TempFile(const std::string& name) {
  std::string path = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove(path);
  return path;
}

SegmentMeta RawSegment(uint64_t offset, uint64_t byte_size, uint64_t checksum,
                       ColumnStats stats = {}) {
  SegmentMeta segment;
  segment.offset = offset;
  segment.byte_size = byte_size;
  segment.checksum = checksum;
  segment.plain_size = byte_size;  // kRaw invariant
  segment.stats = stats;
  return segment;
}

StoreFooter SampleFooter() {
  StoreFooter footer;
  footer.metadata = {{"lifetime_start", "0"}, {"lifetime_end", "10"},
                     {"representation", "ve"}};
  TableMeta table;
  table.name = "vertices";
  table.schema = Schema{{{"vid", ColumnType::kInt64},
                         {"props", ColumnType::kBinary}}};
  PartitionMeta partition;
  partition.num_rows = 3;
  partition.segments = {
      RawSegment(16, 24, 111, ColumnStats{true, -5, 9}),
      RawSegment(40, 32 + 7, 222),
  };
  table.partitions.push_back(partition);
  footer.tables.push_back(std::move(table));
  return footer;
}

/// SampleFooter with v3 encodings: the int64 column delta-encoded, the
/// binary column dictionary-encoded.
StoreFooter SampleFooterV3() {
  StoreFooter footer = SampleFooter();
  SegmentMeta& ints = footer.tables[0].partitions[0].segments[0];
  ints.encoding = SegmentEncoding::kDeltaVarint;
  ints.byte_size = 5;
  ints.plain_size = 24;
  SegmentMeta& bins = footer.tables[0].partitions[0].segments[1];
  bins.encoding = SegmentEncoding::kDictionary;
  bins.byte_size = 11;
  bins.plain_size = 39;
  return footer;
}

TEST(StoreFormatTest, FooterRoundTrips) {
  StoreFooter footer = SampleFooter();
  std::string encoded;
  EncodeStoreFooter(footer, kStoreVersion, &encoded);
  StoreFooter decoded;
  TG_CHECK_OK(DecodeStoreFooter(encoded, kStoreVersion, &decoded));
  ASSERT_EQ(decoded.tables.size(), 1u);
  EXPECT_EQ(decoded.tables[0].name, "vertices");
  EXPECT_TRUE(decoded.tables[0].schema == footer.tables[0].schema);
  ASSERT_EQ(decoded.tables[0].partitions.size(), 1u);
  const PartitionMeta& partition = decoded.tables[0].partitions[0];
  EXPECT_EQ(partition.num_rows, 3);
  ASSERT_EQ(partition.segments.size(), 2u);
  EXPECT_EQ(partition.segments[0].offset, 16u);
  EXPECT_EQ(partition.segments[0].checksum, 111u);
  EXPECT_TRUE(partition.segments[0].stats.has_int_stats);
  EXPECT_EQ(partition.segments[0].stats.min_int, -5);
  EXPECT_EQ(partition.segments[0].stats.max_int, 9);
  EXPECT_FALSE(partition.segments[1].stats.has_int_stats);
  EXPECT_EQ(decoded.metadata, footer.metadata);
  EXPECT_EQ(decoded.FindTable("vertices"), 0);
  EXPECT_EQ(decoded.FindTable("nope"), -1);
  ASSERT_NE(decoded.FindMetadata("representation"), nullptr);
  EXPECT_EQ(*decoded.FindMetadata("representation"), "ve");
  EXPECT_EQ(decoded.FindMetadata("nope"), nullptr);
}

TEST(StoreFormatTest, V3FooterRoundTripsEncodings) {
  StoreFooter footer = SampleFooterV3();
  std::string encoded;
  EncodeStoreFooter(footer, kStoreVersionV3, &encoded);
  StoreFooter decoded;
  TG_CHECK_OK(DecodeStoreFooter(encoded, kStoreVersionV3, &decoded));
  const PartitionMeta& partition = decoded.tables[0].partitions[0];
  ASSERT_EQ(partition.segments.size(), 2u);
  EXPECT_EQ(partition.segments[0].encoding, SegmentEncoding::kDeltaVarint);
  EXPECT_EQ(partition.segments[0].byte_size, 5u);
  EXPECT_EQ(partition.segments[0].plain_size, 24u);
  EXPECT_EQ(partition.segments[1].encoding, SegmentEncoding::kDictionary);
  EXPECT_EQ(partition.segments[1].plain_size, 39u);
  // Zone maps stay in the footer regardless of segment encoding.
  EXPECT_TRUE(partition.segments[0].stats.has_int_stats);
  EXPECT_EQ(partition.segments[0].stats.min_int, -5);
}

TEST(StoreFormatTest, V3RawSegmentsGetPlainSizeFromByteSize) {
  StoreFooter footer = SampleFooter();  // all segments kRaw
  std::string encoded;
  EncodeStoreFooter(footer, kStoreVersionV3, &encoded);
  StoreFooter decoded;
  TG_CHECK_OK(DecodeStoreFooter(encoded, kStoreVersionV3, &decoded));
  for (const SegmentMeta& segment :
       decoded.tables[0].partitions[0].segments) {
    EXPECT_EQ(segment.encoding, SegmentEncoding::kRaw);
    EXPECT_EQ(segment.plain_size, segment.byte_size);
  }
}

TEST(StoreFormatTest, DecodeRejectsUnknownEncodingTag) {
  // Serialize a v3 footer, then smash the first descriptor's encoding byte
  // (fixed position: it directly follows offset/byte_size/checksum).
  StoreFooter footer = SampleFooterV3();
  std::string with_tag;
  EncodeStoreFooter(footer, kStoreVersionV3, &with_tag);
  // Locate the first descriptor via its checksum fixed64 (111); the
  // encoding byte directly follows it.
  std::string checksum_bytes("\x6F\x00\x00\x00\x00\x00\x00\x00", 8);
  size_t checksum_pos = with_tag.find(checksum_bytes);
  ASSERT_NE(checksum_pos, std::string::npos);
  size_t encoding_pos = checksum_pos + 8;
  ASSERT_EQ(static_cast<uint8_t>(with_tag[encoding_pos]),
            static_cast<uint8_t>(SegmentEncoding::kDeltaVarint));
  with_tag[encoding_pos] = static_cast<char>(kStoreMaxSegmentEncoding + 1);
  StoreFooter decoded;
  Status status = DecodeStoreFooter(with_tag, kStoreVersionV3, &decoded);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("unknown encoding"), std::string::npos);
}

TEST(StoreFormatTest, DecodeRejectsInapplicableEncoding) {
  // Run-length on an int64 column: structurally parseable, semantically
  // illegal.
  StoreFooter footer = SampleFooterV3();
  SegmentMeta& ints = footer.tables[0].partitions[0].segments[0];
  ints.encoding = SegmentEncoding::kRunLength;
  std::string encoded;
  EncodeStoreFooter(footer, kStoreVersionV3, &encoded);
  StoreFooter decoded;
  Status status = DecodeStoreFooter(encoded, kStoreVersionV3, &decoded);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("incompatible column type"),
            std::string::npos);
}

TEST(StoreFormatTest, DecodeRejectsTruncationAtEveryPrefix) {
  std::string encoded;
  EncodeStoreFooter(SampleFooter(), kStoreVersion, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    StoreFooter decoded;
    EXPECT_FALSE(DecodeStoreFooter(std::string_view(encoded).substr(0, len),
                                   kStoreVersion, &decoded)
                     .ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(StoreFormatTest, V3DecodeRejectsTruncationAtEveryPrefix) {
  std::string encoded;
  EncodeStoreFooter(SampleFooterV3(), kStoreVersionV3, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    StoreFooter decoded;
    EXPECT_FALSE(DecodeStoreFooter(std::string_view(encoded).substr(0, len),
                                   kStoreVersionV3, &decoded)
                     .ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(StoreFormatTest, DecodeRejectsTrailingBytes) {
  std::string encoded;
  EncodeStoreFooter(SampleFooter(), kStoreVersion, &encoded);
  encoded.push_back('\0');
  StoreFooter decoded;
  EXPECT_TRUE(DecodeStoreFooter(encoded, kStoreVersion, &decoded).IsIoError());
}

TEST(StoreFormatTest, ValidateAcceptsWellFormedLayout) {
  StoreFooter footer = SampleFooter();
  TG_CHECK_OK(ValidateStoreLayout(footer, /*file_size=*/200, /*data_end=*/100));
}

TEST(StoreFormatTest, ValidateRejectsMisalignedSegment) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments[0].offset = 17;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsSegmentInHeader) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments[0].offset = 8;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsSegmentPastDataEnd) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments[1].offset = 96;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsOverlappingSegments) {
  StoreFooter footer = SampleFooter();
  // Segment 1 starts inside segment 0 ([16, 40)).
  footer.tables[0].partitions[0].segments[1].offset = 32;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsWrongInt64SegmentSize) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments[0].byte_size = 23;
  footer.tables[0].partitions[0].segments[0].plain_size = 23;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsShortBinaryOffsetsArray) {
  StoreFooter footer = SampleFooter();
  // Binary column of 3 rows needs at least (3 + 1) * 8 = 32 offset bytes.
  footer.tables[0].partitions[0].segments[1].byte_size = 31;
  footer.tables[0].partitions[0].segments[1].plain_size = 31;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsRawPlainSizeMismatch) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments[0].plain_size = 16;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateCapsEncodedPlainSize) {
  // An encoded segment whose claimed plain size exceeds the cap must be
  // rejected before the reader would allocate a decode buffer for it.
  StoreFooter footer = SampleFooterV3();
  footer.tables[0].partitions[0].segments[1].plain_size =
      kStoreMaxPlainSegmentSize + 1;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateAppliesRowSizeRulesToPlainSize) {
  // For encoded segments the per-type size rules constrain plain_size, not
  // the (smaller) on-disk byte_size.
  StoreFooter footer = SampleFooterV3();
  TG_CHECK_OK(ValidateStoreLayout(footer, 200, 100));
  footer.tables[0].partitions[0].segments[0].plain_size = 23;  // not 3 * 8
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsInapplicableEncoding) {
  StoreFooter footer = SampleFooterV3();
  footer.tables[0].partitions[0].segments[0].encoding =
      SegmentEncoding::kDictionary;  // dict on an int64 column
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsNegativeRowCount) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].num_rows = -1;
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsHugeRowCountWithoutOverflow) {
  StoreFooter footer = SampleFooter();
  // A row count whose rows * 8 would wrap around uint64 must be rejected,
  // not wrapped into a plausible size.
  footer.tables[0].partitions[0].num_rows =
      static_cast<int64_t>(uint64_t{1} << 61);
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

TEST(StoreFormatTest, ValidateRejectsSegmentCountSchemaMismatch) {
  StoreFooter footer = SampleFooter();
  footer.tables[0].partitions[0].segments.pop_back();
  EXPECT_TRUE(ValidateStoreLayout(footer, 200, 100).IsIoError());
}

// --- writer/reader round trip at the batch level ---------------------------

RecordBatch SampleBatch(int64_t base, int64_t rows) {
  RecordBatch batch;
  batch.schema = Schema{{{"id", ColumnType::kInt64},
                         {"score", ColumnType::kDouble},
                         {"flag", ColumnType::kBool},
                         {"name", ColumnType::kBinary}}};
  batch.columns.resize(4);
  for (int64_t i = 0; i < rows; ++i) {
    batch.columns[0].ints.push_back(base + i);
    batch.columns[1].doubles.push_back(0.5 * static_cast<double>(i));
    batch.columns[2].bools.push_back(i % 3 == 0 ? 1 : 0);
    batch.columns[3].binaries.push_back(i % 5 == 0
                                            ? std::string()
                                            : "name-" + std::to_string(i));
  }
  batch.num_rows = rows;
  return batch;
}

TEST(StoreWriterReaderTest, RoundTripsAllColumnTypes) {
  std::string path = TempFile("store_roundtrip.tgs");
  StoreWriterOptions options;
  options.partition_rows = 16;  // force several partitions
  options.metadata = {{"representation", "test"}};
  auto writer = StoreWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  int t = (*writer)->AddTable("rows", SampleBatch(0, 0).schema);
  TG_CHECK_OK((*writer)->Append(t, SampleBatch(0, 50)));
  TG_CHECK_OK((*writer)->Close());

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->FindTable("rows"), 0);
  EXPECT_EQ((*reader)->TableRows(0), 50);
  ASSERT_NE((*reader)->FindMetadata("representation"), nullptr);
  EXPECT_EQ(*(*reader)->FindMetadata("representation"), "test");
  const TableMeta& table = (*reader)->table(0);
  ASSERT_EQ(table.partitions.size(), 4u);  // 16 + 16 + 16 + 2
  EXPECT_EQ(table.partitions[3].num_rows, 2);

  int64_t row = 0;
  for (size_t p = 0; p < table.partitions.size(); ++p) {
    auto ids = (*reader)->Int64Column(0, p, 0);
    auto scores = (*reader)->DoubleColumn(0, p, 1);
    auto flags = (*reader)->BoolColumn(0, p, 2);
    auto names = (*reader)->BinaryColumn(0, p, 3);
    ASSERT_TRUE(ids.ok());
    ASSERT_TRUE(scores.ok());
    ASSERT_TRUE(flags.ok());
    ASSERT_TRUE(names.ok());
    for (size_t i = 0; i < ids->size(); ++i, ++row) {
      EXPECT_EQ((*ids)[i], row);
      EXPECT_EQ((*scores)[i], 0.5 * static_cast<double>(row));
      EXPECT_EQ((*flags)[i], row % 3 == 0 ? 1 : 0);
      std::string expected =
          row % 5 == 0 ? std::string() : "name-" + std::to_string(row);
      EXPECT_EQ(names->Value(i), expected);
    }
    // Zone maps cover exactly the partition's id range.
    const SegmentMeta& ids_segment = table.partitions[p].segments[0];
    ASSERT_TRUE(ids_segment.stats.has_int_stats);
    EXPECT_EQ(ids_segment.stats.min_int, (*ids)[0]);
    EXPECT_EQ(ids_segment.stats.max_int, (*ids)[ids->size() - 1]);
  }
  EXPECT_EQ(row, 50);
}

TEST(StoreWriterReaderTest, SegmentsAreAlignedAndZeroCopy) {
  std::string path = TempFile("store_aligned.tgs");
  auto writer = StoreWriter::Open(path, {});
  ASSERT_TRUE(writer.ok());
  int t = (*writer)->AddTable("rows", SampleBatch(0, 0).schema);
  TG_CHECK_OK((*writer)->Append(t, SampleBatch(7, 9)));
  TG_CHECK_OK((*writer)->Close());

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (const SegmentMeta& segment : (*reader)->table(0).partitions[0].segments) {
    EXPECT_EQ(segment.offset % kStoreSegmentAlignment, 0u);
  }
  // The int64 view points into the mapping itself — no copy was made.
  auto ids = (*reader)->Int64Column(0, 0, 0);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ids->data()) % alignof(int64_t), 0u);
  EXPECT_EQ((*ids)[0], 7);
}

TEST(StoreWriterReaderTest, EmptyTableRoundTrips) {
  std::string path = TempFile("store_empty.tgs");
  auto writer = StoreWriter::Open(path, {});
  ASSERT_TRUE(writer.ok());
  (*writer)->AddTable("rows", SampleBatch(0, 0).schema);
  TG_CHECK_OK((*writer)->Close());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->TableRows(0), 0);
  EXPECT_TRUE((*reader)->table(0).partitions.empty());
}

TEST(StoreWriterReaderTest, TypeMismatchIsInvalidArgument) {
  std::string path = TempFile("store_typed.tgs");
  auto writer = StoreWriter::Open(path, {});
  ASSERT_TRUE(writer.ok());
  int t = (*writer)->AddTable("rows", SampleBatch(0, 0).schema);
  TG_CHECK_OK((*writer)->Append(t, SampleBatch(0, 3)));
  TG_CHECK_OK((*writer)->Close());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE((*reader)->Int64Column(0, 0, 1).ok());   // double column
  EXPECT_FALSE((*reader)->BinaryColumn(0, 0, 0).ok());  // int column
  EXPECT_FALSE((*reader)->Int64Column(0, 1, 0).ok());   // no partition 1
  EXPECT_FALSE((*reader)->Int64Column(1, 0, 0).ok());   // no table 1
}

TEST(StoreWriterReaderTest, WriterRejectsSchemaMismatch) {
  std::string path = TempFile("store_mismatch.tgs");
  auto writer = StoreWriter::Open(path, {});
  ASSERT_TRUE(writer.ok());
  int t = (*writer)->AddTable("rows", SampleBatch(0, 0).schema);
  RecordBatch wrong;
  wrong.schema = Schema{{{"x", ColumnType::kInt64}}};
  wrong.columns.resize(1);
  EXPECT_FALSE((*writer)->Append(t, wrong).ok());
  EXPECT_FALSE((*writer)->Append(7, SampleBatch(0, 1)).ok());
}

}  // namespace
}  // namespace tgraph::storage
