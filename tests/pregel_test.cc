#include "sg/pregel.h"

#include <gtest/gtest.h>

#include <map>

#include "sg/property_graph.h"

namespace tgraph::sg {
namespace {

using dataflow::Dataset;

dataflow::ExecutionContext* Ctx() {
  static auto* ctx = new dataflow::ExecutionContext(
      dataflow::ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

Dataset<Edge> Chain(int64_t n) {
  std::vector<Edge> edges;
  for (int64_t i = 0; i + 1 < n; ++i) {
    edges.push_back(Edge{i, i, i + 1, {}});
  }
  return Dataset<Edge>::FromVector(Ctx(), edges);
}

Dataset<std::pair<VertexId, int64_t>> States(int64_t n, int64_t value) {
  std::vector<std::pair<VertexId, int64_t>> states;
  for (int64_t i = 0; i < n; ++i) states.emplace_back(i, value);
  return Dataset<std::pair<VertexId, int64_t>>::FromVector(Ctx(), states);
}

TEST(PregelTest, PropagatesMaxAlongChain) {
  // State = max vid seen; messages flow src -> dst along the chain.
  auto result = RunPregel<int64_t, int64_t>(
      States(5, 0).Map([](const std::pair<VertexId, int64_t>& kv) {
        return std::pair<VertexId, int64_t>(kv.first, kv.first);
      }),
      Chain(5),
      /*initial_message=*/int64_t{-1},
      [](VertexId, const int64_t& state, const int64_t& msg) {
        return std::max(state, msg);
      },
      [](const PregelTriplet<int64_t>& t,
         std::vector<std::pair<VertexId, int64_t>>* out) {
        if (t.src_state > t.dst_state) {
          out->emplace_back(t.edge.dst, t.src_state);
        }
      },
      [](const int64_t& a, const int64_t& b) { return std::max(a, b); });
  std::map<VertexId, int64_t> states;
  for (auto& [v, s] : result.Collect()) states[v] = s;
  // Along 0->1->2->3->4 the max propagating forward is the own prefix max,
  // i.e. each vertex keeps its own vid (vid is the max of its ancestors).
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(states[i], i);
}

TEST(PregelTest, HopCountReachesAllVertices) {
  // Distance from vertex 0 along the chain.
  const int64_t kInf = 1 << 20;
  auto initial = States(6, 0).Map([](const std::pair<VertexId, int64_t>& kv) {
    return std::pair<VertexId, int64_t>(kv.first,
                                        kv.first == 0 ? 0 : (1 << 20));
  });
  auto result = RunPregel<int64_t, int64_t>(
      initial, Chain(6), kInf,
      [](VertexId, const int64_t& state, const int64_t& msg) {
        return std::min(state, msg);
      },
      [kInf](const PregelTriplet<int64_t>& t,
             std::vector<std::pair<VertexId, int64_t>>* out) {
        if (t.src_state < kInf && t.src_state + 1 < t.dst_state) {
          out->emplace_back(t.edge.dst, t.src_state + 1);
        }
      },
      [](const int64_t& a, const int64_t& b) { return std::min(a, b); });
  std::map<VertexId, int64_t> distance;
  for (auto& [v, s] : result.Collect()) distance[v] = s;
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(distance[i], i);
}

TEST(PregelTest, StopsWhenNoMessages) {
  // A send function that never sends: only superstep 0 runs.
  int64_t calls = 0;
  auto result = RunPregel<int64_t, int64_t>(
      States(3, 7), Chain(3), int64_t{1},
      [](VertexId, const int64_t& state, const int64_t& msg) {
        return state + msg;
      },
      [](const PregelTriplet<int64_t>&,
         std::vector<std::pair<VertexId, int64_t>>*) {},
      [](const int64_t& a, const int64_t&) { return a; });
  (void)calls;
  for (auto& [v, s] : result.Collect()) {
    EXPECT_EQ(s, 8);  // 7 + initial message 1, once
  }
}

TEST(PregelTest, RespectsMaxIterations) {
  // An infinite ping along a self-reinforcing chain, cut by max_iterations.
  PregelOptions options;
  options.max_iterations = 3;
  auto result = RunPregel<int64_t, int64_t>(
      States(2, 0),
      Dataset<Edge>::FromVector(Ctx(), {Edge{0, 0, 1, {}}, Edge{1, 1, 0, {}}}),
      int64_t{0},
      [](VertexId, const int64_t& state, const int64_t&) { return state + 1; },
      [](const PregelTriplet<int64_t>& t,
         std::vector<std::pair<VertexId, int64_t>>* out) {
        out->emplace_back(t.edge.dst, t.src_state);
      },
      [](const int64_t& a, const int64_t&) { return a; }, options);
  for (auto& [v, s] : result.Collect()) {
    EXPECT_EQ(s, 4);  // superstep 0 + 3 iterations
  }
}

TEST(PregelTest, MessagesToUnknownVerticesAreDropped) {
  auto result = RunPregel<int64_t, int64_t>(
      States(2, 0),
      Dataset<Edge>::FromVector(Ctx(), {Edge{0, 0, 1, {}}}), int64_t{0},
      [](VertexId, const int64_t& state, const int64_t& msg) {
        return state + msg;
      },
      [](const PregelTriplet<int64_t>&,
         std::vector<std::pair<VertexId, int64_t>>* out) {
        out->emplace_back(999, 1);  // no such vertex
      },
      [](const int64_t& a, const int64_t& b) { return a + b; });
  EXPECT_EQ(result.Count(), 2);
  for (auto& [v, s] : result.Collect()) {
    EXPECT_LT(v, 2);
    EXPECT_EQ(s, 0);
  }
}

}  // namespace
}  // namespace tgraph::sg
