#include "tgraph/builder.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

TEST(BuilderTest, RebuildsFigure1FromEvents) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 1, Properties{{"type", "person"}, {"school", "MIT"}})
      .RemoveVertex(1, 7)
      .AddVertex(2, 2, Properties{{"type", "person"}})
      .SetVertexProperty(2, 5, "school", "CMU")
      .RemoveVertex(2, 9)
      .AddVertex(3, 1, Properties{{"type", "person"}, {"school", "MIT"}})
      .RemoveVertex(3, 9)
      .AddEdge(1, 1, 2, 2, Properties{{"type", "co-author"}})
      .RemoveEdge(1, 7)
      .AddEdge(2, 2, 3, 7, Properties{{"type", "co-author"}})
      .RemoveEdge(2, 9);
  Result<VeGraph> graph = builder.Finish(9);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(Canonical(*graph), Canonical(Figure1()));
  TG_CHECK_OK(ValidateVe(*graph));
  TG_CHECK_OK(CheckCoalescedVe(*graph));
}

TEST(BuilderTest, OpenEntitiesCloseAtEndOfTime) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 3, Properties{{"type", "n"}});
  Result<VeGraph> graph = builder.Finish(10);
  ASSERT_TRUE(graph.ok());
  std::vector<VeVertex> vertices = graph->vertices().Collect();
  ASSERT_EQ(vertices.size(), 1u);
  EXPECT_EQ(vertices[0].interval, Interval(3, 10));
}

TEST(BuilderTest, ReappearingVertex) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}, {"era", 1}})
      .RemoveVertex(1, 4)
      .AddVertex(1, 6, Properties{{"type", "n"}, {"era", 2}});
  Result<VeGraph> graph = builder.Finish(10);
  ASSERT_TRUE(graph.ok());
  std::map<Interval, int64_t> eras;
  for (const VeVertex& v : graph->vertices().Collect()) {
    eras[v.interval] = v.properties.Get("era")->AsInt();
  }
  ASSERT_EQ(eras.size(), 2u);
  EXPECT_EQ(eras[Interval(0, 4)], 1);
  EXPECT_EQ(eras[Interval(6, 10)], 2);
}

TEST(BuilderTest, PropertyChangeSplitsState) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}, {"v", 1}})
      .SetVertexProperty(1, 3, "v", 2)
      .SetVertexProperty(1, 6, "v", 2)   // no-op: same value
      .SetVertexProperty(1, 8, "w", 5);  // new attribute
  Result<VeGraph> graph = builder.Finish(12);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumVertexRecords(), 3);  // [0,3), [3,8), [8,12)
  TG_CHECK_OK(CheckCoalescedVe(*graph));
}

TEST(BuilderTest, RemovingVertexEndsIncidentEdges) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .RemoveVertex(2, 5)
      .AddEdge(9, 1, 2, 1, Properties{{"type", "e"}});  // never removed
  Result<VeGraph> graph = builder.Finish(10);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::vector<VeEdge> edges = graph->edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].interval, Interval(1, 5));  // clipped at the removal
  TG_CHECK_OK(ValidateVe(*graph));
}

TEST(BuilderTest, EdgePropertyChanges) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 1, Properties{{"type", "e"}, {"w", 1}})
      .SetEdgeProperty(9, 4, "w", 7)
      .RemoveEdge(9, 8);
  Result<VeGraph> graph = builder.Finish(10);
  ASSERT_TRUE(graph.ok());
  std::map<Interval, int64_t> weights;
  for (const VeEdge& e : graph->edges().Collect()) {
    weights[e.interval] = e.properties.Get("w")->AsInt();
  }
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_EQ(weights[Interval(1, 4)], 1);
  EXPECT_EQ(weights[Interval(4, 8)], 7);
}

TEST(BuilderTest, RejectsDoubleAdd) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(1, 3, Properties{{"type", "n"}});
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsRemoveWhileAbsent) {
  TGraphBuilder builder(Ctx());
  builder.RemoveVertex(1, 3);
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsSetOnDeadEntity) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .RemoveVertex(1, 2)
      .SetVertexProperty(1, 5, "x", 1);
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsEdgeSetAfterEndpointRemoval) {
  // A vertex removal ends incident edges *permanently*: even though a
  // property split leaves history items past the removal's item, a later
  // set must not resurrect the edge — the same judgment a replay from a
  // snapshot compacted between the removal and the set produces.
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 0, Properties{{"type", "e"}, {"w", 1}})
      .SetEdgeProperty(9, 5, "w", 2)  // splits the lifetime into items
      .RemoveVertex(2, 10)            // permanently ends the edge
      .AddVertex(2, 20, Properties{{"type", "n"}})  // endpoint returns
      .SetEdgeProperty(9, 50, "w", 3);
  EXPECT_TRUE(builder.Finish(100).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsEdgeRemoveAfterEndpointRemoval) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 0, Properties{{"type", "e"}})
      .RemoveVertex(2, 10)  // the edge already ended here
      .AddVertex(2, 20, Properties{{"type", "n"}})
      .RemoveEdge(9, 50);
  EXPECT_TRUE(builder.Finish(100).status().IsInvalidArgument());
}

TEST(BuilderTest, EdgeReaddedAfterEndpointReturnStartsNewLifetime) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 0, Properties{{"type", "e"}, {"era", 1}})
      .RemoveVertex(2, 10)  // implicitly ends era 1
      .AddVertex(2, 20, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 30, Properties{{"type", "e"}, {"era", 2}});
  Result<VeGraph> graph = builder.Finish(100);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::map<Interval, int64_t> eras;
  for (const VeEdge& e : graph->edges().Collect()) {
    eras[e.interval] = e.properties.Get("era")->AsInt();
  }
  ASSERT_EQ(eras.size(), 2u);
  EXPECT_EQ(eras[Interval(0, 10)], 1);
  EXPECT_EQ(eras[Interval(30, 100)], 2);
  TG_CHECK_OK(ValidateVe(*graph));
}

TEST(BuilderTest, RejectsEdgeAddedWhileEndpointAbsent) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 5, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 2, Properties{{"type", "e"}});  // 2 joins later
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsEdgeToUnknownVertex) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 42, 1, Properties{{"type", "e"}});
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsMissingType) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"x", 1}});
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsEventAtOrAfterEndOfTime) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 10, Properties{{"type", "n"}});
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

TEST(BuilderTest, RejectsEndpointChange) {
  TGraphBuilder builder(Ctx());
  builder.AddVertex(1, 0, Properties{{"type", "n"}})
      .AddVertex(2, 0, Properties{{"type", "n"}})
      .AddVertex(3, 0, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 1, Properties{{"type", "e"}})
      .RemoveEdge(9, 3)
      .AddEdge(9, 1, 3, 5, Properties{{"type", "e"}});
  EXPECT_TRUE(builder.Finish(10).status().IsInvalidArgument());
}

// --- seeded replay (the streaming ingest base+delta merge) ----------------

TEST(BuilderTest, SeededReplayEqualsOneShotBuild) {
  const TimePoint kEnd = 20;
  // Reference: the whole log in one builder.
  TGraphBuilder whole(Ctx());
  whole.AddVertex(1, 1, Properties{{"type", "n"}, {"v", 1}})
      .AddVertex(2, 2, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 3, Properties{{"type", "e"}})
      .SetVertexProperty(1, 10, "v", 2)
      .RemoveEdge(9, 12)
      .RemoveVertex(2, 14);
  Result<VeGraph> reference = whole.Finish(kEnd);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Split build: fold the prefix (events < 10), seed a second builder
  // with its states, replay the suffix. States ending at kEnd reopen.
  TGraphBuilder prefix(Ctx());
  prefix.AddVertex(1, 1, Properties{{"type", "n"}, {"v", 1}})
      .AddVertex(2, 2, Properties{{"type", "n"}})
      .AddEdge(9, 1, 2, 3, Properties{{"type", "e"}});
  Result<VeGraph> base = prefix.Finish(kEnd);
  ASSERT_TRUE(base.ok()) << base.status();

  TGraphBuilder seeded(Ctx());
  std::map<VertexId, History> vertex_states;
  for (const VeVertex& v : base->vertices().Collect()) {
    vertex_states[v.vid].push_back(HistoryItem{v.interval, v.properties});
  }
  for (auto& [vid, states] : vertex_states) {
    seeded.SeedVertex(vid, std::move(states));
  }
  for (const VeEdge& e : base->edges().Collect()) {
    seeded.SeedEdge(e.eid, e.src, e.dst,
                    History{HistoryItem{e.interval, e.properties}});
  }
  seeded.SetVertexProperty(1, 10, "v", 2)
      .RemoveEdge(9, 12)
      .RemoveVertex(2, 14);
  Result<VeGraph> merged = seeded.Finish(kEnd);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(Canonical(*merged), Canonical(*reference));
  TG_CHECK_OK(ValidateVe(*merged));
}

TEST(BuilderTest, SeededClosedEntityStaysClosed) {
  const TimePoint kEnd = 20;
  TGraphBuilder builder(Ctx());
  // Seeded state ends before kEnd: the vertex is dead, so a set on it
  // must fail exactly as it would have in a one-shot build.
  builder.SeedVertex(
      1, History{HistoryItem{{2, 8}, Properties{{"type", "n"}}}});
  builder.SetVertexProperty(1, 12, "x", 1);
  EXPECT_TRUE(builder.Finish(kEnd).status().IsInvalidArgument());
}

TEST(BuilderTest, SeededEdgeClosedByVertexRemovalStaysClosed) {
  const TimePoint kEnd = 100;
  // The compacted form of RejectsEdgeSetAfterEndpointRemoval's log as of
  // t=20: edge 9's lifetime already clipped at vertex 2's removal. The
  // replayed suffix must reject the set exactly as the one-shot build
  // over the full log does — acceptance cannot depend on when (or
  // whether) compaction ran.
  TGraphBuilder builder(Ctx());
  builder.SeedVertex(
      1, History{HistoryItem{{0, kEnd}, Properties{{"type", "n"}}}});
  builder.SeedVertex(
      2, History{HistoryItem{{0, 10}, Properties{{"type", "n"}}},
                 HistoryItem{{20, kEnd}, Properties{{"type", "n"}}}});
  builder.SeedEdge(
      9, 1, 2,
      History{HistoryItem{{0, 10}, Properties{{"type", "e"}, {"w", 2}}}});
  builder.SetEdgeProperty(9, 50, "w", 3);
  EXPECT_TRUE(builder.Finish(kEnd).status().IsInvalidArgument());
}

TEST(BuilderTest, SeededOpenEntityAcceptsLaterEvents) {
  const TimePoint kEnd = 20;
  TGraphBuilder builder(Ctx());
  // Seeded state ends exactly at kEnd: alive; a later remove closes it.
  builder.SeedVertex(
      1, History{HistoryItem{{2, kEnd}, Properties{{"type", "n"}}}});
  builder.RemoveVertex(1, 12);
  Result<VeGraph> graph = builder.Finish(kEnd);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::vector<VeVertex> vertices = graph->vertices().Collect();
  ASSERT_EQ(vertices.size(), 1u);
  EXPECT_EQ(vertices[0].interval, Interval(2, 12));
}

TEST(BuilderTest, OutOfOrderAppendsAreSorted) {
  TGraphBuilder builder(Ctx());
  builder.RemoveVertex(1, 8);  // appended before the add
  builder.AddVertex(1, 2, Properties{{"type", "n"}});
  Result<VeGraph> graph = builder.Finish(10);
  ASSERT_TRUE(graph.ok());
  std::vector<VeVertex> vertices = graph->vertices().Collect();
  ASSERT_EQ(vertices.size(), 1u);
  EXPECT_EQ(vertices[0].interval, Interval(2, 8));
}

}  // namespace
}  // namespace tgraph
