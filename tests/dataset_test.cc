#include "dataflow/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

namespace tgraph::dataflow {
namespace {

ExecutionContext* Ctx() {
  static ExecutionContext* ctx = new ExecutionContext(
      ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, FromVectorPartitionsEvenly) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(10), 3);
  const auto& parts = ds.MaterializedPartitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  EXPECT_EQ(ds.Count(), 10);
}

TEST(DatasetTest, FromVectorPreservesOrderInCollect) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100), 7);
  EXPECT_EQ(ds.Collect(), Iota(100));
}

TEST(DatasetTest, EmptyDataset) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), {}, 4);
  EXPECT_EQ(ds.Count(), 0);
  EXPECT_TRUE(ds.Collect().empty());
}

TEST(DatasetTest, Map) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(20));
  auto strings = ds.Map([](const int64_t& x) { return std::to_string(x); });
  std::vector<std::string> collected = strings.Collect();
  ASSERT_EQ(collected.size(), 20u);
  EXPECT_EQ(collected[7], "7");
}

TEST(DatasetTest, Filter) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100));
  EXPECT_EQ(ds.Filter([](const int64_t& x) { return x % 3 == 0; }).Count(), 34);
}

TEST(DatasetTest, FlatMapEmitsZeroOrMore) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(10));
  auto expanded = ds.FlatMap<int64_t>(
      [](const int64_t& x, std::vector<int64_t>* out) {
        for (int64_t i = 0; i < x % 3; ++i) out->push_back(x);
      });
  // x contributes (x mod 3) copies: 0,1,2,0,1,2,... for 0..9.
  EXPECT_EQ(expanded.Count(), 0 + 1 + 2 + 0 + 1 + 2 + 0 + 1 + 2 + 0);
}

TEST(DatasetTest, MapPartitions) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(50), 5);
  auto sums = ds.MapPartitions<int64_t>(
      [](const std::vector<int64_t>& part, std::vector<int64_t>* out) {
        int64_t sum = 0;
        for (int64_t x : part) sum += x;
        out->push_back(sum);
      });
  EXPECT_EQ(sums.Count(), 5);
  EXPECT_EQ(sums.Reduce(0, [](int64_t a, int64_t b) { return a + b; }),
            49 * 50 / 2);
}

TEST(DatasetTest, MapPartitionsWithIndexSeesEveryPartitionOnce) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(12), 4);
  auto indices = ds.MapPartitionsWithIndex<int64_t>(
      [](size_t p, const std::vector<int64_t>&, std::vector<int64_t>* out) {
        out->push_back(static_cast<int64_t>(p));
      });
  std::vector<int64_t> collected = indices.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(DatasetTest, UnionConcatenates) {
  auto a = Dataset<int64_t>::FromVector(Ctx(), Iota(5), 2);
  auto b = Dataset<int64_t>::FromVector(Ctx(), Iota(3), 2);
  EXPECT_EQ(a.Union(b).Count(), 8);
  EXPECT_EQ(a.Union(b).NumPartitions(), 4u);
}

TEST(DatasetTest, RepartitionRebalances) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100), 2);
  auto repartitioned = ds.Repartition(10);
  EXPECT_EQ(repartitioned.NumPartitions(), 10u);
  EXPECT_EQ(repartitioned.Count(), 100);
}

TEST(DatasetTest, PartitionByCoLocatesEqualKeys) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100), 5);
  auto by_mod = ds.PartitionBy([](const int64_t& x) { return x % 4; }, 8);
  const auto& parts = by_mod.MaterializedPartitions();
  // Each residue class must live in exactly one partition.
  for (int64_t residue = 0; residue < 4; ++residue) {
    int partitions_with_residue = 0;
    for (const auto& part : parts) {
      bool found = false;
      for (int64_t x : part) {
        if (x % 4 == residue) found = true;
      }
      if (found) ++partitions_with_residue;
    }
    EXPECT_EQ(partitions_with_residue, 1) << "residue " << residue;
  }
}

TEST(DatasetTest, Distinct) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100));
  EXPECT_EQ(ds.Map([](const int64_t& x) { return x % 9; }).Distinct().Count(),
            9);
}

TEST(DatasetTest, DistinctOnStrings) {
  std::vector<std::string> data = {"a", "b", "a", "c", "b", "a"};
  auto ds = Dataset<std::string>::FromVector(Ctx(), data);
  EXPECT_EQ(ds.Distinct().Count(), 3);
}

TEST(DatasetTest, SortByGlobalOrder) {
  std::vector<int64_t> data = {5, 3, 9, 1, 7, 0, 8};
  auto ds = Dataset<int64_t>::FromVector(Ctx(), data, 3);
  auto sorted =
      ds.SortBy([](const int64_t& a, const int64_t& b) { return a < b; }, 2);
  EXPECT_EQ(sorted.Collect(), (std::vector<int64_t>{0, 1, 3, 5, 7, 8, 9}));
}

TEST(DatasetTest, KeyBy) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(10));
  auto keyed = ds.KeyBy([](const int64_t& x) { return x % 2; });
  EXPECT_EQ(keyed.Count(), 10);
  EXPECT_EQ(keyed.GroupByKey().Count(), 2);
}

TEST(DatasetTest, ReduceAction) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(101));
  EXPECT_EQ(ds.Reduce(0, [](int64_t a, int64_t b) { return a + b; }),
            100 * 101 / 2);
}

TEST(DatasetTest, TakeAndFirst) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(100), 7);
  EXPECT_EQ(ds.Take(5), (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ds.Take(1000).size(), 100u);  // capped at the dataset size
  EXPECT_EQ(ds.First(), 0);
  auto empty = Dataset<int64_t>::FromVector(Ctx(), {}, 2);
  EXPECT_TRUE(empty.Take(3).empty());
  EXPECT_FALSE(empty.First().has_value());
}

TEST(DatasetTest, SampleIsDeterministicAndProportional) {
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(10000), 4);
  auto a = ds.Sample(0.3, 9).Collect();
  auto b = ds.Sample(0.3, 9).Collect();
  EXPECT_EQ(a, b);  // deterministic in (seed, position)
  EXPECT_NEAR(static_cast<double>(a.size()), 3000.0, 300.0);
  EXPECT_EQ(ds.Sample(0.0, 9).Count(), 0);
  EXPECT_EQ(ds.Sample(1.0, 9).Count(), 10000);
  // A different seed draws a different sample.
  EXPECT_NE(ds.Sample(0.3, 10).Collect(), a);
}

TEST(DatasetTest, SharedLineageComputesOnce) {
  // A node consumed by two downstream branches must not recompute.
  std::atomic<int> calls{0};
  auto ds = Dataset<int64_t>::FromVector(Ctx(), Iota(10), 1)
                .Map([&calls](const int64_t& x) {
                  calls.fetch_add(1);
                  return x;
                });
  auto a = ds.Filter([](const int64_t& x) { return x < 5; });
  auto b = ds.Filter([](const int64_t& x) { return x >= 5; });
  EXPECT_EQ(a.Count() + b.Count(), 10);
  EXPECT_EQ(calls.load(), 10);
}

TEST(DatasetTest, MetricsCountShuffledRecords) {
  ExecutionContext ctx({.num_workers = 1, .default_parallelism = 2});
  auto ds = Dataset<int64_t>::FromVector(&ctx, Iota(40), 2);
  int64_t before = ctx.metrics().records_shuffled.load();
  ds.PartitionBy([](const int64_t& x) { return x; }, 4).Cache();
  EXPECT_EQ(ctx.metrics().records_shuffled.load() - before, 40);
}

}  // namespace
}  // namespace tgraph::dataflow
