// Adversarial crash-recovery tests for tgraph-wal v1 (src/ingest/wal.h).
//
// The contract under test: an acknowledged batch survives anything short
// of media corruption; a torn final record (crash mid-append) is dropped
// silently because it was never acknowledged; corruption of acknowledged
// bytes is an IoError, never silent data loss.

#include "ingest/wal.h"

#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tgraph::ingest {
namespace {

std::string TempPath(const std::string& name) {
  const char* base = ::getenv("TMPDIR");
  std::string dir = base != nullptr ? base : "/tmp";
  return dir + "/tgwal_test_" + name + "_" + std::to_string(::getpid());
}

Event AddVertex(int64_t vid, TimePoint at) {
  Event event;
  event.kind = EventKind::kAddVertex;
  event.id = vid;
  event.at = at;
  event.props = Properties{{"type", "t"}};
  return event;
}

Event RemoveVertex(int64_t vid, TimePoint at) {
  Event event;
  event.kind = EventKind::kRemoveVertex;
  event.id = vid;
  event.at = at;
  return event;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  /// Creates a WAL with two acknowledged batches and closes it.
  void WriteTwoBatches() {
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    std::remove(path_.c_str());
    WalHeader header;
    header.horizon = 1000;
    header.base_seq = 0;
    Result<std::unique_ptr<Wal>> wal =
        Wal::Open(path_, header, /*sync=*/false, /*replay=*/nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->Append(1, {AddVertex(1, 10), AddVertex(2, 11)}).ok());
    ASSERT_TRUE((*wal)->Append(2, {RemoveVertex(1, 20)}).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }

  std::string path_;
};

TEST_F(WalTest, RoundTripTwoBatches) {
  WriteTwoBatches();
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->header.horizon, 1000);
  EXPECT_EQ(replay->header.base_seq, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].seq, 1u);
  ASSERT_EQ(replay->records[0].events.size(), 2u);
  EXPECT_EQ(replay->records[0].events[0].id, 1);
  EXPECT_EQ(replay->records[0].events[0].kind, EventKind::kAddVertex);
  EXPECT_EQ(replay->records[0].events[0].props.Get("type")->AsString(), "t");
  EXPECT_EQ(replay->records[1].seq, 2u);
  EXPECT_EQ(replay->records[1].events[0].kind, EventKind::kRemoveVertex);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  Result<WalReplay> replay = ReplayWalFile(TempPath("does_not_exist"));
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsNotFound());
}

TEST_F(WalTest, TornFinalRecordIsDroppedSilently) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  const uint64_t full = bytes.size();
  // Chop bytes off the final record one at a time: every cut must replay
  // the first batch intact and report a torn tail — a crash mid-append
  // loses only the unacknowledged batch.
  for (uint64_t cut = full - 1; cut > full - kWalRecordFrameSize - 2; --cut) {
    WriteAll(path_, bytes.substr(0, cut));
    Result<WalReplay> replay = ReplayWalFile(path_);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": " << replay.status();
    EXPECT_TRUE(replay->torn_tail) << "cut at " << cut;
    ASSERT_EQ(replay->records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(replay->records[0].seq, 1u);
  }

  // Re-opening the torn file truncates the tail and accepts new appends.
  WriteAll(path_, bytes.substr(0, full - 3));
  WalReplay replay;
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(path_, WalHeader{}, /*sync=*/false, &replay);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  ASSERT_TRUE((*wal)->Append(2, {AddVertex(3, 30)}).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  Result<WalReplay> after = ReplayWalFile(path_);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->torn_tail);
  ASSERT_EQ(after->records.size(), 2u);
  EXPECT_EQ(after->records[1].seq, 2u);
  EXPECT_EQ(after->records[1].events[0].id, 3);
}

TEST_F(WalTest, TruncatedHeaderIsTornNotCorrupt) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  // A file shorter than the header can only come from a crash during
  // creation — nothing was ever acknowledged, so it replays empty.
  for (size_t cut : std::vector<size_t>{0, 1, 8, kWalHeaderSize - 1}) {
    WriteAll(path_, bytes.substr(0, cut));
    Result<WalReplay> replay = ReplayWalFile(path_);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": " << replay.status();
    // A zero-byte file has nothing torn; any partial header does.
    EXPECT_EQ(replay->torn_tail, cut > 0) << "cut at " << cut;
    EXPECT_TRUE(replay->records.empty());
    EXPECT_EQ(replay->valid_bytes, 0u);
  }
}

TEST_F(WalTest, BadMagicIsIoError) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  bytes[0] = 'X';
  WriteAll(path_, bytes);
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsIoError());
}

TEST_F(WalTest, ChecksumMismatchOnAcknowledgedRecordIsIoError) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  // Flip one payload byte of the FIRST record: it is followed by an
  // intact record, so this is corruption of acknowledged data, not a torn
  // tail — it must refuse to open, not silently drop the suffix.
  bytes[kWalHeaderSize + kWalRecordFrameSize] ^= 0x40;
  WriteAll(path_, bytes);
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsIoError());
}

TEST_F(WalTest, FlippedByteInFinalRecordIsIoError) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  // The final record is complete (its framed length fits), so a checksum
  // mismatch there is also corruption: distinguishable from truncation.
  bytes[bytes.size() - 1] ^= 0x01;
  WriteAll(path_, bytes);
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsIoError());
}

TEST_F(WalTest, NonIncreasingSequenceIsIoError) {
  path_ = TempPath("seq_regression");
  std::remove(path_.c_str());
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(path_, WalHeader{}, /*sync=*/false, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(5, {AddVertex(1, 10)}).ok());
  ASSERT_TRUE((*wal)->Append(5, {AddVertex(2, 11)}).ok());  // duplicate seq
  ASSERT_TRUE((*wal)->Close().ok());
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsIoError());
}

TEST_F(WalTest, OversizedLengthPrefixIsRejected) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  uint32_t huge = kMaxWalRecordBytes + 1;
  std::memcpy(bytes.data() + kWalHeaderSize, &huge, sizeof(huge));
  WriteAll(path_, bytes);
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsIoError());
}

TEST_F(WalTest, RotateReplacesLogAtomically) {
  WriteTwoBatches();
  WalReplay existing;
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(path_, WalHeader{}, /*sync=*/false, &existing);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(existing.records.size(), 2u);

  // Compaction folded seq<=1 into the base: the rotated log carries
  // base_seq=1 and only the unfolded suffix.
  WalHeader rotated;
  rotated.horizon = 1000;
  rotated.base_seq = 1;
  ASSERT_TRUE((*wal)->Rotate(rotated, {existing.records[1]}).ok());
  ASSERT_TRUE((*wal)->Append(3, {AddVertex(9, 30)}).ok());
  ASSERT_TRUE((*wal)->Close().ok());

  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->header.base_seq, 1u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].seq, 2u);
  EXPECT_EQ(replay->records[1].seq, 3u);
}

TEST_F(WalTest, GarbageAppendedPastValidRecordsIsTornTail) {
  WriteTwoBatches();
  std::string bytes = ReadAll(path_);
  // A few stray bytes (shorter than a record frame) after the last valid
  // record: indistinguishable from a torn append, dropped on replay.
  WriteAll(path_, bytes + "\x07\x03");
  Result<WalReplay> replay = ReplayWalFile(path_);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->valid_bytes, bytes.size());
}

TEST_F(WalTest, FailedAppendRollsBackPartialWrite) {
  WriteTwoBatches();
  const uint64_t full = ReadAll(path_).size();

  WalReplay replay;
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(path_, WalHeader{}, /*sync=*/false, &replay);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_EQ(replay.records.size(), 2u);

  // Cap the file size a few bytes past its current length: the next
  // append writes only part of its frame, then write(2) fails with EFBIG.
  // (SIGXFSZ must be ignored or it kills the process before write
  // returns.)
  auto prev_handler = ::signal(SIGXFSZ, SIG_IGN);
  struct rlimit old_limit;
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit capped = old_limit;
  capped.rlim_cur = full + 8;
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &capped), 0);

  Status failed = (*wal)->Append(3, {AddVertex(3, 30)});

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ::signal(SIGXFSZ, prev_handler);

  ASSERT_FALSE(failed.ok());
  // The torn frame was rolled back: acknowledged bytes end the file, so
  // nothing is buried behind garbage.
  EXPECT_EQ(ReadAll(path_).size(), full);

  // A clean rollback leaves the WAL usable; the retry lands where the
  // torn frame was, and the final log replays to exactly the
  // acknowledged records.
  ASSERT_TRUE((*wal)->Append(3, {AddVertex(3, 30)}).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  Result<WalReplay> after = ReplayWalFile(path_);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->torn_tail);
  ASSERT_EQ(after->records.size(), 3u);
  EXPECT_EQ(after->records[2].seq, 3u);
  EXPECT_EQ(after->records[2].events[0].id, 3);
}

TEST(WalEventTest, BinaryRoundTripAllKinds) {
  std::vector<Event> events;
  {
    Event e;
    e.kind = EventKind::kAddVertex;
    e.id = -7;  // ZigZag: negative ids survive
    e.at = 42;
    e.props = Properties{{"type", "person"}, {"score", 1.5}};
    events.push_back(e);
  }
  {
    Event e;
    e.kind = EventKind::kSetVertexProperty;
    e.id = 3;
    e.at = 50;
    e.props = Properties{{"score", 2.5}};
    events.push_back(e);
  }
  {
    Event e;
    e.kind = EventKind::kAddEdge;
    e.id = 100;
    e.src = 3;
    e.dst = -7;
    e.at = 60;
    e.props = Properties{{"type", "knows"}};
    events.push_back(e);
  }
  {
    Event e;
    e.kind = EventKind::kRemoveEdge;
    e.id = 100;
    e.at = 70;
    events.push_back(e);
  }
  std::string encoded;
  EncodeEvents(events, &encoded);
  size_t pos = 0;
  Result<std::vector<Event>> decoded = DecodeEvents(encoded, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(pos, encoded.size());
  ASSERT_EQ(decoded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*decoded)[i].kind, events[i].kind) << i;
    EXPECT_EQ((*decoded)[i].id, events[i].id) << i;
    EXPECT_EQ((*decoded)[i].at, events[i].at) << i;
    EXPECT_EQ((*decoded)[i].src, events[i].src) << i;
    EXPECT_EQ((*decoded)[i].dst, events[i].dst) << i;
    EXPECT_EQ((*decoded)[i].props.ToString(), events[i].props.ToString()) << i;
  }
}

TEST(WalEventTest, AbsurdEventCountIsRejectedBeforeAllocation) {
  // A crafted frame can claim any count in its varint prefix; a count the
  // remaining bytes cannot possibly hold (every event is ≥ 3 bytes) must
  // fail up front instead of reserving gigabytes of Event storage.
  std::string encoded("\xC0\x84\x3D", 3);  // varint 1'000'000
  encoded += std::string(3, '\x00');       // ...backed by three bytes
  size_t pos = 0;
  Result<std::vector<Event>> decoded = DecodeEvents(encoded, &pos);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIoError());
}

TEST(WalEventTest, SetEventWithoutExactlyOneEntryIsRejected) {
  Event e;
  e.kind = EventKind::kSetVertexProperty;
  e.id = 1;
  e.at = 5;
  e.props = Properties{{"a", 1}, {"b", 2}};  // two entries: malformed
  std::string encoded;
  EncodeEvent(e, &encoded);
  size_t pos = 0;
  Result<Event> decoded = DecodeEvent(encoded, &pos);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIoError());
}

TEST(WalEventTest, TextGrammarRoundTrip) {
  const char* text =
      "# comment and blank lines are skipped\n"
      "\n"
      "add-vertex 1 10 type=\"person\" name=\"ann\" score=1.5\n"
      "set-vertex 1 15 score=2\n"
      "add-edge 100 1 2 20 type=\"knows\" active=true\n"
      "remove-edge 100 30\n"
      "remove-vertex 1 40\n";
  Result<std::vector<Event>> events = ParseEventText(text);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 5u);
  EXPECT_EQ((*events)[0].kind, EventKind::kAddVertex);
  EXPECT_EQ((*events)[0].props.Get("name")->AsString(), "ann");
  EXPECT_EQ((*events)[1].kind, EventKind::kSetVertexProperty);
  EXPECT_EQ((*events)[2].src, 1);
  EXPECT_EQ((*events)[2].dst, 2);
  EXPECT_EQ((*events)[3].kind, EventKind::kRemoveEdge);
  EXPECT_EQ((*events)[4].kind, EventKind::kRemoveVertex);

  // Errors carry the line number.
  Result<std::vector<Event>> bad = ParseEventText("add-vertex 1\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 1"), std::string::npos)
      << bad.status();
}

}  // namespace
}  // namespace tgraph::ingest
