#include "storage/table.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/logging.h"
#include "storage/predicate.h"

namespace tgraph::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Schema TestSchema() {
  return Schema{{{"id", ColumnType::kInt64},
                 {"score", ColumnType::kDouble},
                 {"flag", ColumnType::kBool},
                 {"label", ColumnType::kBinary}}};
}

RecordBatch MakeBatch(int64_t start, int64_t count) {
  RecordBatch batch;
  batch.schema = TestSchema();
  batch.columns.resize(4);
  for (int64_t i = start; i < start + count; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].doubles.push_back(static_cast<double>(i) * 0.5);
    batch.columns[2].bools.push_back(i % 3 == 0);
    batch.columns[3].binaries.push_back("label" + std::to_string(i % 7));
  }
  batch.num_rows = count;
  return batch;
}

TEST(TableTest, WriteReadRoundTrip) {
  std::string path = TempPath("roundtrip.tcol");
  auto writer = TableWriter::Open(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(0, 1000)));
  TG_CHECK_OK((*writer)->Close());

  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 1000);
  EXPECT_TRUE((*reader)->schema() == TestSchema());
  Result<RecordBatch> all = (*reader)->Read();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows, 1000);
  EXPECT_EQ(all->columns[0].ints[500], 500);
  EXPECT_DOUBLE_EQ(all->columns[1].doubles[999], 499.5);
  EXPECT_EQ(all->columns[2].bools[9], 1);
  EXPECT_EQ(all->columns[3].binaries[8], "label1");
}

TEST(TableTest, RowGroupsSplitAtConfiguredSize) {
  std::string path = TempPath("groups.tcol");
  WriterOptions options;
  options.row_group_size = 100;
  auto writer = TableWriter::Open(path, TestSchema(), options);
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(0, 250)));
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_row_groups(), 3u);
  EXPECT_EQ((*reader)->row_groups()[0].num_rows, 100);
  EXPECT_EQ((*reader)->row_groups()[2].num_rows, 50);
}

TEST(TableTest, MultipleAppendsAccumulate) {
  std::string path = TempPath("appends.tcol");
  WriterOptions options;
  options.row_group_size = 64;
  auto writer = TableWriter::Open(path, TestSchema(), options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    TG_CHECK_OK((*writer)->Append(MakeBatch(i * 30, 30)));
  }
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 150);
  Result<RecordBatch> all = (*reader)->Read();
  ASSERT_TRUE(all.ok());
  for (int64_t i = 0; i < 150; ++i) {
    EXPECT_EQ(all->columns[0].ints[i], i);
  }
}

TEST(TableTest, StatsRecordMinMax) {
  std::string path = TempPath("stats.tcol");
  WriterOptions options;
  options.row_group_size = 50;
  auto writer = TableWriter::Open(path, TestSchema(), options);
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(100, 150)));
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const RowGroupMeta& group0 = (*reader)->row_groups()[0];
  EXPECT_TRUE(group0.stats[0].has_int_stats);
  EXPECT_EQ(group0.stats[0].min_int, 100);
  EXPECT_EQ(group0.stats[0].max_int, 149);
  const RowGroupMeta& group2 = (*reader)->row_groups()[2];
  EXPECT_EQ(group2.stats[0].min_int, 200);
  EXPECT_EQ(group2.stats[0].max_int, 249);
}

TEST(TableTest, MetadataRoundTrip) {
  std::string path = TempPath("meta.tcol");
  WriterOptions options;
  options.metadata = {{"sort_order", "temporal"}, {"k", "v"}};
  auto writer = TableWriter::Open(path, TestSchema(), options);
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(0, 10)));
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->metadata().size(), 2u);
  EXPECT_EQ((*reader)->metadata()[0].first, "sort_order");
  EXPECT_EQ((*reader)->metadata()[0].second, "temporal");
}

TEST(TableTest, DictionaryEncodingPreservesRepetitiveStrings) {
  // 7 distinct labels over 1000 rows: dictionary-encoded, must round-trip.
  std::string path = TempPath("dict.tcol");
  auto writer = TableWriter::Open(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(0, 1000)));
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Result<RecordBatch> all = (*reader)->Read();
  ASSERT_TRUE(all.ok());
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(all->columns[3].binaries[i], "label" + std::to_string(i % 7));
  }
}

TEST(TableTest, SchemaMismatchRejected) {
  std::string path = TempPath("mismatch.tcol");
  auto writer = TableWriter::Open(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  RecordBatch wrong;
  wrong.schema = Schema{{{"other", ColumnType::kInt64}}};
  wrong.columns.resize(1);
  EXPECT_TRUE((*writer)->Append(wrong).IsInvalidArgument());
}

TEST(TableTest, OpenRejectsNonTcolFile) {
  std::string path = TempPath("garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    fputs("this is not a table", f);
    fclose(f);
  }
  EXPECT_TRUE(TableReader::Open(path).status().IsIoError());
}

TEST(TableTest, OpenRejectsMissingFile) {
  EXPECT_TRUE(
      TableReader::Open(TempPath("does_not_exist.tcol")).status().IsIoError());
}

TEST(TableTest, EmptyTable) {
  std::string path = TempPath("empty.tcol");
  auto writer = TableWriter::Open(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 0);
  EXPECT_EQ((*reader)->Read()->num_rows, 0);
}

TEST(TableTest, CorruptionDetectedByChecksum) {
  std::string path = TempPath("corrupt.tcol");
  WriterOptions options;
  options.row_group_size = 100;
  auto writer = TableWriter::Open(path, TestSchema(), options);
  ASSERT_TRUE(writer.ok());
  TG_CHECK_OK((*writer)->Append(MakeBatch(0, 300)));
  TG_CHECK_OK((*writer)->Close());
  // Flip one byte inside the second row group's data.
  {
    auto reader = TableReader::Open(path);
    ASSERT_TRUE(reader.ok());
    uint64_t offset = (*reader)->row_groups()[1].offset + 5;
    FILE* f = fopen(path.c_str(), "r+b");
    fseek(f, static_cast<long>(offset), SEEK_SET);
    int byte = fgetc(f);
    fseek(f, static_cast<long>(offset), SEEK_SET);
    fputc(byte ^ 0x40, f);
    fclose(f);
  }
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());  // footer is intact
  TG_CHECK_OK((*reader)->ReadRowGroup(0).status());  // group 0 untouched
  Status corrupt = (*reader)->ReadRowGroup(1).status();
  EXPECT_TRUE(corrupt.IsIoError());
  EXPECT_NE(corrupt.message().find("checksum"), std::string::npos);
}

TEST(TableTest, NegativeIntsAndDeltaEncoding) {
  std::string path = TempPath("negatives.tcol");
  Schema schema{{{"v", ColumnType::kInt64}}};
  auto writer = TableWriter::Open(path, schema);
  ASSERT_TRUE(writer.ok());
  RecordBatch batch;
  batch.schema = schema;
  batch.columns.resize(1);
  std::vector<int64_t> values = {-1000, 5, -3, 1LL << 40, -(1LL << 40), 0};
  batch.columns[0].ints = values;
  batch.num_rows = static_cast<int64_t>(values.size());
  TG_CHECK_OK((*writer)->Append(batch));
  TG_CHECK_OK((*writer)->Close());
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->Read()->columns[0].ints, values);
}

}  // namespace
}  // namespace tgraph::storage
