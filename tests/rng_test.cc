#include "common/rng.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(RngTest, DeterministicInSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
  }
  bool any_different = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversValues) {
  Rng rng(7);
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++histogram[rng.NextBounded(8)];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 700);  // roughly uniform
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(9);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  Rng fork1_again = Rng(9).Fork(1);
  EXPECT_EQ(fork1.Next(), fork1_again.Next());
  bool differ = false;
  for (int i = 0; i < 50; ++i) {
    if (base.Fork(1).Next() == base.Fork(2).Next()) continue;
    differ = true;
  }
  (void)fork2;
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace tgraph
