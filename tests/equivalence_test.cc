// Property-based cross-representation equivalence: the paper's central
// correctness claim is that RG, VE, OG (and OGC for topology) are physical
// representations of the SAME logical TGraph, so every operator must
// compute identical logical results on all of them. These parameterized
// suites sweep random evolving graphs and operator parameters.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::RandomTGraph;

AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator(
      "cluster", "key",
      {{"members", AggKind::kCount, ""}, {"total", AggKind::kSum, "weight"}});
  spec.edge_type = "clustered";
  return spec;
}

// ---------------------------------------------------------------------------
// aZoom^T equivalence across RG / VE / OG for random graphs.
// ---------------------------------------------------------------------------

class AZoomEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AZoomEquivalence, AllRepresentationsAgree) {
  VeGraph ve = RandomTGraph(GetParam());
  TG_CHECK_OK(ValidateVe(ve));
  TGraph g = TGraph::FromVe(ve, true);
  AZoomSpec spec = GroupZoom();

  Result<TGraph> from_ve = g.AZoom(spec);
  ASSERT_TRUE(from_ve.ok());
  std::vector<std::string> expected = Canonical(*from_ve);

  Result<TGraph> from_og = g.As(Representation::kOg)->AZoom(spec);
  ASSERT_TRUE(from_og.ok());
  EXPECT_EQ(Canonical(*from_og), expected);

  Result<TGraph> from_rg = g.As(Representation::kRg)->AZoom(spec);
  ASSERT_TRUE(from_rg.ok());
  EXPECT_EQ(Canonical(*from_rg), expected);
}

TEST_P(AZoomEquivalence, OutputIsValidTGraph) {
  VeGraph ve = RandomTGraph(GetParam());
  Result<TGraph> zoomed = TGraph::FromVe(ve, true).AZoom(GroupZoom());
  ASSERT_TRUE(zoomed.ok());
  TGraph coalesced = zoomed->Coalesce();
  TG_CHECK_OK(ValidateVe(coalesced.As(Representation::kVe)->ve()));
}

TEST_P(AZoomEquivalence, SnapshotReducibility) {
  // Point semantics: aZoom^T then snapshot == snapshot then non-temporal
  // node creation. We verify the vertex side: group counts per snapshot.
  VeGraph ve = RandomTGraph(GetParam());
  Result<TGraph> zoomed = TGraph::FromVe(ve, true).AZoom(GroupZoom());
  ASSERT_TRUE(zoomed.ok());
  VeGraph zoomed_ve = zoomed->Coalesce().As(Representation::kVe)->ve();
  for (TimePoint t : {2, 7, 13, 18}) {
    // Expected: counts per group over the input snapshot at t.
    std::map<std::string, int64_t> expected;
    for (const sg::Vertex& v : ve.SnapshotAt(t).vertices().Collect()) {
      if (const PropertyValue* group = v.properties.Find("group")) {
        ++expected[group->AsString()];
      }
    }
    std::map<std::string, int64_t> actual;
    for (const sg::Vertex& v : zoomed_ve.SnapshotAt(t).vertices().Collect()) {
      actual[v.properties.Get("key")->AsString()] =
          v.properties.Get("members")->AsInt();
    }
    EXPECT_EQ(actual, expected) << "seed " << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, AZoomEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------------
// wZoom^T equivalence across RG / VE / OG, swept over window sizes and
// quantifier combinations.
// ---------------------------------------------------------------------------

struct WZoomCase {
  uint64_t seed;
  int64_t window;
  int vq;  // 0=all, 1=most, 2=exists
  int eq;
};

Quantifier QuantifierOf(int code) {
  switch (code) {
    case 0:
      return Quantifier::All();
    case 1:
      return Quantifier::Most();
    default:
      return Quantifier::Exists();
  }
}

class WZoomEquivalence : public ::testing::TestWithParam<WZoomCase> {};

TEST_P(WZoomEquivalence, AllRepresentationsAgree) {
  const WZoomCase& param = GetParam();
  VeGraph ve = RandomTGraph(param.seed);
  TGraph g = TGraph::FromVe(ve, true);
  WZoomSpec spec{WindowSpec::TimePoints(param.window), QuantifierOf(param.vq),
                 QuantifierOf(param.eq), {}, {}};
  spec.vertex_resolve.default_resolver = Resolver::kLast;

  Result<TGraph> from_ve = g.WZoom(spec);
  ASSERT_TRUE(from_ve.ok());
  std::vector<std::string> expected = Canonical(*from_ve);

  Result<TGraph> from_og = g.As(Representation::kOg)->WZoom(spec);
  ASSERT_TRUE(from_og.ok());
  EXPECT_EQ(Canonical(*from_og), expected) << "OG";

  Result<TGraph> from_rg = g.As(Representation::kRg)->WZoom(spec);
  ASSERT_TRUE(from_rg.ok());
  EXPECT_EQ(Canonical(*from_rg), expected) << "RG";
}

TEST_P(WZoomEquivalence, OgcAgreesOnTopology) {
  const WZoomCase& param = GetParam();
  VeGraph ve = RandomTGraph(param.seed);
  TGraph g = TGraph::FromVe(ve, true);
  WZoomSpec spec{WindowSpec::TimePoints(param.window), QuantifierOf(param.vq),
                 QuantifierOf(param.eq), {}, {}};

  Result<TGraph> from_ve = g.WZoom(spec);
  ASSERT_TRUE(from_ve.ok());
  Result<TGraph> from_ogc = g.As(Representation::kOgc)->WZoom(spec);
  ASSERT_TRUE(from_ogc.ok());
  VeGraph ve_out = from_ve->As(Representation::kVe)->ve();
  VeGraph ogc_out = from_ogc->As(Representation::kVe)->ve();
  EXPECT_EQ(testing::CanonicalTopology(ogc_out),
            testing::CanonicalTopology(ve_out));
}

TEST_P(WZoomEquivalence, OutputIsValidAndCoalesced) {
  const WZoomCase& param = GetParam();
  VeGraph ve = RandomTGraph(param.seed);
  WZoomSpec spec{WindowSpec::TimePoints(param.window), QuantifierOf(param.vq),
                 QuantifierOf(param.eq), {}, {}};
  Result<TGraph> zoomed = TGraph::FromVe(ve, true).WZoom(spec);
  ASSERT_TRUE(zoomed.ok());
  VeGraph out = zoomed->As(Representation::kVe)->ve();
  if (!QuantifierOf(param.eq).MoreRestrictiveThan(QuantifierOf(param.vq))) {
    // Whenever the edge quantifier is at least as strict as the vertex
    // quantifier, the output must be a valid TGraph (no dangling edges).
    TG_CHECK_OK(ValidateVe(out));
  }
  TG_CHECK_OK(CheckCoalescedVe(out));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WZoomEquivalence,
    ::testing::Values(
        WZoomCase{1, 3, 0, 0}, WZoomCase{1, 3, 2, 2}, WZoomCase{1, 5, 1, 1},
        WZoomCase{2, 4, 0, 2}, WZoomCase{2, 7, 2, 0}, WZoomCase{3, 2, 0, 0},
        WZoomCase{3, 6, 1, 2}, WZoomCase{4, 3, 2, 2}, WZoomCase{4, 10, 0, 0},
        WZoomCase{5, 5, 2, 1}, WZoomCase{6, 4, 1, 0}, WZoomCase{7, 8, 0, 1}));

class ChangeWindowEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChangeWindowEquivalence, ChangeBasedWindowsAgreeAcrossRepresentations) {
  VeGraph ve = RandomTGraph(GetParam());
  TGraph g = TGraph::FromVe(ve, true);
  WZoomSpec spec{WindowSpec::Changes(3), Quantifier::Exists(),
                 Quantifier::Exists(), {}, {}};
  Result<TGraph> from_ve = g.WZoom(spec);
  ASSERT_TRUE(from_ve.ok());
  std::vector<std::string> expected = Canonical(*from_ve);
  Result<TGraph> from_og = g.As(Representation::kOg)->WZoom(spec);
  ASSERT_TRUE(from_og.ok());
  EXPECT_EQ(Canonical(*from_og), expected) << "OG";
  Result<TGraph> from_rg = g.As(Representation::kRg)->WZoom(spec);
  ASSERT_TRUE(from_rg.ok());
  EXPECT_EQ(Canonical(*from_rg), expected) << "RG";
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ChangeWindowEquivalence,
                         ::testing::Range(uint64_t{40}, uint64_t{46}));

// ---------------------------------------------------------------------------
// Coalescing invariants on random graphs.
// ---------------------------------------------------------------------------

class CoalesceInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalesceInvariants, CoalesceIsIdempotentAndPreservesSnapshots) {
  VeGraph ve = RandomTGraph(GetParam());
  VeGraph once = ve.Coalesce();
  VeGraph twice = once.Coalesce();
  EXPECT_EQ(Canonical(once), Canonical(twice));
  TG_CHECK_OK(CheckCoalescedVe(once));
  // Coalescing never changes any snapshot.
  for (TimePoint t : {1, 6, 11, 17}) {
    EXPECT_EQ(ve.SnapshotAt(t).NumVertices(), once.SnapshotAt(t).NumVertices());
    EXPECT_EQ(ve.SnapshotAt(t).NumEdges(), once.SnapshotAt(t).NumEdges());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CoalesceInvariants,
                         ::testing::Range(uint64_t{20}, uint64_t{28}));

}  // namespace
}  // namespace tgraph
