#include "gen/stats.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tgraph::gen {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

TEST(StatsTest, Figure1Counts) {
  DatasetStats stats = ComputeStats(Figure1());
  EXPECT_EQ(stats.num_vertices, 3);
  EXPECT_EQ(stats.num_edges, 2);
  EXPECT_EQ(stats.num_vertex_records, 4);
  EXPECT_EQ(stats.num_edge_records, 2);
  EXPECT_EQ(stats.num_snapshots, 4);  // [1,2),[2,5),[5,7),[7,9)
}

TEST(StatsTest, Figure1EvolutionRate) {
  // Edge sets per snapshot: {}, {e1}, {e1}, {e2}.
  // Transitions: ({},{e1})=0, ({e1},{e1})=1, ({e1},{e2})=0 -> mean 1/3.
  DatasetStats stats = ComputeStats(Figure1());
  EXPECT_NEAR(stats.evolution_rate, 100.0 / 3.0, 1e-9);
}

TEST(StatsTest, StaticGraphHasSimilarityOne) {
  // One unchanging edge across several vertex-driven snapshots.
  std::vector<VeVertex> vertices = {
      {1, {0, 10}, Properties{{"type", "n"}}},
      {2, {0, 10}, Properties{{"type", "n"}}},
      {3, {4, 10}, Properties{{"type", "n"}}},  // vertex change at 4
  };
  std::vector<VeEdge> edges = {{1, 1, 2, {0, 10}, Properties{{"type", "e"}}}};
  DatasetStats stats = ComputeStats(VeGraph::Create(Ctx(), vertices, edges));
  EXPECT_EQ(stats.num_snapshots, 2);
  EXPECT_NEAR(stats.evolution_rate, 100.0, 1e-9);
}

TEST(StatsTest, FullEdgeTurnoverHasSimilarityZero) {
  std::vector<VeVertex> vertices = {{1, {0, 4}, Properties{{"type", "n"}}},
                                    {2, {0, 4}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {
      {1, 1, 2, {0, 2}, Properties{{"type", "e"}}},
      {2, 1, 2, {2, 4}, Properties{{"type", "e"}}},
  };
  DatasetStats stats = ComputeStats(VeGraph::Create(Ctx(), vertices, edges));
  EXPECT_EQ(stats.num_snapshots, 2);
  EXPECT_NEAR(stats.evolution_rate, 0.0, 1e-9);
}

TEST(StatsTest, PartialOverlap) {
  // Snapshot edges: {e1,e2} then {e2,e3}: similarity 2*1/4 = 0.5.
  std::vector<VeVertex> vertices = {{1, {0, 4}, Properties{{"type", "n"}}},
                                    {2, {0, 4}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {
      {1, 1, 2, {0, 2}, Properties{{"type", "e"}}},
      {2, 1, 2, {0, 4}, Properties{{"type", "e"}}},
      {3, 1, 2, {2, 4}, Properties{{"type", "e"}}},
  };
  DatasetStats stats = ComputeStats(VeGraph::Create(Ctx(), vertices, edges));
  EXPECT_NEAR(stats.evolution_rate, 50.0, 1e-9);
}

TEST(StatsTest, EmptyAndTinyGraphs) {
  DatasetStats empty = ComputeStats(VeGraph::Create(Ctx(), {}, {}));
  EXPECT_EQ(empty.num_vertices, 0);
  EXPECT_EQ(empty.num_snapshots, 0);
  EXPECT_EQ(empty.evolution_rate, 0.0);

  DatasetStats single = ComputeStats(VeGraph::Create(
      Ctx(), {{1, {0, 5}, Properties{{"type", "n"}}}}, {}));
  EXPECT_EQ(single.num_snapshots, 1);
  EXPECT_EQ(single.evolution_rate, 0.0);  // no transitions
}

TEST(StatsTest, ToStringMentionsEveryField) {
  std::string s = ComputeStats(Figure1()).ToString();
  EXPECT_NE(s.find("vertices=3"), std::string::npos);
  EXPECT_NE(s.find("edges=2"), std::string::npos);
  EXPECT_NE(s.find("snapshots=4"), std::string::npos);
  EXPECT_NE(s.find("ev.rate=33.3"), std::string::npos);
}

}  // namespace
}  // namespace tgraph::gen
