#include "tgraph/reachability.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

VeGraph Chain(std::vector<Interval> edge_intervals) {
  // 0 -> 1 -> 2 -> ... with the given per-edge validity; vertices alive
  // throughout.
  std::vector<VeVertex> vertices;
  for (size_t i = 0; i <= edge_intervals.size(); ++i) {
    vertices.push_back(VeVertex{static_cast<VertexId>(i), {0, 100},
                                Properties{{"type", "n"}}});
  }
  std::vector<VeEdge> edges;
  for (size_t i = 0; i < edge_intervals.size(); ++i) {
    edges.push_back(VeEdge{static_cast<EdgeId>(i), static_cast<VertexId>(i),
                           static_cast<VertexId>(i + 1), edge_intervals[i],
                           Properties{{"type", "e"}}});
  }
  return VeGraph::Create(Ctx(), vertices, edges);
}

TEST(ReachabilityTest, ForwardInTimeChain) {
  // Edges open one after another: a time-respecting path exists.
  VeGraph g = Chain({{1, 5}, {4, 8}, {7, 12}});
  auto arrival = EarliestArrival(g, 0, 0);
  ASSERT_EQ(arrival.size(), 4u);
  EXPECT_EQ(arrival[0], 0);
  EXPECT_EQ(arrival[1], 1);   // wait for edge 0 to open
  EXPECT_EQ(arrival[2], 4);   // edge 1 opens at 4
  EXPECT_EQ(arrival[3], 7);
}

TEST(ReachabilityTest, EdgeClosedBeforeArrivalBlocksPath) {
  // Second edge closes (at 3) before the first opens (at 4): no path.
  VeGraph g = Chain({{4, 8}, {1, 3}});
  auto arrival = EarliestArrival(g, 0, 0);
  EXPECT_EQ(arrival.count(1), 1u);
  EXPECT_EQ(arrival.count(2), 0u);  // unreachable in time order
  EXPECT_FALSE(Reaches(g, 0, 2, Interval(0, 100)));
}

TEST(ReachabilityTest, NonTemporalPathWouldExist) {
  // Statically connected, temporally not: 0-1 alive only [8,10),
  // 1-2 alive only [0,2).
  VeGraph g = Chain({{8, 10}, {0, 2}});
  EXPECT_FALSE(Reaches(g, 0, 2, Interval(0, 100)));
  // The reverse direction respects time (undirected): 2 -> 1 at 0, wait,
  // 1 -> 0 at 8.
  ReachabilityOptions undirected;
  undirected.undirected = true;
  EXPECT_TRUE(Reaches(g, 2, 0, Interval(0, 100), undirected));
}

TEST(ReachabilityTest, StartTimeRestrictsPaths) {
  VeGraph g = Chain({{1, 5}, {4, 8}});
  EXPECT_TRUE(Reaches(g, 0, 2, Interval(0, 100)));
  // Starting after edge 0 has closed: blocked.
  EXPECT_FALSE(Reaches(g, 0, 2, Interval(5, 100)));
}

TEST(ReachabilityTest, RangeEndBoundsArrival) {
  VeGraph g = Chain({{1, 5}, {4, 8}});
  EXPECT_TRUE(Reaches(g, 0, 2, Interval(0, 5)));    // arrives at 4
  EXPECT_FALSE(Reaches(g, 0, 2, Interval(0, 4)));   // 4 not < 4
}

TEST(ReachabilityTest, DirectedByDefault) {
  VeGraph g = Chain({{0, 10}});
  EXPECT_TRUE(Reaches(g, 0, 1, Interval(0, 10)));
  EXPECT_FALSE(Reaches(g, 1, 0, Interval(0, 10)));
}

TEST(ReachabilityTest, SourceMustBeAlive) {
  // Ann leaves at 7; searches from 7 on cannot start at her.
  auto arrival = EarliestArrival(Figure1(), 1, 7);
  EXPECT_TRUE(arrival.empty());
}

TEST(ReachabilityTest, SourceArrivalIsFirstAlivePoint) {
  // Bob joins at 2; a search from 0 starts when he appears.
  auto arrival = EarliestArrival(Figure1(), 2, 0);
  EXPECT_EQ(arrival[2], 2);
}

TEST(ReachabilityTest, Figure1CollaborationFlow) {
  // Ann -> Bob via e1 [2,7); Bob -> Cat via e2 [7,9): Ann's influence
  // reaches Cat exactly at 7, after she has left — classic temporal flow.
  auto arrival = EarliestArrival(Figure1(), 1, 1);
  EXPECT_EQ(arrival[1], 1);
  EXPECT_EQ(arrival[2], 2);
  EXPECT_EQ(arrival[3], 7);
  EXPECT_TRUE(Reaches(Figure1(), 1, 3, Interval(1, 9)));
  EXPECT_FALSE(Reaches(Figure1(), 1, 3, Interval(1, 7)));
}

TEST(ReachabilityTest, UnknownSource) {
  EXPECT_TRUE(EarliestArrival(Figure1(), 999, 0).empty());
  EXPECT_FALSE(Reaches(Figure1(), 999, 1, Interval(0, 10)));
}

TEST(ReachabilityTest, EmptyRange) {
  EXPECT_FALSE(Reaches(Figure1(), 1, 2, Interval(5, 5)));
}

}  // namespace
}  // namespace tgraph
