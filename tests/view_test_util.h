// Shared helpers for the view test suite: fuzzed-but-valid event stream
// generation, the offline recompute oracle, and the aZoom spec the view
// tests group by.

#ifndef TGRAPH_TESTS_VIEW_TEST_UTIL_H_
#define TGRAPH_TESTS_VIEW_TEST_UTIL_H_

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "ingest/event.h"
#include "test_util.h"
#include "tgraph/builder.h"

namespace tgraph::views::testing {

// Inside `tgraph::views`, the qualifier `testing::` resolves here, hiding
// `tgraph::testing` — re-export what the view tests use from there.
using tgraph::testing::Canonical;
using tgraph::testing::CanonicalTopology;
using tgraph::testing::Ctx;

namespace fs = std::filesystem;

inline std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() /
                     ("tg_view_test_" + name + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

inline int64_t UnixNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// --- fuzzed event streams --------------------------------------------------

/// Generates a random but valid event stream: strictly increasing
/// timestamps, edges only between concurrently-alive endpoints, incident
/// edges ended before their endpoint is removed, removed vertex ids
/// re-added later, and property churn that splits vertex states (and moves
/// vertices between aZoom groups). Returned pre-split into batches.
inline std::vector<std::vector<ingest::Event>> FuzzStream(uint64_t seed,
                                                   int num_events) {
  Rng rng(seed);
  TimePoint t = 10;
  std::vector<ingest::Event> events;
  std::set<int64_t> alive;
  std::vector<int64_t> dead;  // candidates for re-add
  std::map<int64_t, std::pair<int64_t, int64_t>> live_edges;  // eid -> (u,v)
  int64_t next_vid = 1;
  int64_t next_eid = 1000;

  auto group_props = [&rng]() {
    Properties props;
    props.Set("type", "node");
    // One in four states has no group: exercises aZoom's dropped-state
    // path.
    uint64_t g = rng.NextBounded(4);
    if (g < 3) props.Set("group", "g" + std::to_string(g));
    return props;
  };
  auto add_vertex = [&](int64_t vid) {
    ingest::Event e;
    e.kind = ingest::EventKind::kAddVertex;
    e.id = vid;
    e.at = t++;
    e.props = group_props();
    events.push_back(std::move(e));
    alive.insert(vid);
  };

  add_vertex(next_vid++);
  add_vertex(next_vid++);
  while (static_cast<int>(events.size()) < num_events) {
    uint64_t op = rng.NextBounded(10);
    if (op < 3 || alive.empty()) {
      // Add a brand-new vertex.
      add_vertex(next_vid++);
    } else if (op < 4 && !dead.empty()) {
      // Re-add a previously removed id.
      int64_t vid = dead[rng.NextBounded(dead.size())];
      dead.erase(std::find(dead.begin(), dead.end(), vid));
      add_vertex(vid);
    } else if (op < 5 && alive.size() > 1) {
      // Remove a vertex — ending its live incident edges first.
      auto it = alive.begin();
      std::advance(it, rng.NextBounded(alive.size()));
      int64_t vid = *it;
      for (auto edge = live_edges.begin(); edge != live_edges.end();) {
        if (edge->second.first == vid || edge->second.second == vid) {
          ingest::Event e;
          e.kind = ingest::EventKind::kRemoveEdge;
          e.id = edge->first;
          e.at = t++;
          events.push_back(std::move(e));
          edge = live_edges.erase(edge);
        } else {
          ++edge;
        }
      }
      ingest::Event e;
      e.kind = ingest::EventKind::kRemoveVertex;
      e.id = vid;
      e.at = t++;
      events.push_back(std::move(e));
      alive.erase(vid);
      dead.push_back(vid);
    } else if (op < 7) {
      // Property split: overwrite the group (or weight) of a live vertex.
      auto it = alive.begin();
      std::advance(it, rng.NextBounded(alive.size()));
      ingest::Event e;
      e.kind = ingest::EventKind::kSetVertexProperty;
      e.id = *it;
      e.at = t++;
      if (rng.NextBounded(2) == 0) {
        e.props = Properties{{"group", "g" + std::to_string(rng.NextBounded(3))}};
      } else {
        e.props = Properties{
            {"weight", static_cast<int64_t>(rng.NextBounded(100))}};
      }
      events.push_back(std::move(e));
    } else if (op < 9 && alive.size() > 1) {
      // Add an edge between two live vertices (fresh eid: edge ends are
      // permanent under streaming ingest).
      auto a = alive.begin();
      std::advance(a, rng.NextBounded(alive.size()));
      auto b = alive.begin();
      std::advance(b, rng.NextBounded(alive.size()));
      ingest::Event e;
      e.kind = ingest::EventKind::kAddEdge;
      e.id = next_eid;
      e.src = *a;
      e.dst = *b;
      e.at = t++;
      e.props = Properties{{"type", "link"},
                           {"kind", "k" + std::to_string(rng.NextBounded(3))}};
      events.push_back(std::move(e));
      live_edges[next_eid++] = {*a, *b};
    } else if (!live_edges.empty()) {
      auto it = live_edges.begin();
      std::advance(it, rng.NextBounded(live_edges.size()));
      ingest::Event e;
      e.kind = ingest::EventKind::kRemoveEdge;
      e.id = it->first;
      e.at = t++;
      events.push_back(std::move(e));
      live_edges.erase(it);
    }
  }

  std::vector<std::vector<ingest::Event>> batches;
  size_t i = 0;
  while (i < events.size()) {
    size_t n = 1 + rng.NextBounded(6);
    std::vector<ingest::Event> batch;
    for (; n > 0 && i < events.size(); --n, ++i) batch.push_back(events[i]);
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Offline reference: one builder over the flattened prefix.
inline VeGraph OfflineBuild(const std::vector<std::vector<ingest::Event>>& batches,
                     size_t prefix, TimePoint horizon) {
  TGraphBuilder builder(tgraph::testing::Ctx());
  for (size_t i = 0; i < prefix; ++i) {
    for (const ingest::Event& event : batches[i]) {
      ingest::ApplyEventToBuilder(event, &builder);
    }
  }
  Result<VeGraph> graph = builder.Finish(horizon);
  TG_CHECK(graph.ok()) << graph.status();
  return *graph;
}

inline AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator =
      MakeAggregator("group", "name", {{"n", AggKind::kCount, ""}});
  spec.edge_type = "rel";
  return spec;
}

}  // namespace tgraph::views::testing

#endif  // TGRAPH_TESTS_VIEW_TEST_UTIL_H_
