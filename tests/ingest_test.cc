// End-to-end tests for the streaming ingest subsystem (src/ingest):
// differential equivalence against offline builds, snapshot isolation,
// LSM compaction, and crash recovery through the WAL.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "ingest/wal.h"
#include "tgraph/builder.h"
#include "test_util.h"

namespace tgraph::ingest {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() /
                     ("tg_ingest_test_" + name + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

Event AddVertex(int64_t vid, TimePoint at, Properties props) {
  Event e;
  e.kind = EventKind::kAddVertex;
  e.id = vid;
  e.at = at;
  props.Set("type", "node");
  e.props = std::move(props);
  return e;
}

Event SetVertex(int64_t vid, TimePoint at, const std::string& key,
                PropertyValue value) {
  Event e;
  e.kind = EventKind::kSetVertexProperty;
  e.id = vid;
  e.at = at;
  e.props = Properties{{key, std::move(value)}};
  return e;
}

Event RemoveVertex(int64_t vid, TimePoint at) {
  Event e;
  e.kind = EventKind::kRemoveVertex;
  e.id = vid;
  e.at = at;
  return e;
}

Event AddEdge(int64_t eid, VertexId src, VertexId dst, TimePoint at,
              Properties props) {
  Event e;
  e.kind = EventKind::kAddEdge;
  e.id = eid;
  e.src = src;
  e.dst = dst;
  e.at = at;
  props.Set("type", "link");
  e.props = std::move(props);
  return e;
}

Event RemoveEdge(int64_t eid, TimePoint at) {
  Event e;
  e.kind = EventKind::kRemoveEdge;
  e.id = eid;
  e.at = at;
  return e;
}

/// The scripted workload every differential test ingests: adds, property
/// churn, removals, and a re-add — split into batches at arbitrary points.
std::vector<std::vector<Event>> Workload() {
  return {
      {AddVertex(1, 10, {{"name", "ann"}}), AddVertex(2, 11, {{"name", "bob"}}),
       AddEdge(100, 1, 2, 12, {{"w", 1}})},
      {SetVertex(1, 20, "name", "ann2"), AddVertex(3, 21, {{"name", "cat"}}),
       AddEdge(101, 2, 3, 22, {{"w", 2}})},
      {RemoveEdge(100, 30), RemoveVertex(2, 31)},
      {AddVertex(2, 40, {{"name", "bob2"}}), AddEdge(102, 1, 2, 41, {{"w", 3}}),
       SetVertex(3, 42, "name", "cat2")},
  };
}

/// Offline reference: one builder over the flattened event stream.
VeGraph OfflineBuild(const std::vector<std::vector<Event>>& batches,
                     TimePoint horizon) {
  TGraphBuilder builder(testing::Ctx());
  for (const std::vector<Event>& batch : batches) {
    for (const Event& event : batch) ApplyEventToBuilder(event, &builder);
  }
  Result<VeGraph> graph = builder.Finish(horizon);
  TG_CHECK(graph.ok()) << graph.status();
  return *graph;
}

class LiveGraphTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& dir : dirs_) fs::remove_all(dir);
  }

  std::string Dir(const std::string& name) {
    dirs_.push_back(FreshDir(name));
    return dirs_.back();
  }

  LiveGraph::Options NoCompactor() {
    LiveGraph::Options options;
    options.delta_events_threshold = 0;
    options.sync = false;  // tests don't crash the machine, just the process
    return options;
  }

  std::vector<std::string> dirs_;
};

TEST_F(LiveGraphTest, LiveEqualsOfflinePreCompaction) {
  std::string dir = Dir("pre_compaction");
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok()) << live.status();
  for (const std::vector<Event>& batch : Workload()) {
    Result<uint64_t> seq = (*live)->Append(batch);
    ASSERT_TRUE(seq.ok()) << seq.status();
  }
  std::shared_ptr<const LiveSnapshot> snap = (*live)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(testing::Canonical(**merged),
            testing::Canonical(OfflineBuild(Workload(), (*live)->horizon())));
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, LiveEqualsOfflineAcrossEveryCompactionPoint) {
  // Compact after batch k, for every k: the base+delta merge must be
  // invisible — identical canonical VE (and thus identical RG/VE/OG/OGC
  // conversions, which are pure functions of it) at every split.
  const std::vector<std::vector<Event>> batches = Workload();
  for (size_t compact_after = 0; compact_after <= batches.size();
       ++compact_after) {
    std::string dir = Dir("split_" + std::to_string(compact_after));
    Result<std::unique_ptr<LiveGraph>> live =
        LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
    ASSERT_TRUE(live.ok()) << live.status();
    for (size_t i = 0; i < batches.size(); ++i) {
      Result<uint64_t> seq = (*live)->Append(batches[i]);
      ASSERT_TRUE(seq.ok()) << "batch " << i << ": " << seq.status();
      if (i + 1 == compact_after) {
        ASSERT_TRUE((*live)->Compact().ok());
      }
    }
    std::shared_ptr<const LiveSnapshot> snap = (*live)->snapshot();
    Result<const VeGraph*> merged = snap->Graph();
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(testing::Canonical(**merged),
              testing::Canonical(OfflineBuild(batches, (*live)->horizon())))
        << "compacted after batch " << compact_after;
    ASSERT_TRUE((*live)->Close().ok());
  }
}

TEST_F(LiveGraphTest, DifferentialAcrossRepresentations) {
  // The live graph's merged VE, pushed through each representation and
  // back, matches the offline build pushed through the same conversions.
  std::string dir = Dir("reps");
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok()) << live.status();
  for (const std::vector<Event>& batch : Workload()) {
    ASSERT_TRUE((*live)->Append(batch).ok());
  }
  ASSERT_TRUE((*live)->Compact().ok());
  std::shared_ptr<const LiveSnapshot> snap = (*live)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  VeGraph offline = OfflineBuild(Workload(), (*live)->horizon());
  for (Representation rep : {Representation::kRg, Representation::kVe,
                             Representation::kOg, Representation::kOgc}) {
    Result<TGraph> live_rep = TGraph::FromVe(**merged, true).As(rep);
    Result<TGraph> offline_rep = TGraph::FromVe(offline, true).As(rep);
    ASSERT_TRUE(live_rep.ok()) << live_rep.status();
    ASSERT_TRUE(offline_rep.ok()) << offline_rep.status();
    if (rep == Representation::kOgc) {
      // OGC is topology-only; compare what it preserves.
      Result<TGraph> live_ve = live_rep->As(Representation::kVe);
      Result<TGraph> offline_ve = offline_rep->As(Representation::kVe);
      ASSERT_TRUE(live_ve.ok() && offline_ve.ok());
      EXPECT_EQ(testing::CanonicalTopology(live_ve->ve()),
                testing::CanonicalTopology(offline_ve->ve()));
    } else {
      EXPECT_EQ(testing::Canonical(*live_rep), testing::Canonical(*offline_rep))
          << "rep " << static_cast<int>(rep);
    }
  }
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, ReopenAfterCloseReplaysWal) {
  std::string dir = Dir("reopen");
  {
    Result<std::unique_ptr<LiveGraph>> live =
        LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
    ASSERT_TRUE(live.ok()) << live.status();
    for (const std::vector<Event>& batch : Workload()) {
      ASSERT_TRUE((*live)->Append(batch).ok());
    }
    ASSERT_TRUE((*live)->Close().ok());
  }
  Result<std::unique_ptr<LiveGraph>> reopened =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::shared_ptr<const LiveSnapshot> snap = (*reopened)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(
      testing::Canonical(**merged),
      testing::Canonical(OfflineBuild(Workload(), (*reopened)->horizon())));
  // The next sequence number continues past the replayed ones: appending
  // after recovery must not collide.
  Result<uint64_t> seq = (*reopened)->Append({AddVertex(9, 100, {})});
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(*seq, Workload().size() + 1);
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST_F(LiveGraphTest, TornWalTailLosesOnlyUnackedBatch) {
  std::string dir = Dir("torn");
  {
    Result<std::unique_ptr<LiveGraph>> live =
        LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
    ASSERT_TRUE(live.ok()) << live.status();
    for (const std::vector<Event>& batch : Workload()) {
      ASSERT_TRUE((*live)->Append(batch).ok());
    }
    ASSERT_TRUE((*live)->Close().ok());
  }
  // Simulate a crash mid-append: tear bytes off the final record.
  std::string wal_path = WalPathFor(dir, "");
  {
    std::error_code ec;
    uintmax_t size = fs::file_size(wal_path, ec);
    ASSERT_FALSE(ec);
    fs::resize_file(wal_path, size - 3, ec);
    ASSERT_FALSE(ec);
  }
  Result<std::unique_ptr<LiveGraph>> reopened =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::vector<std::vector<Event>> all_but_last = Workload();
  all_but_last.pop_back();
  std::shared_ptr<const LiveSnapshot> snap = (*reopened)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(
      testing::Canonical(**merged),
      testing::Canonical(OfflineBuild(all_but_last, (*reopened)->horizon())));
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST_F(LiveGraphTest, ReopenAfterCompactionSkipsDuplicateReplay) {
  std::string dir = Dir("dedup");
  const std::vector<std::vector<Event>> batches = Workload();
  {
    Result<std::unique_ptr<LiveGraph>> live =
        LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
    ASSERT_TRUE(live.ok()) << live.status();
    ASSERT_TRUE((*live)->Append(batches[0]).ok());
    ASSERT_TRUE((*live)->Append(batches[1]).ok());
    ASSERT_TRUE((*live)->Compact().ok());
    ASSERT_TRUE((*live)->Append(batches[2]).ok());
    ASSERT_TRUE((*live)->Append(batches[3]).ok());
    ASSERT_TRUE((*live)->Close().ok());
  }
  // Reopen: base holds seq<=2, rotated WAL holds 3..4. Replay must fold
  // exactly once.
  Result<std::unique_ptr<LiveGraph>> reopened =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->snapshot()->delta_events(),
            batches[2].size() + batches[3].size());
  std::shared_ptr<const LiveSnapshot> snap = (*reopened)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(testing::Canonical(**merged),
            testing::Canonical(OfflineBuild(batches, (*reopened)->horizon())));
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST_F(LiveGraphTest, SnapshotIsolationAcrossAppendAndCompaction) {
  std::string dir = Dir("isolation");
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok()) << live.status();
  const std::vector<std::vector<Event>> batches = Workload();
  ASSERT_TRUE((*live)->Append(batches[0]).ok());

  std::shared_ptr<const LiveSnapshot> old_snap = (*live)->snapshot();
  Result<const VeGraph*> old_graph = old_snap->Graph();
  ASSERT_TRUE(old_graph.ok());
  std::vector<std::string> before = testing::Canonical(**old_graph);
  uint64_t old_epoch = old_snap->epoch();

  // Appends and a compaction publish new epochs...
  for (size_t i = 1; i < batches.size(); ++i) {
    ASSERT_TRUE((*live)->Append(batches[i]).ok());
  }
  ASSERT_TRUE((*live)->Compact().ok());
  EXPECT_GT((*live)->snapshot()->epoch(), old_epoch);

  // ...while the old snapshot still answers exactly as before.
  Result<const VeGraph*> again = old_snap->Graph();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(testing::Canonical(**again), before);
  EXPECT_EQ(old_snap->epoch(), old_epoch);
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, ConcurrentReadersNeverSeePartialBatches) {
  std::string dir = Dir("concurrent");
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok()) << live.status();
  LiveGraph* graph = live->get();

  // Each batch adds a vertex pair atomically; readers count vertices and
  // assert the count is always even (no half-applied batch) and
  // monotonic per-reader within one snapshot.
  constexpr int kBatches = 50;
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const LiveSnapshot> snap = graph->snapshot();
      Result<const VeGraph*> merged = snap->Graph();
      if (!merged.ok()) {
        failed.store(true);
        return;
      }
      size_t n = (*merged)->vertices().Collect().size();
      if (n % 2 != 0) {
        failed.store(true);
        return;
      }
    }
  });
  for (int i = 0; i < kBatches; ++i) {
    TimePoint at = 10 + i;
    Result<uint64_t> seq = graph->Append(
        {AddVertex(2 * i + 1, at, {}), AddVertex(2 * i + 2, at, {})});
    ASSERT_TRUE(seq.ok()) << seq.status();
    if (i == kBatches / 2) ASSERT_TRUE(graph->Compact().ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, RejectedBatchIsAtomicAndInvisible) {
  std::string dir = Dir("reject");
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_TRUE((*live)->Append({AddVertex(1, 10, {})}).ok());
  uint64_t epoch = (*live)->epoch();

  // A batch whose second event is invalid (edge endpoint never existed)
  // must reject wholesale: no epoch bump, no WAL growth, no delta change.
  Result<uint64_t> bad = (*live)->Append(
      {AddVertex(2, 20, {}), AddEdge(100, 2, 999, 21, {})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ((*live)->epoch(), epoch);
  EXPECT_EQ((*live)->snapshot()->delta_events(), 1u);

  // Timestamps at or before the watermark reject too (strict cross-batch
  // monotonicity keeps live replay order identical to offline order).
  Result<uint64_t> stale = (*live)->Append({AddVertex(3, 10, {})});
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsInvalidArgument()) << stale.status();

  // At-or-past-horizon events reject.
  Result<uint64_t> late =
      (*live)->Append({AddVertex(4, (*live)->horizon(), {})});
  ASSERT_FALSE(late.ok());

  // The graph still works after rejections.
  ASSERT_TRUE((*live)->Append({AddVertex(5, 30, {})}).ok());
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, ThresholdTriggersBackgroundCompaction) {
  std::string dir = Dir("threshold");
  LiveGraph::Options options = NoCompactor();
  options.delta_events_threshold = 4;
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, options);
  ASSERT_TRUE(live.ok()) << live.status();
  for (const std::vector<Event>& batch : Workload()) {
    ASSERT_TRUE((*live)->Append(batch).ok());
  }
  // The compactor runs asynchronously; wait for a generation to land.
  // Check for ANY gen-*.tgs, not gen-000001.tgs specifically: the
  // workload can trip the threshold more than once, and each compaction
  // unlinks the generations it supersedes — polling for a fixed name
  // races that cleanup (observed deterministically under TSan, where
  // both compactions finish inside the first poll interval).
  bool compacted = false;
  for (int i = 0; i < 200 && !compacted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("gen-", 0) == 0 && name.ends_with(".tgs")) {
        compacted = true;
      }
    }
  }
  EXPECT_TRUE(compacted) << "no generation appeared within 2s";
  std::shared_ptr<const LiveSnapshot> snap = (*live)->snapshot();
  Result<const VeGraph*> merged = snap->Graph();
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(testing::Canonical(**merged),
            testing::Canonical(OfflineBuild(Workload(), (*live)->horizon())));
  ASSERT_TRUE((*live)->Close().ok());
}

TEST_F(LiveGraphTest, RegistrySharesOneGraphPerDir) {
  std::string dir = Dir("registry");
  LiveGraphRegistry registry(testing::Ctx());
  LiveGraph::Options options;
  options.sync = false;
  options.delta_events_threshold = 0;
  registry.set_options(options);
  Result<LiveGraph*> a = registry.GetOrOpen(dir);
  ASSERT_TRUE(a.ok()) << a.status();
  Result<LiveGraph*> b = registry.GetOrOpen(dir);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(registry.Find(dir), *a);
  EXPECT_EQ(registry.Find(dir + "_other"), nullptr);
  ASSERT_TRUE((*a)->Append({AddVertex(1, 10, {})}).ok());
  registry.CloseAll();
  EXPECT_EQ(registry.Find(dir), nullptr);
}

TEST_F(LiveGraphTest, WalPathForSeparatesWalDevice) {
  EXPECT_EQ(WalPathFor("/data/g", ""), "/data/g/wal");
  std::string a = WalPathFor("/data/g", "/wals");
  std::string b = WalPathFor("/data/other", "/wals");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("/wals/", 0), 0u) << a;
  EXPECT_NE(a.find("g-"), std::string::npos) << a;
}

TEST_F(LiveGraphTest, IsLiveDirDetection) {
  std::string dir = Dir("detect");
  EXPECT_FALSE(IsLiveDir(dir));
  Result<std::unique_ptr<LiveGraph>> live =
      LiveGraph::Open(testing::Ctx(), dir, NoCompactor());
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->Close().ok());
  EXPECT_TRUE(IsLiveDir(dir));
}

}  // namespace
}  // namespace tgraph::ingest
