#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace tgraph::server {
namespace {

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.flags = kFlagNoCache;
  request.body = "LOAD '/data/wiki' AS g; INFO g";
  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kQuery);
  EXPECT_EQ(decoded->flags, kFlagNoCache);
  EXPECT_EQ(decoded->body, request.body);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response;
  response.code = 0;
  response.flags = kFlagCacheHit;
  response.request_id = 12345;
  response.body = std::string(1000, 'x');
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->ok());
  EXPECT_TRUE(decoded->cache_hit());
  EXPECT_EQ(decoded->request_id, 12345u);
  EXPECT_EQ(decoded->body, response.body);
}

TEST(ProtocolTest, ErrorResponseReconstructsStatus) {
  Response response;
  response.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
  response.body = "server saturated";
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  Status status = decoded->ToStatus();
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "server saturated");
}

TEST(ProtocolTest, MetricsVerbRoundTrip) {
  Request request;
  request.verb = Verb::kMetrics;
  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kMetrics);
  EXPECT_TRUE(decoded->body.empty());
}

TEST(ProtocolTest, TraceFieldRoundTripsOnlyWithItsFlag) {
  Response with_trace;
  with_trace.flags = kFlagHasTrace;
  with_trace.request_id = 7;
  with_trace.body = "result";
  with_trace.trace = R"({"traceEvents":[{"name":"tgraphd.query"}]})";
  Result<Response> decoded = DecodeResponse(EncodeResponse(with_trace));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->has_trace());
  EXPECT_EQ(decoded->trace, with_trace.trace);
  EXPECT_EQ(decoded->body, "result");

  // Without the flag the trace field never reaches the wire, so an old
  // peer sees exactly the pre-trace encoding.
  Response without_flag = with_trace;
  without_flag.flags = 0;
  Result<Response> plain = DecodeResponse(EncodeResponse(without_flag));
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(plain->has_trace());
  EXPECT_TRUE(plain->trace.empty());
  EXPECT_EQ(plain->body, "result");
}

TEST(ProtocolTest, IngestBodyRoundTrip) {
  IngestRequest request;
  request.dir = "/data/live-graph";
  request.horizon = 1000;
  ingest::Event add;
  add.kind = ingest::EventKind::kAddVertex;
  add.id = 42;
  add.at = 7;
  add.props = Properties{{"type", "person"}, {"school", "MIT"}};
  ingest::Event edge;
  edge.kind = ingest::EventKind::kAddEdge;
  edge.id = -9;  // negative ids must survive the zigzag varints
  edge.src = 42;
  edge.dst = 43;
  edge.at = 8;
  edge.props = Properties{{"type", "co-author"}};
  ingest::Event remove;
  remove.kind = ingest::EventKind::kRemoveEdge;
  remove.id = -9;
  remove.at = 30;
  request.events = {add, edge, remove};

  Result<IngestRequest> decoded = DecodeIngestBody(EncodeIngestBody(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->dir, request.dir);
  EXPECT_EQ(decoded->horizon, request.horizon);
  ASSERT_EQ(decoded->events.size(), 3u);
  EXPECT_EQ(decoded->events[0].kind, ingest::EventKind::kAddVertex);
  EXPECT_EQ(decoded->events[0].id, 42);
  EXPECT_EQ(decoded->events[0].props.Get("school")->AsString(), "MIT");
  EXPECT_EQ(decoded->events[1].kind, ingest::EventKind::kAddEdge);
  EXPECT_EQ(decoded->events[1].id, -9);
  EXPECT_EQ(decoded->events[1].src, 42);
  EXPECT_EQ(decoded->events[1].dst, 43);
  EXPECT_EQ(decoded->events[2].kind, ingest::EventKind::kRemoveEdge);
  EXPECT_EQ(decoded->events[2].at, 30);
}

TEST(ProtocolTest, IngestRequestRoundTripsThroughVerbFraming) {
  IngestRequest ingest;
  ingest.dir = "/data/g";
  ingest::Event event;
  event.kind = ingest::EventKind::kRemoveVertex;
  event.id = 1;
  event.at = 5;
  ingest.events = {event};

  Request request;
  request.verb = Verb::kIngest;
  request.body = EncodeIngestBody(ingest);
  Result<Request> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, Verb::kIngest);
  Result<IngestRequest> body = DecodeIngestBody(decoded->body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(body->dir, "/data/g");
  ASSERT_EQ(body->events.size(), 1u);
  EXPECT_EQ(body->events[0].kind, ingest::EventKind::kRemoveVertex);
}

TEST(ProtocolTest, TruncatedIngestBodyRejected) {
  IngestRequest request;
  request.dir = "/data/g";
  ingest::Event event;
  event.kind = ingest::EventKind::kAddVertex;
  event.id = 1;
  event.at = 2;
  event.props = Properties{{"type", "n"}};
  request.events = {event};
  std::string body = EncodeIngestBody(request);
  // Every strict prefix must fail to decode rather than half-succeed.
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeIngestBody(body.substr(0, len)).ok()) << len;
  }
  // So must trailing garbage — an ingest body is not a stream.
  EXPECT_FALSE(DecodeIngestBody(body + "x").ok());
}

TEST(ProtocolTest, UnknownVerbRejected) {
  Request request;
  request.verb = Verb::kPing;
  std::string payload = EncodeRequest(request);
  payload[0] = 77;  // not a verb
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(ProtocolTest, TruncatedPayloadsRejected) {
  Request request;
  request.verb = Verb::kQuery;
  request.body = "INFO g";
  std::string payload = EncodeRequest(request);
  // Every prefix must fail to decode rather than half-succeed.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.substr(0, len)).ok()) << len;
  }
  Response response;
  response.body = "result";
  std::string response_payload = EncodeResponse(response);
  for (size_t len = 0; len < response_payload.size(); ++len) {
    EXPECT_FALSE(DecodeResponse(response_payload.substr(0, len)).ok()) << len;
  }
}

TEST(ProtocolTest, TrailingGarbageRejected) {
  Request request;
  request.verb = Verb::kPing;
  std::string payload = EncodeRequest(request) + "extra";
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(ProtocolTest, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string payload = "hello frames";
  std::thread writer([&] { EXPECT_TRUE(WriteFrame(fds[0], payload).ok()); });
  Result<std::string> read_back = ReadFrame(fds[1]);
  writer.join();
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(*read_back, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, CleanEofIsNotFoundMidFrameEofIsIoError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Clean close before any byte: NotFound ("connection closed").
  ::close(fds[0]);
  Result<std::string> eof = ReadFrame(fds[1]);
  EXPECT_TRUE(eof.status().IsNotFound()) << eof.status();
  ::close(fds[1]);

  // Close mid-frame: IoError.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  uint32_t length = 100;  // promises 100 bytes, delivers 3
  ASSERT_EQ(::write(fds[0], &length, sizeof(length)), 4);
  ASSERT_EQ(::write(fds[0], "abc", 3), 3);
  ::close(fds[0]);
  Result<std::string> truncated = ReadFrame(fds[1]);
  EXPECT_TRUE(truncated.status().IsIoError()) << truncated.status();
  ::close(fds[1]);
}

TEST(ProtocolTest, OversizedLengthPrefixRejectedWithoutAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds[0], &huge, sizeof(huge)), 4);
  Result<std::string> result = ReadFrame(fds[1]);
  EXPECT_TRUE(result.status().IsIoError()) << result.status();
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_FALSE(WriteFrame(-1, std::string(10, 'x')).ok());
}

}  // namespace
}  // namespace tgraph::server
