#include "dataflow/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

#include "dataflow/context.h"

namespace tgraph::dataflow {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 100;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> inside{false};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.Submit([&] {
    inside = pool.InWorkerThread();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_TRUE(inside.load());
}

TEST(ExecutionContextTest, ParallelForRunsAllIndices) {
  ExecutionContext ctx({.num_workers = 3, .default_parallelism = 6});
  std::vector<std::atomic<int>> hits(64);
  ctx.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ExecutionContextTest, ParallelForZeroIsNoop) {
  ExecutionContext ctx({.num_workers = 1});
  ctx.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ExecutionContextTest, NestedParallelForDegradesInline) {
  ExecutionContext ctx({.num_workers = 1, .default_parallelism = 2});
  std::atomic<int> total{0};
  // With one worker, a nested ParallelFor that queued tasks would deadlock;
  // it must run inline instead.
  ctx.ParallelFor(2, [&](size_t) {
    ctx.ParallelFor(3, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 6);
}

TEST(ExecutionContextTest, MetricsAccumulate) {
  ExecutionContext ctx({.num_workers = 2, .default_parallelism = 2});
  ctx.ParallelFor(5, [](size_t) {});
  EXPECT_EQ(ctx.metrics().stages_executed.load(), 1);
  EXPECT_EQ(ctx.metrics().tasks_executed.load(), 5);
  ctx.metrics().Reset();
  EXPECT_EQ(ctx.metrics().stages_executed.load(), 0);
}

TEST(ExecutionContextTest, DefaultParallelismDerivedFromWorkers) {
  ExecutionContext ctx({.num_workers = 3});
  EXPECT_EQ(ctx.num_workers(), 3);
  EXPECT_EQ(ctx.default_parallelism(), 6);
}

}  // namespace
}  // namespace tgraph::dataflow
