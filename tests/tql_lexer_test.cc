#include "tql/lexer.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tgraph::tql {
namespace {

std::vector<Token> MustTokenize(const std::string& input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  TG_CHECK(tokens.ok()) << tokens.status();
  return *tokens;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  std::vector<Token> tokens = MustTokenize("AZOOM g BY first_name");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
  }
  EXPECT_EQ(tokens[0].text, "AZOOM");
  EXPECT_EQ(tokens[3].text, "first_name");
}

TEST(LexerTest, Numbers) {
  std::vector<Token> tokens = MustTokenize("42 -7 0.5 -0.25");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, -0.25);
}

TEST(LexerTest, Strings) {
  std::vector<Token> tokens = MustTokenize("'hello' '' 'it''s'");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "");
  EXPECT_EQ(tokens[2].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsInvalidArgument());
}

TEST(LexerTest, Symbols) {
  std::vector<Token> tokens = MustTokenize("; ( ) , = != < <= > >=");
  ASSERT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[5].text, "!=");
  EXPECT_EQ(tokens[7].text, "<=");
  EXPECT_EQ(tokens[9].text, ">=");
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  std::vector<Token> tokens =
      MustTokenize("LOAD -- this is ignored\n'x' AS g");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "LOAD");
  EXPECT_EQ(tokens[1].type, TokenType::kString);
}

TEST(LexerTest, MinusBeforeNonDigitFails) {
  EXPECT_TRUE(Tokenize("a - b").status().IsInvalidArgument());
}

TEST(LexerTest, PositionsRecorded) {
  std::vector<Token> tokens = MustTokenize("ab  cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

TEST(LexerTest, MalformedNumberFails) {
  EXPECT_TRUE(Tokenize("1.2.3").status().IsInvalidArgument());
}

}  // namespace
}  // namespace tgraph::tql
