#include "tgraph/slice.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::CanonicalTopology;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

TEST(SliceVeTest, ClipsAndDrops) {
  VeGraph sliced = SliceVe(Figure1(), Interval(3, 8));
  EXPECT_EQ(sliced.lifetime(), Interval(3, 8));
  TG_CHECK_OK(ValidateVe(sliced));
  for (const VeVertex& v : sliced.vertices().Collect()) {
    EXPECT_TRUE(Interval(3, 8).Contains(v.interval));
  }
  // e2 [7,9) clips to [7,8); e1 [2,7) clips to [3,7).
  std::map<EdgeId, Interval> edges;
  for (const VeEdge& e : sliced.edges().Collect()) edges[e.eid] = e.interval;
  EXPECT_EQ(edges[1], Interval(3, 7));
  EXPECT_EQ(edges[2], Interval(7, 8));
}

TEST(SliceTest, AllRepresentationsAgree) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    VeGraph ve = RandomTGraph(seed);
    TGraph g = TGraph::FromVe(ve, true);
    Interval range(4, 15);
    std::vector<std::string> expected = Canonical(g.Slice(range));
    for (Representation rep : {Representation::kOg, Representation::kRg}) {
      TGraph sliced = g.As(rep)->Slice(range);
      EXPECT_EQ(Canonical(sliced), expected)
          << RepresentationName(rep) << " seed " << seed;
    }
    // OGC: topology-only comparison.
    TGraph ogc_sliced = g.As(Representation::kOgc)->Slice(range);
    EXPECT_EQ(CanonicalTopology(ogc_sliced.As(Representation::kVe)->ve()),
              CanonicalTopology(g.Slice(range).ve()))
        << "OGC seed " << seed;
  }
}

TEST(SliceTest, SliceOfSliceComposes) {
  TGraph g = TGraph::FromVe(RandomTGraph(64), true);
  EXPECT_EQ(Canonical(g.Slice(Interval(2, 16)).Slice(Interval(5, 10))),
            Canonical(g.Slice(Interval(5, 10))));
}

TEST(SliceTest, FullRangeIsIdentity) {
  VeGraph ve = Figure1();
  TGraph g = TGraph::FromVe(ve, true);
  EXPECT_EQ(Canonical(g.Slice(Interval(0, 100))), Canonical(g));
}

TEST(SliceTest, EmptyRangeGivesEmptyGraph) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  TGraph sliced = g.Slice(Interval(100, 200));
  EXPECT_EQ(sliced.NumVertexRecords(), 0);
  EXPECT_EQ(sliced.NumEdgeRecords(), 0);
}

TEST(SliceTest, SlicedGraphIsValidAndZoomable) {
  TGraph g = TGraph::FromVe(RandomTGraph(65), true);
  TGraph sliced = g.Slice(Interval(3, 12));
  TG_CHECK_OK(ValidateVe(sliced.ve()));
  // Slicing composes with the zoom operators.
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator("cluster", "key",
                                   {{"members", AggKind::kCount, ""}});
  Result<TGraph> zoomed = sliced.AZoom(spec);
  ASSERT_TRUE(zoomed.ok());
  TG_CHECK_OK(ValidateVe(zoomed->Coalesce().ve()));
}

TEST(SliceOgTest, EmbeddedCopiesClipped) {
  OgGraph sliced = SliceOg(VeToOg(Figure1()), Interval(3, 8));
  for (const OgEdge& e : sliced.edges().Collect()) {
    EXPECT_TRUE(Interval(3, 8).Contains(HistorySpan(e.history)));
    EXPECT_TRUE(Interval(3, 8).Contains(HistorySpan(e.v1.history)));
    EXPECT_TRUE(Interval(3, 8).Contains(HistorySpan(e.v2.history)));
  }
  TG_CHECK_OK(ValidateOg(sliced));
}

TEST(SliceOgcTest, IndexClippedAtBoundaries) {
  OgcGraph sliced = SliceOgc(VeToOgc(Figure1()), Interval(3, 8));
  // Original index [1,2),[2,5),[5,7),[7,9) -> [3,5),[5,7),[7,8).
  ASSERT_EQ(sliced.intervals().size(), 3u);
  EXPECT_EQ(sliced.intervals()[0], Interval(3, 5));
  EXPECT_EQ(sliced.intervals()[2], Interval(7, 8));
  TG_CHECK_OK(ValidateOgc(sliced));
}

}  // namespace
}  // namespace tgraph
