#include "sg/property_graph.h"

#include <gtest/gtest.h>

#include <map>

namespace tgraph::sg {
namespace {

using dataflow::Dataset;

dataflow::ExecutionContext* Ctx() {
  static auto* ctx = new dataflow::ExecutionContext(
      dataflow::ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

PropertyGraph Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  std::vector<Vertex> vertices;
  for (int64_t i = 0; i < 4; ++i) {
    vertices.push_back(Vertex{i, Properties{{"type", "n"}, {"id", i}}});
  }
  std::vector<Edge> edges = {
      {0, 0, 1, Properties{{"type", "e"}}},
      {1, 0, 2, Properties{{"type", "e"}}},
      {2, 1, 3, Properties{{"type", "e"}}},
      {3, 2, 3, Properties{{"type", "e"}}},
  };
  return PropertyGraph(Dataset<Vertex>::FromVector(Ctx(), vertices),
                       Dataset<Edge>::FromVector(Ctx(), edges));
}

TEST(PropertyGraphTest, Counts) {
  PropertyGraph g = Diamond();
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 4);
}

TEST(PropertyGraphTest, TripletsCarryBothEndpointProperties) {
  PropertyGraph g = Diamond();
  std::vector<Triplet> triplets = g.Triplets().Collect();
  ASSERT_EQ(triplets.size(), 4u);
  for (const Triplet& t : triplets) {
    EXPECT_EQ(t.src_properties.Get("id")->AsInt(), t.edge.src);
    EXPECT_EQ(t.dst_properties.Get("id")->AsInt(), t.edge.dst);
  }
}

TEST(PropertyGraphTest, MapVertices) {
  PropertyGraph g = Diamond().MapVertices([](const Vertex& v) {
    Properties p = v.properties;
    p.Set("doubled", v.vid * 2);
    return p;
  });
  for (const Vertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.properties.Get("doubled")->AsInt(), v.vid * 2);
  }
  EXPECT_EQ(g.NumEdges(), 4);  // topology unchanged
}

TEST(PropertyGraphTest, MapEdges) {
  PropertyGraph g = Diamond().MapEdges([](const Edge& e) {
    Properties p = e.properties;
    p.Set("sum", e.src + e.dst);
    return p;
  });
  for (const Edge& e : g.edges().Collect()) {
    EXPECT_EQ(e.properties.Get("sum")->AsInt(), e.src + e.dst);
  }
}

TEST(PropertyGraphTest, SubgraphRemovesDanglingEdges) {
  // Drop vertex 3: edges 2 and 3 must disappear even though epred keeps all.
  PropertyGraph g = Diamond().Subgraph(
      [](const Vertex& v) { return v.vid != 3; },
      [](const Edge&) { return true; });
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  for (const Edge& e : g.edges().Collect()) {
    EXPECT_NE(e.src, 3);
    EXPECT_NE(e.dst, 3);
  }
}

TEST(PropertyGraphTest, SubgraphEdgePredicate) {
  PropertyGraph g = Diamond().Subgraph(
      [](const Vertex&) { return true; },
      [](const Edge& e) { return e.eid % 2 == 0; });
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 2);
}

TEST(PropertyGraphTest, Degrees) {
  PropertyGraph g = Diamond();
  std::map<VertexId, int64_t> out, in, both;
  for (auto& [v, d] : g.OutDegrees().Collect()) out[v] = d;
  for (auto& [v, d] : g.InDegrees().Collect()) in[v] = d;
  for (auto& [v, d] : g.Degrees().Collect()) both[v] = d;
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(in[3], 2);
  EXPECT_EQ(both[1], 2);
  EXPECT_EQ(both[0], 2);
  EXPECT_EQ(out.count(3), 0u);  // no out-edges -> absent
}

TEST(PropertyGraphTest, MultiEdgesAreKept) {
  std::vector<Vertex> vertices = {{0, Properties{{"type", "n"}}},
                                  {1, Properties{{"type", "n"}}}};
  std::vector<Edge> edges = {{0, 0, 1, Properties{{"type", "e"}}},
                             {1, 0, 1, Properties{{"type", "e"}}}};
  PropertyGraph g(Dataset<Vertex>::FromVector(Ctx(), vertices),
                  Dataset<Edge>::FromVector(Ctx(), edges));
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.Triplets().Count(), 2);
}

}  // namespace
}  // namespace tgraph::sg
