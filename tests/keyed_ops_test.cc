#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "dataflow/dataset.h"
#include "obs/metrics.h"

namespace tgraph::dataflow {
namespace {

using KV = std::pair<int64_t, int64_t>;

ExecutionContext* Ctx() {
  static ExecutionContext* ctx = new ExecutionContext(
      ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

Dataset<KV> ModKeyed(int64_t n, int64_t mod) {
  std::vector<KV> data;
  for (int64_t i = 0; i < n; ++i) data.emplace_back(i % mod, i);
  return Dataset<KV>::FromVector(Ctx(), std::move(data));
}

TEST(KeyedOpsTest, GroupByKeyCollectsAllValues) {
  auto grouped = ModKeyed(100, 10).GroupByKey();
  std::vector<std::pair<int64_t, std::vector<int64_t>>> groups =
      grouped.Collect();
  ASSERT_EQ(groups.size(), 10u);
  for (auto& [key, values] : groups) {
    EXPECT_EQ(values.size(), 10u);
    for (int64_t v : values) EXPECT_EQ(v % 10, key);
  }
}

TEST(KeyedOpsTest, ReduceByKeySums) {
  auto sums = ModKeyed(100, 4).ReduceByKey(
      [](const int64_t& a, const int64_t& b) { return a + b; });
  std::map<int64_t, int64_t> by_key;
  for (auto& [k, v] : sums.Collect()) by_key[k] = v;
  ASSERT_EQ(by_key.size(), 4u);
  int64_t total = 0;
  for (auto& [k, v] : by_key) total += v;
  EXPECT_EQ(total, 99 * 100 / 2);
  // Key 0 holds 0+4+...+96.
  EXPECT_EQ(by_key[0], 25 * 96 / 2 + 0);
}

TEST(KeyedOpsTest, ReduceByKeySingletonKeysPassThrough) {
  std::vector<KV> data = {{1, 10}, {2, 20}};
  auto ds = Dataset<KV>::FromVector(Ctx(), data);
  auto reduced = ds.ReduceByKey(
      [](const int64_t&, const int64_t&) -> int64_t { ADD_FAILURE(); return 0; });
  EXPECT_EQ(reduced.Count(), 2);
}

TEST(KeyedOpsTest, AggregateByKeyBuildsAccumulators) {
  auto agg = ModKeyed(60, 6).AggregateByKey<std::vector<int64_t>>(
      {},
      [](std::vector<int64_t>* acc, const int64_t& v) { acc->push_back(v); },
      [](std::vector<int64_t>* acc, std::vector<int64_t>&& other) {
        acc->insert(acc->end(), other.begin(), other.end());
      });
  for (auto& [key, values] : agg.Collect()) {
    EXPECT_EQ(values.size(), 10u) << "key " << key;
  }
}

TEST(KeyedOpsTest, CountByKey) {
  auto counts = ModKeyed(90, 9).CountByKey();
  for (auto& [key, count] : counts.Collect()) {
    EXPECT_EQ(count, 10) << "key " << key;
  }
}

TEST(KeyedOpsTest, JoinInner) {
  std::vector<KV> left = {{1, 10}, {2, 20}, {3, 30}};
  std::vector<std::pair<int64_t, std::string>> right = {
      {2, "two"}, {3, "three"}, {4, "four"}};
  auto l = Dataset<KV>::FromVector(Ctx(), left);
  auto r = Dataset<std::pair<int64_t, std::string>>::FromVector(Ctx(), right);
  auto joined = l.Join<std::string>(r);
  std::map<int64_t, std::pair<int64_t, std::string>> result;
  for (auto& [k, v] : joined.Collect()) result[k] = v;
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[2], std::make_pair(int64_t{20}, std::string("two")));
  EXPECT_EQ(result[3], std::make_pair(int64_t{30}, std::string("three")));
}

TEST(KeyedOpsTest, JoinProducesCrossProductPerKey) {
  std::vector<KV> left = {{1, 10}, {1, 11}};
  std::vector<KV> right = {{1, 100}, {1, 101}, {1, 102}};
  auto l = Dataset<KV>::FromVector(Ctx(), left);
  auto r = Dataset<KV>::FromVector(Ctx(), right);
  EXPECT_EQ(l.Join<int64_t>(r).Count(), 6);
}

TEST(KeyedOpsTest, SemiJoinKeepsMatchingKeysOnly) {
  auto left = ModKeyed(100, 10);
  std::vector<KV> right = {{3, 0}, {7, 0}, {3, 1}};
  auto r = Dataset<KV>::FromVector(Ctx(), right);
  auto filtered = left.SemiJoin<int64_t>(r);
  EXPECT_EQ(filtered.Count(), 20);  // keys 3 and 7, 10 records each
  for (auto& [k, v] : filtered.Collect()) {
    EXPECT_TRUE(k == 3 || k == 7);
  }
}

TEST(KeyedOpsTest, CoGroupIncludesKeysFromEitherSide) {
  std::vector<KV> left = {{1, 10}, {1, 11}, {2, 20}};
  std::vector<KV> right = {{2, 200}, {3, 300}};
  auto l = Dataset<KV>::FromVector(Ctx(), left);
  auto r = Dataset<KV>::FromVector(Ctx(), right);
  auto cogrouped = l.CoGroup<int64_t>(r);
  std::map<int64_t, std::pair<size_t, size_t>> sizes;
  for (auto& [k, pair] : cogrouped.Collect()) {
    sizes[k] = {pair.first.size(), pair.second.size()};
  }
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[1], std::make_pair(size_t{2}, size_t{0}));
  EXPECT_EQ(sizes[2], std::make_pair(size_t{1}, size_t{1}));
  EXPECT_EQ(sizes[3], std::make_pair(size_t{0}, size_t{1}));
}

TEST(KeyedOpsTest, StringKeys) {
  std::vector<std::pair<std::string, int64_t>> data = {
      {"a", 1}, {"b", 2}, {"a", 3}};
  auto ds = Dataset<std::pair<std::string, int64_t>>::FromVector(Ctx(), data);
  auto sums = ds.ReduceByKey(
      [](const int64_t& a, const int64_t& b) { return a + b; });
  std::map<std::string, int64_t> result;
  for (auto& [k, v] : sums.Collect()) result[k] = v;
  EXPECT_EQ(result["a"], 4);
  EXPECT_EQ(result["b"], 2);
}

TEST(KeyedOpsTest, PairKeys) {
  using PairKey = std::pair<int64_t, int64_t>;
  std::vector<std::pair<PairKey, int64_t>> data = {
      {{1, 2}, 5}, {{1, 2}, 6}, {{2, 1}, 7}};
  auto ds = Dataset<std::pair<PairKey, int64_t>>::FromVector(Ctx(), data);
  EXPECT_EQ(ds.GroupByKey().Count(), 2);
}

TEST(KeyedOpsTest, LargeShuffleIsCorrect) {
  const int64_t n = 50000;
  auto sums = ModKeyed(n, 137).ReduceByKey(
      [](const int64_t& a, const int64_t& b) { return a + b; }, 16);
  int64_t total = 0;
  for (auto& [k, v] : sums.Collect()) total += v;
  EXPECT_EQ(total, (n - 1) * n / 2);
  EXPECT_EQ(sums.Count(), 137);
}

/// 90% of records share one key — a hub-vertex workload in miniature.
std::vector<KV> HubRecords(int64_t n) {
  std::vector<KV> data;
  data.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    data.emplace_back(i % 10 == 0 ? 1 + i % 7 : 0, i);
  }
  return data;
}

TEST(KeyedOpsSkewTest, HistogramRecordsHotPartitionWithoutRebalancing) {
  ExecutionContext ctx(ContextOptions{.num_workers = 2,
                                      .default_parallelism = 8,
                                      .shuffle = {.enable = false}});
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  auto grouped =
      Dataset<KV>::FromVector(&ctx, HubRecords(10000)).GroupByKey().Collect();
  EXPECT_EQ(grouped.size(), 8u);  // keys 0..7

  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  // The plain hash shuffle funnels the hot key's ~9000 records into one
  // partition, and the skew histogram must expose that.
  const obs::HistogramSnapshot& skew =
      delta.histograms.at(obs::metric_names::kShufflePartitionSize);
  EXPECT_EQ(skew.sum, 10000);
  EXPECT_GE(skew.max, 9000);
  EXPECT_EQ(delta.counters[obs::metric_names::kShuffleRebalanced], 0);
}

TEST(KeyedOpsSkewTest, RebalancingSplitsHotPartitionAndKeepsResult) {
  ExecutionContext legacy_ctx(ContextOptions{.num_workers = 2,
                                             .default_parallelism = 8,
                                             .shuffle = {.enable = false}});
  auto expected = Dataset<KV>::FromVector(&legacy_ctx, HubRecords(10000))
                      .GroupByKey()
                      .Collect();

  ExecutionContext ctx(
      ContextOptions{.num_workers = 2,
                     .default_parallelism = 8,
                     .shuffle = {.enable = true,
                                 .skew_threshold = 2.0,
                                 .max_splits = 4,
                                 .min_records = 0}});
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  auto grouped =
      Dataset<KV>::FromVector(&ctx, HubRecords(10000)).GroupByKey().Collect();

  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at(obs::metric_names::kShuffleRebalanced), 1);
  EXPECT_GE(delta.counters.at(obs::metric_names::kShuffleHotKeys), 1);
  EXPECT_GE(delta.counters.at(obs::metric_names::kShuffleSplits), 2);
  // Pre-rebalance histogram still shows the would-be hot partition...
  EXPECT_GE(
      delta.histograms.at(obs::metric_names::kShufflePartitionSize).max,
      9000);
  // ...while the actual (rebalanced) layout caps it near 9000/4 splits.
  EXPECT_LE(delta.histograms
                .at(obs::metric_names::kShufflePartitionSizeRebalanced)
                .max,
            9000 / 2);

  // And the grouped result is unchanged up to group/value order.
  auto canonicalize = [](std::vector<std::pair<int64_t, std::vector<int64_t>>>
                             groups) {
    for (auto& [key, values] : groups) std::sort(values.begin(), values.end());
    std::sort(groups.begin(), groups.end());
    return groups;
  };
  EXPECT_EQ(canonicalize(grouped), canonicalize(expected));
}

}  // namespace
}  // namespace tgraph::dataflow
