#include "storage/serde.h"

#include <gtest/gtest.h>

namespace tgraph::storage {
namespace {

TEST(SerdeTest, VarintRoundTrip) {
  for (uint64_t value : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 20,
                         1ULL << 40, ~0ULL}) {
    std::string buffer;
    PutVarint(&buffer, value);
    size_t pos = 0;
    Result<uint64_t> decoded = GetVarint(buffer, &pos);
    ASSERT_TRUE(decoded.ok()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(SerdeTest, VarintTruncationFails) {
  std::string buffer;
  PutVarint(&buffer, 1ULL << 40);
  buffer.resize(buffer.size() - 1);
  size_t pos = 0;
  EXPECT_TRUE(GetVarint(buffer, &pos).status().IsIoError());
}

TEST(SerdeTest, BytesRoundTrip) {
  std::string buffer;
  PutBytes(&buffer, "hello");
  PutBytes(&buffer, "");
  PutBytes(&buffer, std::string(1000, 'x'));
  size_t pos = 0;
  EXPECT_EQ(*GetBytes(buffer, &pos), "hello");
  EXPECT_EQ(*GetBytes(buffer, &pos), "");
  EXPECT_EQ(GetBytes(buffer, &pos)->size(), 1000u);
}

TEST(SerdeTest, Fixed64RoundTrip) {
  std::string buffer;
  PutFixed64(&buffer, 0xdeadbeefcafebabeULL);
  size_t pos = 0;
  EXPECT_EQ(*GetFixed64(buffer, &pos), 0xdeadbeefcafebabeULL);
}

TEST(SerdeTest, PropertiesRoundTrip) {
  Properties props;
  props.Set("name", "Ann");
  props.Set("count", int64_t{42});
  props.Set("score", 2.5);
  props.Set("active", true);
  std::string buffer;
  SerializeProperties(props, &buffer);
  size_t pos = 0;
  Result<Properties> decoded = DeserializeProperties(buffer, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, props);
  EXPECT_EQ(pos, buffer.size());
}

TEST(SerdeTest, EmptyPropertiesRoundTrip) {
  std::string buffer;
  SerializeProperties(Properties(), &buffer);
  size_t pos = 0;
  EXPECT_TRUE(DeserializeProperties(buffer, &pos)->empty());
}

TEST(SerdeTest, HistoryRoundTrip) {
  History history = {
      {{1, 5}, Properties{{"type", "a"}, {"v", 1}}},
      {{5, 9}, Properties{{"type", "a"}, {"v", 2}}},
  };
  std::string buffer;
  SerializeHistory(history, &buffer);
  size_t pos = 0;
  Result<History> decoded = DeserializeHistory(buffer, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, history);
}

TEST(SerdeTest, NegativeTimePointsSurvive) {
  History history = {{{-10, -2}, Properties{{"type", "a"}}}};
  std::string buffer;
  SerializeHistory(history, &buffer);
  size_t pos = 0;
  EXPECT_EQ((*DeserializeHistory(buffer, &pos))[0].interval, Interval(-10, -2));
}

TEST(SerdeTest, BitsetRoundTrip) {
  Bitset bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  std::string buffer;
  SerializeBitset(bits, &buffer);
  size_t pos = 0;
  Result<Bitset> decoded = DeserializeBitset(buffer, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bits);
}

TEST(SerdeTest, CorruptValueTagFails) {
  std::string buffer;
  PutVarint(&buffer, 1);          // one entry
  PutBytes(&buffer, "key");
  buffer.push_back(static_cast<char>(99));  // bogus tag
  size_t pos = 0;
  EXPECT_TRUE(DeserializeProperties(buffer, &pos).status().IsIoError());
}

// --- malformed-input regression tests: these payloads now arrive off a
// socket, so every decoder must reject adversarial bytes with an error
// instead of over-reading, over-allocating, or wrapping arithmetic. ------

TEST(SerdeMalformedTest, OverlongVarintRejected) {
  // Ten bytes whose final byte sets bits beyond the 64th: the encoding
  // would silently lose bits if accepted.
  std::string buffer(9, static_cast<char>(0xff));
  buffer.push_back(static_cast<char>(0x7f));
  size_t pos = 0;
  EXPECT_TRUE(GetVarint(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, MaxVarintStillDecodes) {
  std::string buffer;
  PutVarint(&buffer, ~0ULL);
  size_t pos = 0;
  EXPECT_EQ(*GetVarint(buffer, &pos), ~0ULL);
}

TEST(SerdeMalformedTest, HugeByteLengthPrefixRejected) {
  // A length prefix of UINT64_MAX must not wrap `pos + length` past the
  // bounds check.
  std::string buffer;
  PutVarint(&buffer, ~0ULL);
  buffer += "abc";
  size_t pos = 0;
  EXPECT_TRUE(GetBytes(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, TruncatedByteStringRejected) {
  std::string buffer;
  PutVarint(&buffer, 100);  // promises 100 bytes
  buffer += "short";
  size_t pos = 0;
  EXPECT_TRUE(GetBytes(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, ImplausiblePropertyCountRejected) {
  std::string buffer;
  PutVarint(&buffer, 1'000'000'000);  // a billion entries in ten bytes
  buffer += "x";
  size_t pos = 0;
  EXPECT_TRUE(DeserializeProperties(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, ImplausibleHistoryCountRejected) {
  // The count must be refused before reserve(), or the allocation itself
  // is the attack.
  std::string buffer;
  PutVarint(&buffer, ~0ULL >> 1);
  buffer += "xxxx";
  size_t pos = 0;
  EXPECT_TRUE(DeserializeHistory(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, ImplausibleBitsetSizeRejected) {
  std::string buffer;
  PutVarint(&buffer, ~0ULL);  // (size + 63) / 64 would wrap to 0
  size_t pos = 0;
  EXPECT_TRUE(DeserializeBitset(buffer, &pos).status().IsIoError());
}

TEST(SerdeMalformedTest, TruncatedHistoryItemRejected) {
  History history = {{{1, 5}, Properties{{"type", "a"}}}};
  std::string buffer;
  SerializeHistory(history, &buffer);
  for (size_t cut = 1; cut < buffer.size(); ++cut) {
    std::string truncated = buffer.substr(0, cut);
    size_t pos = 0;
    Result<History> decoded = DeserializeHistory(truncated, &pos);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(SerdeMalformedTest, RandomGarbageNeverCrashes) {
  // Deterministic pseudo-random fuzz: decoders must fail cleanly (or
  // succeed) on arbitrary bytes, never crash.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    size_t len = next() % 64;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(next() & 0xff));
    }
    size_t pos = 0;
    (void)DeserializeProperties(garbage, &pos);
    pos = 0;
    (void)DeserializeHistory(garbage, &pos);
    pos = 0;
    (void)DeserializeBitset(garbage, &pos);
  }
}

}  // namespace
}  // namespace tgraph::storage
