#include "tgraph/zoom_spec.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(SkolemTest, DeterministicAndPositive) {
  EXPECT_EQ(HashSkolem(PropertyValue("MIT")), HashSkolem(PropertyValue("MIT")));
  EXPECT_NE(HashSkolem(PropertyValue("MIT")), HashSkolem(PropertyValue("CMU")));
  EXPECT_GE(HashSkolem(PropertyValue("x")), 0);
  EXPECT_GE(HashSkolem(PropertyValue(int64_t{-5})), 0);
}

TEST(GroupByPropertyTest, ReturnsValueOrNullopt) {
  GroupFn group = GroupByProperty("school");
  Properties with{{"school", "MIT"}, {"type", "person"}};
  Properties without{{"type", "person"}};
  EXPECT_EQ(group(1, with), PropertyValue("MIT"));
  EXPECT_EQ(group(1, without), std::nullopt);
}

class AggregatorTest : public ::testing::Test {
 protected:
  Properties Input(int64_t weight) {
    return Properties{{"type", "person"}, {"weight", weight}};
  }
};

TEST_F(AggregatorTest, CountInitAndMerge) {
  VertexAggregator agg =
      MakeAggregator("school", "name", {{"students", AggKind::kCount, ""}});
  Properties a = agg.init(PropertyValue("MIT"), 1, Input(10));
  EXPECT_EQ(a.Get("type")->AsString(), "school");
  EXPECT_EQ(a.Get("name")->AsString(), "MIT");
  EXPECT_EQ(a.Get("students")->AsInt(), 1);
  Properties b = agg.init(PropertyValue("MIT"), 2, Input(20));
  Properties merged = agg.merge(a, b);
  EXPECT_EQ(merged.Get("students")->AsInt(), 2);
  EXPECT_FALSE(static_cast<bool>(agg.finalize));
}

TEST_F(AggregatorTest, SumMinMax) {
  VertexAggregator agg = MakeAggregator(
      "g", "key",
      {{"total", AggKind::kSum, "weight"},
       {"lo", AggKind::kMin, "weight"},
       {"hi", AggKind::kMax, "weight"}});
  Properties a = agg.init(PropertyValue("k"), 1, Input(10));
  Properties b = agg.init(PropertyValue("k"), 2, Input(3));
  Properties c = agg.init(PropertyValue("k"), 3, Input(25));
  Properties merged = agg.merge(agg.merge(a, b), c);
  EXPECT_EQ(merged.Get("total")->AsInt(), 38);
  EXPECT_EQ(merged.Get("lo")->AsInt(), 3);
  EXPECT_EQ(merged.Get("hi")->AsInt(), 25);
}

TEST_F(AggregatorTest, MergeIsCommutative) {
  VertexAggregator agg = MakeAggregator(
      "g", "key",
      {{"total", AggKind::kSum, "weight"}, {"n", AggKind::kCount, ""}});
  Properties a = agg.init(PropertyValue("k"), 1, Input(7));
  Properties b = agg.init(PropertyValue("k"), 2, Input(9));
  EXPECT_EQ(agg.merge(a, b), agg.merge(b, a));
}

TEST_F(AggregatorTest, MergeIsAssociative) {
  VertexAggregator agg = MakeAggregator(
      "g", "key", {{"total", AggKind::kSum, "weight"}});
  Properties a = agg.init(PropertyValue("k"), 1, Input(1));
  Properties b = agg.init(PropertyValue("k"), 2, Input(2));
  Properties c = agg.init(PropertyValue("k"), 3, Input(4));
  EXPECT_EQ(agg.merge(agg.merge(a, b), c), agg.merge(a, agg.merge(b, c)));
}

TEST_F(AggregatorTest, AverageUsesScratchAndFinalize) {
  VertexAggregator agg =
      MakeAggregator("g", "key", {{"mean", AggKind::kAvg, "weight"}});
  Properties a = agg.init(PropertyValue("k"), 1, Input(10));
  Properties b = agg.init(PropertyValue("k"), 2, Input(20));
  Properties c = agg.init(PropertyValue("k"), 3, Input(60));
  Properties merged = agg.merge(agg.merge(a, b), c);
  ASSERT_TRUE(static_cast<bool>(agg.finalize));
  Properties final = agg.finalize(merged);
  EXPECT_DOUBLE_EQ(final.Get("mean")->AsDouble(), 30.0);
  // Scratch keys must not leak.
  for (const auto& [key, value] : final.entries()) {
    EXPECT_EQ(key.find("__avg"), std::string::npos) << key;
  }
}

TEST_F(AggregatorTest, MissingInputPropertyIsSkipped) {
  VertexAggregator agg =
      MakeAggregator("g", "key", {{"total", AggKind::kSum, "weight"}});
  Properties no_weight{{"type", "person"}};
  Properties a = agg.init(PropertyValue("k"), 1, no_weight);
  EXPECT_FALSE(a.Has("total"));
  Properties b = agg.init(PropertyValue("k"), 2, Input(5));
  // One side missing: the present side's value survives, either order.
  EXPECT_EQ(agg.merge(a, b).Get("total")->AsInt(), 5);
  EXPECT_EQ(agg.merge(b, a).Get("total")->AsInt(), 5);
}

TEST_F(AggregatorTest, DoubleSumPromotes) {
  VertexAggregator agg =
      MakeAggregator("g", "key", {{"total", AggKind::kSum, "weight"}});
  Properties a = agg.init(PropertyValue("k"), 1,
                          Properties{{"type", "t"}, {"weight", 1.5}});
  Properties b = agg.init(PropertyValue("k"), 2, Input(2));
  EXPECT_DOUBLE_EQ(agg.merge(a, b).Get("total")->AsNumber(), 3.5);
}

TEST_F(AggregatorTest, EmptyGroupPropertyOmitsKeyStamp) {
  VertexAggregator agg = MakeAggregator("g", "", {});
  Properties a = agg.init(PropertyValue("k"), 1, Input(1));
  EXPECT_EQ(a.size(), 1u);  // only type
  EXPECT_EQ(a.Get("type")->AsString(), "g");
}

}  // namespace
}  // namespace tgraph
