#include "tgraph/wzoom.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Figure1;

WZoomSpec Quarterly(Quantifier vq, Quantifier eq) {
  WZoomSpec spec{WindowSpec::TimePoints(3), vq, eq, {}, {}};
  spec.vertex_resolve.default_resolver = Resolver::kLast;
  return spec;
}

std::map<VertexId, std::vector<Interval>> VertexIntervals(const VeGraph& g) {
  std::map<VertexId, std::vector<Interval>> result;
  for (const VeVertex& v : g.vertices().Collect()) {
    result[v.vid].push_back(v.interval);
  }
  for (auto& [vid, intervals] : result) {
    std::sort(intervals.begin(), intervals.end());
  }
  return result;
}

// Figure 3: windows [1,4), [4,7), [7,10); nodes=all, edges=all.
void ExpectFigure3(const VeGraph& zoomed) {
  auto per = VertexIntervals(zoomed);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[1], std::vector<Interval>{Interval(1, 7)});  // Ann: W1+W2
  EXPECT_EQ(per[2], std::vector<Interval>{Interval(4, 7)});  // Bob: W2 only
  EXPECT_EQ(per[3], std::vector<Interval>{Interval(1, 7)});  // Cat: W1+W2
  std::vector<VeEdge> edges = zoomed.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);  // e2 never spans a full window
  EXPECT_EQ(edges[0].eid, 1);
  EXPECT_EQ(edges[0].interval, Interval(4, 7));
}

TEST(WZoomVeTest, ReproducesFigure3AllAll) {
  VeGraph zoomed =
      WZoomVe(Figure1(), Quarterly(Quantifier::All(), Quantifier::All()));
  ExpectFigure3(zoomed);
  TG_CHECK_OK(ValidateVe(zoomed));
  TG_CHECK_OK(CheckCoalescedVe(zoomed));
}

TEST(WZoomOgTest, ReproducesFigure3AllAll) {
  OgGraph zoomed =
      WZoomOg(VeToOg(Figure1()), Quarterly(Quantifier::All(), Quantifier::All()));
  ExpectFigure3(OgToVe(zoomed).Coalesce());
}

TEST(WZoomRgTest, ReproducesFigure3AllAll) {
  RgGraph zoomed =
      WZoomRg(VeToRg(Figure1()), Quarterly(Quantifier::All(), Quantifier::All()));
  ExpectFigure3(RgToVe(zoomed));
}

TEST(WZoomOgcTest, ReproducesFigure3Topology) {
  OgcGraph zoomed = WZoomOgc(VeToOgc(Figure1()),
                             Quarterly(Quantifier::All(), Quantifier::All()));
  ASSERT_EQ(zoomed.intervals().size(), 3u);
  EXPECT_EQ(zoomed.intervals()[2], Interval(7, 10));
  std::map<VertexId, std::string> presence;
  for (const OgcVertex& v : zoomed.vertices().Collect()) {
    presence[v.vid] = v.presence.ToString();
  }
  EXPECT_EQ(presence[1], "[1, 1, 0]");
  EXPECT_EQ(presence[2], "[0, 1, 0]");
  EXPECT_EQ(presence[3], "[1, 1, 0]");
  std::vector<OgcEdge> edges = zoomed.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].presence.ToString(), "[0, 1, 0]");
}

TEST(WZoomVeTest, ExistsQuantifierExtendsToFullWindows) {
  // Example 2.3 under exists: Cat gets [1,10); Bob exists in all three
  // windows (the paper's prose says [1,7) for Bob but its own rule — Bob
  // covers part of W3 exactly like Cat — gives [1,10), split at 4 where his
  // resolved attributes change).
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::Exists(),
                 Quantifier::Exists(), {}, {}};
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  auto per = VertexIntervals(zoomed);
  EXPECT_EQ(per[3], std::vector<Interval>{Interval(1, 10)});
  EXPECT_EQ(per[1], std::vector<Interval>{Interval(1, 7)});
  EXPECT_EQ(per[2], (std::vector<Interval>{Interval(1, 4), Interval(4, 10)}));
  std::map<EdgeId, Interval> edges;
  for (const VeEdge& e : zoomed.edges().Collect()) edges[e.eid] = e.interval;
  EXPECT_EQ(edges[1], Interval(1, 7));
  EXPECT_EQ(edges[2], Interval(7, 10));
}

TEST(WZoomVeTest, MostQuantifier) {
  // Bob [2,5) in W1=[1,4): covers 2 of 3 > 0.5 -> kept under most.
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::Most(),
                 Quantifier::Most(), {}, {}};
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  auto per = VertexIntervals(zoomed);
  ASSERT_EQ(per[2].size(), 2u);
  EXPECT_EQ(per[2][0], Interval(1, 4));
}

TEST(WZoomVeTest, DanglingEdgeRemovalWhenVertexStricter) {
  // nodes=all, edges=exists: e2 [7,9) exists in W3 but Bob fails all in W3;
  // the semijoin must drop e2 (and e1 outside W2).
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::All(),
                 Quantifier::Exists(), {}, {}};
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  std::vector<VeEdge> edges = zoomed.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].eid, 1);
  EXPECT_EQ(edges[0].interval, Interval(4, 7));
  TG_CHECK_OK(ValidateVe(zoomed));
}

TEST(WZoomOgTest, DanglingEdgeRemovalMatchesVe) {
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::All(),
                 Quantifier::Exists(), {}, {}};
  VeGraph from_og = OgToVe(WZoomOg(VeToOg(Figure1()), spec)).Coalesce();
  VeGraph from_ve = WZoomVe(Figure1(), spec);
  EXPECT_EQ(testing::Canonical(from_og), testing::Canonical(from_ve));
}

TEST(WZoomOgcTest, DanglingEdgeRemovalViaBitsetAnd) {
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::All(),
                 Quantifier::Exists(), {}, {}};
  OgcGraph zoomed = WZoomOgc(VeToOgc(Figure1()), spec);
  std::vector<OgcEdge> edges = zoomed.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].eid, 1);
  EXPECT_EQ(edges[0].presence.ToString(), "[0, 1, 0]");
}

TEST(WZoomVeTest, WindowFinerThanResolutionIsIdentity) {
  // 1-point windows return the input TGraph (Section 2.3).
  WZoomSpec spec{WindowSpec::TimePoints(1), Quantifier::All(),
                 Quantifier::All(), {}, {}};
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  EXPECT_EQ(testing::Canonical(zoomed), testing::Canonical(Figure1()));
}

TEST(WZoomVeTest, ChangeBasedWindows) {
  // Every 2 change points of Figure 1 ({1,2,5,7,9}): windows [1,5), [5,9).
  WZoomSpec spec{WindowSpec::Changes(2), Quantifier::Exists(),
                 Quantifier::Exists(), {}, {}};
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  auto per = VertexIntervals(zoomed);
  EXPECT_EQ(per[1], std::vector<Interval>{Interval(1, 9)});  // Ann exists in both
  EXPECT_EQ(per[3], std::vector<Interval>{Interval(1, 9)});
}

TEST(WZoomVeTest, LastResolverPicksLatestValue) {
  WZoomSpec spec = Quarterly(Quantifier::Exists(), Quantifier::Exists());
  VeGraph zoomed = WZoomVe(Figure1(), spec);
  // Bob in W1 [1,4): only the school-less state; in W2 school=CMU.
  for (const VeVertex& v : zoomed.vertices().Collect()) {
    if (v.vid == 2 && v.interval.Contains(5)) {
      EXPECT_EQ(v.properties.Get("school")->AsString(), "CMU");
    }
  }
}

TEST(WZoomVeTest, FirstResolverPicksEarliestValue) {
  // Vertex with value change inside one window.
  std::vector<VeVertex> vertices = {
      {1, {0, 2}, Properties{{"type", "n"}, {"v", 1}}},
      {1, {2, 4}, Properties{{"type", "n"}, {"v", 2}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, {});
  WZoomSpec spec{WindowSpec::TimePoints(4), Quantifier::All(),
                 Quantifier::All(), {}, {}};
  spec.vertex_resolve.default_resolver = Resolver::kFirst;
  VeGraph zoomed = WZoomVe(g, spec);
  std::vector<VeVertex> result = zoomed.vertices().Collect();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].properties.Get("v")->AsInt(), 1);

  spec.vertex_resolve.default_resolver = Resolver::kLast;
  result = WZoomVe(g, spec).vertices().Collect();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].properties.Get("v")->AsInt(), 2);
}

TEST(WZoomFacadeTest, LazyCoalescingBeforeWZoom) {
  // An uncoalesced input must be coalesced by the facade before wZoom^T;
  // a vertex split into two value-equivalent states covering a window must
  // pass nodes=all.
  std::vector<VeVertex> vertices = {
      {1, {0, 2}, Properties{{"type", "n"}}},
      {1, {2, 6}, Properties{{"type", "n"}}},  // value-equivalent, adjacent
  };
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, {});
  TGraph facade = TGraph::FromVe(g, /*coalesced=*/false);
  WZoomSpec spec{WindowSpec::TimePoints(6), Quantifier::All(),
                 Quantifier::All(), {}, {}};
  Result<TGraph> zoomed = facade.WZoom(spec);
  ASSERT_TRUE(zoomed.ok());
  EXPECT_EQ(zoomed->NumVertexRecords(), 1);
  EXPECT_TRUE(zoomed->coalesced());
}

TEST(WZoomFacadeTest, RejectsNonPositiveWindow) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  WZoomSpec spec{WindowSpec::TimePoints(0), Quantifier::All(),
                 Quantifier::All(), {}, {}};
  EXPECT_TRUE(g.WZoom(spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tgraph
