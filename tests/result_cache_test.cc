#include "server/result_cache.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace tgraph::server {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

TEST(ResultCacheTest, GetAfterPutHitsAndTracksBytes) {
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  EXPECT_EQ(cache.Get("k"), std::nullopt);
  cache.Put("k", "value");
  ASSERT_TRUE(cache.Get("k").has_value());
  EXPECT_EQ(*cache.Get("k"), "value");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), std::string("k").size() + std::string("value").size());
}

TEST(ResultCacheTest, PutReplacesExistingEntry) {
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("k", "old");
  cache.Put("k", "newer");
  EXPECT_EQ(*cache.Get("k"), "newer");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 1u + 5u);
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Each entry is 1 (key) + 9 (value) = 10 bytes; budget fits three.
  ResultCache cache(ResultCacheOptions{30, 0, nullptr});
  cache.Put("a", "123456789");
  cache.Put("b", "123456789");
  cache.Put("c", "123456789");
  ASSERT_TRUE(cache.Get("a").has_value());  // a is now most-recent
  cache.Put("d", "123456789");              // evicts b, the LRU
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
  EXPECT_LE(cache.bytes(), 30u);
}

TEST(ResultCacheTest, OversizedValueIsNotAdmitted) {
  ResultCache cache(ResultCacheOptions{10, 0, nullptr});
  cache.Put("small", "x");
  cache.Put("big", std::string(100, 'y'));  // would not fit even alone
  EXPECT_FALSE(cache.Get("big").has_value());
  // Crucially, the oversized put must not have flushed what was there.
  EXPECT_TRUE(cache.Get("small").has_value());
}

TEST(ResultCacheTest, TtlExpiresThroughInjectedClock) {
  int64_t now = 1000;
  ResultCacheOptions options;
  options.max_bytes = 1024;
  options.ttl_ms = 50;
  options.now_ms = [&now] { return now; };
  ResultCache cache(options);

  cache.Put("k", "value");
  now += 49;
  EXPECT_TRUE(cache.Get("k").has_value());  // still fresh
  now += 1;
  int64_t expirations_before =
      CounterValue(obs::metric_names::kCacheExpirations);
  EXPECT_FALSE(cache.Get("k").has_value());  // exactly at TTL: expired
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheExpirations),
            expirations_before + 1);
}

TEST(ResultCacheTest, CountersTrackHitsMissesEvictions) {
  int64_t hits_before = CounterValue(obs::metric_names::kCacheHits);
  int64_t misses_before = CounterValue(obs::metric_names::kCacheMisses);
  int64_t evictions_before = CounterValue(obs::metric_names::kCacheEvictions);

  ResultCache cache(ResultCacheOptions{20, 0, nullptr});
  cache.Get("absent");                   // miss
  cache.Put("a", "123456789");           // 10 bytes
  cache.Get("a");                        // hit
  cache.Put("b", "123456789");           // 10 bytes, fits; b is now MRU
  cache.Put("c", "123456789");           // evicts a, the LRU
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheHits), hits_before + 1);
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheMisses), misses_before + 1);
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheEvictions),
            evictions_before + 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("b").has_value());
}

TEST(ResultCacheTest, ClearResetsEverything) {
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(ResultCacheTest, EvictTagDropsOnlyTaggedEntries) {
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("qa", "ra", {"/data/a"});
  cache.Put("qb", "rb", {"/data/b"});
  cache.Put("qplain", "rplain");  // untagged: no dataset dependency
  int64_t evictions_before = CounterValue(obs::metric_names::kCacheEvictions);

  cache.EvictTag("/data/a");

  EXPECT_FALSE(cache.Get("qa").has_value());
  EXPECT_TRUE(cache.Get("qb").has_value());
  EXPECT_TRUE(cache.Get("qplain").has_value());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(),
            std::string("qb").size() + std::string("rb").size() +
                std::string("qplain").size() + std::string("rplain").size());
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheEvictions),
            evictions_before + 1);
}

TEST(ResultCacheTest, EvictTagMatchesAnyTagOfMultiGraphResults) {
  // A query that LOADs two graphs is tagged with both; ingesting into
  // either one must invalidate it.
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("join", "r", {"/data/a", "/data/b"});
  cache.Put("solo", "r", {"/data/b"});
  cache.EvictTag("/data/a");
  EXPECT_FALSE(cache.Get("join").has_value());
  EXPECT_TRUE(cache.Get("solo").has_value());
}

TEST(ResultCacheTest, ViewTagsEvictOnlyThatViewsEntries) {
  // View results are tagged "view:<name>" (alongside the source graph's
  // directory tag): DROP VIEW a / a fallback rebuild of a must drop a's
  // entries and nothing else — not view b's, not plain graph results.
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("qa", "ra", {"/data/live", "view:a"});
  cache.Put("qa2", "ra2", {"/data/live", "view:a"});
  cache.Put("qb", "rb", {"/data/live", "view:b"});
  cache.Put("qgraph", "rg", {"/data/live"});

  cache.EvictTag("view:a");

  EXPECT_FALSE(cache.Get("qa").has_value());
  EXPECT_FALSE(cache.Get("qa2").has_value());
  EXPECT_TRUE(cache.Get("qb").has_value());
  EXPECT_TRUE(cache.Get("qgraph").has_value());
  EXPECT_EQ(cache.entries(), 2u);

  // Ingesting into the source still drops everything that read it,
  // views included (they are tagged with the source directory too).
  cache.EvictTag("/data/live");
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, EvictTagOnAbsentTagIsANoOp) {
  ResultCache cache(ResultCacheOptions{1024, 0, nullptr});
  cache.Put("k", "v", {"/data/a"});
  cache.EvictTag("/data/never-loaded");
  EXPECT_TRUE(cache.Get("k").has_value());
  EXPECT_EQ(cache.entries(), 1u);
}

}  // namespace
}  // namespace tgraph::server
