#include "tgraph/coalesce.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

Properties P(int64_t v) { return Properties{{"type", "n"}, {"v", v}}; }

TEST(CoalesceHistoryTest, MergesAdjacentEqualStates) {
  History h = {{{1, 3}, P(1)}, {{3, 5}, P(1)}, {{5, 7}, P(2)}};
  History c = CoalesceHistory(h);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].interval, Interval(1, 5));
  EXPECT_EQ(c[0].properties, P(1));
  EXPECT_EQ(c[1].interval, Interval(5, 7));
}

TEST(CoalesceHistoryTest, SortsBeforeMerging) {
  History h = {{{5, 7}, P(1)}, {{1, 3}, P(1)}, {{3, 5}, P(1)}};
  History c = CoalesceHistory(h);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].interval, Interval(1, 7));
}

TEST(CoalesceHistoryTest, KeepsGapsAndValueChanges) {
  History h = {{{1, 3}, P(1)}, {{4, 6}, P(1)}, {{6, 8}, P(2)}};
  History c = CoalesceHistory(h);
  ASSERT_EQ(c.size(), 3u);
}

TEST(CoalesceHistoryTest, DropsEmptyIntervals) {
  History h = {{{3, 3}, P(1)}, {{5, 2}, P(1)}};
  EXPECT_TRUE(CoalesceHistory(h).empty());
}

TEST(CoalesceHistoryTest, MergesOverlappingEqualStates) {
  History h = {{{1, 5}, P(1)}, {{3, 8}, P(1)}};
  History c = CoalesceHistory(h);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].interval, Interval(1, 8));
}

TEST(CoalesceHistoryTest, Idempotent) {
  History h = {{{9, 12}, P(3)}, {{1, 3}, P(1)}, {{3, 9}, P(1)}};
  History once = CoalesceHistory(h);
  History twice = CoalesceHistory(once);
  EXPECT_EQ(once, twice);
}

TEST(IsCoalescedHistoryTest, DetectsViolations) {
  EXPECT_TRUE(IsCoalescedHistory({}));
  EXPECT_TRUE(IsCoalescedHistory({{{1, 3}, P(1)}, {{3, 5}, P(2)}}));
  EXPECT_TRUE(IsCoalescedHistory({{{1, 3}, P(1)}, {{4, 5}, P(1)}}));  // gap
  // Adjacent equal -> not coalesced.
  EXPECT_FALSE(IsCoalescedHistory({{{1, 3}, P(1)}, {{3, 5}, P(1)}}));
  // Overlap -> not coalesced.
  EXPECT_FALSE(IsCoalescedHistory({{{1, 4}, P(1)}, {{3, 5}, P(2)}}));
  // Out of order -> not coalesced.
  EXPECT_FALSE(IsCoalescedHistory({{{4, 5}, P(1)}, {{1, 3}, P(2)}}));
  // Empty interval -> not coalesced.
  EXPECT_FALSE(IsCoalescedHistory({{{3, 3}, P(1)}}));
}

TEST(MergeHistoriesTest, DisjointPassThrough) {
  PropertiesMerge merge = [](const Properties& a, const Properties&) {
    return a;
  };
  History m = MergeHistories({{{1, 3}, P(1)}}, {{{5, 7}, P(2)}}, merge);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].interval, Interval(1, 3));
  EXPECT_EQ(m[1].interval, Interval(5, 7));
}

TEST(MergeHistoriesTest, OverlapInvokesMerge) {
  PropertiesMerge merge = [](const Properties& a, const Properties& b) {
    Properties out = a;
    out.Set("v", a.Get("v")->AsInt() + b.Get("v")->AsInt());
    return out;
  };
  History m = MergeHistories({{{1, 6}, P(1)}}, {{{4, 9}, P(10)}}, merge);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].interval, Interval(1, 4));
  EXPECT_EQ(m[0].properties.Get("v")->AsInt(), 1);
  EXPECT_EQ(m[1].interval, Interval(4, 6));
  EXPECT_EQ(m[1].properties.Get("v")->AsInt(), 11);
  EXPECT_EQ(m[2].interval, Interval(6, 9));
  EXPECT_EQ(m[2].properties.Get("v")->AsInt(), 10);
}

TEST(MergeHistoriesTest, AssociativeForCommutativeMerge) {
  PropertiesMerge merge = [](const Properties& a, const Properties& b) {
    Properties out = a;
    out.Set("v", a.Get("v")->AsInt() + b.Get("v")->AsInt());
    return out;
  };
  History a = {{{0, 4}, P(1)}};
  History b = {{{2, 6}, P(2)}};
  History c = {{{3, 8}, P(4)}};
  History left = MergeHistories(MergeHistories(a, b, merge), c, merge);
  History right = MergeHistories(a, MergeHistories(b, c, merge), merge);
  EXPECT_EQ(left, right);
}

TEST(ClipHistoryTest, ClipsAtWindowBoundaries) {
  History h = {{{1, 5}, P(1)}, {{5, 9}, P(2)}};
  History clipped = ClipHistory(h, Interval(3, 7));
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0].interval, Interval(3, 5));
  EXPECT_EQ(clipped[1].interval, Interval(5, 7));
}

TEST(ClipHistoryTest, EmptyWhenOutside) {
  History h = {{{1, 5}, P(1)}};
  EXPECT_TRUE(ClipHistory(h, Interval(7, 9)).empty());
}

TEST(IntersectHistoryPresenceTest, KeepsOwnPropertiesOnMaskOverlap) {
  History h = {{{1, 10}, P(1)}};
  History mask = {{{2, 4}, P(99)}, {{6, 8}, P(98)}};
  History result = IntersectHistoryPresence(h, mask);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].interval, Interval(2, 4));
  EXPECT_EQ(result[0].properties, P(1));
  EXPECT_EQ(result[1].interval, Interval(6, 8));
}

TEST(HistoryHelpersTest, CoveredDurationAndSpan) {
  History h = {{{1, 4}, P(1)}, {{6, 8}, P(2)}};
  EXPECT_EQ(HistoryCoveredDuration(h), 5);
  EXPECT_EQ(HistorySpan(h), Interval(1, 8));
  EXPECT_TRUE(HistorySpan({}).empty());
}

}  // namespace
}  // namespace tgraph
