#include "storage/graph_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/table.h"
#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/validate.h"

namespace tgraph::storage {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::CanonicalTopology;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(GraphIoTest, VeRoundTrip) {
  std::string dir = TempDir("ve_roundtrip");
  VeGraph g = Figure1();
  TG_CHECK_OK(WriteVeGraph(g, dir));
  Result<VeGraph> loaded = LoadVeGraph(Ctx(), dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Canonical(*loaded), Canonical(g));
  EXPECT_EQ(loaded->lifetime(), g.lifetime());
}

TEST(GraphIoTest, VeRoundTripBothSortOrders) {
  VeGraph g = RandomTGraph(41);
  for (SortOrder order :
       {SortOrder::kTemporalLocality, SortOrder::kStructuralLocality}) {
    std::string dir = TempDir(std::string("ve_order_") + SortOrderName(order));
    GraphWriteOptions options;
    options.sort_order = order;
    TG_CHECK_OK(WriteVeGraph(g, dir, options));
    Result<VeGraph> loaded = LoadVeGraph(Ctx(), dir);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(Canonical(*loaded), Canonical(g)) << SortOrderName(order);
  }
}

TEST(GraphIoTest, VeTimeRangeFilterClips) {
  std::string dir = TempDir("ve_range");
  TG_CHECK_OK(WriteVeGraph(Figure1(), dir));
  LoadOptions options;
  options.time_range = Interval(3, 6);
  Result<VeGraph> loaded = LoadVeGraph(Ctx(), dir, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->lifetime(), Interval(3, 6));
  for (const VeVertex& v : loaded->vertices().Collect()) {
    EXPECT_TRUE(Interval(3, 6).Contains(v.interval));
  }
  // e2 [7,9) is outside; e1 [2,7) clips to [3,6).
  std::vector<VeEdge> edges = loaded->edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].interval, Interval(3, 6));
  TG_CHECK_OK(ValidateVe(*loaded));
}

TEST(GraphIoTest, PushdownSkipsGroupsOnStructurallySortedFile) {
  VeGraph g = RandomTGraph(42, 200, 400, 100);
  std::string dir = TempDir("ve_pushdown");
  GraphWriteOptions options;
  options.sort_order = SortOrder::kStructuralLocality;
  options.row_group_size = 64;
  TG_CHECK_OK(WriteVeGraph(g, dir, options));
  LoadOptions load;
  load.time_range = Interval(0, 10);
  LoadMetrics metrics;
  Result<VeGraph> loaded = LoadVeGraph(Ctx(), dir, load, &metrics);
  ASSERT_TRUE(loaded.ok());
  EXPECT_GT(metrics.vertex_groups_total, 1u);
  EXPECT_LT(metrics.vertex_groups_scanned, metrics.vertex_groups_total);
}

TEST(GraphIoTest, OgRoundTrip) {
  std::string dir = TempDir("og_roundtrip");
  OgGraph g = VeToOg(Figure1());
  TG_CHECK_OK(WriteOgGraph(g, dir));
  Result<OgGraph> loaded = LoadOgGraph(Ctx(), dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Canonical(OgToVe(*loaded).Coalesce()),
            Canonical(OgToVe(g).Coalesce()));
  TG_CHECK_OK(ValidateOg(*loaded));
}

TEST(GraphIoTest, OgTimeRangeClipsHistoriesAndEmbeddedCopies) {
  std::string dir = TempDir("og_range");
  TG_CHECK_OK(WriteOgGraph(VeToOg(Figure1()), dir));
  LoadOptions options;
  options.time_range = Interval(1, 6);
  Result<OgGraph> loaded = LoadOgGraph(Ctx(), dir, options);
  ASSERT_TRUE(loaded.ok());
  for (const OgVertex& v : loaded->vertices().Collect()) {
    EXPECT_TRUE(Interval(1, 6).Contains(HistorySpan(v.history)));
  }
  for (const OgEdge& e : loaded->edges().Collect()) {
    EXPECT_TRUE(Interval(1, 6).Contains(HistorySpan(e.history)));
    EXPECT_TRUE(Interval(1, 6).Contains(HistorySpan(e.v1.history)));
  }
}

TEST(GraphIoTest, OgcRoundTrip) {
  std::string dir = TempDir("ogc_roundtrip");
  OgcGraph g = VeToOgc(Figure1());
  TG_CHECK_OK(WriteOgcGraph(g, dir));
  Result<OgcGraph> loaded = LoadOgcGraph(Ctx(), dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->intervals(), g.intervals());
  EXPECT_EQ(CanonicalTopology(OgcToVe(*loaded)), CanonicalTopology(OgcToVe(g)));
  TG_CHECK_OK(ValidateOgc(*loaded));
}

TEST(GraphIoTest, OgcTimeRangeSlicesIndexAndBitsets) {
  std::string dir = TempDir("ogc_range");
  TG_CHECK_OK(WriteOgcGraph(VeToOgc(Figure1()), dir));
  LoadOptions options;
  options.time_range = Interval(2, 7);
  Result<OgcGraph> loaded = LoadOgcGraph(Ctx(), dir, options);
  ASSERT_TRUE(loaded.ok());
  // Index entries overlapping [2,7): [2,5) and [5,7).
  ASSERT_EQ(loaded->intervals().size(), 2u);
  EXPECT_EQ(loaded->intervals()[0], Interval(2, 5));
  for (const OgcVertex& v : loaded->vertices().Collect()) {
    EXPECT_EQ(v.presence.size(), 2u);
  }
}

TEST(GraphIoTest, RgLoadsFromVeFiles) {
  std::string dir = TempDir("rg_load");
  TG_CHECK_OK(WriteVeGraph(Figure1(), dir,
                           {SortOrder::kStructuralLocality, 16 * 1024}));
  Result<RgGraph> loaded = LoadRgGraph(Ctx(), dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumSnapshots(), 4u);
  TG_CHECK_OK(ValidateRg(*loaded));
}

TEST(GraphIoTest, RandomGraphRoundTripsExactly) {
  for (uint64_t seed : {51u, 52u}) {
    VeGraph g = RandomTGraph(seed);
    std::string dir = TempDir("ve_random_" + std::to_string(seed));
    TG_CHECK_OK(WriteVeGraph(g, dir));
    Result<VeGraph> loaded = LoadVeGraph(Ctx(), dir);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(Canonical(*loaded), Canonical(g)) << seed;
  }
}

TEST(GraphIoTest, MissingDirectoryIsIoError) {
  EXPECT_TRUE(
      LoadVeGraph(Ctx(), "/nonexistent/path").status().IsIoError());
}

TEST(GraphIoTest, SortOrderRecordedInMetadata) {
  std::string dir = TempDir("ve_meta");
  GraphWriteOptions options;
  options.sort_order = SortOrder::kStructuralLocality;
  TG_CHECK_OK(WriteVeGraph(Figure1(), dir, options));
  auto reader = TableReader::Open(dir + "/vertices.tcol");
  ASSERT_TRUE(reader.ok());
  bool found = false;
  for (const auto& [key, value] : (*reader)->metadata()) {
    if (key == "sort_order") {
      EXPECT_EQ(value, "structural");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tgraph::storage
