#include "tgraph/pipeline.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;
using ::tgraph::testing::SchoolZoom;

WZoomSpec ExistsWindows(int64_t size) {
  return WZoomSpec{WindowSpec::TimePoints(size), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
}

AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator("cluster", "group", {});
  return spec;
}

TEST(PipelineTest, RunExecutesStepsInOrder) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().Slice(Interval(1, 8));
  Result<TGraph> result = pipeline.Run(TGraph::FromVe(Figure1(), true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lifetime(), Interval(1, 8));
  EXPECT_EQ(result->As(Representation::kVe)->ve().NumVertices(), 2);
}

TEST(PipelineTest, InstrumentedRunRecordsObservations) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().Slice(Interval(1, 8));
  opt::Stats stats;
  Result<TGraph> result =
      pipeline.Run(TGraph::FromVe(Figure1(), true), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.TotalObservations(), 3);
  auto azoom = stats.Get(opt::OpKind::kAZoom, Representation::kVe);
  ASSERT_TRUE(azoom.has_value());
  EXPECT_EQ(azoom->observations, 1);
  EXPECT_GT(azoom->rows_in, 0);
  // The plain overload records nothing and must behave identically.
  Result<TGraph> plain = pipeline.Run(TGraph::FromVe(Figure1(), true));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Canonical(*plain), Canonical(*result));
  EXPECT_EQ(stats.TotalObservations(), 3);
}

TEST(PipelineTest, ExplainListsSteps) {
  Pipeline pipeline;
  pipeline.Slice(Interval(0, 9))
      .AZoom(SchoolZoom())
      .WZoom(ExistsWindows(3))
      .Convert(Representation::kOgc);
  std::string plan = pipeline.Explain();
  EXPECT_NE(plan.find("1. slice [0, 9)"), std::string::npos);
  EXPECT_NE(plan.find("2. aZoom edge_type=collaborate"), std::string::npos);
  EXPECT_NE(plan.find("nodes=exists edges=exists"), std::string::npos);
  EXPECT_NE(plan.find("4. convert to OGC"), std::string::npos);
}

TEST(PipelineTest, OptimizerDropsRedundantCoalesces) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().WZoom(ExistsWindows(3)).Coalesce();
  Pipeline::Hints hints;
  hints.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(hints);
  // The mid-chain coalesce goes (wZoom coalesces lazily); the final one
  // stays (it shapes the result).
  int coalesces = 0;
  for (const Pipeline::Step& step : optimized.steps()) {
    if (std::holds_alternative<Pipeline::CoalesceStep>(step)) ++coalesces;
  }
  EXPECT_EQ(coalesces, 1);
  EXPECT_TRUE(std::holds_alternative<Pipeline::CoalesceStep>(
      optimized.steps().back()));
}

TEST(PipelineTest, OptimizerPushesSliceBeforeAZoom) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Slice(Interval(2, 7));
  Pipeline::Hints hints;
  hints.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(hints);
  ASSERT_EQ(optimized.steps().size(), 2u);
  EXPECT_TRUE(std::holds_alternative<Pipeline::SliceStep>(optimized.steps()[0]));
  EXPECT_TRUE(std::holds_alternative<Pipeline::AZoomStep>(optimized.steps()[1]));
}

TEST(PipelineTest, OptimizerReordersZoomsOnlyWithStableAttributes) {
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(4)).AZoom(GroupZoom());

  Pipeline::Hints no_hint;
  no_hint.drop_mid_chain_conversions = false;
  Pipeline untouched = pipeline.Optimized(no_hint);
  EXPECT_TRUE(std::holds_alternative<Pipeline::WZoomStep>(untouched.steps()[0]));

  Pipeline::Hints stable;
  stable.attributes_stable = true;
  stable.drop_mid_chain_conversions = false;
  Pipeline reordered = pipeline.Optimized(stable);
  EXPECT_TRUE(std::holds_alternative<Pipeline::AZoomStep>(reordered.steps()[0]));
}

TEST(PipelineTest, OptimizerKeepsOrderForStrictQuantifiers) {
  Pipeline pipeline;
  pipeline
      .WZoom(WZoomSpec{WindowSpec::TimePoints(4), Quantifier::All(),
                       Quantifier::All(), {}, {}})
      .AZoom(GroupZoom());
  Pipeline::Hints stable;
  stable.attributes_stable = true;
  stable.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(stable);
  // all/all does not commute with aZoom; the order must survive.
  EXPECT_TRUE(std::holds_alternative<Pipeline::WZoomStep>(optimized.steps()[0]));
}

TEST(PipelineTest, OptimizerDropsMidChainConversions) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom())
      .Convert(Representation::kVe)
      .WZoom(ExistsWindows(3));
  Pipeline optimized = pipeline.Optimized();
  // The mid-chain conversion disappeared and none was inserted.
  for (const Pipeline::Step& step : optimized.steps()) {
    EXPECT_FALSE(std::holds_alternative<Pipeline::ConvertStep>(step));
  }
  EXPECT_EQ(optimized.steps().size(), 2u);
}

TEST(PipelineTest, OptimizerKeepsLossyMidChainConversions) {
  // Converting to OGC mid-chain is lossy (attributes collapse to types),
  // so dropping it would change the data downstream steps see — it must
  // survive, unlike the lossless VE switch.
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(3))
      .Convert(Representation::kOgc)
      .Slice(Interval(0, 5))
      .Convert(Representation::kVe)
      .WZoom(ExistsWindows(2));
  Pipeline optimized = pipeline.Optimized();
  int ogc_converts = 0, other_converts = 0;
  for (const Pipeline::Step& step : optimized.steps()) {
    if (const auto* convert = std::get_if<Pipeline::ConvertStep>(&step)) {
      (convert->target == Representation::kOgc ? ogc_converts
                                               : other_converts)++;
    }
  }
  EXPECT_EQ(ogc_converts, 1);
  // The VE conversion follows an OGC one, so it is semantic too (it
  // restores aZoom support) and must also survive.
  EXPECT_EQ(other_converts, 1);
}

TEST(PipelineTest, OptimizerNeverReordersForallWindows) {
  // The negative of the Section 5.3 rewrite across every quantifier that
  // is not exists: even with the stable-attributes attestation, the rule
  // path must keep wZoom first.
  const Quantifier non_exists[] = {Quantifier::All(), Quantifier::Most(),
                                   Quantifier::AtLeast(0.25)};
  Pipeline::Hints stable;
  stable.attributes_stable = true;
  for (const Quantifier& q : non_exists) {
    for (bool on_nodes : {true, false}) {
      WZoomSpec spec{WindowSpec::TimePoints(4),
                     on_nodes ? q : Quantifier::Exists(),
                     on_nodes ? Quantifier::Exists() : q,
                     {},
                     {}};
      EXPECT_FALSE(Pipeline::ZoomReorderSafe(spec)) << q.ToString();
      Pipeline pipeline;
      pipeline.WZoom(spec).AZoom(GroupZoom());
      Pipeline optimized = pipeline.Optimized(stable);
      EXPECT_TRUE(
          std::holds_alternative<Pipeline::WZoomStep>(optimized.steps()[0]))
          << q.ToString() << (on_nodes ? " on nodes" : " on edges");
    }
  }
}

// Golden plans for the Section 5 scenarios: the exact Explain rendering
// the optimizer must produce. A planner change that alters a chosen plan
// fails here loudly instead of silently regressing performance.

TEST(PipelineGoldenPlans, GrowthOnlyReorderScenario) {
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(3)).AZoom(GroupZoom()).Coalesce();
  Pipeline::Hints hints;
  hints.attributes_stable = true;
  EXPECT_EQ(pipeline.Optimized(hints).Explain(),
            "1. aZoom\n"
            "2. wZoom window=3 time points nodes=exists edges=exists\n"
            "3. coalesce\n");
}

TEST(PipelineGoldenPlans, MidChainConversionRemovalScenario) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom())
      .Convert(Representation::kVe)
      .WZoom(ExistsWindows(3))
      .Convert(Representation::kOg);
  EXPECT_EQ(pipeline.Optimized().Explain(),
            "1. aZoom edge_type=collaborate\n"
            "2. wZoom window=3 time points nodes=exists edges=exists\n"
            "3. convert to OG\n");
}

TEST(PipelineGoldenPlans, SlicePushdownWithLazyCoalescingScenario) {
  Pipeline pipeline;
  pipeline.Coalesce().AZoom(SchoolZoom()).Slice(Interval(2, 7));
  EXPECT_EQ(pipeline.Optimized().Explain(),
            "1. slice [2, 7)\n"
            "2. aZoom edge_type=collaborate\n");
}

TEST(PipelineTest, FinalUserConversionSurvivesOptimization) {
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(3)).Convert(Representation::kOgc);
  Pipeline optimized = pipeline.Optimized();
  const auto* last =
      std::get_if<Pipeline::ConvertStep>(&optimized.steps().back());
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->target, Representation::kOgc);
}

class PipelineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineEquivalence, OptimizedPlanComputesSameResult) {
  VeGraph ve = RandomTGraph(GetParam());
  TGraph input = TGraph::FromVe(ve, true);
  Pipeline pipeline;
  pipeline.Slice(Interval(0, 18))
      .Coalesce()
      .AZoom(GroupZoom())
      .Coalesce()
      .WZoom(ExistsWindows(4));
  Pipeline::Hints hints;
  hints.attributes_stable = false;  // random graphs churn attributes
  Result<TGraph> plain = pipeline.Run(input);
  Result<TGraph> optimized = pipeline.Optimized(hints).Run(input);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(Canonical(*optimized), Canonical(*plain));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PipelineEquivalence,
                         ::testing::Range(uint64_t{80}, uint64_t{86}));

}  // namespace
}  // namespace tgraph
