#include "tgraph/pipeline.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;
using ::tgraph::testing::SchoolZoom;

WZoomSpec ExistsWindows(int64_t size) {
  return WZoomSpec{WindowSpec::TimePoints(size), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
}

AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator("cluster", "group", {});
  return spec;
}

TEST(PipelineTest, RunExecutesStepsInOrder) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().Slice(Interval(1, 8));
  Result<TGraph> result = pipeline.Run(TGraph::FromVe(Figure1(), true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lifetime(), Interval(1, 8));
  EXPECT_EQ(result->As(Representation::kVe)->ve().NumVertices(), 2);
}

TEST(PipelineTest, ExplainListsSteps) {
  Pipeline pipeline;
  pipeline.Slice(Interval(0, 9))
      .AZoom(SchoolZoom())
      .WZoom(ExistsWindows(3))
      .Convert(Representation::kOgc);
  std::string plan = pipeline.Explain();
  EXPECT_NE(plan.find("1. slice [0, 9)"), std::string::npos);
  EXPECT_NE(plan.find("2. aZoom edge_type=collaborate"), std::string::npos);
  EXPECT_NE(plan.find("nodes=exists edges=exists"), std::string::npos);
  EXPECT_NE(plan.find("4. convert to OGC"), std::string::npos);
}

TEST(PipelineTest, OptimizerDropsRedundantCoalesces) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().WZoom(ExistsWindows(3)).Coalesce();
  Pipeline::Hints hints;
  hints.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(hints);
  // The mid-chain coalesce goes (wZoom coalesces lazily); the final one
  // stays (it shapes the result).
  int coalesces = 0;
  for (const Pipeline::Step& step : optimized.steps()) {
    if (std::holds_alternative<Pipeline::CoalesceStep>(step)) ++coalesces;
  }
  EXPECT_EQ(coalesces, 1);
  EXPECT_TRUE(std::holds_alternative<Pipeline::CoalesceStep>(
      optimized.steps().back()));
}

TEST(PipelineTest, OptimizerPushesSliceBeforeAZoom) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Slice(Interval(2, 7));
  Pipeline::Hints hints;
  hints.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(hints);
  ASSERT_EQ(optimized.steps().size(), 2u);
  EXPECT_TRUE(std::holds_alternative<Pipeline::SliceStep>(optimized.steps()[0]));
  EXPECT_TRUE(std::holds_alternative<Pipeline::AZoomStep>(optimized.steps()[1]));
}

TEST(PipelineTest, OptimizerReordersZoomsOnlyWithStableAttributes) {
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(4)).AZoom(GroupZoom());

  Pipeline::Hints no_hint;
  no_hint.drop_mid_chain_conversions = false;
  Pipeline untouched = pipeline.Optimized(no_hint);
  EXPECT_TRUE(std::holds_alternative<Pipeline::WZoomStep>(untouched.steps()[0]));

  Pipeline::Hints stable;
  stable.attributes_stable = true;
  stable.drop_mid_chain_conversions = false;
  Pipeline reordered = pipeline.Optimized(stable);
  EXPECT_TRUE(std::holds_alternative<Pipeline::AZoomStep>(reordered.steps()[0]));
}

TEST(PipelineTest, OptimizerKeepsOrderForStrictQuantifiers) {
  Pipeline pipeline;
  pipeline
      .WZoom(WZoomSpec{WindowSpec::TimePoints(4), Quantifier::All(),
                       Quantifier::All(), {}, {}})
      .AZoom(GroupZoom());
  Pipeline::Hints stable;
  stable.attributes_stable = true;
  stable.drop_mid_chain_conversions = false;
  Pipeline optimized = pipeline.Optimized(stable);
  // all/all does not commute with aZoom; the order must survive.
  EXPECT_TRUE(std::holds_alternative<Pipeline::WZoomStep>(optimized.steps()[0]));
}

TEST(PipelineTest, OptimizerDropsMidChainConversions) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom())
      .Convert(Representation::kVe)
      .WZoom(ExistsWindows(3));
  Pipeline optimized = pipeline.Optimized();
  // The mid-chain conversion disappeared and none was inserted.
  for (const Pipeline::Step& step : optimized.steps()) {
    EXPECT_FALSE(std::holds_alternative<Pipeline::ConvertStep>(step));
  }
  EXPECT_EQ(optimized.steps().size(), 2u);
}

TEST(PipelineTest, FinalUserConversionSurvivesOptimization) {
  Pipeline pipeline;
  pipeline.WZoom(ExistsWindows(3)).Convert(Representation::kOgc);
  Pipeline optimized = pipeline.Optimized();
  const auto* last =
      std::get_if<Pipeline::ConvertStep>(&optimized.steps().back());
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->target, Representation::kOgc);
}

class PipelineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineEquivalence, OptimizedPlanComputesSameResult) {
  VeGraph ve = RandomTGraph(GetParam());
  TGraph input = TGraph::FromVe(ve, true);
  Pipeline pipeline;
  pipeline.Slice(Interval(0, 18))
      .Coalesce()
      .AZoom(GroupZoom())
      .Coalesce()
      .WZoom(ExistsWindows(4));
  Pipeline::Hints hints;
  hints.attributes_stable = false;  // random graphs churn attributes
  Result<TGraph> plain = pipeline.Run(input);
  Result<TGraph> optimized = pipeline.Optimized(hints).Run(input);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(Canonical(*optimized), Canonical(*plain));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PipelineEquivalence,
                         ::testing::Range(uint64_t{80}, uint64_t{86}));

}  // namespace
}  // namespace tgraph
