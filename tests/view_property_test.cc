// Property-based test for view maintenance: for seeded random streams and
// randomized maintenance configurations (including forced-fallback
// max_suffix_fraction = 0 and interleaved LSM compactions), the maintained
// view must equal the offline recompute after every batch. On a violation
// the harness SHRINKS the stream — truncating to the failing prefix, then
// greedily dropping batches and single events while the failure
// reproduces — and reports the minimal failing stream in `tgz ingest`
// text-line form, ready to replay.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "test_util.h"
#include "tgraph/builder.h"
#include "view_test_util.h"
#include "views/view.h"

namespace tgraph::views {
namespace {

using testing::Ctx;
using testing::FreshDir;
using testing::FuzzStream;
using testing::GroupZoom;
using testing::UnixNowUs;

using Stream = std::vector<std::vector<ingest::Event>>;

enum class Outcome { kPass, kFail, kInvalid };

struct Config {
  Pipeline pipeline;
  std::string pipeline_name;
  double max_suffix_fraction = 1.0;
  int compact_every = 0;
};

/// Non-asserting differential run (shrink candidates must not abort the
/// test): kFail on view != offline recompute, kInvalid when the stream
/// itself does not ingest/build (shrinking can produce such candidates —
/// they are not counterexamples). `first_fail` (optional) receives the
/// first diverging batch index; `why` a human-readable diagnosis.
Outcome CheckStream(const Stream& batches, const Config& config,
                    size_t* first_fail = nullptr,
                    std::string* why = nullptr) {
  static int run = 0;  // distinct dir per candidate run
  std::string dir = FreshDir("prop_" + std::to_string(run++));
  ingest::LiveGraph::Options live_options;
  live_options.delta_events_threshold = 0;
  live_options.sync = false;
  live_options.horizon = 500;
  Result<std::unique_ptr<ingest::LiveGraph>> live =
      ingest::LiveGraph::Open(Ctx(), dir, live_options);
  if (!live.ok()) return Outcome::kInvalid;

  ViewDefinition def;
  def.name = "v";
  def.source = dir;
  MaterializedView::Options view_options;
  view_options.max_suffix_fraction = config.max_suffix_fraction;
  MaterializedView view(Ctx(), def, config.pipeline, view_options);

  Outcome outcome = Outcome::kPass;
  for (size_t i = 0; i < batches.size() && outcome == Outcome::kPass; ++i) {
    if (batches[i].empty() || !(*live)->Append(batches[i]).ok()) {
      outcome = Outcome::kInvalid;
      break;
    }
    if (config.compact_every > 0 &&
        (i + 1) % static_cast<size_t>(config.compact_every) == 0 &&
        !(*live)->Compact().ok()) {
      outcome = Outcome::kInvalid;
      break;
    }
    if (!view.Refresh(live->get(), UnixNowUs()).ok()) {
      outcome = Outcome::kInvalid;
      break;
    }
    std::shared_ptr<const ViewSnapshot> cur = view.Current();
    if (cur == nullptr) {
      outcome = Outcome::kInvalid;
      break;
    }

    TGraphBuilder builder(Ctx());
    for (size_t b = 0; b <= i; ++b) {
      for (const ingest::Event& event : batches[b]) {
        ingest::ApplyEventToBuilder(event, &builder);
      }
    }
    Result<VeGraph> offline_ve = builder.Finish((*live)->horizon());
    if (!offline_ve.ok()) {
      outcome = Outcome::kInvalid;
      break;
    }
    Result<TGraph> offline =
        config.pipeline.Run(TGraph::FromVe(*offline_ve, true));
    if (!offline.ok()) {
      outcome = Outcome::kInvalid;
      break;
    }
    if (testing::Canonical(cur->graph) != testing::Canonical(*offline)) {
      outcome = Outcome::kFail;
      if (first_fail != nullptr) *first_fail = i;
      if (why != nullptr) {
        *why = "view diverged from offline recompute at batch " +
               std::to_string(i) + " (view version " +
               std::to_string(cur->version) + ", applied_deltas " +
               std::to_string(cur->applied_deltas) + ", full_rebuilds " +
               std::to_string(cur->full_rebuilds) + ")";
      }
    }
  }
  (void)(*live)->Close();
  std::filesystem::remove_all(dir);
  return outcome;
}

/// Greedy delta-debugging: truncation happened before the call (the
/// caller passes the failing prefix); here we repeatedly drop whole
/// batches, then single events, keeping any candidate on which `check`
/// still fails, until a fixpoint. Candidates that turn kInvalid are
/// rejected, so the result is always a valid, still-failing stream.
Stream Shrink(Stream stream,
              const std::function<Outcome(const Stream&)>& check) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = stream.size(); i-- > 0;) {
      Stream candidate = stream;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (check(candidate) == Outcome::kFail) {
        stream = std::move(candidate);
        progress = true;
      }
    }
    for (size_t i = stream.size(); i-- > 0;) {
      for (size_t j = stream[i].size(); j-- > 0;) {
        Stream candidate = stream;
        candidate[i].erase(candidate[i].begin() + static_cast<long>(j));
        if (candidate[i].empty()) {
          candidate.erase(candidate.begin() + static_cast<long>(i));
        }
        if (check(candidate) == Outcome::kFail) {
          stream = std::move(candidate);
          progress = true;
          if (i >= stream.size()) break;
          j = std::min(j, stream[i].size());
        }
      }
    }
  }
  return stream;
}

std::string RenderStream(const Stream& stream) {
  std::string out;
  for (size_t i = 0; i < stream.size(); ++i) {
    out += "# batch " + std::to_string(i) + "\n";
    for (const ingest::Event& event : stream[i]) {
      out += event.ToString() + "\n";
    }
  }
  return out;
}

/// Derives a deterministic maintenance configuration from the seed,
/// cycling through pipelines, fallback pressure (max_suffix_fraction 0
/// recomputes every epoch), and compaction interleavings.
Config ConfigForSeed(uint64_t seed) {
  Config config;
  switch (seed % 3) {
    case 0:
      config.pipeline.AZoom(GroupZoom());
      config.pipeline_name = "azoom";
      break;
    case 1:
      config.pipeline.WZoom(WZoomSpec{
          WindowSpec::TimePoints(static_cast<int64_t>(3 + seed % 4))});
      config.pipeline_name = "wzoom" + std::to_string(3 + seed % 4);
      break;
    default:
      config.pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(4)});
      config.pipeline.AZoom(GroupZoom());
      config.pipeline.Convert(Representation::kOg);
      config.pipeline_name = "wzoom4+azoom+og";
      break;
  }
  const double fractions[] = {1.0, 0.0, 0.5};
  config.max_suffix_fraction = fractions[(seed / 3) % 3];
  config.compact_every = static_cast<int>((seed / 9) % 3);
  return config;
}

TEST(ViewProperty, MaintainedViewEqualsRecomputeUnderFuzzedStreams) {
  for (uint64_t seed = 100; seed < 118; ++seed) {
    Config config = ConfigForSeed(seed);
    Stream stream = FuzzStream(seed, 40);
    size_t first_fail = 0;
    std::string why;
    Outcome outcome = CheckStream(stream, config, &first_fail, &why);
    ASSERT_NE(outcome, Outcome::kInvalid)
        << "generator produced an invalid stream for seed " << seed;
    if (outcome == Outcome::kPass) continue;

    // Counterexample: shrink to a minimal failing stream and report it.
    stream.resize(first_fail + 1);
    Stream minimal = Shrink(
        std::move(stream),
        [&config](const Stream& s) { return CheckStream(s, config); });
    size_t events = 0;
    for (const auto& batch : minimal) events += batch.size();
    ADD_FAILURE() << "seed " << seed << " (pipeline "
                  << config.pipeline_name << ", max_suffix_fraction "
                  << config.max_suffix_fraction << ", compact_every "
                  << config.compact_every << "): " << why
                  << "\nminimal failing stream (" << minimal.size()
                  << " batches, " << events << " events):\n"
                  << RenderStream(minimal);
  }
}

// The shrinker itself needs a test it can fail (it only runs for real on
// regressions): against a synthetic predicate, it must reduce a fuzzed
// stream to the exact minimal form.

TEST(ViewProperty, ShrinkerFindsMinimalStreamForSyntheticPredicate) {
  // Predicate: the stream contains at least 3 add-edge events. The unique
  // minimal failing form is 3 add-edge events and nothing else.
  auto at_least_three_edges = [](const Stream& stream) {
    size_t edges = 0;
    for (const auto& batch : stream) {
      for (const ingest::Event& event : batch) {
        if (event.kind == ingest::EventKind::kAddEdge) ++edges;
      }
    }
    return edges >= 3 ? Outcome::kFail : Outcome::kPass;
  };
  Stream stream = FuzzStream(42, 60);
  ASSERT_EQ(at_least_three_edges(stream), Outcome::kFail)
      << "seed 42 generated fewer than 3 edges; pick another seed";
  Stream minimal = Shrink(std::move(stream), at_least_three_edges);
  size_t events = 0;
  for (const auto& batch : minimal) {
    for (const ingest::Event& event : batch) {
      ++events;
      EXPECT_EQ(event.kind, ingest::EventKind::kAddEdge)
          << RenderStream(minimal);
    }
  }
  EXPECT_EQ(events, 3u) << RenderStream(minimal);
}

TEST(ViewProperty, ShrinkerPreservesInvalidityBoundary) {
  // An invalid candidate must never be accepted as a counterexample:
  // CheckStream reports kInvalid for it, and Shrink keeps the last valid
  // failing stream instead. Reversing a multi-batch stream makes Append
  // reject it (timestamps must be strictly increasing).
  Config config = ConfigForSeed(100);
  Stream stream = FuzzStream(123, 30);
  EXPECT_EQ(CheckStream(stream, config), Outcome::kPass);
  Stream reversed(stream.rbegin(), stream.rend());
  EXPECT_EQ(CheckStream(reversed, config), Outcome::kInvalid);
}

}  // namespace
}  // namespace tgraph::views
