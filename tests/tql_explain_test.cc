#include "tql/explain.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/graph_io.h"
#include "tests/test_util.h"
#include "tql/interpreter.h"

namespace tgraph::tql {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : interpreter_(Ctx()) {
    dir_ = (std::filesystem::temp_directory_path() / "tql_explain_fixture")
               .string();
    std::filesystem::remove_all(dir_);
    TG_CHECK_OK(storage::WriteVeGraph(Figure1(), dir_));
  }

  std::string MustRun(const std::string& script) {
    Result<std::string> output = interpreter_.ExecuteScript(script);
    TG_CHECK(output.ok()) << output.status();
    return *output;
  }

  std::string dir_;
  Interpreter interpreter_;
};

// Every TQL operator shape under EXPLAIN ANALYZE, on each of the four
// representations, must produce a stage line labeled with the operator
// and the source representation plus a measured wall time. (AZOOM on OGC
// is the one paper-mandated hole: OGC drops attributes, so aZoom^T is
// undefined there — it must surface as the documented error, not a
// missing stage.)
TEST_F(ExplainTest, EveryQueryShapeOnEveryRepresentation) {
  const std::vector<std::pair<std::string, std::string>> reps = {
      {"ve", "VE"}, {"og", "OG"}, {"ogc", "OGC"}, {"rg", "RG"}};
  const std::vector<std::pair<std::string, std::string>> shapes = {
      {"AZOOM", "AZOOM b BY school AGGREGATE COUNT() AS n"},
      {"WZOOM", "WZOOM b WINDOW 3"},
      {"SLICE", "SLICE b FROM 2 TO 8"},
      {"SUBGRAPH", "SUBGRAPH b WHERE school = 'MIT'"},
      {"COALESCE", "COALESCE b"},
      {"CONVERT", "CONVERT b TO ve"},
  };
  for (const auto& [rep, rep_name] : reps) {
    for (const auto& [label, expr] : shapes) {
      const std::string script = "LOAD '" + dir_ + "' AS g;" +
                                 "SET b = CONVERT g TO " + rep + ";" +
                                 "EXPLAIN ANALYZE SET z = " + expr;
      Result<std::string> output = interpreter_.ExecuteScript(script);
      if (label == "AZOOM" && rep == "ogc") {
        ASSERT_FALSE(output.ok());
        EXPECT_NE(output.status().message().find("OGC"), std::string::npos);
        continue;
      }
      ASSERT_TRUE(output.ok()) << label << " on " << rep << ": "
                               << output.status();
      // CONVERT's detail also names the target: "CONVERT b [OG] -> VE".
      const std::string expected_stage =
          "\n  " + label + " b [" + rep_name + "]" +
          (label == "CONVERT" ? " -> VE" : "") + ": wall_us=";
      EXPECT_NE(output->find(expected_stage), std::string::npos)
          << label << " on " << rep << " missing stage line:\n" << *output;
      EXPECT_NE(output->find("EXPLAIN ANALYZE SET z = "), std::string::npos);
      EXPECT_NE(output->find("result-cache: bypass"), std::string::npos);
      EXPECT_NE(output->find("total: wall_us="), std::string::npos);
      // The inner statement still executes for real and prints its own
      // output after the plan.
      EXPECT_NE(output->find("set z"), std::string::npos);
    }
  }
}

TEST_F(ExplainTest, StatementShapesProduceStages) {
  // LOAD reports storage pushdown work.
  std::string out = MustRun("EXPLAIN ANALYZE LOAD '" + dir_ + "' AS g");
  EXPECT_NE(out.find("\n  LOAD g"), std::string::npos) << out;
  EXPECT_NE(out.find("row_groups_scanned="), std::string::npos) << out;

  out = MustRun("LOAD '" + dir_ + "' AS g; EXPLAIN ANALYZE INFO g");
  EXPECT_NE(out.find("\n  INFO g"), std::string::npos) << out;

  out = MustRun("EXPLAIN ANALYZE GENERATE snb(scale=0.05, seed=3) AS s");
  EXPECT_NE(out.find("\n  GENERATE s"), std::string::npos) << out;

  out = MustRun("LOAD '" + dir_ + "' AS g; EXPLAIN ANALYZE SNAPSHOT g AT 5");
  EXPECT_NE(out.find("\n  SNAPSHOT g"), std::string::npos) << out;

  std::string store_dir =
      (std::filesystem::temp_directory_path() / "tql_explain_store").string();
  std::filesystem::remove_all(store_dir);
  out = MustRun("LOAD '" + dir_ + "' AS g; EXPLAIN ANALYZE STORE g TO '" +
                store_dir + "'");
  EXPECT_NE(out.find("\n  STORE g"), std::string::npos) << out;
  std::filesystem::remove_all(store_dir);
}

TEST_F(ExplainTest, StageRowsInOutMatchOperatorWork) {
  std::string out = MustRun("LOAD '" + dir_ + "' AS g;" +
                            "EXPLAIN ANALYZE SET z = SLICE g FROM 2 TO 8");
  // Figure1 has a known record population; the slice must report both
  // sides of the operator rather than zeros.
  size_t stage = out.find("  SLICE g [VE]:");
  ASSERT_NE(stage, std::string::npos) << out;
  std::string line = out.substr(stage, out.find('\n', stage) - stage);
  EXPECT_NE(line.find("rows_in="), std::string::npos) << line;
  EXPECT_NE(line.find("rows_out="), std::string::npos) << line;
  // Shuffle counters did not move for a slice, so they must be omitted.
  EXPECT_EQ(line.find("shuffles="), std::string::npos) << line;
}

TEST_F(ExplainTest, InnerErrorPropagates) {
  Result<std::string> output = interpreter_.ExecuteScript(
      "EXPLAIN ANALYZE SET z = SLICE missing FROM 0 TO 1");
  EXPECT_FALSE(output.ok());
  EXPECT_TRUE(output.status().IsNotFound()) << output.status();
}

// --- collector unit behavior -----------------------------------------------

TEST(ExplainCollectorTest, NullCollectorScopesAreNoOps) {
  ExplainCollector::Scope scope(nullptr, "X", "detail");
  scope.set_rows(1, 2);  // must not crash
}

TEST(ExplainCollectorTest, ScopeCapturesCounterDeltas) {
  ExplainCollector collector;
  obs::Counter* shuffles = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kShuffles);
  {
    ExplainCollector::Scope scope(&collector, "FAKE", "d");
    scope.set_rows(10, 20);
    shuffles->Add(3);
  }
  ASSERT_EQ(collector.stages().size(), 1u);
  const StageStats& stage = collector.stages()[0];
  EXPECT_EQ(stage.label, "FAKE");
  EXPECT_EQ(stage.detail, "d");
  EXPECT_EQ(stage.rows_in, 10);
  EXPECT_EQ(stage.rows_out, 20);
  EXPECT_EQ(stage.shuffles, 3);
  EXPECT_GE(stage.wall_us, 0);
}

TEST(ExplainCollectorTest, RenderAndJsonShapes) {
  ExplainCollector collector;
  StageStats stage;
  stage.label = "WZOOM";
  stage.detail = "g [VE]";
  stage.wall_us = 42;
  stage.rows_in = 100;
  stage.rows_out = 60;
  stage.shuffles = 2;
  stage.shuffle_bytes = 4096;
  collector.Add(stage);

  std::string rendered = collector.Render("SET z = WZOOM g WINDOW 3", 50);
  EXPECT_NE(rendered.find("EXPLAIN ANALYZE SET z = WZOOM g WINDOW 3\n"),
            std::string::npos);
  EXPECT_NE(rendered.find("  WZOOM g [VE]: wall_us=42 rows_in=100 "
                          "rows_out=60 shuffles=2"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("result-cache: bypass"), std::string::npos);
  EXPECT_NE(rendered.find("total: wall_us=50"), std::string::npos);

  std::string json = collector.StagesJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"label\":\"WZOOM\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_us\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shuffle_bytes\":4096"), std::string::npos);
}

}  // namespace
}  // namespace tgraph::tql
