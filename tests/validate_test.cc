#include "tgraph/validate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/convert.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

TEST(ValidateVeTest, Figure1IsValid) {
  TG_CHECK_OK(ValidateVe(Figure1()));
  TG_CHECK_OK(CheckCoalescedVe(Figure1()));
}

TEST(ValidateVeTest, RejectsEmptyInterval) {
  VeGraph g = VeGraph::Create(
      Ctx(), {{1, {5, 5}, Properties{{"type", "n"}}}}, {});
  EXPECT_TRUE(ValidateVe(g).IsInvalidArgument());
}

TEST(ValidateVeTest, RejectsMissingType) {
  VeGraph g = VeGraph::Create(Ctx(), {{1, {1, 5}, Properties{{"x", 1}}}}, {});
  Status s = ValidateVe(g);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("type"), std::string::npos);
}

TEST(ValidateVeTest, RejectsOverlappingVertexStates) {
  VeGraph g = VeGraph::Create(Ctx(),
                              {{1, {1, 5}, Properties{{"type", "a"}}},
                               {1, {3, 8}, Properties{{"type", "b"}}}},
                              {});
  Status s = ValidateVe(g);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("more than once"), std::string::npos);
}

TEST(ValidateVeTest, RejectsEdgeEndpointChange) {
  std::vector<VeVertex> vertices = {{1, {0, 9}, Properties{{"type", "n"}}},
                                    {2, {0, 9}, Properties{{"type", "n"}}},
                                    {3, {0, 9}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {{7, 1, 2, {0, 3}, Properties{{"type", "e"}}},
                               {7, 1, 3, {4, 6}, Properties{{"type", "e"}}}};
  Status s = ValidateVe(VeGraph::Create(Ctx(), vertices, edges));
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("endpoints"), std::string::npos);
}

TEST(ValidateVeTest, RejectsDanglingEdge) {
  // Edge alive [0,9) but destination vertex only [0,5).
  std::vector<VeVertex> vertices = {{1, {0, 9}, Properties{{"type", "n"}}},
                                    {2, {0, 5}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {{7, 1, 2, {0, 9}, Properties{{"type", "e"}}}};
  Status s = ValidateVe(VeGraph::Create(Ctx(), vertices, edges));
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("dangle"), std::string::npos);
}

TEST(ValidateVeTest, AcceptsEdgeCoveredByMultiStateVertex) {
  // Destination's presence is split across two states with an attribute
  // change; the edge spans both — still valid.
  std::vector<VeVertex> vertices = {{1, {0, 9}, Properties{{"type", "n"}}},
                                    {2, {0, 5}, Properties{{"type", "a"}}},
                                    {2, {5, 9}, Properties{{"type", "b"}}}};
  std::vector<VeEdge> edges = {{7, 1, 2, {2, 8}, Properties{{"type", "e"}}}};
  TG_CHECK_OK(ValidateVe(VeGraph::Create(Ctx(), vertices, edges)));
}

TEST(ValidateVeTest, RejectsEdgeToNonexistentVertex) {
  std::vector<VeVertex> vertices = {{1, {0, 9}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {{7, 1, 99, {0, 5}, Properties{{"type", "e"}}}};
  EXPECT_TRUE(
      ValidateVe(VeGraph::Create(Ctx(), vertices, edges)).IsInvalidArgument());
}

TEST(CheckCoalescedVeTest, DetectsUncoalescedVertices) {
  VeGraph g = VeGraph::Create(Ctx(),
                              {{1, {1, 3}, Properties{{"type", "n"}}},
                               {1, {3, 6}, Properties{{"type", "n"}}}},
                              {});
  EXPECT_TRUE(CheckCoalescedVe(g).IsInvalidArgument());
  TG_CHECK_OK(CheckCoalescedVe(g.Coalesce()));
}

TEST(ValidateOgTest, Figure1OgIsValid) {
  TG_CHECK_OK(ValidateOg(VeToOg(Figure1())));
}

TEST(ValidateOgTest, RejectsEmptyHistory) {
  OgGraph g = OgGraph::Create(Ctx(), {{1, {}}}, {});
  EXPECT_TRUE(ValidateOg(g).IsInvalidArgument());
}

TEST(ValidateOgTest, RejectsOverlappingHistory) {
  OgGraph g = OgGraph::Create(
      Ctx(),
      {{1,
        {{{1, 5}, Properties{{"type", "a"}}}, {{3, 8}, Properties{{"type", "b"}}}}}},
      {});
  EXPECT_TRUE(ValidateOg(g).IsInvalidArgument());
}

TEST(ValidateOgTest, RejectsEdgeOutsideEndpointPresence) {
  OgVertex v1{1, {{{0, 3}, Properties{{"type", "n"}}}}};
  OgVertex v2{2, {{{0, 9}, Properties{{"type", "n"}}}}};
  OgEdge e{7, v1, v2, {{{0, 6}, Properties{{"type", "e"}}}}};
  OgGraph g = OgGraph::Create(Ctx(), {v1, v2}, {e});
  EXPECT_TRUE(ValidateOg(g).IsInvalidArgument());
}

TEST(ValidateOgcTest, Figure1OgcIsValid) {
  TG_CHECK_OK(ValidateOgc(VeToOgc(Figure1())));
}

TEST(ValidateOgcTest, RejectsWrongBitsetSize) {
  OgcVertex v{1, "n", Bitset(2)};
  OgcGraph g(std::vector<Interval>{{0, 1}, {1, 2}, {2, 3}},
             dataflow::Dataset<OgcVertex>::FromVector(Ctx(), {v}),
             dataflow::Dataset<OgcEdge>::FromVector(Ctx(), {}), Interval(0, 3));
  EXPECT_TRUE(ValidateOgc(g).IsInvalidArgument());
}

TEST(ValidateOgcTest, RejectsEdgePresentWithoutEndpoint) {
  Bitset on(2), off(2);
  on.SetRange(0, 2);
  off.Set(0);
  OgcVertex v1{1, "n", on};
  OgcVertex v2{2, "n", off};  // absent in interval 1
  Bitset edge_bits(2);
  edge_bits.Set(1);
  OgcEdge e{7, "e", v1, v2, edge_bits};
  OgcGraph g(std::vector<Interval>{{0, 1}, {1, 2}},
             dataflow::Dataset<OgcVertex>::FromVector(Ctx(), {v1, v2}),
             dataflow::Dataset<OgcEdge>::FromVector(Ctx(), {e}),
             Interval(0, 2));
  EXPECT_TRUE(ValidateOgc(g).IsInvalidArgument());
}

TEST(ValidateRgTest, Figure1RgIsValid) {
  TG_CHECK_OK(ValidateRg(VeToRg(Figure1())));
}

TEST(ValidateRgTest, RejectsDanglingSnapshotEdge) {
  using dataflow::Dataset;
  auto vertices = Dataset<sg::Vertex>::FromVector(
      Ctx(), {sg::Vertex{1, Properties{{"type", "n"}}}});
  auto edges = Dataset<sg::Edge>::FromVector(
      Ctx(), {sg::Edge{7, 1, 99, Properties{{"type", "e"}}}});
  RgGraph g(Ctx(), {Interval(0, 1)}, {sg::PropertyGraph(vertices, edges)},
            Interval(0, 1));
  EXPECT_TRUE(ValidateRg(g).IsInvalidArgument());
}

}  // namespace
}  // namespace tgraph
