// Unit tests for the materialized-view subsystem: the TQL view DDL
// grammar and its canonical forms, incremental delta planning (grid
// rounding, every fallback reason), cut-and-splice state maintenance,
// and the view registry (DDL, lazy materialization, version monotonicity,
// and definition persistence).

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "test_util.h"
#include "tgraph/incremental.h"
#include "tql/canonical.h"
#include "tql/parser.h"
#include "tql/pipeline_build.h"
#include "views/registry.h"
#include "views/view.h"

namespace tgraph::views {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() /
                     ("tg_views_test_" + name + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

ingest::Event AddVertex(int64_t vid, TimePoint at, const std::string& role) {
  ingest::Event e;
  e.kind = ingest::EventKind::kAddVertex;
  e.id = vid;
  e.at = at;
  e.props = Properties{{"type", "person"}, {"role", role}};
  return e;
}

ingest::Event RemoveVertex(int64_t vid, TimePoint at) {
  ingest::Event e;
  e.kind = ingest::EventKind::kRemoveVertex;
  e.id = vid;
  e.at = at;
  return e;
}

// --- TQL grammar and canonical forms ---------------------------------------

TEST(ViewGrammar, CreateViewParsesAndCanonicalFixpoint) {
  const std::string script =
      "create view density on '/tmp/g' as "
      "azoom by role aggregate count() as members then convert to og;";
  Result<std::vector<tql::Statement>> statements = tql::Parse(script);
  ASSERT_TRUE(statements.ok()) << statements.status();
  ASSERT_EQ(statements->size(), 1u);
  const auto* create =
      std::get_if<tql::CreateViewStatement>(&(*statements)[0]);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->name, "density");
  EXPECT_EQ(create->path, "/tmp/g");
  ASSERT_EQ(create->stages.size(), 2u);
  // View stages carry no source identifier (the source is the view's).
  const auto* azoom = std::get_if<tql::AZoomExpr>(&create->stages[0]);
  ASSERT_NE(azoom, nullptr);
  EXPECT_TRUE(azoom->source.empty());
  EXPECT_EQ(azoom->group_by, "role");

  // Canonical form is its own fixed point, and case-insensitive.
  const std::string canonical = tql::Canonicalize((*statements)[0]);
  EXPECT_EQ(canonical.rfind("CREATE VIEW density ON '/tmp/g' AS AZOOM", 0),
            0u)
      << canonical;
  Result<std::vector<tql::Statement>> reparsed = tql::Parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << " for: " << canonical;
  EXPECT_EQ(tql::Canonicalize((*reparsed)[0]), canonical);
}

TEST(ViewGrammar, AllViewVerbsParse) {
  Result<std::vector<tql::Statement>> statements = tql::Parse(
      "create view v on 'd' as wzoom window 3 then coalesce then slice from "
      "0 to 9; drop view v; show views; view v;");
  ASSERT_TRUE(statements.ok()) << statements.status();
  ASSERT_EQ(statements->size(), 4u);
  EXPECT_NE(std::get_if<tql::CreateViewStatement>(&(*statements)[0]),
            nullptr);
  EXPECT_NE(std::get_if<tql::DropViewStatement>(&(*statements)[1]), nullptr);
  EXPECT_NE(std::get_if<tql::ShowViewsStatement>(&(*statements)[2]), nullptr);
  EXPECT_NE(std::get_if<tql::ViewStatement>(&(*statements)[3]), nullptr);
  EXPECT_EQ(tql::Canonicalize((*statements)[1]), "DROP VIEW v");
  EXPECT_EQ(tql::Canonicalize((*statements)[2]), "SHOW VIEWS");
  EXPECT_EQ(tql::Canonicalize((*statements)[3]), "VIEW v");
}

TEST(ViewGrammar, CacheabilityPerVerb) {
  Result<std::vector<tql::Statement>> statements = tql::Parse(
      "create view v on 'd' as coalesce; drop view v; show views; view v;");
  ASSERT_TRUE(statements.ok()) << statements.status();
  // DDL mutates the registry and SHOW VIEWS reports live state — never
  // cacheable. VIEW is: the server folds the view version into the key.
  EXPECT_FALSE(tql::IsCacheable((*statements)[0]));
  EXPECT_FALSE(tql::IsCacheable((*statements)[1]));
  EXPECT_FALSE(tql::IsCacheable((*statements)[2]));
  EXPECT_TRUE(tql::IsCacheable((*statements)[3]));
}

TEST(ViewGrammar, RejectsNonZoomStages) {
  EXPECT_FALSE(tql::Parse("create view v on 'd' as subgraph where x = 1;")
                   .ok());
  EXPECT_FALSE(tql::Parse("create view v on 'd';").ok());
}

// --- PlanDelta -------------------------------------------------------------

Pipeline AZoomOnly() {
  Pipeline pipeline;
  pipeline.AZoom(testing::SchoolZoom());
  return pipeline;
}

TEST(PlanDelta, InstantaneousPipelineCutsAtTMin) {
  incremental::DeltaPlan plan =
      incremental::PlanDelta(AZoomOnly(), Interval(0, 100), 60, 1.0);
  EXPECT_TRUE(plan.incremental) << plan.fallback_reason;
  EXPECT_EQ(plan.cut, 60);
}

TEST(PlanDelta, EmptySourceFallsBack) {
  incremental::DeltaPlan plan =
      incremental::PlanDelta(AZoomOnly(), Interval(5, 5), 6, 1.0);
  EXPECT_FALSE(plan.incremental);
  EXPECT_EQ(plan.fallback_reason, "empty-source");
}

TEST(PlanDelta, DeltaReachingSourceStartFallsBack) {
  incremental::DeltaPlan plan =
      incremental::PlanDelta(AZoomOnly(), Interval(10, 100), 10, 1.0);
  EXPECT_FALSE(plan.incremental);
  EXPECT_EQ(plan.fallback_reason, "delta-reaches-source-start");
}

TEST(PlanDelta, WZoomRoundsCutDownToWindowGrid) {
  Pipeline pipeline;
  pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(7)});
  // Grid anchored at the source lifetime start 3: {3, 10, 17, ...}.
  incremental::DeltaPlan plan =
      incremental::PlanDelta(pipeline, Interval(3, 100), 60, 1.0);
  EXPECT_TRUE(plan.incremental) << plan.fallback_reason;
  EXPECT_EQ(plan.cut, 59);  // 3 + 8*7
}

TEST(PlanDelta, SliceMovesTheWindowAnchor) {
  Pipeline pipeline;
  pipeline.Slice(Interval(10, 100));
  pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(7)});
  // The wZoom stage's input starts at 10, so its grid is {10, 17, ...}.
  incremental::DeltaPlan plan =
      incremental::PlanDelta(pipeline, Interval(0, 100), 60, 1.0);
  EXPECT_TRUE(plan.incremental) << plan.fallback_reason;
  EXPECT_EQ(plan.cut, 59);  // 10 + 7*7
  // A t_min already on the grid is kept as-is.
  plan = incremental::PlanDelta(pipeline, Interval(0, 100), 24, 1.0);
  EXPECT_TRUE(plan.incremental) << plan.fallback_reason;
  EXPECT_EQ(plan.cut, 24);
}

TEST(PlanDelta, ChangesWindowsFallBack) {
  Pipeline pipeline;
  pipeline.WZoom(WZoomSpec{WindowSpec::Changes(3)});
  incremental::DeltaPlan plan =
      incremental::PlanDelta(pipeline, Interval(0, 100), 60, 1.0);
  EXPECT_FALSE(plan.incremental);
  EXPECT_EQ(plan.fallback_reason, "wzoom-changes-window");
}

TEST(PlanDelta, CutRoundedToSourceStartFallsBack) {
  Pipeline pipeline;
  pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(50)});
  // t_min 30 rounds down to the grid point 0 — the whole history would
  // have to be recomputed, which is exactly a full rebuild.
  incremental::DeltaPlan plan =
      incremental::PlanDelta(pipeline, Interval(0, 100), 30, 1.0);
  EXPECT_FALSE(plan.incremental);
  EXPECT_EQ(plan.fallback_reason, "cut-at-source-start");
}

TEST(PlanDelta, SuffixFractionBoundFallsBack) {
  incremental::DeltaPlan plan =
      incremental::PlanDelta(AZoomOnly(), Interval(0, 100), 60, 0.0);
  EXPECT_FALSE(plan.incremental);
  EXPECT_EQ(plan.fallback_reason, "suffix-fraction");
  // The suffix [60, 100) is 40% of the lifetime: allowed at 0.5.
  plan = incremental::PlanDelta(AZoomOnly(), Interval(0, 100), 60, 0.5);
  EXPECT_TRUE(plan.incremental);
}

TEST(PlanDelta, ChainedWZoomGridsReachAFixpoint) {
  Pipeline pipeline;
  pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(4)});
  pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(6)});
  // 21 → 20 (grid 4) → 18 (grid 6) → 16 → 12, which lies on both grids.
  incremental::DeltaPlan plan =
      incremental::PlanDelta(pipeline, Interval(0, 100), 21, 1.0);
  EXPECT_TRUE(plan.incremental) << plan.fallback_reason;
  EXPECT_EQ(plan.cut, 12);
}

// --- SpliceAtCut -----------------------------------------------------------

TEST(SpliceAtCut, RemergesStatesStraddlingTheCut) {
  // prev: one vertex state [0, 10) value "a". The recomputed suffix
  // reproduces [6, 10) with the same value: the splice must re-merge them
  // into the original record (canonical = coalesced).
  VeGraph prev = VeGraph::Create(
      testing::Ctx(), {{1, {0, 10}, Properties{{"school", "a"}}}}, {});
  VeGraph suffix = VeGraph::Create(
      testing::Ctx(), {{1, {6, 10}, Properties{{"school", "a"}}}}, {},
      Interval(6, 10));
  VeGraph spliced = incremental::SpliceAtCut(prev, suffix, 6);
  EXPECT_EQ(testing::Canonical(spliced), testing::Canonical(prev));

  // A suffix whose value changed keeps two records.
  VeGraph changed = VeGraph::Create(
      testing::Ctx(), {{1, {6, 10}, Properties{{"school", "b"}}}}, {},
      Interval(6, 10));
  VeGraph respliced = incremental::SpliceAtCut(prev, changed, 6);
  EXPECT_EQ(respliced.NumVertexRecords(), 2);
  EXPECT_EQ(respliced.lifetime(), Interval(0, 10));
}

TEST(FinalRepresentation, LastConvertWins) {
  Pipeline none = AZoomOnly();
  EXPECT_EQ(incremental::FinalRepresentation(none, Representation::kVe),
            Representation::kVe);
  Pipeline converted;
  converted.Convert(Representation::kOg);
  converted.Convert(Representation::kRg);
  EXPECT_EQ(
      incremental::FinalRepresentation(converted, Representation::kVe),
      Representation::kRg);
}

// --- ViewRegistry ----------------------------------------------------------

class ViewRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& dir : dirs_) fs::remove_all(dir);
  }

  std::string Dir(const std::string& name) {
    dirs_.push_back(FreshDir(name));
    return dirs_.back();
  }

  tql::CreateViewStatement ParseCreate(const std::string& script) {
    Result<std::vector<tql::Statement>> statements = tql::Parse(script);
    TG_CHECK(statements.ok()) << statements.status();
    return std::get<tql::CreateViewStatement>((*statements)[0]);
  }

  std::vector<std::string> dirs_;
};

TEST_F(ViewRegistryTest, DdlLifecycle) {
  ingest::LiveGraphRegistry live(testing::Ctx());
  ViewRegistry registry(testing::Ctx(), &live, {});
  Result<std::string> created = registry.CreateView(
      ParseCreate("create view v on 'nowhere' as coalesce;"));
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(*created, "created view v on 'nowhere'\n");
  EXPECT_EQ(registry.size(), 1u);

  // Duplicate names are rejected, registered-but-unqueried views show as
  // unmaterialized, and re-dropping reports NotFound.
  EXPECT_TRUE(registry.CreateView(ParseCreate(
                          "create view v on 'elsewhere' as coalesce;"))
                  .status()
                  .code() == StatusCode::kAlreadyExists);
  Result<std::string> shown = registry.ShowViews();
  ASSERT_TRUE(shown.ok());
  EXPECT_NE(shown->find("v ON 'nowhere'"), std::string::npos) << *shown;
  EXPECT_NE(shown->find("unmaterialized"), std::string::npos) << *shown;
  EXPECT_EQ(registry.CurrentVersion("v"), 0u);

  Result<std::string> dropped = registry.DropView("v");
  ASSERT_TRUE(dropped.ok()) << dropped.status();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.DropView("v").status().IsNotFound());
  ASSERT_TRUE(registry.ShowViews().ok());
  EXPECT_EQ(*registry.ShowViews(), "no views\n");
}

TEST_F(ViewRegistryTest, InvalidStagesRejectedAtDdlTime) {
  ingest::LiveGraphRegistry live(testing::Ctx());
  ViewRegistry registry(testing::Ctx(), &live, {});
  tql::CreateViewStatement create;
  create.name = "bad";
  create.path = "nowhere";
  create.stages.push_back(tql::Expr{tql::RefExpr{"x"}});
  EXPECT_FALSE(registry.CreateView(create).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(ViewRegistryTest, QueryMaterializesAndVersionsAdvance) {
  std::string dir = Dir("query");
  ingest::LiveGraphRegistry live(testing::Ctx());
  ingest::LiveGraph::Options options;
  options.delta_events_threshold = 0;
  options.sync = false;
  live.set_options(options);
  Result<ingest::LiveGraph*> graph = live.GetOrOpen(dir, 100);
  ASSERT_TRUE(graph.ok()) << graph.status();
  ASSERT_TRUE(
      (*graph)
          ->Append({AddVertex(1, 10, "student"), AddVertex(2, 11, "staff")})
          .ok());

  ViewRegistry registry(testing::Ctx(), &live, {});
  ASSERT_TRUE(registry
                  .CreateView(ParseCreate(
                      "create view roles on '" + dir +
                      "' as azoom by role aggregate count() as members;"))
                  .ok());
  uint64_t version = 0;
  Result<std::string> first = registry.QueryView("roles", &version);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(first->rfind("view roles [VE] ", 0), 0u) << *first;
  EXPECT_NE(first->find("content "), std::string::npos) << *first;

  // Same epoch → same snapshot, same version. New epoch → new version.
  Result<std::string> again = registry.QueryView("roles", &version);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(*again, *first);
  ASSERT_TRUE((*graph)->Append({AddVertex(3, 20, "student")}).ok());
  Result<std::string> after = registry.QueryView("roles", &version);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(version, 2u);
  EXPECT_NE(*after, *first);

  EXPECT_TRUE(registry.QueryView("missing").status().IsNotFound());
}

TEST_F(ViewRegistryTest, DefinitionsPersistAcrossRegistries) {
  std::string dir = Dir("persist");
  fs::create_directories(dir);
  const std::string views_path = dir + "/views.tql";
  ingest::LiveGraphRegistry live(testing::Ctx());
  ViewRegistry::Options options;
  options.views_path = views_path;
  {
    ViewRegistry registry(testing::Ctx(), &live, options);
    ASSERT_TRUE(registry.LoadFromDisk().ok());  // missing file: no views
    ASSERT_TRUE(registry
                    .CreateView(ParseCreate(
                        "create view a on 'src' as azoom by role aggregate "
                        "count() as n;"))
                    .ok());
    ASSERT_TRUE(registry
                    .CreateView(ParseCreate(
                        "create view b on 'src' as wzoom window 3;"))
                    .ok());
  }
  // The views file is a canonical TQL script.
  std::ifstream in(views_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("CREATE VIEW a ON 'src'"), std::string::npos) << text;
  EXPECT_NE(text.find("CREATE VIEW b ON 'src'"), std::string::npos) << text;

  ViewRegistry reloaded(testing::Ctx(), &live, options);
  ASSERT_TRUE(reloaded.LoadFromDisk().ok());
  EXPECT_EQ(reloaded.size(), 2u);
  std::shared_ptr<MaterializedView> view = reloaded.Find("b");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->definition().source, "src");

  // DROP rewrites the file; a third registry sees one view.
  ASSERT_TRUE(reloaded.DropView("a").ok());
  ViewRegistry third(testing::Ctx(), &live, options);
  ASSERT_TRUE(third.LoadFromDisk().ok());
  EXPECT_EQ(third.size(), 1u);
  EXPECT_EQ(third.CurrentVersion("a"), 0u);
  EXPECT_NE(third.Find("b"), nullptr);
}

TEST_F(ViewRegistryTest, OnEpochRefreshesRegisteredViews) {
  std::string dir = Dir("onepoch");
  ingest::LiveGraphRegistry live(testing::Ctx());
  ViewRegistry registry(testing::Ctx(), &live, {});
  // Wire the listener the way tgraphd does: every publish refreshes.
  ingest::LiveGraph::Options options;
  options.delta_events_threshold = 0;
  options.sync = false;
  options.epoch_listener = [&registry](const std::string& d, uint64_t e) {
    registry.OnEpoch(d, e);
  };
  live.set_options(options);
  Result<ingest::LiveGraph*> graph = live.GetOrOpen(dir, 100);
  ASSERT_TRUE(graph.ok()) << graph.status();
  ASSERT_TRUE(registry
                  .CreateView(ParseCreate("create view v on '" + dir +
                                          "' as coalesce;"))
                  .ok());
  ASSERT_TRUE((*graph)->Append({AddVertex(1, 5, "student")}).ok());
  // The epoch listener materialized the view synchronously — no query
  // needed.
  EXPECT_EQ(registry.CurrentVersion("v"), 1u);
  ASSERT_TRUE((*graph)->Append({RemoveVertex(1, 9)}).ok());
  EXPECT_EQ(registry.CurrentVersion("v"), 2u);
  std::shared_ptr<const ViewSnapshot> snapshot =
      registry.Find("v")->Current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->watermark, 9);
  EXPECT_EQ(snapshot->applied_deltas, 1u);  // second epoch spliced
  EXPECT_EQ(snapshot->full_rebuilds, 1u);   // first epoch built it
}

}  // namespace
}  // namespace tgraph::views
