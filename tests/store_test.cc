// Differential tests for tgraph-store v2: for every physical
// representation, a graph written as a v2 container and loaded through the
// memory-mapped reader must be canonically identical to the same graph
// written as v1 text columns and loaded through the streaming reader —
// with and without a temporal slice, with predicate pushdown on and off.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <vector>

#include "server/catalog.h"
#include "storage/graph_io.h"
#include "storage/store_reader.h"
#include "tests/test_util.h"
#include "tgraph/convert.h"

namespace tgraph::storage {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::CanonicalTopology;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// The cross product the acceptance criterion names: each case loads the
// text dir and the store dir with the same options and compares canonical
// forms.
struct SliceCase {
  std::optional<Interval> range;
  bool pushdown;
};

std::vector<SliceCase> AllSliceCases() {
  return {{std::nullopt, true},
          {std::nullopt, false},
          {Interval(2, 7), true},
          {Interval(2, 7), false}};
}

TEST(StoreDifferentialTest, VeMatchesTextLoad) {
  VeGraph g = RandomTGraph(7, 40, 80, 25);
  std::string text_dir = TempDir("store_diff_ve_text");
  std::string store_dir = TempDir("store_diff_ve_store");
  TG_CHECK_OK(WriteVeGraph(g, text_dir));
  TG_CHECK_OK(WriteVeStore(g, store_dir));
  ASSERT_TRUE(HasStore(store_dir));
  ASSERT_FALSE(HasStore(text_dir));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<VeGraph> from_text = LoadVeGraph(Ctx(), text_dir, options);
    Result<VeGraph> from_store = LoadVeGraph(Ctx(), store_dir, options);
    TG_CHECK_OK(from_text.status());
    TG_CHECK_OK(from_store.status());
    EXPECT_EQ(Canonical(*from_store), Canonical(*from_text))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(store_dir);
}

TEST(StoreDifferentialTest, RgMatchesTextLoad) {
  VeGraph g = RandomTGraph(11, 30, 60, 20);
  std::string text_dir = TempDir("store_diff_rg_text");
  std::string store_dir = TempDir("store_diff_rg_store");
  TG_CHECK_OK(WriteVeGraph(g, text_dir));
  TG_CHECK_OK(WriteVeStore(g, store_dir));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<RgGraph> from_text = LoadRgGraph(Ctx(), text_dir, options);
    Result<RgGraph> from_store = LoadRgGraph(Ctx(), store_dir, options);
    TG_CHECK_OK(from_text.status());
    TG_CHECK_OK(from_store.status());
    EXPECT_EQ(Canonical(RgToVe(*from_store).Coalesce()),
              Canonical(RgToVe(*from_text).Coalesce()))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(store_dir);
}

TEST(StoreDifferentialTest, OgMatchesTextLoad) {
  OgGraph og = VeToOg(RandomTGraph(13, 35, 70, 22));
  std::string text_dir = TempDir("store_diff_og_text");
  std::string store_dir = TempDir("store_diff_og_store");
  TG_CHECK_OK(WriteOgGraph(og, text_dir));
  TG_CHECK_OK(WriteOgStore(og, store_dir));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<OgGraph> from_text = LoadOgGraph(Ctx(), text_dir, options);
    Result<OgGraph> from_store = LoadOgGraph(Ctx(), store_dir, options);
    TG_CHECK_OK(from_text.status());
    TG_CHECK_OK(from_store.status());
    EXPECT_EQ(Canonical(OgToVe(*from_store).Coalesce()),
              Canonical(OgToVe(*from_text).Coalesce()))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(store_dir);
}

TEST(StoreDifferentialTest, OgcMatchesTextLoad) {
  OgcGraph ogc = VeToOgc(RandomTGraph(17, 30, 60, 20));
  std::string text_dir = TempDir("store_diff_ogc_text");
  std::string store_dir = TempDir("store_diff_ogc_store");
  TG_CHECK_OK(WriteOgcGraph(ogc, text_dir));
  TG_CHECK_OK(WriteOgcStore(ogc, store_dir));
  for (const SliceCase& c : AllSliceCases()) {
    LoadOptions options;
    options.time_range = c.range;
    options.pushdown = c.pushdown;
    Result<OgcGraph> from_text = LoadOgcGraph(Ctx(), text_dir, options);
    Result<OgcGraph> from_store = LoadOgcGraph(Ctx(), store_dir, options);
    TG_CHECK_OK(from_text.status());
    TG_CHECK_OK(from_store.status());
    EXPECT_EQ(CanonicalTopology(OgcToVe(*from_store)),
              CanonicalTopology(OgcToVe(*from_text)))
        << "range=" << (c.range ? c.range->ToString() : "none")
        << " pushdown=" << c.pushdown;
  }
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(store_dir);
}

TEST(StoreDifferentialTest, Figure1SliceHasExpectedContents) {
  VeGraph g = Figure1();
  std::string store_dir = TempDir("store_fig1");
  TG_CHECK_OK(WriteVeStore(g, store_dir));
  LoadOptions options;
  options.time_range = Interval(8, 9);
  Result<VeGraph> sliced = LoadVeGraph(Ctx(), store_dir, options);
  TG_CHECK_OK(sliced.status());
  // Ann ([1,7)) and edge 1 ([2,7)) do not survive an [8,9) slice; Bob,
  // Cat, and edge 2 do.
  EXPECT_EQ(sliced->vertices().Collect().size(), 2u);
  EXPECT_EQ(sliced->edges().Collect().size(), 1u);
  std::filesystem::remove_all(store_dir);
}

// Zone maps must actually prune: with a structural sort and small
// partitions, a narrow slice touches only a fraction of the partitions.
TEST(StorePushdownTest, ZoneMapsSkipPartitions) {
  VeGraph g = RandomTGraph(42, 200, 400, 100);
  std::string store_dir = TempDir("store_pushdown");
  GraphWriteOptions write_options;
  write_options.sort_order = SortOrder::kStructuralLocality;
  write_options.row_group_size = 64;
  TG_CHECK_OK(WriteVeStore(g, store_dir, write_options));

  LoadOptions options;
  options.time_range = Interval(0, 5);
  LoadMetrics metrics;
  Result<VeGraph> sliced = LoadVeGraph(Ctx(), store_dir, options, &metrics);
  TG_CHECK_OK(sliced.status());
  EXPECT_GT(metrics.vertex_groups_total, 1);
  EXPECT_LT(metrics.vertex_groups_scanned, metrics.vertex_groups_total);
  EXPECT_LT(metrics.edge_groups_scanned, metrics.edge_groups_total);

  // Pushdown off: every partition is scanned, same graph comes back.
  LoadOptions no_pushdown = options;
  no_pushdown.pushdown = false;
  LoadMetrics full_metrics;
  Result<VeGraph> full =
      LoadVeGraph(Ctx(), store_dir, no_pushdown, &full_metrics);
  TG_CHECK_OK(full.status());
  EXPECT_EQ(full_metrics.vertex_groups_scanned,
            full_metrics.vertex_groups_total);
  EXPECT_EQ(Canonical(*full), Canonical(*sliced));
  std::filesystem::remove_all(store_dir);
}

TEST(StoreReaderTest, ReaderIsSharableAcrossRangedLoads) {
  VeGraph g = RandomTGraph(5, 50, 100, 30);
  std::string store_dir = TempDir("store_shared");
  TG_CHECK_OK(WriteVeStore(g, store_dir));
  Result<std::unique_ptr<StoreReader>> reader =
      StoreReader::Open(StorePath(store_dir));
  TG_CHECK_OK(reader.status());
  (*reader)->Prefetch();
  LoadOptions full;
  LoadOptions early;
  early.time_range = Interval(0, 10);
  Result<VeGraph> a = LoadVeGraphFromStore(Ctx(), **reader, full);
  Result<VeGraph> b = LoadVeGraphFromStore(Ctx(), **reader, early);
  TG_CHECK_OK(a.status());
  TG_CHECK_OK(b.status());
  EXPECT_EQ(Canonical(*a), Canonical(g));
  std::filesystem::remove_all(store_dir);
}

// The server catalog serves two different time slices of one store dir
// off a single shared mmap reader.
TEST(StoreCatalogTest, CatalogSharesOneMmapAcrossRanges) {
  VeGraph g = Figure1();
  std::string store_dir = TempDir("store_catalog");
  TG_CHECK_OK(WriteVeStore(g, store_dir));

  server::GraphCatalog catalog(Ctx());
  Result<TGraph> full = catalog.GetOrLoad(store_dir, std::nullopt);
  Result<TGraph> sliced = catalog.GetOrLoad(store_dir, Interval(2, 7));
  TG_CHECK_OK(full.status());
  TG_CHECK_OK(sliced.status());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(Canonical(full->ve()), Canonical(g));
  std::filesystem::remove_all(store_dir);
}

}  // namespace
}  // namespace tgraph::storage
