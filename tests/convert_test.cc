#include "tgraph/convert.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::CanonicalTopology;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

TEST(ConvertTest, VeOgRoundTrip) {
  VeGraph ve = Figure1();
  VeGraph back = OgToVe(VeToOg(ve)).Coalesce();
  EXPECT_EQ(Canonical(ve.Coalesce()), Canonical(back));
}

TEST(ConvertTest, VeRgRoundTrip) {
  VeGraph ve = Figure1();
  VeGraph back = RgToVe(VeToRg(ve));
  EXPECT_EQ(Canonical(ve.Coalesce()), Canonical(back));
}

TEST(ConvertTest, OgRgRoundTrip) {
  OgGraph og = VeToOg(Figure1());
  OgGraph back = RgToOg(OgToRg(og));
  EXPECT_EQ(Canonical(OgToVe(og).Coalesce()), Canonical(OgToVe(back).Coalesce()));
}

TEST(ConvertTest, OgcKeepsTopologyAndType) {
  VeGraph ve = Figure1();
  VeGraph back = OgcToVe(VeToOgc(ve));
  EXPECT_EQ(CanonicalTopology(ve), CanonicalTopology(back));
  for (const VeVertex& v : back.vertices().Collect()) {
    EXPECT_EQ(v.properties.Get("type")->AsString(), "person");
    EXPECT_EQ(v.properties.size(), 1u);  // attributes beyond type dropped
  }
}

TEST(ConvertTest, ConversionsPreserveValidity) {
  VeGraph ve = RandomTGraph(11);
  TG_CHECK_OK(ValidateVe(ve));
  TG_CHECK_OK(ValidateOg(VeToOg(ve)));
  TG_CHECK_OK(ValidateRg(VeToRg(ve)));
  TG_CHECK_OK(ValidateOgc(VeToOgc(ve)));
}

TEST(ConvertTest, RandomGraphsRoundTripThroughEveryRepresentation) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    VeGraph ve = RandomTGraph(seed);
    std::vector<std::string> expected = Canonical(ve.Coalesce());
    EXPECT_EQ(Canonical(OgToVe(VeToOg(ve)).Coalesce()), expected)
        << "OG seed " << seed;
    EXPECT_EQ(Canonical(RgToVe(VeToRg(ve))), expected) << "RG seed " << seed;
  }
}

TEST(ConvertTest, FacadeAsIsIdentityForSameRepresentation) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  Result<TGraph> same = g.As(Representation::kVe);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->representation(), Representation::kVe);
}

TEST(ConvertTest, FacadeConversionMatrix) {
  TGraph ve = TGraph::FromVe(Figure1(), true);
  std::vector<std::string> expected = Canonical(ve);
  const Representation reps[] = {Representation::kVe, Representation::kOg,
                                 Representation::kRg};
  for (Representation a : reps) {
    Result<TGraph> as_a = ve.As(a);
    ASSERT_TRUE(as_a.ok());
    for (Representation b : reps) {
      Result<TGraph> as_b = as_a->As(b);
      ASSERT_TRUE(as_b.ok());
      EXPECT_EQ(Canonical(*as_b), expected)
          << RepresentationName(a) << " -> " << RepresentationName(b);
    }
  }
}

TEST(ConvertTest, OgEdgesEmbedFullVertexCopies) {
  OgGraph og = VeToOg(RandomTGraph(21));
  // Every edge's embedded copies must equal the vertex relation's entries.
  std::map<VertexId, OgVertex> by_vid;
  for (const OgVertex& v : og.vertices().Collect()) by_vid[v.vid] = v;
  for (const OgEdge& e : og.edges().Collect()) {
    EXPECT_EQ(e.v1, by_vid[e.v1.vid]);
    EXPECT_EQ(e.v2, by_vid[e.v2.vid]);
  }
}

TEST(ConvertTest, EmptyGraphConversions) {
  VeGraph empty = VeGraph::Create(testing::Ctx(), {}, {}, Interval(0, 10));
  EXPECT_EQ(VeToOg(empty).NumVertices(), 0);
  EXPECT_EQ(VeToRg(empty).NumSnapshots(), 0u);
  EXPECT_EQ(VeToOgc(empty).NumVertices(), 0);
}

}  // namespace
}  // namespace tgraph
