#include "tgraph/analytics.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

std::map<VertexId, std::vector<std::pair<Interval, PropertyValue>>> ByVertex(
    const VeGraph& result, const std::string& property) {
  std::map<VertexId, std::vector<std::pair<Interval, PropertyValue>>> out;
  for (const VeVertex& v : result.vertices().Collect()) {
    out[v.vid].emplace_back(v.interval, *v.properties.Get(property));
  }
  for (auto& [vid, states] : out) {
    std::sort(states.begin(), states.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return out;
}

TEST(TemporalDegreeTest, Figure1DegreeEvolution) {
  VeGraph result = TemporalDegree(Figure1());
  auto degrees = ByVertex(result, "degree");
  // Ann: degree 0 in [1,2), 1 in [2,7) (edge e1).
  ASSERT_EQ(degrees[1].size(), 2u);
  EXPECT_EQ(degrees[1][0], (std::pair<Interval, PropertyValue>({1, 2}, 0)));
  EXPECT_EQ(degrees[1][1], (std::pair<Interval, PropertyValue>({2, 7}, 1)));
  // Bob: degree 1 through [2,9) (e1 then e2 back-to-back).
  ASSERT_EQ(degrees[2].size(), 1u);
  EXPECT_EQ(degrees[2][0], (std::pair<Interval, PropertyValue>({2, 9}, 1)));
  // Cat: 0 in [1,7), 1 in [7,9).
  ASSERT_EQ(degrees[3].size(), 2u);
  EXPECT_EQ(degrees[3][0], (std::pair<Interval, PropertyValue>({1, 7}, 0)));
  EXPECT_EQ(degrees[3][1], (std::pair<Interval, PropertyValue>({7, 9}, 1)));
}

TEST(TemporalDegreeTest, ResultIsCoalescedAndValid) {
  VeGraph result = TemporalDegree(Figure1());
  TG_CHECK_OK(ValidateVe(result));
  TG_CHECK_OK(CheckCoalescedVe(result));
}

TEST(TemporalConnectedComponentsTest, ComponentsMergeOverTime) {
  // Two pairs that join into one component when a bridge edge appears.
  std::vector<VeVertex> vertices;
  for (int64_t i = 0; i < 4; ++i) {
    vertices.push_back(VeVertex{i, {0, 10}, Properties{{"type", "n"}}});
  }
  std::vector<VeEdge> edges = {
      {1, 0, 1, {0, 10}, Properties{{"type", "e"}}},
      {2, 2, 3, {0, 10}, Properties{{"type", "e"}}},
      {3, 1, 2, {5, 10}, Properties{{"type", "e"}}},  // the bridge
  };
  VeGraph g = VeGraph::Create(Ctx(), vertices, edges);
  auto components = ByVertex(TemporalConnectedComponents(g), "component");
  // Vertex 3: component 2 before the bridge, 0 after.
  ASSERT_EQ(components[3].size(), 2u);
  EXPECT_EQ(components[3][0],
            (std::pair<Interval, PropertyValue>({0, 5}, int64_t{2})));
  EXPECT_EQ(components[3][1],
            (std::pair<Interval, PropertyValue>({5, 10}, int64_t{0})));
  // Vertex 0: component 0 throughout — one coalesced state.
  ASSERT_EQ(components[0].size(), 1u);
  EXPECT_EQ(components[0][0],
            (std::pair<Interval, PropertyValue>({0, 10}, int64_t{0})));
}

TEST(TemporalPageRankTest, RanksRespondToTopologyChange) {
  // A star into vertex 0 that loses its spokes at time 5.
  std::vector<VeVertex> vertices;
  for (int64_t i = 0; i < 4; ++i) {
    vertices.push_back(VeVertex{i, {0, 10}, Properties{{"type", "n"}}});
  }
  std::vector<VeEdge> edges = {
      {1, 1, 0, {0, 5}, Properties{{"type", "e"}}},
      {2, 2, 0, {0, 5}, Properties{{"type", "e"}}},
      {3, 3, 0, {0, 5}, Properties{{"type", "e"}}},
  };
  VeGraph g = VeGraph::Create(Ctx(), vertices, edges);
  auto ranks = ByVertex(TemporalPageRank(g), "rank");
  ASSERT_EQ(ranks[0].size(), 2u);
  EXPECT_GT(ranks[0][0].second.AsDouble(), ranks[0][1].second.AsDouble());
  EXPECT_NEAR(ranks[0][1].second.AsDouble(), 0.15, 1e-9);  // isolated
}

TEST(TemporalAnalyticTest, CustomAnalytic) {
  // Count each vertex's out-edges of a given type, over time.
  VeGraph result = TemporalVertexAnalytic(
      Figure1(),
      [](const sg::PropertyGraph& snapshot) {
        auto zero = snapshot.vertices().Map([](const sg::Vertex& v) {
          return std::pair<VertexId, int64_t>(v.vid, 0);
        });
        return zero.Union(snapshot.OutDegrees())
            .ReduceByKey([](const int64_t& a, const int64_t& b) { return a + b; })
            .Map([](const std::pair<VertexId, int64_t>& kv) {
              return std::pair<VertexId, PropertyValue>(
                  kv.first, PropertyValue(kv.second));
            });
      },
      "out_degree");
  auto out = ByVertex(result, "out_degree");
  // Ann is the source of e1 during [2,7).
  ASSERT_EQ(out[1].size(), 2u);
  EXPECT_EQ(out[1][1], (std::pair<Interval, PropertyValue>({2, 7}, 1)));
}

TEST(TemporalAnalyticTest, EmptyGraph) {
  VeGraph empty = VeGraph::Create(Ctx(), {}, {}, Interval(0, 5));
  VeGraph result = TemporalDegree(empty);
  EXPECT_EQ(result.NumVertexRecords(), 0);
}

}  // namespace
}  // namespace tgraph
