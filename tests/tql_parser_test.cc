#include "tql/parser.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tgraph::tql {
namespace {

std::vector<Statement> MustParse(const std::string& script) {
  Result<std::vector<Statement>> statements = Parse(script);
  TG_CHECK(statements.ok()) << statements.status();
  return *statements;
}

TEST(ParserTest, LoadWithAndWithoutRange) {
  auto statements = MustParse(
      "LOAD '/data/wiki' AS g; LOAD '/data/wiki' FROM 3 TO 9 AS h");
  ASSERT_EQ(statements.size(), 2u);
  const auto& plain = std::get<LoadStatement>(statements[0]);
  EXPECT_EQ(plain.path, "/data/wiki");
  EXPECT_EQ(plain.name, "g");
  EXPECT_FALSE(plain.range.has_value());
  const auto& ranged = std::get<LoadStatement>(statements[1]);
  EXPECT_EQ(ranged.range, Interval(3, 9));
}

TEST(ParserTest, GenerateWithParams) {
  auto statements =
      MustParse("GENERATE snb(scale=0.5, seed=7, months=24) AS g");
  const auto& generate = std::get<GenerateStatement>(statements[0]);
  EXPECT_EQ(generate.dataset, "snb");
  ASSERT_EQ(generate.params.size(), 3u);
  EXPECT_EQ(generate.params[0].first, "scale");
  EXPECT_DOUBLE_EQ(generate.params[0].second, 0.5);
  EXPECT_EQ(generate.name, "g");
}

TEST(ParserTest, AZoomFull) {
  auto statements = MustParse(
      "SET s = AZOOM g BY school "
      "AGGREGATE COUNT() AS students, SUM(w) AS total, AVG(w) AS mean "
      "TYPE 'school' EDGE TYPE 'collaborate'");
  const auto& set = std::get<SetStatement>(statements[0]);
  EXPECT_EQ(set.name, "s");
  const auto& azoom = std::get<AZoomExpr>(set.expr);
  EXPECT_EQ(azoom.source, "g");
  EXPECT_EQ(azoom.group_by, "school");
  ASSERT_EQ(azoom.aggregates.size(), 3u);
  EXPECT_EQ(azoom.aggregates[0].kind, AggKind::kCount);
  EXPECT_EQ(azoom.aggregates[0].output, "students");
  EXPECT_EQ(azoom.aggregates[1].kind, AggKind::kSum);
  EXPECT_EQ(azoom.aggregates[1].input, "w");
  EXPECT_EQ(azoom.aggregates[2].kind, AggKind::kAvg);
  EXPECT_EQ(azoom.new_type, "school");
  EXPECT_EQ(azoom.edge_type, "collaborate");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto statements = MustParse("set s = azoom g by school");
  const auto& azoom = std::get<AZoomExpr>(std::get<SetStatement>(statements[0]).expr);
  EXPECT_EQ(azoom.group_by, "school");
}

TEST(ParserTest, WZoomVariants) {
  auto statements = MustParse(
      "SET a = WZOOM g WINDOW 3;"
      "SET b = WZOOM g WINDOW 5 CHANGES NODES ALL EDGES MOST;"
      "SET c = WZOOM g WINDOW 3 NODES ATLEAST 0.25 EDGES EXISTS "
      "RESOLVE school LAST, name FIRST");
  const auto& a = std::get<WZoomExpr>(std::get<SetStatement>(statements[0]).expr);
  EXPECT_EQ(a.window, 3);
  EXPECT_FALSE(a.by_changes);
  EXPECT_TRUE(a.nodes.Passes(1.0));
  EXPECT_FALSE(a.nodes.Passes(0.9));  // defaults to ALL
  const auto& b = std::get<WZoomExpr>(std::get<SetStatement>(statements[1]).expr);
  EXPECT_TRUE(b.by_changes);
  EXPECT_TRUE(b.edges.Passes(0.6));
  EXPECT_FALSE(b.edges.Passes(0.5));  // MOST is strict
  const auto& c = std::get<WZoomExpr>(std::get<SetStatement>(statements[2]).expr);
  EXPECT_TRUE(c.nodes.Passes(0.25));
  EXPECT_FALSE(c.nodes.Passes(0.2));
  ASSERT_EQ(c.resolves.size(), 2u);
  EXPECT_EQ(c.resolves[0].attribute, "school");
  EXPECT_EQ(c.resolves[0].resolver, Resolver::kLast);
  EXPECT_EQ(c.resolves[1].resolver, Resolver::kFirst);
}

TEST(ParserTest, SliceSubgraphCoalesceConvert) {
  auto statements = MustParse(
      "SET a = SLICE g FROM 2 TO 8;"
      "SET b = SUBGRAPH g WHERE type = 'person' AND age >= 21 "
      "EDGES WHERE HAS(weight);"
      "SET c = COALESCE g;"
      "SET d = CONVERT g TO ogc;"
      "SET e = g");
  const auto& slice = std::get<SliceExpr>(std::get<SetStatement>(statements[0]).expr);
  EXPECT_EQ(slice.from, 2);
  EXPECT_EQ(slice.to, 8);
  const auto& subgraph =
      std::get<SubgraphExpr>(std::get<SetStatement>(statements[1]).expr);
  ASSERT_EQ(subgraph.vertex_predicate.size(), 2u);
  EXPECT_EQ(subgraph.vertex_predicate[0].key, "type");
  EXPECT_EQ(subgraph.vertex_predicate[0].op, Comparison::Op::kEq);
  EXPECT_EQ(subgraph.vertex_predicate[0].literal, PropertyValue("person"));
  EXPECT_EQ(subgraph.vertex_predicate[1].op, Comparison::Op::kGe);
  ASSERT_EQ(subgraph.edge_predicate.size(), 1u);
  EXPECT_EQ(subgraph.edge_predicate[0].op, Comparison::Op::kHas);
  EXPECT_EQ(std::get<ConvertExpr>(std::get<SetStatement>(statements[3]).expr).target,
            Representation::kOgc);
  EXPECT_EQ(std::get<RefExpr>(std::get<SetStatement>(statements[4]).expr).source,
            "g");
}

TEST(ParserTest, StoreInfoSnapshotDropList) {
  auto statements = MustParse(
      "STORE g TO '/out' SORT STRUCTURAL; INFO g; SNAPSHOT g AT 5 LIMIT 3; "
      "DROP g; LIST");
  EXPECT_EQ(std::get<StoreStatement>(statements[0]).sort,
            storage::SortOrder::kStructuralLocality);
  EXPECT_EQ(std::get<InfoStatement>(statements[1]).name, "g");
  const auto& snapshot = std::get<SnapshotStatement>(statements[2]);
  EXPECT_EQ(snapshot.at, 5);
  EXPECT_EQ(snapshot.limit, 3);
  EXPECT_EQ(std::get<DropStatement>(statements[3]).name, "g");
  EXPECT_TRUE(std::holds_alternative<ListStatement>(statements[4]));
}

TEST(ParserTest, TrailingSemicolonAndComments) {
  auto statements = MustParse("-- a pipeline\nLIST;\n-- done\n");
  EXPECT_EQ(statements.size(), 1u);
}

TEST(ParserTest, ErrorsNameTheProblem) {
  Status s = Parse("LOAD missing_quotes AS g").status();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("quoted path"), std::string::npos);

  s = Parse("SET x =").status();
  EXPECT_TRUE(s.IsInvalidArgument());

  s = Parse("WZOOM g WINDOW 3").status();  // missing SET
  EXPECT_TRUE(s.IsInvalidArgument());

  s = Parse("SET x = WZOOM g WINDOW 'three'").status();
  EXPECT_NE(s.message().find("integer"), std::string::npos);

  s = Parse("SET x = CONVERT g TO xyz").status();
  EXPECT_NE(s.message().find("VE, OG, OGC, or RG"), std::string::npos);
}

TEST(ParserTest, MissingSemicolonBetweenStatementsFails) {
  EXPECT_TRUE(Parse("LIST LIST").status().IsInvalidArgument());
}

TEST(ParserTest, ExplainAnalyzeWrapsAnyStatement) {
  auto statements = MustParse(
      "EXPLAIN ANALYZE SET s = AZOOM g BY school;"
      "explain analyze INFO g;"
      "EXPLAIN ANALYZE LOAD '/data/wiki' AS g");
  ASSERT_EQ(statements.size(), 3u);
  const auto& set_explain = std::get<ExplainStatement>(statements[0]);
  ASSERT_NE(set_explain.inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<SetStatement>(*set_explain.inner));
  const auto& info_explain = std::get<ExplainStatement>(statements[1]);
  EXPECT_TRUE(std::holds_alternative<InfoStatement>(*info_explain.inner));
  const auto& load_explain = std::get<ExplainStatement>(statements[2]);
  EXPECT_TRUE(std::holds_alternative<LoadStatement>(*load_explain.inner));
}

TEST(ParserTest, ExplainRequiresAnalyzeAndRejectsNesting) {
  Status s = Parse("EXPLAIN SET s = g").status();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("ANALYZE"), std::string::npos);

  s = Parse("EXPLAIN ANALYZE EXPLAIN ANALYZE INFO g").status();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("nested"), std::string::npos);

  s = Parse("EXPLAIN ANALYZE").status();
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace tgraph::tql
