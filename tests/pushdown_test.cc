#include <gtest/gtest.h>

#include <filesystem>

#include "common/logging.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tgraph::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Schema TimeSchema() {
  return Schema{{{"id", ColumnType::kInt64},
                 {"start", ColumnType::kInt64},
                 {"end", ColumnType::kInt64}}};
}

// 1000 rows sorted by start; row i valid over [i, i+5).
std::string WriteSortedFile(const std::string& name, int64_t group_size) {
  std::string path = TempPath(name);
  WriterOptions options;
  options.row_group_size = group_size;
  auto writer = TableWriter::Open(path, TimeSchema(), options);
  TG_CHECK(writer.ok());
  RecordBatch batch;
  batch.schema = TimeSchema();
  batch.columns.resize(3);
  for (int64_t i = 0; i < 1000; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].ints.push_back(i);
    batch.columns[2].ints.push_back(i + 5);
  }
  batch.num_rows = 1000;
  TG_CHECK_OK((*writer)->Append(batch));
  TG_CHECK_OK((*writer)->Close());
  return path;
}

TEST(PredicateTest, MaybeMatchesUsesStats) {
  Schema schema = TimeSchema();
  std::vector<ColumnStats> stats(3);
  stats[1] = ColumnStats{true, 100, 199};  // start in [100, 199]
  stats[2] = ColumnStats{true, 105, 204};  // end in [105, 204]

  // Query range [150, 160): overlaps.
  EXPECT_TRUE(Predicate::IntervalOverlaps("start", "end", Interval(150, 160))
                  .MaybeMatches(schema, stats));
  // Query range [500, 600): start stats exclude it.
  EXPECT_FALSE(Predicate::IntervalOverlaps("start", "end", Interval(500, 600))
                   .MaybeMatches(schema, stats));
  // Query range [0, 50): end stats exclude it (all rows end >= 105 > 50 is
  // fine for "end > start_of_query" but start must be < 50; min start 100).
  EXPECT_FALSE(Predicate::IntervalOverlaps("start", "end", Interval(0, 50))
                   .MaybeMatches(schema, stats));
}

TEST(PredicateTest, UnknownColumnsAreConservative) {
  Schema schema = TimeSchema();
  std::vector<ColumnStats> stats(3);  // no stats at all
  EXPECT_TRUE(Predicate::IntervalOverlaps("start", "end", Interval(0, 1))
                  .MaybeMatches(schema, stats));
  Predicate odd;
  odd.And(Predicate::ColumnRange{"no_such_column", 5, true, 10, true});
  EXPECT_TRUE(odd.MaybeMatches(schema, stats));
}

TEST(PredicateTest, RowLevelEvaluation) {
  RecordBatch batch;
  batch.schema = TimeSchema();
  batch.columns.resize(3);
  batch.columns[0].ints = {1, 2};
  batch.columns[1].ints = {10, 50};
  batch.columns[2].ints = {20, 60};
  batch.num_rows = 2;
  Predicate p = Predicate::IntervalOverlaps("start", "end", Interval(15, 30));
  EXPECT_TRUE(p.Matches(batch, 0));   // [10,20) overlaps [15,30)
  EXPECT_FALSE(p.Matches(batch, 1));  // [50,60) does not
}

TEST(PushdownTest, SkipsRowGroupsOutsideRange) {
  std::string path = WriteSortedFile("pushdown_sorted.tcol", 100);
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->num_row_groups(), 10u);

  Predicate p = Predicate::IntervalOverlaps("start", "end", Interval(250, 260));
  size_t scanned = 0;
  Result<RecordBatch> result = (*reader)->Read(&p, &scanned);
  ASSERT_TRUE(result.ok());
  // Rows overlapping [250,260): starts 246..259 -> 14 rows.
  EXPECT_EQ(result->num_rows, 14);
  // Sorted file: only 1-2 of 10 groups may be touched.
  EXPECT_LE(scanned, 2u);
}

TEST(PushdownTest, UnsortedFileScansMoreGroups) {
  // Same data, shuffled: stats ranges widen and skipping degrades — this is
  // exactly why the loaders sort (Section 4).
  std::string path = TempPath("pushdown_shuffled.tcol");
  WriterOptions options;
  options.row_group_size = 100;
  auto writer = TableWriter::Open(path, TimeSchema(), options);
  ASSERT_TRUE(writer.ok());
  RecordBatch batch;
  batch.schema = TimeSchema();
  batch.columns.resize(3);
  for (int64_t i = 0; i < 1000; ++i) {
    int64_t j = (i * 617) % 1000;  // deterministic shuffle
    batch.columns[0].ints.push_back(j);
    batch.columns[1].ints.push_back(j);
    batch.columns[2].ints.push_back(j + 5);
  }
  batch.num_rows = 1000;
  TG_CHECK_OK((*writer)->Append(batch));
  TG_CHECK_OK((*writer)->Close());

  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Predicate p = Predicate::IntervalOverlaps("start", "end", Interval(250, 260));
  size_t scanned = 0;
  Result<RecordBatch> result = (*reader)->Read(&p, &scanned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows, 14);  // same rows either way
  EXPECT_EQ(scanned, 10u);          // but every group decoded
}

TEST(PushdownTest, NoPredicateReadsEverything) {
  std::string path = WriteSortedFile("pushdown_all.tcol", 100);
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  size_t scanned = 0;
  Result<RecordBatch> result = (*reader)->Read(nullptr, &scanned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows, 1000);
  EXPECT_EQ(scanned, 10u);
}

TEST(PushdownTest, EmptyResultWhenRangeBeyondData) {
  std::string path = WriteSortedFile("pushdown_empty.tcol", 100);
  auto reader = TableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Predicate p =
      Predicate::IntervalOverlaps("start", "end", Interval(5000, 6000));
  size_t scanned = 0;
  Result<RecordBatch> result = (*reader)->Read(&p, &scanned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows, 0);
  EXPECT_EQ(scanned, 0u);
}

}  // namespace
}  // namespace tgraph::storage
