// Adversarial tests for the tgraph-store container (v2 and v3): every
// malformed input must come back as a Status error — truncated headers,
// bad magic, overlapping sections, lying zone maps, flipped bytes — and
// never a crash or wrong data. These run under ASan/UBSan in CI, so
// "doesn't crash" is checked with real teeth. (Attacks on the v3 encoded
// payloads themselves live in store_encodings_test.cc.)

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/hash.h"
#include "storage/graph_io.h"
#include "storage/serde.h"
#include "storage/store_format.h"
#include "storage/store_reader.h"
#include "tests/test_util.h"

namespace tgraph::storage {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  TG_CHECK(f != nullptr) << path;
  std::string data;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.append(buffer, n);
  }
  std::fclose(f);
  return data;
}

void WriteAll(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  TG_CHECK(f != nullptr) << path;
  TG_CHECK(std::fwrite(data.data(), 1, data.size(), f) == data.size());
  std::fclose(f);
}

// A small but multi-partition store to attack. `version` 0 means the
// writer default (v3, encoded segments).
std::string MakeVictim(const std::string& name, uint32_t version = 0) {
  std::string dir = TempDir(name);
  GraphWriteOptions options;
  options.row_group_size = 16;
  if (version != 0) options.store_version = version;
  TG_CHECK_OK(WriteVeStore(RandomTGraph(3, 40, 80, 25), dir, options));
  return dir;
}

// Splits a well-formed store file into its regions.
struct FileParts {
  uint32_t version = kStoreVersion;  // from the header, drives the grammar
  std::string data;    // header + segments (everything before the footer)
  StoreFooter footer;  // decoded, ready to tamper with
};

FileParts Dissect(const std::string& bytes) {
  TG_CHECK(bytes.size() >= kStoreHeaderSize + kStoreTrailerSize);
  size_t pos = bytes.size() - kStoreTrailerSize + 8;
  Result<uint64_t> footer_size = GetFixed64(bytes, &pos);
  TG_CHECK_OK(footer_size.status());
  size_t data_end = bytes.size() - kStoreTrailerSize - *footer_size;
  FileParts parts;
  parts.version = static_cast<uint8_t>(bytes[8]);
  parts.data = bytes.substr(0, data_end);
  TG_CHECK_OK(DecodeStoreFooter(
      std::string_view(bytes).substr(data_end, *footer_size), parts.version,
      &parts.footer));
  return parts;
}

// Reassembles a store file from (possibly tampered) parts, recomputing the
// footer checksum and trailer so only the intended lie is present.
std::string Reassemble(const FileParts& parts) {
  std::string encoded_footer;
  EncodeStoreFooter(parts.footer, parts.version, &encoded_footer);
  std::string bytes = parts.data;
  bytes += encoded_footer;
  PutFixed64(&bytes, HashBytesFast(encoded_footer));
  PutFixed64(&bytes, encoded_footer.size());
  bytes.append(parts.version >= kStoreVersionV3 ? kStoreMagicV3 : kStoreMagic,
               sizeof(kStoreMagic));
  return bytes;
}

Status LoadStatus(const std::string& dir) {
  return LoadVeGraph(Ctx(), dir, {}).status();
}

TEST(StoreCorruptionTest, BadHeadMagicIsRejected) {
  std::string dir = MakeVictim("corrupt_head_magic");
  std::string bytes = ReadAll(StorePath(dir));
  bytes[0] = 'X';
  WriteAll(StorePath(dir), bytes);
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, BadTailMagicIsRejected) {
  std::string dir = MakeVictim("corrupt_tail_magic");
  std::string bytes = ReadAll(StorePath(dir));
  bytes[bytes.size() - 1] ^= 0xff;
  WriteAll(StorePath(dir), bytes);
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, TruncationAtEveryBoundaryIsAnError) {
  std::string dir = MakeVictim("corrupt_truncated");
  std::string bytes = ReadAll(StorePath(dir));
  // Below the header, mid-header, mid-data, mid-footer, mid-trailer.
  for (size_t keep : {size_t{0}, size_t{7}, size_t{kStoreHeaderSize},
                      bytes.size() / 2, bytes.size() - kStoreTrailerSize,
                      bytes.size() - 9, bytes.size() - 1}) {
    WriteAll(StorePath(dir), bytes.substr(0, keep));
    EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok()) << "keep=" << keep;
    EXPECT_TRUE(LoadStatus(dir).IsIoError()) << "keep=" << keep;
  }
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, WrongVersionIsRejected) {
  std::string dir = MakeVictim("corrupt_version");
  std::string bytes = ReadAll(StorePath(dir));
  bytes[8] = 99;  // version field, little-endian low byte
  WriteAll(StorePath(dir), bytes);
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, CorruptFooterChecksumIsRejected) {
  std::string dir = MakeVictim("corrupt_footer_checksum");
  std::string bytes = ReadAll(StorePath(dir));
  bytes[bytes.size() - kStoreTrailerSize] ^= 0x01;  // checksum low byte
  WriteAll(StorePath(dir), bytes);
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, AbsurdFooterLengthIsRejected) {
  std::string dir = MakeVictim("corrupt_footer_length");
  std::string bytes = ReadAll(StorePath(dir));
  std::string tampered = bytes.substr(0, bytes.size() - 16);
  PutFixed64(&tampered, uint64_t{1} << 60);  // footer_size
  tampered += bytes.substr(bytes.size() - 8);  // keep the real tail magic
  WriteAll(StorePath(dir), tampered);
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, SegmentBitFlipFailsChecksumOnLoad) {
  std::string dir = MakeVictim("corrupt_segment");
  std::string bytes = ReadAll(StorePath(dir));
  FileParts parts = Dissect(bytes);
  // Flip a byte inside the first segment's payload. Open still succeeds
  // (verification is lazy), the load must fail.
  const SegmentMeta& segment = parts.footer.tables[0].partitions[0].segments[0];
  bytes[segment.offset + 3] ^= 0x40;
  WriteAll(StorePath(dir), bytes);
  ASSERT_TRUE(StoreReader::Open(StorePath(dir)).ok());
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, OverlappingSectionsAreRejected) {
  std::string dir = MakeVictim("corrupt_overlap");
  FileParts parts = Dissect(ReadAll(StorePath(dir)));
  // Point the second segment into the first one's extent.
  TableMeta& table = parts.footer.tables[0];
  ASSERT_GE(table.partitions[0].segments.size(), 2u);
  table.partitions[0].segments[1].offset = table.partitions[0].segments[0].offset;
  WriteAll(StorePath(dir), Reassemble(parts));
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, SegmentPastEndOfFileIsRejected) {
  std::string dir = MakeVictim("corrupt_oob");
  FileParts parts = Dissect(ReadAll(StorePath(dir)));
  parts.footer.tables[0].partitions[0].segments[0].offset = uint64_t{1} << 40;
  WriteAll(StorePath(dir), Reassemble(parts));
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, LyingZoneMapIsDetected) {
  std::string dir = MakeVictim("corrupt_zonemap");
  FileParts parts = Dissect(ReadAll(StorePath(dir)));
  // Shrink the vid column's zone map so it excludes rows the segment
  // actually holds. A reader that trusted it would silently drop data;
  // ours must refuse. The checksum is over the data bytes (unchanged), so
  // only the zone-map check can catch this.
  int t = parts.footer.FindTable("vertices");
  ASSERT_GE(t, 0);
  SegmentMeta& segment = parts.footer.tables[t].partitions[0].segments[0];
  ASSERT_TRUE(segment.stats.has_int_stats);
  segment.stats.min_int = segment.stats.max_int + 1000;
  segment.stats.max_int = segment.stats.max_int + 2000;
  WriteAll(StorePath(dir), Reassemble(parts));
  ASSERT_TRUE(StoreReader::Open(StorePath(dir)).ok());
  Status status = LoadStatus(dir);
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, NonMonotonicBinaryOffsetsAreRejected) {
  // A v2 victim: the attack patches offset words at a fixed position in
  // the raw segment layout, which only exists on disk for raw segments.
  std::string dir = MakeVictim("corrupt_offsets", kStoreVersion);
  std::string bytes = ReadAll(StorePath(dir));
  FileParts parts = Dissect(bytes);
  // The VE vertex props column (index 3) is binary: offsets first, payload
  // after. Swap two offsets and recompute the segment checksum so only
  // the monotonicity check can object.
  int t = parts.footer.FindTable("vertices");
  ASSERT_GE(t, 0);
  SegmentMeta& segment = parts.footer.tables[t].partitions[0].segments[3];
  int64_t rows = parts.footer.tables[t].partitions[0].num_rows;
  ASSERT_GE(rows, 2);
  std::string patched;
  PutFixed64(&patched, uint64_t{1} << 50);
  bytes.replace(segment.offset + 8, 8, patched);
  segment.checksum = HashBytesFast(
      std::string_view(bytes).substr(segment.offset, segment.byte_size));
  WriteAll(StorePath(dir), Reassemble(FileParts{
                               parts.version,
                               bytes.substr(0, parts.data.size()),
                               parts.footer}));
  ASSERT_TRUE(StoreReader::Open(StorePath(dir)).ok());
  EXPECT_TRUE(LoadStatus(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(StoreCorruptionTest, EmptyAndTinyFilesAreRejected) {
  std::string dir = TempDir("corrupt_tiny");
  std::filesystem::create_directories(dir);
  WriteAll(StorePath(dir), "");
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  WriteAll(StorePath(dir), "TGSTORE2");
  EXPECT_FALSE(StoreReader::Open(StorePath(dir)).ok());
  EXPECT_FALSE(StoreReader::Open(dir + "/missing.tgs").ok());
  std::filesystem::remove_all(dir);
}

// Byte-flip fuzz: flipping any single byte must produce either a Status
// error or a successful load — never a crash. (Flips that only touch
// payload bytes are caught by segment checksums; flips in padding are
// legitimately invisible.)
TEST(StoreCorruptionTest, ByteFlipFuzzNeverCrashes) {
  std::string dir = MakeVictim("corrupt_fuzz");
  std::string pristine = ReadAll(StorePath(dir));
  int errors = 0;
  int survivors = 0;
  for (size_t i = 0; i < pristine.size(); i += 7) {
    std::string bytes = pristine;
    bytes[i] ^= 0x55;
    WriteAll(StorePath(dir), bytes);
    Status status = LoadStatus(dir);
    if (status.ok()) {
      ++survivors;
    } else {
      ++errors;
    }
  }
  // The vast majority of flips must be detected; a few land in padding.
  EXPECT_GT(errors, 0);
  EXPECT_LT(survivors, errors);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tgraph::storage
