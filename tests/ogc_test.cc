#include "tgraph/ogc.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Figure1;

OgcGraph Figure1Ogc() { return VeToOgc(Figure1()); }

TEST(OgcGraphTest, IntervalIndexFromChangePoints) {
  OgcGraph g = Figure1Ogc();
  // Change points {1,2,5,7,9} -> elementary intervals [1,2),[2,5),[5,7),[7,9).
  ASSERT_EQ(g.intervals().size(), 4u);
  EXPECT_EQ(g.intervals()[0], Interval(1, 2));
  EXPECT_EQ(g.intervals()[3], Interval(7, 9));
  TG_CHECK_OK(ValidateOgc(g));
}

TEST(OgcGraphTest, PresenceBitsMatchLifetimes) {
  OgcGraph g = Figure1Ogc();
  for (const OgcVertex& v : g.vertices().Collect()) {
    if (v.vid == 1) {  // Ann [1,7): present in intervals 0,1,2
      EXPECT_EQ(v.presence.ToString(), "[1, 1, 1, 0]");
    } else if (v.vid == 2) {  // Bob [2,9)
      EXPECT_EQ(v.presence.ToString(), "[0, 1, 1, 1]");
    } else if (v.vid == 3) {  // Cat [1,9)
      EXPECT_EQ(v.presence.ToString(), "[1, 1, 1, 1]");
    }
  }
}

TEST(OgcGraphTest, EdgePresenceAndTypes) {
  OgcGraph g = Figure1Ogc();
  for (const OgcEdge& e : g.edges().Collect()) {
    EXPECT_EQ(e.type, "co-author");
    if (e.eid == 1) {  // [2,7) -> intervals 1,2
      EXPECT_EQ(e.presence.ToString(), "[0, 1, 1, 0]");
      EXPECT_EQ(e.v1.vid, 1);
      EXPECT_EQ(e.v2.vid, 2);
    } else {  // e2 [7,9) -> interval 3
      EXPECT_EQ(e.presence.ToString(), "[0, 0, 0, 1]");
    }
  }
}

TEST(OgcGraphTest, VertexTypesPreserved) {
  OgcGraph g = Figure1Ogc();
  for (const OgcVertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.type, "person");
  }
}

TEST(OgcGraphTest, RecordCounts) {
  OgcGraph g = Figure1Ogc();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.NumVertexRecords(), 3 + 3 + 4);  // set bits
  EXPECT_EQ(g.NumEdgeRecords(), 2 + 1);
}

TEST(OgcGraphTest, RoundTripToVeKeepsTopology) {
  VeGraph ve = Figure1();
  VeGraph back = OgcToVe(VeToOgc(ve));
  EXPECT_EQ(testing::CanonicalTopology(ve), testing::CanonicalTopology(back));
}

}  // namespace
}  // namespace tgraph
