#include "tql/interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/graph_io.h"
#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph::tql {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::SchoolZoom;

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : interpreter_(Ctx()) {
    // Bind the running example under the name g1 via a stored file.
    dir_ = (std::filesystem::temp_directory_path() / "tql_fixture").string();
    std::filesystem::remove_all(dir_);
    TG_CHECK_OK(storage::WriteVeGraph(Figure1(), dir_));
  }

  std::string MustRun(const std::string& script) {
    Result<std::string> output = interpreter_.ExecuteScript(script);
    TG_CHECK(output.ok()) << output.status();
    return *output;
  }

  std::string dir_;
  Interpreter interpreter_;
};

TEST_F(InterpreterTest, LoadInfoList) {
  std::string out = MustRun("LOAD '" + dir_ + "' AS g1; INFO g1; LIST");
  EXPECT_NE(out.find("loaded g1"), std::string::npos);
  EXPECT_NE(out.find("vertices=3"), std::string::npos);
  EXPECT_NE(out.find("lifetime [1, 9)"), std::string::npos);
  EXPECT_NE(out.find("g1 [VE]"), std::string::npos);
}

TEST_F(InterpreterTest, AZoomPipelineMatchesNativeApi) {
  MustRun("LOAD '" + dir_ + "' AS g1;" +
          "SET schools = AZOOM g1 BY school "
          "AGGREGATE COUNT() AS students TYPE 'school' "
          "EDGE TYPE 'collaborate';"
          "SET schools = COALESCE schools");
  Result<TGraph> schools = interpreter_.Lookup("schools");
  ASSERT_TRUE(schools.ok());
  // Native API result for comparison. The TQL aggregator stamps the group
  // key into the grouping attribute itself.
  AZoomSpec spec = SchoolZoom();
  spec.aggregator =
      MakeAggregator("school", "school", {{"students", AggKind::kCount, ""}});
  TGraph expected =
      TGraph::FromVe(Figure1(), true).AZoom(spec)->Coalesce();
  EXPECT_EQ(Canonical(*schools), Canonical(expected));
}

TEST_F(InterpreterTest, WZoomReproducesFigure3) {
  MustRun("LOAD '" + dir_ + "' AS g1;" +
          "SET q = WZOOM g1 WINDOW 3 NODES ALL EDGES ALL RESOLVE school LAST");
  Result<TGraph> quarters = interpreter_.Lookup("q");
  ASSERT_TRUE(quarters.ok());
  std::map<VertexId, Interval> presence;
  for (const VeVertex& v : quarters->ve().vertices().Collect()) {
    presence[v.vid] = v.interval;
  }
  EXPECT_EQ(presence[1], Interval(1, 7));
  EXPECT_EQ(presence[2], Interval(4, 7));
  EXPECT_EQ(presence[3], Interval(1, 7));
}

TEST_F(InterpreterTest, SliceAndSubgraph) {
  MustRun("LOAD '" + dir_ + "' AS g1;" +
          "SET mid = SLICE g1 FROM 3 TO 8;"
          "SET mit = SUBGRAPH g1 WHERE school = 'MIT'");
  Result<TGraph> mid = interpreter_.Lookup("mid");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->lifetime(), Interval(3, 8));
  Result<TGraph> mit = interpreter_.Lookup("mit");
  ASSERT_TRUE(mit.ok());
  EXPECT_EQ(mit->As(Representation::kVe)->ve().NumVertices(), 2);  // Ann, Cat
}

TEST_F(InterpreterTest, SubgraphHasAndComparisons) {
  MustRun("LOAD '" + dir_ + "' AS g1;" +
          "SET with_school = SUBGRAPH g1 WHERE HAS(school);"
          "SET not_mit = SUBGRAPH g1 WHERE school != 'MIT'");
  EXPECT_EQ(interpreter_.Lookup("with_school")
                ->As(Representation::kVe)
                ->ve()
                .NumVertexRecords(),
            3);  // Ann, Cat, Bob's CMU state
  EXPECT_EQ(interpreter_.Lookup("not_mit")
                ->As(Representation::kVe)
                ->ve()
                .NumVertices(),
            1);  // only Bob (CMU state)
}

TEST_F(InterpreterTest, ConvertChangesRepresentation) {
  MustRun("LOAD '" + dir_ + "' AS g1; SET og = CONVERT g1 TO og");
  EXPECT_EQ(interpreter_.Lookup("og")->representation(), Representation::kOg);
  // Zoom works on the converted graph through TQL too.
  MustRun("SET z = WZOOM og WINDOW 3 NODES EXISTS EDGES EXISTS");
  EXPECT_EQ(interpreter_.Lookup("z")->representation(), Representation::kOg);
}

TEST_F(InterpreterTest, GenerateAndChain) {
  std::string out = MustRun(
      "GENERATE snb(scale=0.05, seed=3, months=12) AS g;"
      "SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;"
      "SET quarters = WZOOM cohorts WINDOW 3 NODES EXISTS EDGES EXISTS;"
      "INFO quarters");
  EXPECT_NE(out.find("generated g"), std::string::npos);
  EXPECT_NE(out.find("quarters [VE"), std::string::npos);
  // The WZOOM facade coalesces lazily: its input (an uncoalesced aZoom
  // output) must still give a valid result.
  Result<TGraph> quarters = interpreter_.Lookup("quarters");
  ASSERT_TRUE(quarters.ok());
  TG_CHECK_OK(
      ValidateVe(quarters->As(Representation::kVe)->Coalesce().ve()));
}

TEST_F(InterpreterTest, StoreRoundTrip) {
  std::string out_dir =
      (std::filesystem::temp_directory_path() / "tql_store").string();
  std::filesystem::remove_all(out_dir);
  MustRun("LOAD '" + dir_ + "' AS g1;" + "STORE g1 TO '" + out_dir +
          "' SORT STRUCTURAL");
  Interpreter fresh(Ctx());
  Result<std::string> out =
      fresh.ExecuteScript("LOAD '" + out_dir + "' AS back; INFO back");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("vertices=3"), std::string::npos);
}

TEST_F(InterpreterTest, SnapshotPrintsState) {
  std::string out =
      MustRun("LOAD '" + dir_ + "' AS g1; SNAPSHOT g1 AT 3 LIMIT 10");
  EXPECT_NE(out.find("3 vertices, 1 edges"), std::string::npos);
  EXPECT_NE(out.find("school=MIT"), std::string::npos);
}

TEST_F(InterpreterTest, DropRemovesBinding) {
  MustRun("LOAD '" + dir_ + "' AS g1; DROP g1");
  EXPECT_TRUE(interpreter_.Lookup("g1").status().IsNotFound());
  EXPECT_TRUE(
      interpreter_.ExecuteScript("DROP g1").status().IsNotFound());
}

TEST_F(InterpreterTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(interpreter_.ExecuteScript("INFO nothing").status().IsNotFound());
  EXPECT_TRUE(interpreter_.ExecuteScript("LOAD '/no/such/dir' AS g")
                  .status()
                  .IsIoError());
  // OGC rejects AZOOM, through the language too.
  MustRun("LOAD '" + dir_ + "' AS g1; SET c = CONVERT g1 TO ogc");
  EXPECT_TRUE(interpreter_
                  .ExecuteScript("SET x = AZOOM c BY school")
                  .status()
                  .IsNotImplemented());
}

TEST_F(InterpreterTest, ExecutionStopsAtFirstError) {
  Status s = interpreter_
                 .ExecuteScript("LOAD '" + dir_ + "' AS ok; INFO missing; "
                                "DROP ok")
                 .status();
  EXPECT_TRUE(s.IsNotFound());
  // The statement after the failure did not run.
  EXPECT_TRUE(interpreter_.Lookup("ok").ok());
}

}  // namespace
}  // namespace tgraph::tql
