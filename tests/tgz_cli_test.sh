#!/bin/sh
# End-to-end smoke test of the tgz command-line tool: every subcommand,
# composed through the on-disk columnar format.
set -e
TGZ="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TGZ" generate --dataset snb --out "$DIR/base" --scale 0.1 --seed 7
"$TGZ" info --in "$DIR/base" | grep -q "vertices       500"
"$TGZ" slice --in "$DIR/base" --out "$DIR/slice" --from 6 --to 30
"$TGZ" info --in "$DIR/slice" | grep -q "lifetime       \[6, 30)"
"$TGZ" azoom --in "$DIR/base" --out "$DIR/cohorts" \
    --group-by firstName --type cohort --count people --rep og
"$TGZ" wzoom --in "$DIR/cohorts" --out "$DIR/quarters" \
    --window 3 --vq exists --eq exists --rep ogc
"$TGZ" snapshot --in "$DIR/quarters" --at 12 --limit 2 | grep -q "snapshot at 12"
# Observability: --trace-out writes a Chrome trace, --metrics prints the
# run's metric deltas to stderr.
"$TGZ" --trace-out="$DIR/trace.json" --metrics wzoom --in "$DIR/cohorts" \
    --out "$DIR/quarters2" --window 3 --vq exists --eq exists --rep og \
    2> "$DIR/obs.err"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"ph":"X"' "$DIR/trace.json"
grep -q '"name":"tgz.wzoom"' "$DIR/trace.json"
grep -q '"name":"dataflow.shuffle"' "$DIR/trace.json"
grep -q "wrote trace to" "$DIR/obs.err"
grep -q "dataflow.shuffle.records" "$DIR/obs.err"
grep -q "dataflow.shuffle.partition_size" "$DIR/obs.err"
# Without the flags, no trace file appears and stderr stays quiet.
"$TGZ" info --in "$DIR/base" 2> "$DIR/plain.err" > /dev/null
test ! -s "$DIR/plain.err"
# Unknown flags and bad inputs must fail loudly.
if "$TGZ" wzoom --in "$DIR/base" --out "$DIR/x" --window 0 2>/dev/null; then
  echo "expected nonzero exit for window 0" >&2
  exit 1
fi
if "$TGZ" info --in "$DIR/nonexistent" 2>/dev/null; then
  echo "expected nonzero exit for missing input" >&2
  exit 1
fi
echo "tgz CLI smoke OK"
