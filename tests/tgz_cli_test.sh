#!/bin/sh
# End-to-end smoke test of the tgz command-line tool: every subcommand,
# composed through the on-disk columnar format — plus a tgzd
# start-serve-query-shutdown cycle when the server binary is given.
set -e
TGZ="$1"
TGZD="$2"
DIR="$(mktemp -d)"
TGZD_PID=""
cleanup() {
  [ -n "$TGZD_PID" ] && kill "$TGZD_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

"$TGZ" generate --dataset snb --out "$DIR/base" --scale 0.1 --seed 7
"$TGZ" info --in "$DIR/base" | grep -q "vertices       500"
"$TGZ" slice --in "$DIR/base" --out "$DIR/slice" --from 6 --to 30
"$TGZ" info --in "$DIR/slice" | grep -q "lifetime       \[6, 30)"
"$TGZ" azoom --in "$DIR/base" --out "$DIR/cohorts" \
    --group-by firstName --type cohort --count people --rep og
"$TGZ" wzoom --in "$DIR/cohorts" --out "$DIR/quarters" \
    --window 3 --vq exists --eq exists --rep ogc
"$TGZ" snapshot --in "$DIR/quarters" --at 12 --limit 2 | grep -q "snapshot at 12"
# Observability: --trace-out writes a Chrome trace, --metrics prints the
# run's metric deltas to stderr.
"$TGZ" --trace-out="$DIR/trace.json" --metrics wzoom --in "$DIR/cohorts" \
    --out "$DIR/quarters2" --window 3 --vq exists --eq exists --rep og \
    2> "$DIR/obs.err"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"ph":"X"' "$DIR/trace.json"
grep -q '"name":"tgz.wzoom"' "$DIR/trace.json"
grep -q '"name":"dataflow.shuffle"' "$DIR/trace.json"
grep -q "wrote trace to" "$DIR/obs.err"
grep -q "dataflow.shuffle.records" "$DIR/obs.err"
grep -q "dataflow.shuffle.partition_size" "$DIR/obs.err"
# Without the flags, no trace file appears and stderr stays quiet.
"$TGZ" info --in "$DIR/base" 2> "$DIR/plain.err" > /dev/null
test ! -s "$DIR/plain.err"
# Unknown flags and bad inputs must fail loudly.
if "$TGZ" wzoom --in "$DIR/base" --out "$DIR/x" --window 0 2>/dev/null; then
  echo "expected nonzero exit for window 0" >&2
  exit 1
fi
if "$TGZ" info --in "$DIR/nonexistent" 2>/dev/null; then
  echo "expected nonzero exit for missing input" >&2
  exit 1
fi

# --- tgraph-store v2: save-store writes a container, every reader
# auto-detects it ---------------------------------------------------------
"$TGZ" save-store --in "$DIR/base" --out "$DIR/store" --partition-rows 256
test -f "$DIR/store/graph.tgs"
"$TGZ" info --in "$DIR/store" | grep -q "vertices       500"
"$TGZ" snapshot --in "$DIR/store" --at 12 --limit 2 | grep -q "snapshot at 12"
"$TGZ" slice --in "$DIR/store" --out "$DIR/store_slice" --from 6 --to 30
"$TGZ" info --in "$DIR/store_slice" | grep -q "lifetime       \[6, 30)"
"$TGZ" save-store --in "$DIR/base" --out "$DIR/store_og" --rep og
test -f "$DIR/store_og/graph.tgs"
if "$TGZ" save-store --in "$DIR/base" 2>/dev/null; then
  echo "expected nonzero exit for save-store without --out" >&2
  exit 1
fi

# --help exits 0 on stdout for both binaries; bad usage exits nonzero.
"$TGZ" --help | grep -q "save-store"
"$TGZ" help > /dev/null
if [ -n "$TGZD" ]; then
  "$TGZD" --help | grep -q -- "--port"
fi
if "$TGZ" frobnicate 2>/dev/null; then
  echo "expected nonzero exit for unknown command" >&2
  exit 1
fi

# --- tgzd: start, serve over a real socket, stats, graceful shutdown -------
if [ -n "$TGZD" ]; then
  "$TGZD" --port 0 --workers 2 > "$DIR/tgzd.out" 2> "$DIR/tgzd.err" &
  TGZD_PID=$!
  # The startup line carries the bound ephemeral port.
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/^tgraphd listening on port \([0-9]*\)$/\1/p' \
        "$DIR/tgzd.out")
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "tgzd never reported its port" >&2; exit 1; }

  cat > "$DIR/query.tql" <<EOF
LOAD '$DIR/base' AS g;
SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;
INFO cohorts;
EOF
  "$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
      > "$DIR/serve1.out" 2> "$DIR/serve1.err"
  grep -q "cohorts" "$DIR/serve1.out"
  # The identical script again: answered from the result cache.
  "$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
      > "$DIR/serve2.out" 2> "$DIR/serve2.err"
  grep -q "served from cache" "$DIR/serve2.err"
  cmp -s "$DIR/serve1.out" "$DIR/serve2.out"
  # STATS shows the hit and the catalog load (row-group pushdown counters
  # from storage::LoadMetrics flow into the same registry).
  "$TGZ" stats --connect "127.0.0.1:$PORT" > "$DIR/stats.out"
  grep -q "server.cache.hits 1" "$DIR/stats.out"
  grep -q "server.catalog.loads 1" "$DIR/stats.out"
  grep -q "storage.load.row_groups.total" "$DIR/stats.out"
  # SIGTERM drains: the process exits 0 on its own.
  kill -TERM "$TGZD_PID"
  for _ in $(seq 1 50); do
    kill -0 "$TGZD_PID" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$TGZD_PID" 2>/dev/null; then
    echo "tgzd did not exit after SIGTERM" >&2
    exit 1
  fi
  wait "$TGZD_PID"
  TGZD_PID=""
  grep -q "tgraphd drained, exiting" "$DIR/tgzd.out"
fi
echo "tgz CLI smoke OK"
