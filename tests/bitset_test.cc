#include "common/bitset.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
}

TEST(BitsetTest, Count) {
  Bitset b(200);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  EXPECT_EQ(b.Count(), 67u);
  EXPECT_FALSE(b.None());
}

TEST(BitsetTest, CountRange) {
  Bitset b(128);
  for (size_t i = 10; i < 90; ++i) b.Set(i);
  EXPECT_EQ(b.CountRange(0, 10), 0u);
  EXPECT_EQ(b.CountRange(10, 90), 80u);
  EXPECT_EQ(b.CountRange(0, 128), 80u);
  EXPECT_EQ(b.CountRange(50, 60), 10u);
  EXPECT_EQ(b.CountRange(85, 95), 5u);
  EXPECT_EQ(b.CountRange(60, 60), 0u);
  // Word-boundary straddling.
  EXPECT_EQ(b.CountRange(63, 65), 2u);
}

TEST(BitsetTest, AllAnyRange) {
  Bitset b(100);
  b.SetRange(20, 40);
  EXPECT_TRUE(b.AllRange(20, 40));
  EXPECT_FALSE(b.AllRange(19, 40));
  EXPECT_TRUE(b.AnyRange(0, 21));
  EXPECT_FALSE(b.AnyRange(0, 20));
  EXPECT_TRUE(b.AllRange(30, 30));  // empty range is vacuously all
}

TEST(BitsetTest, FirstAndLastSetBit) {
  Bitset b(200);
  EXPECT_EQ(b.FirstSetBit(), -1);
  EXPECT_EQ(b.LastSetBit(), -1);
  b.Set(130);
  EXPECT_EQ(b.FirstSetBit(), 130);
  EXPECT_EQ(b.LastSetBit(), 130);
  b.Set(7);
  b.Set(199);
  EXPECT_EQ(b.FirstSetBit(), 7);
  EXPECT_EQ(b.LastSetBit(), 199);
  b.Set(0);
  EXPECT_EQ(b.FirstSetBit(), 0);
}

TEST(BitsetTest, AndOrWith) {
  Bitset a(70), b(70);
  a.SetRange(0, 40);
  b.SetRange(20, 60);
  Bitset and_result = a;
  and_result.AndWith(b);
  EXPECT_EQ(and_result.Count(), 20u);
  EXPECT_TRUE(and_result.AllRange(20, 40));
  Bitset or_result = a;
  or_result.OrWith(b);
  EXPECT_EQ(or_result.Count(), 60u);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(10), b(10), c(11);
  a.Set(3);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  b.Set(4);
  EXPECT_FALSE(a == b);
}

TEST(BitsetTest, ToString) {
  Bitset b(3);
  b.Set(0);
  b.Set(2);
  EXPECT_EQ(b.ToString(), "[1, 0, 1]");
}

TEST(BitsetTest, WordsRoundTrip) {
  Bitset b(100);
  b.SetRange(5, 77);
  Bitset restored = Bitset::FromWords(b.size(), b.words());
  EXPECT_EQ(b, restored);
}

}  // namespace
}  // namespace tgraph
