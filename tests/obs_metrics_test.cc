#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dataflow/context.h"
#include "dataflow/dataset.h"

namespace tgraph::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastValueWins) {
  Gauge gauge;
  gauge.Set(7);
  gauge.Set(3);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(HistogramTest, BucketIndexPowersOfTwo) {
  // Bucket 0: v <= 0; bucket i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // Huge values saturate into the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsCoverBucketedValues) {
  // BucketUpperBound is inclusive for bucket 0 (which holds v <= 0) and
  // exclusive above it (bucket i holds [2^(i-1), 2^i)).
  for (int64_t v : {0, 1, 2, 3, 5, 8, 100, 4096, 1 << 20}) {
    int bucket = Histogram::BucketIndex(v);
    if (bucket == 0) {
      EXPECT_LE(v, HistogramSnapshot::BucketUpperBound(bucket)) << v;
    } else {
      EXPECT_LT(v, HistogramSnapshot::BucketUpperBound(bucket)) << v;
    }
    if (bucket > 1) {
      EXPECT_GE(v, HistogramSnapshot::BucketUpperBound(bucket - 1)) << v;
    }
  }
}

TEST(HistogramTest, SnapshotStats) {
  Histogram histogram;
  for (int64_t v : {1, 2, 4, 8, 16}) histogram.Record(v);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 31);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 16);
  EXPECT_DOUBLE_EQ(snap.Mean(), 6.2);
  // Percentiles report an inclusive upper bound: the bound of the bucket
  // holding the ranked observation, tightened by the observed max. The
  // median observation (4) lives in bucket [4, 8) -> bound 8.
  EXPECT_EQ(snap.ApproxPercentile(0.5), 8);
  EXPECT_EQ(snap.ApproxPercentile(1.0), 16);
  // p0 is the first observation's bucket bound: 1 lives in [1, 2) -> 2.
  EXPECT_EQ(snap.ApproxPercentile(0.0), 2);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram histogram;
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.ApproxPercentile(0.5), 0);
}

TEST(HistogramTest, ConcurrentRecordIsConsistent) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Record(i % 128);
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t bucket : snap.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 127);
}

TEST(MetricsRegistryTest, NamesResolveToStableInstances) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.registry.stable");
  Counter* b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.registry.other"), a);
  EXPECT_EQ(registry.GetHistogram("test.registry.h"),
            registry.GetHistogram("test.registry.h"));
}

TEST(MetricsRegistryTest, SnapshotDeltaIsolatesARun) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.delta.counter");
  Histogram* histogram = registry.GetHistogram("test.delta.histogram");
  counter->Add(10);
  histogram->Record(4);

  MetricsSnapshot before = registry.Snapshot();
  counter->Add(5);
  histogram->Record(8);
  histogram->Record(8);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("test.delta.counter"), 5);
  EXPECT_EQ(delta.histograms.at("test.delta.histogram").count, 2);
  EXPECT_EQ(delta.histograms.at("test.delta.histogram").sum, 16);
}

TEST(MetricsRegistryTest, ToStringOmitsZeroCounters) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.tostring.zero");
  Counter* nonzero = registry.GetCounter("test.tostring.nonzero");
  nonzero->Add(3);
  std::string rendered = registry.ToString();
  EXPECT_EQ(rendered.find("test.tostring.zero"), std::string::npos);
  EXPECT_NE(rendered.find("test.tostring.nonzero 3"), std::string::npos);
}

TEST(DataflowMetricsTest, ShuffleRecordsBytesAndSkewHistogram) {
  dataflow::ExecutionContext ctx({.num_workers = 4});
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) data.emplace_back(i % 10, i);
  auto counts = dataflow::Dataset<std::pair<int, int>>::FromVector(&ctx, data)
                    .CountByKey()
                    .Collect();
  EXPECT_EQ(counts.size(), 10u);

  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().DeltaSince(before);
  // CountByKey = map + ReduceByKey -> exactly one shuffle of the combined
  // per-partition pairs.
  EXPECT_GE(delta.counters.at(metric_names::kShuffles), 1);
  int64_t records = delta.counters.at(metric_names::kShuffleRecords);
  EXPECT_GT(records, 0);
  EXPECT_EQ(delta.counters.at(metric_names::kShuffleBytes),
            records * static_cast<int64_t>(sizeof(std::pair<int, int64_t>)));
  const HistogramSnapshot& skew =
      delta.histograms.at(metric_names::kShufflePartitionSize);
  EXPECT_GT(skew.count, 0);
  EXPECT_EQ(skew.sum, records);  // every shuffled record lands in a partition
}

TEST(DataflowMetricsTest, LegacyMetricsSnapshotAndReset) {
  dataflow::ExecutionContext ctx({.num_workers = 2});
  ctx.ParallelFor(5, [](size_t) {});
  dataflow::Metrics::Snapshot snap = ctx.metrics().Snap();
  EXPECT_EQ(snap.stages_executed, 1);
  EXPECT_EQ(snap.tasks_executed, 5);
  ctx.metrics().Reset();
  snap = ctx.metrics().Snap();
  EXPECT_EQ(snap.stages_executed, 0);
  EXPECT_EQ(snap.tasks_executed, 0);
  EXPECT_EQ(snap.records_shuffled, 0);
}

}  // namespace
}  // namespace tgraph::obs
