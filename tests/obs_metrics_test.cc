#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/exposition.h"

#include "dataflow/context.h"
#include "dataflow/dataset.h"

namespace tgraph::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastValueWins) {
  Gauge gauge;
  gauge.Set(7);
  gauge.Set(3);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(HistogramTest, BucketIndexPowersOfTwo) {
  // Bucket 0: v <= 0; bucket i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // Huge values saturate into the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsCoverBucketedValues) {
  // BucketUpperBound is inclusive for bucket 0 (which holds v <= 0) and
  // exclusive above it (bucket i holds [2^(i-1), 2^i)).
  for (int64_t v : {0, 1, 2, 3, 5, 8, 100, 4096, 1 << 20}) {
    int bucket = Histogram::BucketIndex(v);
    if (bucket == 0) {
      EXPECT_LE(v, HistogramSnapshot::BucketUpperBound(bucket)) << v;
    } else {
      EXPECT_LT(v, HistogramSnapshot::BucketUpperBound(bucket)) << v;
    }
    if (bucket > 1) {
      EXPECT_GE(v, HistogramSnapshot::BucketUpperBound(bucket - 1)) << v;
    }
  }
}

TEST(HistogramTest, SnapshotStats) {
  Histogram histogram;
  for (int64_t v : {1, 2, 4, 8, 16}) histogram.Record(v);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 31);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 16);
  EXPECT_DOUBLE_EQ(snap.Mean(), 6.2);
  // Percentiles report an inclusive upper bound: the bound of the bucket
  // holding the ranked observation, tightened by the observed max. The
  // median observation (4) lives in bucket [4, 8) -> bound 8.
  EXPECT_EQ(snap.ApproxPercentile(0.5), 8);
  EXPECT_EQ(snap.ApproxPercentile(1.0), 16);
  // p0 is the first observation's bucket bound: 1 lives in [1, 2) -> 2.
  EXPECT_EQ(snap.ApproxPercentile(0.0), 2);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram histogram;
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.ApproxPercentile(0.5), 0);
}

TEST(HistogramTest, SingleSamplePercentiles) {
  Histogram histogram;
  histogram.Record(5);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 5);
  // With one observation every percentile is that observation; the bucket
  // bound [4, 8) -> 8 tightens to the observed max.
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.ApproxPercentile(p), 5) << p;
  }
}

TEST(HistogramTest, SaturatedTopBucketPercentiles) {
  Histogram histogram;
  // INT64_MAX saturates into the last bucket, whose upper bound is
  // INT64_MAX itself — percentiles must not overflow past it.
  histogram.Record(INT64_MAX);
  histogram.Record(INT64_MAX - 1);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.buckets[Histogram::kNumBuckets - 1], 2);
  EXPECT_EQ(snap.ApproxPercentile(0.5), INT64_MAX);
  EXPECT_EQ(snap.ApproxPercentile(1.0), INT64_MAX);
  EXPECT_EQ(snap.max, INT64_MAX);
}

TEST(HistogramTest, PercentileClampsOutOfRangeP) {
  Histogram histogram;
  for (int64_t v : {1, 2, 4}) histogram.Record(v);
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.ApproxPercentile(-0.5), snap.ApproxPercentile(0.0));
  EXPECT_EQ(snap.ApproxPercentile(1.5), snap.ApproxPercentile(1.0));
}

TEST(HistogramTest, ConcurrentRecordIsConsistent) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Record(i % 128);
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t bucket : snap.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 127);
}

TEST(MetricsRegistryTest, NamesResolveToStableInstances) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.registry.stable");
  Counter* b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.registry.other"), a);
  EXPECT_EQ(registry.GetHistogram("test.registry.h"),
            registry.GetHistogram("test.registry.h"));
}

TEST(MetricsRegistryTest, SnapshotDeltaIsolatesARun) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.delta.counter");
  Histogram* histogram = registry.GetHistogram("test.delta.histogram");
  counter->Add(10);
  histogram->Record(4);

  MetricsSnapshot before = registry.Snapshot();
  counter->Add(5);
  histogram->Record(8);
  histogram->Record(8);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("test.delta.counter"), 5);
  EXPECT_EQ(delta.histograms.at("test.delta.histogram").count, 2);
  EXPECT_EQ(delta.histograms.at("test.delta.histogram").sum, 16);
}

TEST(MetricsRegistryTest, ToStringOmitsZeroCounters) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.tostring.zero");
  Counter* nonzero = registry.GetCounter("test.tostring.nonzero");
  nonzero->Add(3);
  std::string rendered = registry.ToString();
  EXPECT_EQ(rendered.find("test.tostring.zero"), std::string::npos);
  EXPECT_NE(rendered.find("test.tostring.nonzero 3"), std::string::npos);
}

// Snapshot while writers are mid-flight: the snapshot must be internally
// coherent (bucket sums match counts at some point in the interleaving)
// and must never crash or tear. This is the /metrics scrape path: the
// exposition endpoint snapshots the registry while workers serve queries.
TEST(MetricsRegistryTest, SnapshotUnderConcurrentWritesIsCoherent) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.concurrent.counter");
  Histogram* histogram = registry.GetHistogram("test.concurrent.histogram");
  counter->Reset();
  histogram->Reset();

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!start.load()) {
      }
      for (int i = 0; i < kPerWriter; ++i) {
        counter->Increment();
        histogram->Record(i % 64);
      }
    });
  }
  start.store(true);
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    int64_t count = snap.counters.at("test.concurrent.counter");
    EXPECT_GE(count, 0);
    EXPECT_LE(count, int64_t{kWriters} * kPerWriter);
    const HistogramSnapshot& h =
        snap.histograms.at("test.concurrent.histogram");
    int64_t bucket_total = 0;
    for (int64_t bucket : h.buckets) {
      EXPECT_GE(bucket, 0);
      bucket_total += bucket;
    }
    // Mid-flight snapshots are allowed to be slightly stale across fields
    // (relaxed counters), but never out of range or torn.
    EXPECT_GE(h.count, 0);
    EXPECT_LE(h.count, int64_t{kWriters} * kPerWriter);
    EXPECT_LE(bucket_total, int64_t{kWriters} * kPerWriter);
  }
  for (auto& writer : writers) writer.join();
  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("test.concurrent.counter"),
            int64_t{kWriters} * kPerWriter);
  EXPECT_EQ(final_snap.histograms.at("test.concurrent.histogram").count,
            int64_t{kWriters} * kPerWriter);
}

TEST(DataflowMetricsTest, ShuffleRecordsBytesAndSkewHistogram) {
  dataflow::ExecutionContext ctx({.num_workers = 4});
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) data.emplace_back(i % 10, i);
  auto counts = dataflow::Dataset<std::pair<int, int>>::FromVector(&ctx, data)
                    .CountByKey()
                    .Collect();
  EXPECT_EQ(counts.size(), 10u);

  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().DeltaSince(before);
  // CountByKey = map + ReduceByKey -> exactly one shuffle of the combined
  // per-partition pairs.
  EXPECT_GE(delta.counters.at(metric_names::kShuffles), 1);
  int64_t records = delta.counters.at(metric_names::kShuffleRecords);
  EXPECT_GT(records, 0);
  EXPECT_EQ(delta.counters.at(metric_names::kShuffleBytes),
            records * static_cast<int64_t>(sizeof(std::pair<int, int64_t>)));
  const HistogramSnapshot& skew =
      delta.histograms.at(metric_names::kShufflePartitionSize);
  EXPECT_GT(skew.count, 0);
  EXPECT_EQ(skew.sum, records);  // every shuffled record lands in a partition
}

// --- Prometheus / JSON exposition ------------------------------------------

TEST(ExpositionTest, PrometheusTextRendersCountersGaugesHistograms) {
  MetricsSnapshot snap;
  snap.counters["server.cache.hits"] = 12;
  snap.gauges["server.queue.depth"] = 3;
  HistogramSnapshot h;
  for (int64_t v : {1, 3, 3, 9}) {
    h.buckets[Histogram::BucketIndex(v)] += 1;
    h.count += 1;
    h.sum += v;
  }
  h.min = 1;
  h.max = 9;
  snap.histograms["server.request_micros"] = h;

  std::string text = ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE tgraph_server_cache_hits counter\n"
                      "tgraph_server_cache_hits 12\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tgraph_server_queue_depth gauge\n"
                      "tgraph_server_queue_depth 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tgraph_server_request_micros histogram"),
            std::string::npos);
  // Cumulative buckets: 1 -> [1,2), 3,3 -> [2,4), 9 -> [8,16).
  EXPECT_NE(text.find("tgraph_server_request_micros_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgraph_server_request_micros_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgraph_server_request_micros_bucket{le=\"16\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgraph_server_request_micros_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgraph_server_request_micros_sum 16\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgraph_server_request_micros_count 4\n"),
            std::string::npos);
  // Dots never leak into the exposition charset.
  EXPECT_EQ(text.find("server.cache"), std::string::npos);
}

TEST(ExpositionTest, PrometheusBucketsAreCumulativeAndMonotonic) {
  Histogram histogram;
  for (int64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  MetricsSnapshot snap;
  snap.histograms["test.mono"] = histogram.Snapshot();
  std::string text = ToPrometheusText(snap);
  // Walk every _bucket line: counts must be non-decreasing and end at the
  // total count — the invariant Prometheus clients rely on.
  int64_t previous = -1;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("_bucket{le=\"", pos)) != std::string::npos) {
    size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    int64_t cumulative = std::stoll(text.substr(value_at + 2));
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    ++buckets_seen;
    pos = value_at;
  }
  EXPECT_GT(buckets_seen, 2);
  EXPECT_EQ(previous, 1000);  // the +Inf bucket carries the full count
}

TEST(ExpositionTest, MetricsJsonIsWellFormedAndEscapes) {
  MetricsSnapshot snap;
  snap.counters["test.json.counter"] = 5;
  HistogramSnapshot h;
  h.count = 1;
  h.sum = 7;
  h.min = 7;
  h.max = 7;
  h.buckets[Histogram::BucketIndex(7)] = 1;
  snap.histograms["test.json.histogram"] = h;
  std::string json = MetricsJson(snap);
  EXPECT_NE(json.find("\"counters\":{\"test.json.counter\":5}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.json.histogram\":{\"count\":1,\"sum\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":7"), std::string::npos);

  std::string escaped;
  AppendJsonEscaped(&escaped, "a\"b\\c\nd\x01");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd\\u0001");
}

TEST(DataflowMetricsTest, LegacyMetricsSnapshotAndReset) {
  dataflow::ExecutionContext ctx({.num_workers = 2});
  ctx.ParallelFor(5, [](size_t) {});
  dataflow::Metrics::Snapshot snap = ctx.metrics().Snap();
  EXPECT_EQ(snap.stages_executed, 1);
  EXPECT_EQ(snap.tasks_executed, 5);
  ctx.metrics().Reset();
  snap = ctx.metrics().Snap();
  EXPECT_EQ(snap.stages_executed, 0);
  EXPECT_EQ(snap.tasks_executed, 0);
  EXPECT_EQ(snap.records_shuffled, 0);
}

}  // namespace
}  // namespace tgraph::obs
