#ifndef TGRAPH_TESTS_TEST_UTIL_H_
#define TGRAPH_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "dataflow/context.h"
#include "tgraph/tgraph.h"
#include "tgraph/ve.h"

namespace tgraph::testing {

/// A small execution context shared by one test suite.
inline dataflow::ExecutionContext* Ctx() {
  static dataflow::ExecutionContext* ctx = new dataflow::ExecutionContext(
      dataflow::ContextOptions{.num_workers = 2, .default_parallelism = 4});
  return ctx;
}

/// The running example of the paper (Figure 1): Ann=1, Bob=2, Cat=3.
inline VeGraph Figure1() {
  std::vector<VeVertex> vertices = {
      {1, {1, 7}, Properties{{"type", "person"}, {"school", "MIT"}}},
      {2, {2, 5}, Properties{{"type", "person"}}},
      {2, {5, 9}, Properties{{"type", "person"}, {"school", "CMU"}}},
      {3, {1, 9}, Properties{{"type", "person"}, {"school", "MIT"}}},
  };
  std::vector<VeEdge> edges = {
      {1, 1, 2, {2, 7}, Properties{{"type", "co-author"}}},
      {2, 2, 3, {7, 9}, Properties{{"type", "co-author"}}},
  };
  return VeGraph::Create(Ctx(), std::move(vertices), std::move(edges));
}

/// The aZoom^T spec of the running example (Figure 2): group people by
/// school, count students, re-type edges to collaborate.
inline AZoomSpec SchoolZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("school");
  spec.aggregator =
      MakeAggregator("school", "name", {{"students", AggKind::kCount, ""}});
  spec.edge_type = "collaborate";
  return spec;
}

/// A canonical, order-independent rendering of a VE graph's contents, for
/// equality assertions across representations and implementations.
inline std::vector<std::string> Canonical(const VeGraph& graph) {
  std::vector<std::string> lines;
  for (const VeVertex& v : graph.vertices().Collect()) {
    lines.push_back("V " + v.ToString());
  }
  for (const VeEdge& e : graph.edges().Collect()) {
    lines.push_back("E " + e.ToString());
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Canonicalizes any representation by converting to coalesced VE.
inline std::vector<std::string> Canonical(const TGraph& graph) {
  Result<TGraph> ve = graph.As(Representation::kVe);
  TG_CHECK(ve.ok()) << ve.status();
  return Canonical(ve->Coalesce().ve());
}

/// Topology-only canonical form (ids and presence intervals, no
/// properties) — what OGC preserves. Presence is coalesced ignoring
/// attribute changes, so a vertex whose attributes change mid-lifetime
/// still renders as one presence interval.
inline std::vector<std::string> CanonicalTopology(const VeGraph& graph) {
  std::map<VertexId, std::vector<Interval>> vertex_presence;
  for (const VeVertex& v : graph.vertices().Collect()) {
    vertex_presence[v.vid].push_back(v.interval);
  }
  std::map<std::tuple<EdgeId, VertexId, VertexId>, std::vector<Interval>>
      edge_presence;
  for (const VeEdge& e : graph.edges().Collect()) {
    edge_presence[{e.eid, e.src, e.dst}].push_back(e.interval);
  }
  std::vector<std::string> lines;
  for (auto& [vid, intervals] : vertex_presence) {
    for (const Interval& i : CoalesceIntervals(intervals)) {
      lines.push_back("V " + std::to_string(vid) + " " + i.ToString());
    }
  }
  for (auto& [key, intervals] : edge_presence) {
    const auto& [eid, src, dst] = key;
    for (const Interval& i : CoalesceIntervals(intervals)) {
      lines.push_back("E " + std::to_string(eid) + " " + std::to_string(src) +
                      "->" + std::to_string(dst) + " " + i.ToString());
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// A deterministic random evolving graph for property-based tests:
/// `num_vertices` vertices and ~`num_edges` edges over [0, horizon), with
/// multi-state vertices (attribute changes) and multi-state edges.
inline VeGraph RandomTGraph(uint64_t seed, int64_t num_vertices = 30,
                            int64_t num_edges = 60, TimePoint horizon = 20,
                            int64_t group_cardinality = 4) {
  Rng rng(seed);
  std::vector<VeVertex> vertices;
  std::vector<std::vector<Interval>> presence(
      static_cast<size_t>(num_vertices));
  for (int64_t v = 0; v < num_vertices; ++v) {
    TimePoint start = rng.NextInRange(0, horizon - 2);
    TimePoint end = rng.NextInRange(start + 1, horizon);
    // Split into 1..3 states with possibly different attribute values;
    // adjacent states get distinct values so the input is coalesced.
    int64_t states = rng.NextInRange(1, 3);
    std::vector<TimePoint> cuts = {start, end};
    for (int64_t s = 1; s < states; ++s) {
      cuts.push_back(rng.NextInRange(start, end));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    int64_t previous_value = -1;
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      int64_t value =
          static_cast<int64_t>(rng.NextBounded(
              static_cast<uint64_t>(group_cardinality) + 1));
      if (value == previous_value) value = (value + 1) % (group_cardinality + 1);
      previous_value = value;
      Properties props;
      props.Set(kTypeProperty, "node");
      // value == cardinality means "no group" (tests the dropped-state path).
      if (value < group_cardinality) {
        props.Set("group", "g" + std::to_string(value));
      }
      props.Set("weight", static_cast<int64_t>(rng.NextBounded(100)));
      Interval interval(cuts[c], cuts[c + 1]);
      vertices.push_back(VeVertex{v, interval, std::move(props)});
      presence[static_cast<size_t>(v)].push_back(interval);
    }
  }
  std::vector<VeEdge> edges;
  EdgeId eid = 0;
  for (int64_t e = 0; e < num_edges; ++e) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(
        static_cast<uint64_t>(num_vertices)));
    VertexId b = static_cast<VertexId>(rng.NextBounded(
        static_cast<uint64_t>(num_vertices)));
    const auto& pa = presence[static_cast<size_t>(a)];
    const auto& pb = presence[static_cast<size_t>(b)];
    Interval span_a(pa.front().start, pa.back().end);
    Interval span_b(pb.front().start, pb.back().end);
    Interval common = span_a.Intersect(span_b);
    if (common.empty()) continue;
    TimePoint start = rng.NextInRange(common.start, common.end - 1);
    TimePoint end = rng.NextInRange(start + 1, common.end);
    Properties props;
    props.Set(kTypeProperty, "link");
    props.Set("kind", "k" + std::to_string(rng.NextBounded(3)));
    edges.push_back(VeEdge{eid++, a, b, Interval(start, end), std::move(props)});
  }
  return VeGraph::Create(Ctx(), std::move(vertices), std::move(edges));
}

}  // namespace tgraph::testing

#endif  // TGRAPH_TESTS_TEST_UTIL_H_
