#include "tgraph/window.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(WindowSpecTest, GenerateTimePointWindowsTilesLifetime) {
  auto windows = GenerateWindows(Interval(1, 10), WindowSpec::TimePoints(3));
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].interval, Interval(1, 4));
  EXPECT_EQ(windows[1].interval, Interval(4, 7));
  EXPECT_EQ(windows[2].interval, Interval(7, 10));
  EXPECT_EQ(windows[2].number, 2);
}

TEST(WindowSpecTest, LastWindowKeepsFullWidth) {
  // Example 2.3: lifetime [1,9) with 3-point windows yields W3 = [7,10).
  auto windows = GenerateWindows(Interval(1, 9), WindowSpec::TimePoints(3));
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[2].interval, Interval(7, 10));
}

TEST(WindowSpecTest, WindowLargerThanLifetime) {
  auto windows = GenerateWindows(Interval(0, 5), WindowSpec::TimePoints(100));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].interval, Interval(0, 100));
}

TEST(WindowSpecTest, EmptyLifetimeYieldsNoWindows) {
  EXPECT_TRUE(GenerateWindows(Interval(), WindowSpec::TimePoints(3)).empty());
}

TEST(WindowSpecTest, ChangeBasedWindows) {
  // Change points every 2 entries: [0, 5), [5, 9), [9, 10).
  auto windows = GenerateWindows(Interval(0, 10), WindowSpec::Changes(2),
                                 {0, 3, 5, 7, 9, 10});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].interval, Interval(0, 5));
  EXPECT_EQ(windows[1].interval, Interval(5, 9));
  EXPECT_EQ(windows[2].interval, Interval(9, 10));
}

TEST(WindowSpecTest, ChangeBasedWindowsAddLifetimeBoundaries) {
  auto windows =
      GenerateWindows(Interval(0, 10), WindowSpec::Changes(10), {4, 6});
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].interval, Interval(0, 10));
}

TEST(QuantifierTest, All) {
  Quantifier q = Quantifier::All();
  EXPECT_TRUE(q.Passes(1.0));
  EXPECT_FALSE(q.Passes(0.99));
  EXPECT_EQ(q.ToString(), "all");
}

TEST(QuantifierTest, Most) {
  Quantifier q = Quantifier::Most();
  EXPECT_TRUE(q.Passes(0.51));
  EXPECT_FALSE(q.Passes(0.5));  // strictly more than half
  EXPECT_FALSE(q.Passes(0.0));
}

TEST(QuantifierTest, Exists) {
  Quantifier q = Quantifier::Exists();
  EXPECT_TRUE(q.Passes(0.01));
  EXPECT_FALSE(q.Passes(0.0));
}

TEST(QuantifierTest, AtLeastIsInclusive) {
  Quantifier q = Quantifier::AtLeast(0.25);
  EXPECT_TRUE(q.Passes(0.25));
  EXPECT_TRUE(q.Passes(0.3));
  EXPECT_FALSE(q.Passes(0.24));
}

TEST(QuantifierTest, Restrictiveness) {
  EXPECT_TRUE(Quantifier::All().MoreRestrictiveThan(Quantifier::Exists()));
  EXPECT_TRUE(Quantifier::All().MoreRestrictiveThan(Quantifier::Most()));
  EXPECT_TRUE(Quantifier::Most().MoreRestrictiveThan(Quantifier::Exists()));
  EXPECT_FALSE(Quantifier::Exists().MoreRestrictiveThan(Quantifier::All()));
  EXPECT_FALSE(Quantifier::All().MoreRestrictiveThan(Quantifier::All()));
  // Strict dominates inclusive at the same threshold.
  EXPECT_TRUE(
      Quantifier::Most().MoreRestrictiveThan(Quantifier::AtLeast(0.5)));
}

TEST(ResolveSpecTest, DefaultAndOverrides) {
  ResolveSpec spec;
  spec.default_resolver = Resolver::kFirst;
  spec.overrides = {{"school", Resolver::kLast}};
  EXPECT_EQ(spec.For("school"), Resolver::kLast);
  EXPECT_EQ(spec.For("other"), Resolver::kFirst);
}

TEST(ResolvePropertiesTest, FirstAndLast) {
  std::vector<std::pair<TimePoint, Properties>> states = {
      {5, Properties{{"a", 2}, {"b", "late"}}},
      {1, Properties{{"a", 1}}},
  };
  ResolveSpec first;
  first.default_resolver = Resolver::kFirst;
  Properties f = ResolveProperties(states, first);
  EXPECT_EQ(f.Get("a")->AsInt(), 1);
  EXPECT_EQ(f.Get("b")->AsString(), "late");  // only state having b

  ResolveSpec last;
  last.default_resolver = Resolver::kLast;
  Properties l = ResolveProperties(states, last);
  EXPECT_EQ(l.Get("a")->AsInt(), 2);
  EXPECT_EQ(l.Get("b")->AsString(), "late");
}

TEST(ResolvePropertiesTest, PerAttributeOverride) {
  std::vector<std::pair<TimePoint, Properties>> states = {
      {1, Properties{{"a", 1}, {"b", 10}}},
      {2, Properties{{"a", 2}, {"b", 20}}},
  };
  ResolveSpec spec;
  spec.default_resolver = Resolver::kFirst;
  spec.overrides = {{"b", Resolver::kLast}};
  Properties p = ResolveProperties(states, spec);
  EXPECT_EQ(p.Get("a")->AsInt(), 1);
  EXPECT_EQ(p.Get("b")->AsInt(), 20);
}

TEST(ResolvePropertiesTest, AnyIsDeterministic) {
  std::vector<std::pair<TimePoint, Properties>> states = {
      {3, Properties{{"a", 3}}},
      {1, Properties{{"a", 1}}},
      {2, Properties{{"a", 2}}},
  };
  ResolveSpec spec;  // default kAny
  EXPECT_EQ(ResolveProperties(states, spec).Get("a")->AsInt(), 1);
  EXPECT_EQ(ResolveProperties(states, spec).Get("a")->AsInt(), 1);
}

}  // namespace
}  // namespace tgraph
