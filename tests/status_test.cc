#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tgraph {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad window");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, CopyIsCheap) {
  Status s = Status::Internal("boom");
  Status t = s;
  EXPECT_EQ(t.message(), "boom");
  EXPECT_TRUE(t.IsInternal());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  TG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_TRUE(Caller(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  TG_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);
  EXPECT_EQ(ok.ValueOr(-1), 4);

  Result<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsOutOfRange());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(3), 6);
  EXPECT_TRUE(Doubled(-3).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace tgraph
