#include "tgraph/azoom.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::SchoolZoom;

// Figure 2's expected content, independent of representation.
void ExpectFigure2(const VeGraph& zoomed) {
  VertexId mit = HashSkolem(PropertyValue("MIT"));
  VertexId cmu = HashSkolem(PropertyValue("CMU"));
  std::map<std::pair<VertexId, Interval>, int64_t> students;
  for (const VeVertex& v : zoomed.vertices().Collect()) {
    students[{v.vid, v.interval}] = v.properties.Get("students")->AsInt();
    EXPECT_EQ(v.properties.Get("type")->AsString(), "school");
  }
  ASSERT_EQ(students.size(), 3u);
  EXPECT_EQ((students[{mit, Interval(1, 7)}]), 2);  // Ann + Cat
  EXPECT_EQ((students[{mit, Interval(7, 9)}]), 1);  // Cat only
  EXPECT_EQ((students[{cmu, Interval(5, 9)}]), 1);  // Bob from 5

  std::vector<VeEdge> edges = zoomed.edges().Collect();
  ASSERT_EQ(edges.size(), 2u);
  for (const VeEdge& e : edges) {
    EXPECT_EQ(e.properties.Get("type")->AsString(), "collaborate");
    if (e.src == mit) {
      // e1 shrinks to [5,7): Bob was not at CMU during [2,5).
      EXPECT_EQ(e.dst, cmu);
      EXPECT_EQ(e.interval, Interval(5, 7));
    } else {
      EXPECT_EQ(e.src, cmu);
      EXPECT_EQ(e.dst, mit);
      EXPECT_EQ(e.interval, Interval(7, 9));
    }
  }
}

TEST(AZoomVeTest, ReproducesFigure2) {
  VeGraph zoomed = AZoomVe(Figure1(), SchoolZoom()).Coalesce();
  ExpectFigure2(zoomed);
  TG_CHECK_OK(ValidateVe(zoomed));
}

TEST(AZoomOgTest, ReproducesFigure2) {
  OgGraph zoomed = AZoomOg(VeToOg(Figure1()), SchoolZoom());
  ExpectFigure2(OgToVe(zoomed).Coalesce());
}

TEST(AZoomRgTest, ReproducesFigure2) {
  RgGraph zoomed = AZoomRg(VeToRg(Figure1()), SchoolZoom());
  ExpectFigure2(RgToVe(zoomed));
}

TEST(AZoomTest, StatesWithoutGroupProduceNothing) {
  // A graph where no vertex has the grouping attribute.
  std::vector<VeVertex> vertices = {{1, {0, 5}, Properties{{"type", "n"}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, {});
  VeGraph zoomed = AZoomVe(g, SchoolZoom());
  EXPECT_EQ(zoomed.NumVertexRecords(), 0);
  EXPECT_EQ(zoomed.NumEdgeRecords(), 0);
}

TEST(AZoomTest, EdgeWithinOneGroupBecomesSelfLoop) {
  std::vector<VeVertex> vertices = {
      {1, {0, 5}, Properties{{"type", "n"}, {"g", "a"}}},
      {2, {0, 5}, Properties{{"type", "n"}, {"g", "a"}}}};
  std::vector<VeEdge> edges = {{1, 1, 2, {0, 5}, Properties{{"type", "e"}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, edges);
  AZoomSpec spec;
  spec.group_of = GroupByProperty("g");
  spec.aggregator = MakeAggregator("group", "g", {{"n", AggKind::kCount, ""}});
  VeGraph zoomed = AZoomVe(g, spec).Coalesce();
  std::vector<VeEdge> result = zoomed.edges().Collect();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].src, result[0].dst);
}

TEST(AZoomTest, GroupMembershipChangeRedirectsEdgeOverTime) {
  // Vertex 2 moves from group a to group b at time 5 while edge 1->2 runs
  // [0,10): the output must contain A->A during [0,5) and A->B during [5,10).
  std::vector<VeVertex> vertices = {
      {1, {0, 10}, Properties{{"type", "n"}, {"g", "a"}}},
      {2, {0, 5}, Properties{{"type", "n"}, {"g", "a"}}},
      {2, {5, 10}, Properties{{"type", "n"}, {"g", "b"}}}};
  std::vector<VeEdge> edges = {{1, 1, 2, {0, 10}, Properties{{"type", "e"}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, edges);
  AZoomSpec spec;
  spec.group_of = GroupByProperty("g");
  spec.aggregator = MakeAggregator("group", "g", {});
  VertexId a = HashSkolem(PropertyValue("a"));
  VertexId b = HashSkolem(PropertyValue("b"));

  for (bool use_og : {false, true}) {
    VeGraph zoomed =
        use_og ? OgToVe(AZoomOg(VeToOg(g), spec)).Coalesce()
               : AZoomVe(g, spec).Coalesce();
    std::map<std::pair<VertexId, VertexId>, Interval> by_endpoints;
    for (const VeEdge& e : zoomed.edges().Collect()) {
      by_endpoints[{e.src, e.dst}] = e.interval;
    }
    ASSERT_EQ(by_endpoints.size(), 2u) << (use_og ? "OG" : "VE");
    EXPECT_EQ((by_endpoints[{a, a}]), Interval(0, 5));
    EXPECT_EQ((by_endpoints[{a, b}]), Interval(5, 10));
  }
}

TEST(AZoomTest, SumAggregateAcrossGroupMembers) {
  std::vector<VeVertex> vertices = {
      {1, {0, 4}, Properties{{"type", "n"}, {"g", "a"}, {"w", 10}}},
      {2, {2, 6}, Properties{{"type", "n"}, {"g", "a"}, {"w", 5}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, {});
  AZoomSpec spec;
  spec.group_of = GroupByProperty("g");
  spec.aggregator =
      MakeAggregator("group", "g", {{"total", AggKind::kSum, "w"}});
  VeGraph zoomed = AZoomVe(g, spec).Coalesce();
  std::map<Interval, int64_t> totals;
  for (const VeVertex& v : zoomed.vertices().Collect()) {
    totals[v.interval] = v.properties.Get("total")->AsInt();
  }
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[Interval(0, 2)], 10);
  EXPECT_EQ(totals[Interval(2, 4)], 15);
  EXPECT_EQ(totals[Interval(4, 6)], 5);
}

TEST(AZoomTest, AvgAggregateAgreesAcrossRepresentations) {
  // kAvg exercises the scratch-key + finalize path, which every
  // representation must apply at the same point (after the full merge).
  std::vector<VeVertex> vertices = {
      {1, {0, 6}, Properties{{"type", "n"}, {"g", "a"}, {"w", 10}}},
      {2, {2, 8}, Properties{{"type", "n"}, {"g", "a"}, {"w", 20}}},
      {3, {0, 8}, Properties{{"type", "n"}, {"g", "a"}, {"w", 60}}}};
  VeGraph g = VeGraph::Create(testing::Ctx(), vertices, {});
  AZoomSpec spec;
  spec.group_of = GroupByProperty("g");
  spec.aggregator =
      MakeAggregator("group", "g", {{"mean", AggKind::kAvg, "w"}});

  VeGraph from_ve = AZoomVe(g, spec).Coalesce();
  VeGraph from_og = OgToVe(AZoomOg(VeToOg(g), spec)).Coalesce();
  VeGraph from_rg = RgToVe(AZoomRg(VeToRg(g), spec));
  EXPECT_EQ(testing::Canonical(from_og), testing::Canonical(from_ve));
  EXPECT_EQ(testing::Canonical(from_rg), testing::Canonical(from_ve));

  std::map<Interval, double> means;
  for (const VeVertex& v : from_ve.vertices().Collect()) {
    means[v.interval] = v.properties.Get("mean")->AsDouble();
  }
  // [0,2): {10,60} -> 35; [2,6): {10,20,60} -> 30; [6,8): {20,60} -> 40.
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[Interval(0, 2)], 35.0);
  EXPECT_DOUBLE_EQ(means[Interval(2, 6)], 30.0);
  EXPECT_DOUBLE_EQ(means[Interval(6, 8)], 40.0);
}

TEST(AZoomTest, CustomSkolemFunction) {
  AZoomSpec spec = SchoolZoom();
  spec.skolem = [](const GroupKey& key) {
    return key.AsString() == "MIT" ? 100 : 200;
  };
  VeGraph zoomed = AZoomVe(Figure1(), spec).Coalesce();
  for (const VeVertex& v : zoomed.vertices().Collect()) {
    EXPECT_TRUE(v.vid == 100 || v.vid == 200);
  }
}

TEST(AZoomTest, RedirectedEdgeIdDeterministicAndDistinct) {
  EXPECT_EQ(RedirectedEdgeId(1, 10, 20), RedirectedEdgeId(1, 10, 20));
  EXPECT_NE(RedirectedEdgeId(1, 10, 20), RedirectedEdgeId(2, 10, 20));
  EXPECT_NE(RedirectedEdgeId(1, 10, 20), RedirectedEdgeId(1, 20, 10));
  EXPECT_GE(RedirectedEdgeId(1, 10, 20), 0);
}

TEST(AZoomTest, FacadeRejectsOgc) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  Result<TGraph> ogc = g.As(Representation::kOgc);
  ASSERT_TRUE(ogc.ok());
  Result<TGraph> zoomed = ogc->AZoom(SchoolZoom());
  EXPECT_TRUE(zoomed.status().IsNotImplemented());
}

TEST(AZoomTest, FacadeRejectsIncompleteSpec) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  AZoomSpec spec;  // no group_of / aggregator
  EXPECT_TRUE(g.AZoom(spec).status().IsInvalidArgument());
}

TEST(AZoomTest, UncoalescedInputGivesSameResultAsCoalesced) {
  // aZoom^T computes per snapshot, so it must not depend on the input
  // being coalesced (the basis for lazy coalescing, Section 4).
  std::vector<VeVertex> split_vertices = {
      {1, {1, 4}, Properties{{"type", "person"}, {"school", "MIT"}}},
      {1, {4, 7}, Properties{{"type", "person"}, {"school", "MIT"}}},  // split
      {2, {2, 5}, Properties{{"type", "person"}}},
      {2, {5, 9}, Properties{{"type", "person"}, {"school", "CMU"}}},
      {3, {1, 9}, Properties{{"type", "person"}, {"school", "MIT"}}},
  };
  std::vector<VeEdge> edges = {
      {1, 1, 2, {2, 7}, Properties{{"type", "co-author"}}},
      {2, 2, 3, {7, 9}, Properties{{"type", "co-author"}}},
  };
  VeGraph uncoalesced = VeGraph::Create(testing::Ctx(), split_vertices, edges);
  EXPECT_EQ(Canonical(AZoomVe(uncoalesced, SchoolZoom()).Coalesce()),
            Canonical(AZoomVe(Figure1(), SchoolZoom()).Coalesce()));
}

TEST(AZoomTest, ChainedAZoomAgreesAcrossRepresentations) {
  // Zooming a zoomed graph again: OG's redirected edges embed endpoint
  // copies, and those copies must carry enough (seeded) state for the
  // second aZoom's group_of to resolve — with presence-only copies, OG
  // silently dropped every edge while VE and RG kept them. Found by
  // optimizer_differential_test.
  AZoomSpec zoom;
  zoom.group_of = GroupByProperty("group");
  zoom.aggregator =
      MakeAggregator("cluster", "group", {{"members", AggKind::kCount, ""}});
  TGraph base = TGraph::FromVe(testing::RandomTGraph(3), /*coalesced=*/true);

  auto chained = [&](Representation rep) {
    TGraph graph = *base.As(rep);
    graph = *graph.AZoom(zoom);
    graph = *graph.AZoom(zoom);
    return Canonical(graph.Coalesce());
  };
  std::vector<std::string> expected = chained(Representation::kVe);
  bool has_edges = false;
  for (const std::string& line : expected) has_edges |= line[0] == 'E';
  EXPECT_TRUE(has_edges);
  EXPECT_EQ(chained(Representation::kRg), expected);
  EXPECT_EQ(chained(Representation::kOg), expected);
}

}  // namespace
}  // namespace tgraph
