// Differential plan-equivalence harness for the pipeline optimizer — the
// optimizer analogue of shuffle_differential_test. For a fuzzed corpus of
// random pipelines, the unoptimized plan, the rule-optimized plan, and
// every candidate the cost-based enumerator prices must produce the same
// outcome (identical canonicalized TGraph, or an error in every plan) on
// all four representations of the same input. Any divergence means a
// rewrite changed semantics, not just cost.
//
// Two corpora:
//  - churning attributes (RandomTGraph): the zoom-reorder rule may never
//    fire (attributes_stable is false), but coalesce elision, slice
//    pushdown, conversion dropping, and conversion insertion all must
//    preserve results on arbitrary inputs, aggregates included.
//  - stable attributes (gen::GeneratePowerLaw, single-state vertices):
//    attributes_stable is attested, so the aZoom-before-wZoom swap joins
//    the candidate space; specs stay aggregate-free, the regime where the
//    swap is an equivalence (see chaining_test).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/generators.h"
#include "opt/planner.h"
#include "tests/test_util.h"
#include "tgraph/pipeline.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::RandomTGraph;

constexpr Representation kAllReps[] = {Representation::kVe,
                                       Representation::kRg,
                                       Representation::kOg,
                                       Representation::kOgc};

AZoomSpec PlainGroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator("cluster", "group", {});
  return spec;
}

AZoomSpec CountingGroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator =
      MakeAggregator("cluster", "group", {{"members", AggKind::kCount, ""}});
  return spec;
}

Quantifier RandomQuantifier(Rng* rng) {
  switch (rng->NextBounded(4)) {
    case 0:
    case 1:
      return Quantifier::Exists();  // weighted: the reorder-eligible case
    case 2:
      return Quantifier::All();
    default:
      return Quantifier::Most();
  }
}

/// A random 1-4 step pipeline over the shared operator vocabulary. The
/// stable corpus keeps aZoom aggregate-free (the regime where the zoom
/// swap is an equivalence); the churn corpus exercises aggregates too.
Pipeline RandomPipeline(uint64_t seed, bool stable_corpus,
                        TimePoint horizon) {
  Rng rng(seed);
  Pipeline pipeline;
  const int64_t steps = 1 + static_cast<int64_t>(rng.NextBounded(4));
  for (int64_t i = 0; i < steps; ++i) {
    switch (rng.NextBounded(5)) {
      case 0:
        pipeline.AZoom(stable_corpus ? PlainGroupZoom() : CountingGroupZoom());
        break;
      case 1: {
        const int64_t window = 2 + static_cast<int64_t>(rng.NextBounded(4));
        Quantifier nodes = RandomQuantifier(&rng);
        Quantifier edges = RandomQuantifier(&rng);
        pipeline.WZoom(
            WZoomSpec{WindowSpec::TimePoints(window), nodes, edges, {}, {}});
        break;
      }
      case 2: {
        const TimePoint from =
            static_cast<TimePoint>(rng.NextBounded(
                static_cast<uint64_t>(horizon - 2)));
        const TimePoint to =
            from + 1 +
            static_cast<TimePoint>(rng.NextBounded(
                static_cast<uint64_t>(horizon - from - 1)));
        pipeline.Slice(Interval(from, to));
        break;
      }
      case 3:
        pipeline.Coalesce();
        break;
      default: {
        constexpr Representation kTargets[] = {
            Representation::kRg, Representation::kVe, Representation::kOg,
            Representation::kOgc};
        pipeline.Convert(kTargets[rng.NextBounded(4)]);
        break;
      }
    }
  }
  return pipeline;
}

/// Runs the plan and flattens the result into a comparable outcome: the
/// canonical VE rendering on success, a fixed marker on error. Plans are
/// equivalent iff they agree on this — including agreeing to fail (e.g.
/// every plan of an aZoom-on-OGC query must keep failing).
std::string Outcome(const Pipeline& plan, const TGraph& input) {
  Result<TGraph> result = plan.Run(input);
  if (!result.ok()) return "ERROR";
  std::string out;
  for (const std::string& line : Canonical(*result)) {
    out += line;
    out += '\n';
  }
  return out;
}

void CheckPlanEquivalence(const Pipeline& pipeline, const TGraph& base,
                          const Pipeline::Hints& hints) {
  for (Representation rep : kAllReps) {
    SCOPED_TRACE(RepresentationName(rep));
    Result<TGraph> input = base.As(rep);
    ASSERT_TRUE(input.ok()) << input.status();

    const std::string expected = Outcome(pipeline, *input);

    // Rule path. Per the Hints contract, conversion dropping is the
    // caller's responsibility to disable on OGC inputs (a conversion off
    // OGC is semantic); the enumerator below does it automatically.
    Pipeline::Hints rep_hints = hints;
    if (rep == Representation::kOgc) {
      rep_hints.drop_mid_chain_conversions = false;
    }
    Pipeline rule_plan = pipeline.Optimized(rep_hints);
    EXPECT_EQ(Outcome(rule_plan, *input), expected)
        << "rule-optimized plan diverged:\n"
        << rule_plan.Explain() << "from:\n"
        << pipeline.Explain();

    // Cost path: every priced candidate, not just the chosen one.
    opt::PlanContext context = opt::PlanContext::FromGraph(*input);
    for (const Pipeline& candidate :
         opt::EnumerateCandidates(pipeline, hints, context)) {
      EXPECT_EQ(Outcome(candidate, *input), expected)
          << "enumerated candidate diverged:\n"
          << candidate.Explain() << "from:\n"
          << pipeline.Explain();
    }
  }
}

class ChurnCorpus : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnCorpus, AllCandidatePlansComputeTheSameResult) {
  const uint64_t seed = GetParam();
  TGraph base = TGraph::FromVe(RandomTGraph(seed), /*coalesced=*/true);
  Pipeline pipeline = RandomPipeline(seed * 7919 + 1, /*stable_corpus=*/false,
                                     /*horizon=*/20);
  SCOPED_TRACE("pipeline:\n" + pipeline.Explain());
  Pipeline::Hints hints;
  hints.attributes_stable = false;  // random graphs churn attributes
  CheckPlanEquivalence(pipeline, base, hints);
}

INSTANTIATE_TEST_SUITE_P(FuzzedPipelines, ChurnCorpus,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

class StableCorpus : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StableCorpus, AllCandidatePlansComputeTheSameResult) {
  const uint64_t seed = GetParam();
  gen::PowerLawConfig config;
  config.num_vertices = 60;
  config.num_edges = 200;
  config.num_snapshots = 12;
  config.seed = seed;
  TGraph base =
      TGraph::FromVe(gen::GeneratePowerLaw(Ctx(), config), /*coalesced=*/true);
  Pipeline pipeline = RandomPipeline(seed * 104'729 + 3, /*stable_corpus=*/true,
                                     /*horizon=*/12);
  SCOPED_TRACE("pipeline:\n" + pipeline.Explain());
  Pipeline::Hints hints;
  hints.attributes_stable = true;  // PowerLaw vertices are single-state
  CheckPlanEquivalence(pipeline, base, hints);
}

INSTANTIATE_TEST_SUITE_P(FuzzedPipelines, StableCorpus,
                         ::testing::Range(uint64_t{100}, uint64_t{125}));

// The harness is only as good as its corpus: make sure the enumerator
// actually diversifies (several candidates, including an inserted
// conversion) and that the swap-eligible shape occurs.
TEST(OptimizerDifferentialSanity, EnumeratorProducesDiverseCandidates) {
  Pipeline pipeline;
  pipeline
      .WZoom(WZoomSpec{WindowSpec::TimePoints(3), Quantifier::Exists(),
                       Quantifier::Exists(), {}, {}})
      .AZoom(PlainGroupZoom());
  Pipeline::Hints hints;
  hints.attributes_stable = true;
  opt::PlanContext context;
  context.representation = Representation::kVe;
  context.rows = 100;
  std::vector<Pipeline> candidates =
      opt::EnumerateCandidates(pipeline, hints, context);
  EXPECT_GE(candidates.size(), 4u);

  bool saw_inserted_conversion = false;
  bool saw_swapped_order = false;
  for (const Pipeline& candidate : candidates) {
    if (std::holds_alternative<Pipeline::ConvertStep>(candidate.steps()[0])) {
      saw_inserted_conversion = true;
    }
    if (std::holds_alternative<Pipeline::AZoomStep>(candidate.steps()[0])) {
      saw_swapped_order = true;
    }
  }
  EXPECT_TRUE(saw_inserted_conversion);
  EXPECT_TRUE(saw_swapped_order);
}

}  // namespace
}  // namespace tgraph
