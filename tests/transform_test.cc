#include "gen/transform.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/generators.h"
#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph::gen {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

TEST(AttributeChurnTest, SplitsStatesOnGrid) {
  std::vector<VeVertex> vertices = {{1, {0, 10}, Properties{{"type", "n"}}}};
  VeGraph g = VeGraph::Create(Ctx(), vertices, {});
  VeGraph churned = WithAttributeChurn(g, "attr", 3, 100, 1);
  // [0,10) on a period-3 grid: [0,3),[3,6),[6,9),[9,10).
  std::vector<VeVertex> result = churned.vertices().Collect();
  ASSERT_EQ(result.size(), 4u);
  for (const VeVertex& v : result) {
    EXPECT_TRUE(v.properties.Has("attr"));
    EXPECT_LE(v.interval.duration(), 3);
  }
  TG_CHECK_OK(ValidateVe(churned));
}

TEST(AttributeChurnTest, GridIsGlobalNotPerEntity) {
  // A state starting off-grid still splits at global multiples of period.
  std::vector<VeVertex> vertices = {{1, {2, 7}, Properties{{"type", "n"}}}};
  VeGraph g = VeGraph::Create(Ctx(), vertices, {});
  std::vector<VeVertex> result =
      WithAttributeChurn(g, "attr", 3, 100, 1).vertices().Collect();
  std::set<Interval> intervals;
  for (const VeVertex& v : result) intervals.insert(v.interval);
  EXPECT_TRUE(intervals.count(Interval(2, 3)));
  EXPECT_TRUE(intervals.count(Interval(3, 6)));
  EXPECT_TRUE(intervals.count(Interval(6, 7)));
}

TEST(AttributeChurnTest, PreservesEntityCountsAndEdges) {
  VeGraph g = Figure1();
  VeGraph churned = WithAttributeChurn(g, "attr", 2, 10, 5);
  EXPECT_EQ(churned.NumVertices(), g.NumVertices());
  EXPECT_EQ(churned.NumEdges(), g.NumEdges());
  EXPECT_GT(churned.NumVertexRecords(), g.NumVertexRecords());
  EXPECT_EQ(churned.NumEdgeRecords(), g.NumEdgeRecords());
}

TEST(AttributeChurnTest, DeterministicInSeed) {
  VeGraph a = WithAttributeChurn(Figure1(), "attr", 2, 10, 5);
  VeGraph b = WithAttributeChurn(Figure1(), "attr", 2, 10, 5);
  EXPECT_EQ(testing::Canonical(a), testing::Canonical(b));
}

TEST(RandomGroupsTest, StablePerVidAndBounded) {
  VeGraph g = WithRandomGroups(Figure1(), 3);
  std::map<VertexId, int64_t> group_of;
  for (const VeVertex& v : g.vertices().Collect()) {
    int64_t group = v.properties.Get("group")->AsInt();
    EXPECT_GE(group, 0);
    EXPECT_LT(group, 3);
    auto [it, inserted] = group_of.emplace(v.vid, group);
    if (!inserted) EXPECT_EQ(it->second, group);  // stable across states
  }
}

TEST(RandomGroupsTest, CardinalityApproached) {
  WikiTalkConfig config;
  config.num_users = 2000;
  config.num_months = 12;
  VeGraph g = WithRandomGroups(GenerateWikiTalk(Ctx(), config), 16);
  std::set<int64_t> groups;
  for (const VeVertex& v : g.vertices().Collect()) {
    groups.insert(v.properties.Get("group")->AsInt());
  }
  EXPECT_EQ(groups.size(), 16u);
}

TEST(CoarsenResolutionTest, ReducesSnapshotCountKeepsEntities) {
  WikiTalkConfig config;
  config.num_users = 400;
  config.num_months = 48;
  VeGraph g = GenerateWikiTalk(Ctx(), config);
  VeGraph coarse = CoarsenResolution(g, 4);
  EXPECT_EQ(coarse.NumVertices(), g.NumVertices());
  EXPECT_EQ(coarse.NumEdges(), g.NumEdges());
  EXPECT_LE(coarse.ChangePoints().size(), 13u);  // 48/4 + 1
  EXPECT_EQ(coarse.lifetime(), Interval(0, 12));
  TG_CHECK_OK(ValidateVe(coarse));
  TG_CHECK_OK(CheckCoalescedVe(coarse));
}

TEST(CoarsenResolutionTest, FactorOneWithCoalesceIsIdentity) {
  VeGraph g = Figure1();
  EXPECT_EQ(testing::Canonical(CoarsenResolution(g, 1)),
            testing::Canonical(g.Coalesce()));
}

TEST(SliceTimeTest, ClipsToRange) {
  VeGraph sliced = SliceTime(Figure1(), Interval(3, 8));
  EXPECT_EQ(sliced.lifetime(), Interval(3, 8));
  for (const VeVertex& v : sliced.vertices().Collect()) {
    EXPECT_TRUE(Interval(3, 8).Contains(v.interval));
  }
  for (const VeEdge& e : sliced.edges().Collect()) {
    EXPECT_TRUE(Interval(3, 8).Contains(e.interval));
  }
  TG_CHECK_OK(ValidateVe(sliced));
}

TEST(SliceTimeTest, DropsEntitiesOutsideRange) {
  VeGraph sliced = SliceTime(Figure1(), Interval(1, 2));
  // Only Ann and Cat exist during [1,2); Bob joins at 2; no edges yet.
  EXPECT_EQ(sliced.NumVertices(), 2);
  EXPECT_EQ(sliced.NumEdgeRecords(), 0);
}

}  // namespace
}  // namespace tgraph::gen
