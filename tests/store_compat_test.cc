// Backward-compatibility regression for tgraph-store v2: kFixtureV2Hex
// is the byte-exact graph.tgs a pre-v3 release wrote for the paper's
// Figure 1 graph (row_group_size = 2, temporal sort). The current reader
// must load it bit-for-bit correctly forever, and the current writer in
// --store-version 2 mode must still produce these exact bytes — byte-level
// compat in both directions, pinned without needing old binaries around.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "storage/graph_io.h"
#include "storage/store_format.h"
#include "storage/store_reader.h"
#include "tests/test_util.h"

namespace tgraph::storage {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

constexpr char kFixtureV2Hex[] =
    "544753544f5245320200000001000000010000000000000002000000000000000100"
    "00000000000002000000000000000700000000000000050000000000000000000000"
    "000000001a00000000000000280000000000000002067363686f6f6c03034d495404"
    "747970650306706572736f6e0104747970650306706572736f6e0200000000000000"
    "03000000000000000500000000000000010000000000000009000000000000000900"
    "00000000000000000000000000001a00000000000000340000000000000002067363"
    "686f6f6c0303434d5504747970650306706572736f6e02067363686f6f6c03034d49"
    "5404747970650306706572736f6e0000000001000000000000000200000000000000"
    "01000000000000000200000000000000020000000000000003000000000000000200"
    "00000000000007000000000000000700000000000000090000000000000000000000"
    "00000000110000000000000022000000000000000104747970650309636f2d617574"
    "686f720104747970650309636f2d617574686f72000000000000040e6c6966657469"
    "6d655f737461727401310c6c69666574696d655f656e6401390a736f72745f6f7264"
    "65720874656d706f72616c0e726570726573656e746174696f6e0276650208766572"
    "74696365730403766964000573746172740003656e64000570726f70730302021000"
    "0000000000001000000000000000b45e5dd8d94c4c72010100000000000000020000"
    "000000000020000000000000001000000000000000b45e5dd8d94c4c720101000000"
    "0000000002000000000000003000000000000000100000000000000004abbaefc242"
    "e4640105000000000000000700000000000000400000000000000040000000000000"
    "0041468723982ab75f0002800000000000000010000000000000004adc9a251bd318"
    "e7010200000000000000030000000000000090000000000000001000000000000000"
    "a2be13ce21b3c9830101000000000000000500000000000000a00000000000000010"
    "00000000000000931813a18d5222c50109000000000000000900000000000000b000"
    "0000000000004c00000000000000407381694195d259000565646765730603656964"
    "00037372630003647374000573746172740003656e64000570726f70730301020001"
    "0000000000001000000000000000b45e5dd8d94c4c72010100000000000000020000"
    "000000000010010000000000001000000000000000b45e5dd8d94c4c720101000000"
    "000000000200000000000000200100000000000010000000000000004adc9a251bd3"
    "18e70102000000000000000300000000000000300100000000000010000000000000"
    "00203f935058509a4b01020000000000000007000000000000004001000000000000"
    "1000000000000000afc134851f144b16010700000000000000090000000000000050"
    "010000000000003a00000000000000e0cc673fd1be62560033df3d70a616dfb7a602"
    "000000000000544753544f524532";

std::string FromHex(std::string_view hex) {
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    return c - 'a' + 10;
  };
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return bytes;
}

std::string ToHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  TG_CHECK(f != nullptr) << path;
  std::string data;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.append(buffer, n);
  }
  std::fclose(f);
  return data;
}

GraphWriteOptions FixtureWriteOptions() {
  GraphWriteOptions options;
  options.row_group_size = 2;
  options.store_version = kStoreVersion;
  return options;
}

TEST(StoreCompatTest, WriterV2ModeReproducesSeedBytes) {
  std::string dir = TempDir("compat_v2_writer");
  TG_CHECK_OK(WriteVeStore(Figure1(), dir, FixtureWriteOptions()));
  EXPECT_EQ(ToHex(ReadAll(StorePath(dir))), kFixtureV2Hex);
  std::filesystem::remove_all(dir);
}

TEST(StoreCompatTest, SeedV2FileStillLoads) {
  std::string dir = TempDir("compat_v2_reader");
  std::filesystem::create_directories(dir);
  std::FILE* f = std::fopen(StorePath(dir).c_str(), "wb");
  TG_CHECK(f != nullptr);
  std::string bytes = FromHex(kFixtureV2Hex);
  TG_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size());
  std::fclose(f);

  Result<std::unique_ptr<StoreReader>> reader =
      StoreReader::Open(StorePath(dir));
  TG_CHECK_OK(reader.status());
  EXPECT_EQ((*reader)->version(), kStoreVersion);
  for (const TableMeta& table : (*reader)->footer().tables) {
    for (const PartitionMeta& partition : table.partitions) {
      for (const SegmentMeta& segment : partition.segments) {
        EXPECT_EQ(segment.encoding, SegmentEncoding::kRaw);
      }
    }
  }

  // The graph inside must be exactly Figure 1, loaded through the normal
  // auto-detecting loader — and identical to what a fresh v3 write loads.
  Result<VeGraph> from_fixture = LoadVeGraph(Ctx(), dir, {});
  TG_CHECK_OK(from_fixture.status());
  std::string v3_dir = TempDir("compat_v3_rewrite");
  TG_CHECK_OK(WriteVeStore(Figure1(), v3_dir, {}));
  Result<VeGraph> from_v3 = LoadVeGraph(Ctx(), v3_dir, {});
  TG_CHECK_OK(from_v3.status());
  EXPECT_EQ(Canonical(*from_fixture), Canonical(*from_v3));
  EXPECT_EQ(Canonical(*from_fixture), Canonical(Figure1()));
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(v3_dir);
}

}  // namespace
}  // namespace tgraph::storage
