// The headline harness of the view subsystem: after EVERY ingested batch,
// a maintained view must equal an offline recompute of its pipeline over
// the full event history — across all four representations (RG, VE, OG,
// OGC), for fuzzed streams with removals, re-adds, and property splits.
//
// Two oracles back each assertion:
//  - a from-scratch pipeline run over an offline TGraphBuilder build of
//    the event prefix (canonical VE comparison), and
//  - a second MaterializedView forced to full-recompute every epoch
//    (max_suffix_fraction = 0), whose rendered output must be
//    byte-identical to the incremental view's — renders carry no
//    version or epoch precisely so this holds.

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "test_util.h"
#include "view_test_util.h"
#include "views/view.h"

namespace tgraph::views {
namespace {

using testing::FreshDir;
using testing::FuzzStream;
using testing::GroupZoom;
using testing::OfflineBuild;
using testing::UnixNowUs;
namespace fs = std::filesystem;

// --- the harness -----------------------------------------------------------

struct RunStats {
  uint64_t applied_deltas = 0;
  uint64_t full_rebuilds = 0;
};

/// Ingests `batches` one by one; after each, refreshes both the view under
/// test and the always-recompute oracle, and asserts
///  view == offline recompute (canonical content) and
///  view.rendered == oracle.rendered (byte-identical).
/// `compact_every` > 0 interleaves LSM compactions. (void: ASSERT_* needs
/// a void-returning function; counters come back via `stats`.)
void RunDifferential(const std::string& tag, Pipeline pipeline,
                     const std::vector<std::vector<ingest::Event>>& batches,
                     RunStats* stats = nullptr, int compact_every = 0) {
  std::string dir = FreshDir(tag);
  ingest::LiveGraph::Options live_options;
  live_options.delta_events_threshold = 0;
  live_options.sync = false;
  // Keep the horizon near the data: wZoom windows tile the full lifetime,
  // and the default horizon is 10^12.
  live_options.horizon = 500;
  Result<std::unique_ptr<ingest::LiveGraph>> live =
      ingest::LiveGraph::Open(testing::Ctx(), dir, live_options);
  TG_CHECK(live.ok()) << live.status();

  ViewDefinition def;
  def.name = "v";
  def.source = dir;
  MaterializedView view(testing::Ctx(), def, pipeline, {});
  MaterializedView::Options oracle_options;
  oracle_options.max_suffix_fraction = 0.0;  // forces recompute every epoch
  MaterializedView oracle(testing::Ctx(), def, pipeline, oracle_options);

  const TimePoint horizon = (*live)->horizon();
  for (size_t i = 0; i < batches.size(); ++i) {
    Result<uint64_t> seq = (*live)->Append(batches[i]);
    ASSERT_TRUE(seq.ok()) << tag << " batch " << i << ": " << seq.status();
    if (compact_every > 0 && (i + 1) % compact_every == 0) {
      ASSERT_TRUE((*live)->Compact().ok()) << tag << " batch " << i;
    }
    ASSERT_TRUE(view.Refresh(live->get(), UnixNowUs()).ok())
        << tag << " batch " << i;
    ASSERT_TRUE(oracle.Refresh(live->get(), UnixNowUs()).ok())
        << tag << " batch " << i;

    std::shared_ptr<const ViewSnapshot> cur = view.Current();
    ASSERT_NE(cur, nullptr) << tag << " batch " << i;
    EXPECT_EQ(cur->version, i + 1) << tag << " batch " << i;

    Result<TGraph> offline = pipeline.Run(
        TGraph::FromVe(OfflineBuild(batches, i + 1, horizon), true));
    ASSERT_TRUE(offline.ok()) << tag << " batch " << i << ": "
                              << offline.status();
    EXPECT_EQ(testing::Canonical(cur->graph), testing::Canonical(*offline))
        << tag << ": view diverged from offline recompute after batch " << i;

    std::shared_ptr<const ViewSnapshot> oracle_cur = oracle.Current();
    ASSERT_NE(oracle_cur, nullptr);
    EXPECT_EQ(cur->rendered, oracle_cur->rendered)
        << tag << ": incremental render != recompute render after batch "
        << i;
    if (stats != nullptr) {
      stats->applied_deltas = cur->applied_deltas;
      stats->full_rebuilds = cur->full_rebuilds;
    }
  }
  ASSERT_TRUE((*live)->Close().ok());
  fs::remove_all(dir);
}

const Representation kReps[] = {Representation::kRg, Representation::kVe,
                                Representation::kOg, Representation::kOgc};

TEST(ViewDifferential, AZoomAcrossRepresentationsAndSeeds) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto batches = FuzzStream(seed, 60);
    for (Representation rep : kReps) {
      Pipeline pipeline;
      pipeline.AZoom(GroupZoom());
      pipeline.Convert(rep);
      std::string tag = std::string("azoom_") + RepresentationName(rep) +
                        "_s" + std::to_string(seed);
      RunStats stats;
      RunDifferential(tag, pipeline, batches, &stats);
      // The instantaneous pipeline must actually exercise the splice
      // path, not pass trivially by recomputing every epoch.
      EXPECT_GT(stats.applied_deltas, 0u) << tag;
    }
  }
}

TEST(ViewDifferential, WZoomAcrossRepresentationsAndSeeds) {
  for (uint64_t seed : {4u, 5u}) {
    auto batches = FuzzStream(seed, 60);
    for (Representation rep : kReps) {
      Pipeline pipeline;
      pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(4)});
      pipeline.Convert(rep);
      std::string tag = std::string("wzoom_") + RepresentationName(rep) +
                        "_s" + std::to_string(seed);
      RunDifferential(tag, pipeline, batches);
    }
  }
}

TEST(ViewDifferential, ChainedZoomsWithCompactionInterleaved) {
  // wZoom feeding aZoom, with an LSM compaction every other batch: the
  // view must stay equal to the offline recompute across base+delta
  // boundary moves (compaction folds epochs the view has already seen —
  // and some it hasn't).
  for (uint64_t seed : {6u, 7u}) {
    auto batches = FuzzStream(seed, 50);
    Pipeline pipeline;
    pipeline.WZoom(WZoomSpec{WindowSpec::TimePoints(3)});
    pipeline.AZoom(GroupZoom());
    RunDifferential("chained_s" + std::to_string(seed), pipeline, batches,
                    /*stats=*/nullptr, /*compact_every=*/2);
  }
}

TEST(ViewDifferential, ChangesWindowFallsBackYetStaysCorrect) {
  // CHANGES windows are never incrementally maintainable; the view must
  // take the fallback path every epoch and still match the recompute.
  auto batches = FuzzStream(8, 40);
  Pipeline pipeline;
  pipeline.WZoom(WZoomSpec{WindowSpec::Changes(3)});
  RunStats stats;
  RunDifferential("changes", pipeline, batches, &stats);
  EXPECT_EQ(stats.applied_deltas, 0u);
  EXPECT_GE(stats.full_rebuilds, batches.size());
}

}  // namespace
}  // namespace tgraph::views
