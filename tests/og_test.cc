#include "tgraph/og.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

OgGraph Figure1Og() { return VeToOg(Figure1()); }

TEST(OgGraphTest, ConversionBuildsHistories) {
  OgGraph g = Figure1Og();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.NumVertexRecords(), 4);  // Bob has two states
  EXPECT_EQ(g.NumEdgeRecords(), 2);
  TG_CHECK_OK(ValidateOg(g));
}

TEST(OgGraphTest, BobHistoryHasTwoStatesInOrder) {
  OgGraph g = Figure1Og();
  for (const OgVertex& v : g.vertices().Collect()) {
    if (v.vid != 2) continue;
    ASSERT_EQ(v.history.size(), 2u);
    EXPECT_EQ(v.history[0].interval, Interval(2, 5));
    EXPECT_FALSE(v.history[0].properties.Has("school"));
    EXPECT_EQ(v.history[1].interval, Interval(5, 9));
    EXPECT_EQ(v.history[1].properties.Get("school")->AsString(), "CMU");
  }
}

TEST(OgGraphTest, EdgesEmbedEndpointCopies) {
  OgGraph g = Figure1Og();
  for (const OgEdge& e : g.edges().Collect()) {
    if (e.eid == 1) {
      EXPECT_EQ(e.v1.vid, 1);
      EXPECT_EQ(e.v2.vid, 2);
      EXPECT_EQ(e.v1.history.size(), 1u);  // Ann: one state
      EXPECT_EQ(e.v2.history.size(), 2u);  // Bob: two states
    }
  }
}

TEST(OgGraphTest, CoalesceMergesWithinHistories) {
  std::vector<OgVertex> vertices = {
      {1,
       {{{1, 3}, Properties{{"type", "n"}}},
        {{3, 6}, Properties{{"type", "n"}}}}},
  };
  OgGraph g = OgGraph::Create(Ctx(), vertices, {});
  OgGraph c = g.Coalesce();
  std::vector<OgVertex> collected = c.vertices().Collect();
  ASSERT_EQ(collected.size(), 1u);
  ASSERT_EQ(collected[0].history.size(), 1u);
  EXPECT_EQ(collected[0].history[0].interval, Interval(1, 6));
}

TEST(OgGraphTest, ChangePointsMatchVe) {
  EXPECT_EQ(Figure1Og().ChangePoints(), Figure1().ChangePoints());
}

TEST(OgGraphTest, SnapshotAtMatchesVe) {
  OgGraph og = Figure1Og();
  VeGraph ve = Figure1();
  for (TimePoint t : {1, 3, 5, 8}) {
    EXPECT_EQ(og.SnapshotAt(t).NumVertices(), ve.SnapshotAt(t).NumVertices())
        << "t=" << t;
    EXPECT_EQ(og.SnapshotAt(t).NumEdges(), ve.SnapshotAt(t).NumEdges())
        << "t=" << t;
  }
}

TEST(OgGraphTest, LifetimeDerivedFromHistories) {
  std::vector<OgVertex> vertices = {
      {1, {{{5, 9}, Properties{{"type", "n"}}}}},
      {2, {{{2, 4}, Properties{{"type", "n"}}}}},
  };
  OgGraph g = OgGraph::Create(Ctx(), vertices, {});
  EXPECT_EQ(g.lifetime(), Interval(2, 9));
}

}  // namespace
}  // namespace tgraph
