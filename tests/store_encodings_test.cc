// Tests for the tgraph-store v3 segment codecs (storage/encodings.h):
// byte-exact round trips through the raw v2 layout, wire-format details
// pinned against docs/FORMAT.md §5, and an adversarial half — truncated
// dictionaries, out-of-range code widths, run-length overflow, nonzero
// padding — where every malformed payload must come back as IoError and
// never UB. These run under ASan/UBSan in CI.

#include "storage/encodings.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "storage/serde.h"
#include "storage/store_format.h"

namespace tgraph::storage {
namespace {

// --- helpers: the raw v2 layouts the decoders must reconstruct -----------

std::string RawInt64Layout(const std::vector<int64_t>& values) {
  std::string raw(values.size() * 8, '\0');
  std::memcpy(raw.data(), values.data(), raw.size());
  return raw;
}

std::string RawBoolLayout(const std::vector<uint8_t>& values) {
  return std::string(reinterpret_cast<const char*>(values.data()),
                     values.size());
}

std::string RawBinaryLayout(const std::vector<std::string>& values) {
  std::string raw((values.size() + 1) * 8, '\0');
  uint64_t cursor = 0;
  std::memcpy(raw.data(), &cursor, 8);
  for (size_t i = 0; i < values.size(); ++i) {
    cursor += values[i].size();
    std::memcpy(raw.data() + (i + 1) * 8, &cursor, 8);
  }
  for (const std::string& v : values) raw += v;
  return raw;
}

Status Decode(SegmentEncoding encoding, ColumnType type,
              std::string_view encoded, size_t rows, uint64_t plain_size,
              std::string* out) {
  return DecodeSegment(encoding, type, encoded, rows, plain_size, out);
}

void ExpectInt64RoundTrip(SegmentEncoding encoding,
                          const std::vector<int64_t>& values) {
  std::string encoded;
  if (encoding == SegmentEncoding::kDeltaVarint) {
    EncodeDeltaVarint(values, &encoded);
  } else {
    EncodeFrameOfReference(values, &encoded);
  }
  std::string raw = RawInt64Layout(values);
  std::string decoded;
  Status status = Decode(encoding, ColumnType::kInt64, encoded, values.size(),
                         raw.size(), &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded, raw) << SegmentEncodingName(encoding);
}

// --- round trips ----------------------------------------------------------

TEST(StoreEncodingsTest, Int64RoundTrips) {
  std::vector<std::vector<int64_t>> cases = {
      {},                              // FOR only: delta of 0 rows is empty
      {0},
      {42},
      {-7, -7, -7, -7},                // constant -> FOR width 0
      {1, 2, 3, 4, 5, 6, 7},           // sorted, small deltas
      {100, 90, 95, 80, 120},          // non-monotone
      {std::numeric_limits<int64_t>::min(),
       std::numeric_limits<int64_t>::max(), 0, -1, 1},
  };
  for (const auto& values : cases) {
    ExpectInt64RoundTrip(SegmentEncoding::kFrameOfReference, values);
    if (!values.empty()) {
      ExpectInt64RoundTrip(SegmentEncoding::kDeltaVarint, values);
    }
  }
}

TEST(StoreEncodingsTest, DeltaVarintWrapsAroundExtremes) {
  // max -> min is a delta that overflows int64; two's-complement
  // wraparound must still round-trip it exactly.
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::max(),
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  ExpectInt64RoundTrip(SegmentEncoding::kDeltaVarint, values);
}

TEST(StoreEncodingsTest, FrameOfReferenceFullWidthRange) {
  // min..max span forces width 64 — the widest legal packing.
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  ExpectInt64RoundTrip(SegmentEncoding::kFrameOfReference, values);
  std::string encoded;
  EncodeFrameOfReference(values, &encoded);
  EXPECT_EQ(static_cast<uint8_t>(encoded[8]), 64);  // width byte after base
}

TEST(StoreEncodingsTest, FrameOfReferenceConstantColumnIsWidthZero) {
  std::vector<int64_t> values(1000, 123456789);
  std::string encoded;
  EncodeFrameOfReference(values, &encoded);
  // base fixed64 + width byte, no packed payload at all.
  EXPECT_EQ(encoded.size(), 9u);
  ExpectInt64RoundTrip(SegmentEncoding::kFrameOfReference, values);
}

TEST(StoreEncodingsTest, DictionaryRoundTrips) {
  std::vector<std::vector<std::string>> cases = {
      {},
      {""},
      {"a", "a", "a"},                           // 1 entry -> width 0
      {"x", "y", "x", "", "y", "x"},             // 3 entries -> width 2
      {"school:MIT", "school:CMU", "school:MIT"},
  };
  for (const auto& values : cases) {
    std::string encoded;
    ASSERT_TRUE(EncodeDictionary(values.data(), values.size(), &encoded));
    std::string raw = RawBinaryLayout(values);
    std::string decoded;
    Status status = Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                           encoded, values.size(), raw.size(), &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded, raw);
  }
}

TEST(StoreEncodingsTest, DictionaryRefusesHighCardinality) {
  std::vector<std::string> values;
  for (int i = 0; i < 256; ++i) values.push_back("v" + std::to_string(i));
  std::string encoded;
  EXPECT_FALSE(EncodeDictionary(values.data(), values.size(), &encoded));
  EXPECT_TRUE(encoded.empty());
  // 255 distinct values is the last accepted cardinality.
  values.pop_back();
  EXPECT_TRUE(EncodeDictionary(values.data(), values.size(), &encoded));
}

TEST(StoreEncodingsTest, RunLengthRoundTrips) {
  std::vector<std::vector<uint8_t>> cases = {
      {},
      {1},
      {0, 0, 0, 0, 0},
      {1, 1, 0, 0, 0, 1},
  };
  for (const auto& values : cases) {
    std::string encoded;
    ASSERT_TRUE(EncodeRunLength(values, &encoded));
    std::string decoded;
    Status status = Decode(SegmentEncoding::kRunLength, ColumnType::kBool,
                           encoded, values.size(), values.size(), &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded, RawBoolLayout(values));
  }
}

TEST(StoreEncodingsTest, RunLengthRefusesNonBooleanBytes) {
  // A bool segment whose raw bytes are not strictly 0/1 cannot round-trip
  // byte-identically through (value, length) runs; the encoder must punt
  // to raw rather than normalize.
  std::vector<uint8_t> values = {0, 1, 2, 1};
  std::string encoded;
  EXPECT_FALSE(EncodeRunLength(values, &encoded));
  EXPECT_TRUE(encoded.empty());
}

// --- adversarial decodes --------------------------------------------------

std::string EncodedDict(const std::vector<std::string>& values) {
  std::string encoded;
  EXPECT_TRUE(EncodeDictionary(values.data(), values.size(), &encoded));
  return encoded;
}

TEST(StoreEncodingsTest, RejectsRawAndInapplicableEncodings) {
  std::string out;
  EXPECT_TRUE(Decode(SegmentEncoding::kRaw, ColumnType::kInt64, "", 0, 0, &out)
                  .IsIoError());
  // rle on int64, dict on bool, delta on binary: all type errors.
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kInt64, "", 0, 0,
                     &out)
                  .IsIoError());
  EXPECT_TRUE(Decode(SegmentEncoding::kDictionary, ColumnType::kBool, "", 0, 0,
                     &out)
                  .IsIoError());
  EXPECT_TRUE(Decode(SegmentEncoding::kDeltaVarint, ColumnType::kBinary, "", 0,
                     0, &out)
                  .IsIoError());
}

TEST(StoreEncodingsTest, RejectsImplausiblePlainSize) {
  std::string out;
  Status status =
      Decode(SegmentEncoding::kDeltaVarint, ColumnType::kInt64, "",
             (kStoreMaxPlainSegmentSize + 8) / 8, kStoreMaxPlainSegmentSize + 8,
             &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("implausibly large"), std::string::npos);
}

TEST(StoreEncodingsTest, DeltaVarintRejectsTruncationAtEveryPrefix) {
  std::vector<int64_t> values = {5, -300, 7000, 7001, -1};
  std::string encoded;
  EncodeDeltaVarint(values, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::string out;
    EXPECT_TRUE(Decode(SegmentEncoding::kDeltaVarint, ColumnType::kInt64,
                       std::string_view(encoded).substr(0, len), values.size(),
                       values.size() * 8, &out)
                    .IsIoError())
        << "prefix " << len;
  }
  // Trailing garbage after the last delta is also an error.
  encoded.push_back('\0');
  std::string out;
  EXPECT_TRUE(Decode(SegmentEncoding::kDeltaVarint, ColumnType::kInt64,
                     encoded, values.size(), values.size() * 8, &out)
                  .IsIoError());
}

TEST(StoreEncodingsTest, DeltaVarintRejectsWrongPlainSize) {
  std::vector<int64_t> values = {1, 2, 3};
  std::string encoded;
  EncodeDeltaVarint(values, &encoded);
  std::string out;
  EXPECT_TRUE(Decode(SegmentEncoding::kDeltaVarint, ColumnType::kInt64,
                     encoded, 3, 23, &out)
                  .IsIoError());
  EXPECT_TRUE(Decode(SegmentEncoding::kDeltaVarint, ColumnType::kInt64,
                     encoded, 4, 32, &out)
                  .IsIoError());  // rows mismatch -> truncation or trailing
}

TEST(StoreEncodingsTest, FrameOfReferenceRejectsOutOfRangeWidth) {
  std::vector<int64_t> values = {10, 20, 30};
  std::string encoded;
  EncodeFrameOfReference(values, &encoded);
  encoded[8] = static_cast<char>(65);  // width byte: 65 > 64
  std::string out;
  Status status = Decode(SegmentEncoding::kFrameOfReference, ColumnType::kInt64,
                         encoded, 3, 24, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("out-of-range bit width"),
            std::string::npos);
}

TEST(StoreEncodingsTest, FrameOfReferenceRejectsSizeAndPaddingLies) {
  std::vector<int64_t> values = {10, 20, 30};
  std::string encoded;
  EncodeFrameOfReference(values, &encoded);
  std::string out;
  // Truncation at every prefix.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_TRUE(Decode(SegmentEncoding::kFrameOfReference, ColumnType::kInt64,
                       std::string_view(encoded).substr(0, len), 3, 24, &out)
                    .IsIoError())
        << "prefix " << len;
  }
  // Extra packed byte.
  std::string longer = encoded + '\0';
  EXPECT_TRUE(Decode(SegmentEncoding::kFrameOfReference, ColumnType::kInt64,
                     longer, 3, 24, &out)
                  .IsIoError());
  // Nonzero padding bits in the final partial byte (3 values * 5 bits = 15
  // bits: the packed payload's top bit is padding).
  ASSERT_EQ(static_cast<uint8_t>(encoded[8]), 5u);  // range 20 -> width 5
  std::string dirty = encoded;
  dirty.back() = static_cast<char>(static_cast<uint8_t>(dirty.back()) | 0x80);
  Status status = Decode(SegmentEncoding::kFrameOfReference, ColumnType::kInt64,
                         dirty, 3, 24, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("padding"), std::string::npos);
}

TEST(StoreEncodingsTest, DictionaryRejectsTruncationAtEveryPrefix) {
  std::string encoded = EncodedDict({"alpha", "beta", "alpha", "gamma"});
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::string out;
    EXPECT_TRUE(Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                       std::string_view(encoded).substr(0, len), 4,
                       RawBinaryLayout({"alpha", "beta", "alpha", "gamma"})
                           .size(),
                       &out)
                    .IsIoError())
        << "prefix " << len;
  }
}

TEST(StoreEncodingsTest, DictionaryRejectsOutOfRangeCodeWidth) {
  // Hand-build a dict payload claiming width 8 for a 2-entry dictionary.
  // The canonical width is 1; a wider width must be rejected outright (it
  // would let out-of-range codes hide behind a consistent packed size).
  std::string encoded;
  PutVarint(&encoded, 2);  // dict_count
  PutBytes(&encoded, "a");
  PutBytes(&encoded, "b");
  encoded.push_back(static_cast<char>(8));  // width: lie
  encoded.push_back(static_cast<char>(0));  // one 8-bit code
  std::string out;
  Status status = Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                         encoded, 1, (1 + 1) * 8 + 1, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("out-of-range code width"),
            std::string::npos);
}

TEST(StoreEncodingsTest, DictionaryRejectsOutOfRangeCode) {
  // 3 entries -> width 2, which can express code 3 — one past the last
  // entry. Pack that and verify the decoder objects.
  std::string encoded;
  PutVarint(&encoded, 3);
  PutBytes(&encoded, "a");
  PutBytes(&encoded, "b");
  PutBytes(&encoded, "c");
  encoded.push_back(static_cast<char>(2));  // canonical width for 3 entries
  encoded.push_back(static_cast<char>(3));  // one code: 3 >= dict_count
  std::string out;
  Status status = Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                         encoded, 1, (1 + 1) * 8 + 1, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("out-of-range code"), std::string::npos);
}

TEST(StoreEncodingsTest, DictionaryRejectsZeroEntriesWithRows) {
  std::string encoded;
  PutVarint(&encoded, 0);                   // dict_count 0
  encoded.push_back(static_cast<char>(0));  // width 0, no codes
  std::string out;
  EXPECT_TRUE(Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                     encoded, 2, (2 + 1) * 8, &out)
                  .IsIoError());
}

TEST(StoreEncodingsTest, DictionaryRejectsPlainSizeLie) {
  std::vector<std::string> values = {"aa", "bb", "aa"};
  std::string encoded = EncodedDict(values);
  std::string out;
  // Correct plain size is (3 + 1) * 8 + 6 = 38; claim one byte more.
  Status status = Decode(SegmentEncoding::kDictionary, ColumnType::kBinary,
                         encoded, 3, 39, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("different plain size"), std::string::npos);
}

TEST(StoreEncodingsTest, RunLengthRejectsOverflowAndShortfall) {
  std::string out;
  // Runs sum past the row count: 2 + 2 > 3.
  std::string over;
  PutVarint(&over, 2);
  over.push_back('\x01');
  PutVarint(&over, 2);
  over.push_back('\x00');
  PutVarint(&over, 2);
  Status status =
      Decode(SegmentEncoding::kRunLength, ColumnType::kBool, over, 3, 3, &out);
  ASSERT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("overflow"), std::string::npos);
  // Runs sum short of the row count: 2 < 3.
  std::string under;
  PutVarint(&under, 1);
  under.push_back('\x01');
  PutVarint(&under, 2);
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool, under, 3,
                     3, &out)
                  .IsIoError());
  // A huge run length must not provoke a huge memset or wrap anything.
  std::string huge;
  PutVarint(&huge, 1);
  huge.push_back('\x01');
  PutVarint(&huge, uint64_t{1} << 62);
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool, huge, 3,
                     3, &out)
                  .IsIoError());
}

TEST(StoreEncodingsTest, RunLengthRejectsMalformedRuns) {
  std::string out;
  std::vector<uint8_t> values = {1, 1, 0};
  std::string good;
  ASSERT_TRUE(EncodeRunLength(values, &good));
  // Non-boolean run value.
  std::string bad_value = good;
  bad_value[1] = '\x02';  // first run's value byte
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool, bad_value,
                     3, 3, &out)
                  .IsIoError());
  // Zero-length run.
  std::string zero;
  PutVarint(&zero, 2);
  zero.push_back('\x01');
  PutVarint(&zero, 0);
  zero.push_back('\x00');
  PutVarint(&zero, 3);
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool, zero, 3,
                     3, &out)
                  .IsIoError());
  // Truncation at every prefix, and trailing bytes.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool,
                       std::string_view(good).substr(0, len), 3, 3, &out)
                    .IsIoError())
        << "prefix " << len;
  }
  std::string trailing = good + '\x00';
  EXPECT_TRUE(Decode(SegmentEncoding::kRunLength, ColumnType::kBool, trailing,
                     3, 3, &out)
                  .IsIoError());
}

// Byte-flip fuzz over every codec: any single-byte mutation of a valid
// payload must either decode to *something* or fail cleanly — never crash
// (ASan/UBSan enforce the "cleanly"). Mutations that survive decoding are
// fine; the store layer's checksum rejects them before decode in practice.
TEST(StoreEncodingsTest, ByteFlipFuzzNeverCrashes) {
  std::vector<int64_t> ints = {3, 1, 4, 1, 5, 9, 2, 6, 5, 35, -89, 793};
  std::vector<std::string> bins = {"to", "be", "or", "not", "to", "be"};
  std::vector<uint8_t> bools = {1, 1, 0, 1, 0, 0, 0, 1};
  struct Case {
    SegmentEncoding encoding;
    ColumnType type;
    std::string encoded;
    size_t rows;
    uint64_t plain_size;
  };
  std::vector<Case> cases;
  std::string payload;
  EncodeDeltaVarint(ints, &payload);
  cases.push_back({SegmentEncoding::kDeltaVarint, ColumnType::kInt64, payload,
                   ints.size(), ints.size() * 8});
  payload.clear();
  EncodeFrameOfReference(ints, &payload);
  cases.push_back({SegmentEncoding::kFrameOfReference, ColumnType::kInt64,
                   payload, ints.size(), ints.size() * 8});
  payload.clear();
  ASSERT_TRUE(EncodeDictionary(bins.data(), bins.size(), &payload));
  cases.push_back({SegmentEncoding::kDictionary, ColumnType::kBinary, payload,
                   bins.size(), RawBinaryLayout(bins).size()});
  payload.clear();
  ASSERT_TRUE(EncodeRunLength(bools, &payload));
  cases.push_back({SegmentEncoding::kRunLength, ColumnType::kBool, payload,
                   bools.size(), bools.size()});
  for (const Case& c : cases) {
    for (size_t i = 0; i < c.encoded.size(); ++i) {
      for (uint8_t flip : {0x01, 0x55, 0xff}) {
        std::string mutated = c.encoded;
        mutated[i] = static_cast<char>(static_cast<uint8_t>(mutated[i]) ^
                                       flip);
        std::string out;
        Status status = Decode(c.encoding, c.type, mutated, c.rows,
                               c.plain_size, &out);
        if (status.ok()) {
          EXPECT_EQ(out.size(), c.plain_size);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tgraph::storage
