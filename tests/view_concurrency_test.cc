// Concurrency test for view maintenance, written to run under TSan (the
// CI sanitizer matrix includes it): reader threads consume snapshots while
// ingest epochs publish, query-triggered refreshes race the epoch
// listener, and the LSM compactor swaps the base partition underneath.
// Asserted invariants:
//  - versions observed by any single reader are monotonically
//    non-decreasing (and watermarks move with them),
//  - every observed snapshot is internally consistent — its rendered
//    header matches its graph's record counts (no torn publish),
//  - concurrent QueryView calls through the registry never go backwards.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "test_util.h"
#include "tql/parser.h"
#include "view_test_util.h"
#include "views/registry.h"
#include "views/view.h"

namespace tgraph::views {
namespace {

using testing::Ctx;
using testing::FreshDir;
using testing::FuzzStream;
using testing::GroupZoom;
using testing::UnixNowUs;

std::vector<ingest::Event> FlattenedEvents(uint64_t seed, int num_events) {
  std::vector<ingest::Event> events;
  for (const auto& batch : FuzzStream(seed, num_events)) {
    events.insert(events.end(), batch.begin(), batch.end());
  }
  return events;
}

/// The rendered header embeds the vertex/edge record counts of the
/// snapshot's content; a snapshot whose header disagrees with its own
/// graph would mean a torn publish.
void ExpectInternallyConsistent(const ViewSnapshot& snapshot) {
  const std::string expected =
      std::to_string(snapshot.internal.NumVertexRecords()) +
      " vertex records, " +
      std::to_string(snapshot.internal.NumEdgeRecords()) +
      " edge records";
  EXPECT_NE(snapshot.rendered.find(expected), std::string::npos)
      << "rendered header does not match content: " << snapshot.rendered;
  EXPECT_EQ(snapshot.rendered.rfind("view v [", 0), 0u);
}

TEST(ViewConcurrency, ReadersDuringEpochPublishesAndCompactorSwaps) {
  std::string dir = FreshDir("conc_direct");
  ViewDefinition def;
  def.name = "v";
  def.source = dir;
  Pipeline pipeline;
  pipeline.AZoom(GroupZoom());
  MaterializedView view(Ctx(), def, pipeline, {});

  ingest::LiveGraph::Options options;
  options.delta_events_threshold = 0;  // no background compactor; we
                                       // compact explicitly mid-stream
  options.sync = false;
  options.horizon = 500;
  ingest::LiveGraph* live_ptr = nullptr;
  options.epoch_listener = [&view, &live_ptr](const std::string&,
                                              uint64_t) {
    EXPECT_TRUE(view.Refresh(live_ptr, UnixNowUs()).ok());
  };
  Result<std::unique_ptr<ingest::LiveGraph>> live =
      ingest::LiveGraph::Open(Ctx(), dir, options);
  ASSERT_TRUE(live.ok()) << live.status();
  live_ptr = live->get();

  const std::vector<ingest::Event> events = FlattenedEvents(11, 120);
  std::atomic<bool> done{false};

  // Readers: monotone versions and watermarks, no torn snapshots.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&view, &done] {
      uint64_t last_version = 0;
      TimePoint last_watermark = std::numeric_limits<TimePoint>::min();
      int consistency_checks = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const ViewSnapshot> cur = view.Current();
        if (cur == nullptr) continue;
        EXPECT_GE(cur->version, last_version);
        EXPECT_GE(cur->watermark, last_watermark);
        last_version = cur->version;
        last_watermark = cur->watermark;
        if (++consistency_checks % 8 == 0) {
          ExpectInternallyConsistent(*cur);
        }
      }
      EXPECT_GT(last_version, 0u);
    });
  }

  // A second refresher racing the epoch listener, as query-triggered
  // refreshes do in the server.
  std::thread querier([&view, &live_ptr, &done] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(view.Refresh(live_ptr, UnixNowUs()).ok());
      std::this_thread::yield();
    }
  });

  for (size_t i = 0; i < events.size(); ++i) {
    Result<uint64_t> seq = live_ptr->Append({events[i]});
    ASSERT_TRUE(seq.ok()) << "event " << i << ": " << seq.status();
    if ((i + 1) % 30 == 0) {
      ASSERT_TRUE(live_ptr->Compact().ok()) << "event " << i;
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  querier.join();

  std::shared_ptr<const ViewSnapshot> last = view.Current();
  ASSERT_NE(last, nullptr);
  ExpectInternallyConsistent(*last);
  EXPECT_EQ(last->source_epoch, live_ptr->epoch());
  ASSERT_TRUE((*live)->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(ViewConcurrency, RegistryQueriesNeverGoBackwards) {
  std::string dir = FreshDir("conc_registry");
  ingest::LiveGraphRegistry live(Ctx());
  ViewRegistry registry(Ctx(), &live, {});
  ingest::LiveGraph::Options options;
  options.delta_events_threshold = 0;
  options.sync = false;
  options.epoch_listener = [&registry](const std::string& d, uint64_t e) {
    registry.OnEpoch(d, e);
  };
  live.set_options(options);
  Result<ingest::LiveGraph*> graph = live.GetOrOpen(dir, 500);
  ASSERT_TRUE(graph.ok()) << graph.status();

  Result<std::vector<tql::Statement>> create = tql::Parse(
      "create view v on '" + dir +
      "' as azoom by group aggregate count() as n;");
  ASSERT_TRUE(create.ok()) << create.status();
  ASSERT_TRUE(
      registry.CreateView(std::get<tql::CreateViewStatement>((*create)[0]))
          .ok());

  const std::vector<ingest::Event> events = FlattenedEvents(12, 100);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&registry, &done] {
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        uint64_t version = 0;
        Result<std::string> result = registry.QueryView("v", &version);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_FALSE(result->empty());
        EXPECT_GE(version, last_version);
        last_version = version;
      }
      EXPECT_GT(last_version, 0u);
    });
  }

  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE((*graph)->Append({events[i]}).ok()) << "event " << i;
    if ((i + 1) % 40 == 0) {
      ASSERT_TRUE((*graph)->Compact().ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // The listener kept the view at the source's epoch the whole time.
  EXPECT_EQ(registry.CurrentVersion("v"),
            registry.Find("v")->Current()->version);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tgraph::views
