// Operator chaining (Section 5.3): sequences of aZoom^T and wZoom^T with
// lazy coalescing and representation switching mid-query.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;
using ::tgraph::testing::SchoolZoom;

WZoomSpec Windows(int64_t size) {
  return WZoomSpec{WindowSpec::TimePoints(size), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
}

TEST(ChainingTest, AZoomThenWZoomRunsWithLazyCoalescing) {
  TGraph g = TGraph::FromVe(Figure1(), true);
  Result<TGraph> zoomed = g.AZoom(SchoolZoom());
  ASSERT_TRUE(zoomed.ok());
  EXPECT_FALSE(zoomed->coalesced());  // aZoom output left uncoalesced
  Result<TGraph> windowed = zoomed->WZoom(Windows(3));
  ASSERT_TRUE(windowed.ok());
  EXPECT_TRUE(windowed->coalesced());
  EXPECT_GT(windowed->NumVertexRecords(), 0);
}

TEST(ChainingTest, LazyAndEagerCoalescingAgree) {
  TGraph g = TGraph::FromVe(RandomTGraph(31), true);
  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("group");
  azoom.aggregator = MakeAggregator("cluster", "key",
                                    {{"members", AggKind::kCount, ""}});
  Result<TGraph> zoomed = g.AZoom(azoom);
  ASSERT_TRUE(zoomed.ok());

  Result<TGraph> lazy = zoomed->WZoom(Windows(4));
  Result<TGraph> eager = zoomed->Coalesce().WZoom(Windows(4));
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(Canonical(*lazy), Canonical(*eager));
}

TEST(ChainingTest, RepresentationSwitchMidChainPreservesResult) {
  // VE -> aZoom -> convert to OG -> wZoom must equal staying in VE.
  TGraph g = TGraph::FromVe(RandomTGraph(32), true);
  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("group");
  azoom.aggregator = MakeAggregator("cluster", "key",
                                    {{"members", AggKind::kCount, ""}});
  Result<TGraph> zoomed = g.AZoom(azoom);
  ASSERT_TRUE(zoomed.ok());

  Result<TGraph> stay_ve = zoomed->WZoom(Windows(5));
  ASSERT_TRUE(stay_ve.ok());
  Result<TGraph> via_og = zoomed->As(Representation::kOg);
  ASSERT_TRUE(via_og.ok());
  Result<TGraph> og_result = via_og->WZoom(Windows(5));
  ASSERT_TRUE(og_result.ok());
  EXPECT_EQ(Canonical(*og_result), Canonical(*stay_ve));
}

TEST(ChainingTest, WZoomThenAZoom) {
  // The reverse order of Section 5.3's second experiment.
  TGraph g = TGraph::FromVe(Figure1(), true);
  Result<TGraph> windowed = g.WZoom(Windows(3));
  ASSERT_TRUE(windowed.ok());
  Result<TGraph> zoomed = windowed->AZoom(SchoolZoom());
  ASSERT_TRUE(zoomed.ok());
  // Schools still present after windowing; both MIT and CMU survive under
  // exists/exists.
  VeGraph out = zoomed->Coalesce().As(Representation::kVe)->ve();
  EXPECT_EQ(out.NumVertices(), 2);
  TG_CHECK_OK(ValidateVe(out));
}

TEST(ChainingTest, OrderCommutesForChangeFreeAttributesUnderExists) {
  // Section 5.3: "we can safely reorder the operations for WikiTalk and
  // SNB, since no attributes change in these datasets ... with the exists
  // quantifier". Build a growth-only graph with stable attributes.
  std::vector<VeVertex> vertices;
  std::vector<VeEdge> edges;
  for (int64_t i = 0; i < 12; ++i) {
    Properties props{{"type", "n"},
                     {"group", "g" + std::to_string(i % 3)}};
    vertices.push_back(VeVertex{i, Interval(i % 5, 20), props});
  }
  for (int64_t i = 0; i + 1 < 12; ++i) {
    edges.push_back(VeEdge{i, i, i + 1,
                           Interval(std::max(i % 5, (i + 1) % 5) + 1, 20),
                           Properties{{"type", "e"}}});
  }
  TGraph g = TGraph::FromVe(
      VeGraph::Create(testing::Ctx(), vertices, edges), true);

  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("group");
  azoom.aggregator = MakeAggregator("cluster", "group", {});
  WZoomSpec wzoom = Windows(4);

  Result<TGraph> az_first = g.AZoom(azoom)->WZoom(wzoom);
  ASSERT_TRUE(az_first.ok());
  Result<TGraph> wz_first = g.WZoom(wzoom)->AZoom(azoom);
  ASSERT_TRUE(wz_first.ok());
  EXPECT_EQ(Canonical(*az_first), Canonical(wz_first->Coalesce()));
}

TEST(ChainingTest, DoubleWZoomCoarsensProgressively) {
  TGraph g = TGraph::FromVe(RandomTGraph(33, 20, 40, 32), true);
  Result<TGraph> by4 = g.WZoom(Windows(4));
  ASSERT_TRUE(by4.ok());
  Result<TGraph> by16 = by4->WZoom(Windows(16));
  ASSERT_TRUE(by16.ok());
  // Zooming the already-zoomed graph straight to 16 agrees (windows align:
  // 16 is a multiple of 4 and both tilings start at the lifetime start).
  Result<TGraph> direct = g.WZoom(Windows(16));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(testing::CanonicalTopology(by16->As(Representation::kVe)->ve()),
            testing::CanonicalTopology(direct->As(Representation::kVe)->ve()));
}

}  // namespace
}  // namespace tgraph
