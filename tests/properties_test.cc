#include "common/properties.h"

#include <gtest/gtest.h>

namespace tgraph {
namespace {

TEST(PropertiesTest, SetGetErase) {
  Properties p;
  EXPECT_TRUE(p.empty());
  p.Set("b", 2);
  p.Set("a", "x");
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.Get("a")->AsString(), "x");
  EXPECT_EQ(p.Get("b")->AsInt(), 2);
  EXPECT_FALSE(p.Get("c").has_value());
  EXPECT_TRUE(p.Erase("a"));
  EXPECT_FALSE(p.Erase("a"));
  EXPECT_EQ(p.size(), 1u);
}

TEST(PropertiesTest, SetOverwrites) {
  Properties p;
  p.Set("k", 1);
  p.Set("k", 2);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.Get("k")->AsInt(), 2);
}

TEST(PropertiesTest, EntriesSortedByKey) {
  Properties p;
  p.Set("z", 1);
  p.Set("a", 2);
  p.Set("m", 3);
  ASSERT_EQ(p.entries().size(), 3u);
  EXPECT_EQ(p.entries()[0].first, "a");
  EXPECT_EQ(p.entries()[1].first, "m");
  EXPECT_EQ(p.entries()[2].first, "z");
}

TEST(PropertiesTest, InitializerListLaterDuplicateWins) {
  Properties p{{"a", 1}, {"b", 2}, {"a", 3}};
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.Get("a")->AsInt(), 3);
}

TEST(PropertiesTest, ValueEquivalence) {
  Properties a{{"x", 1}, {"y", "s"}};
  Properties b;
  b.Set("y", "s");
  b.Set("x", 1);
  EXPECT_EQ(a, b);  // insertion order does not matter
  b.Set("x", 2);
  EXPECT_FALSE(a == b);
}

TEST(PropertiesTest, HashConsistentWithEquality) {
  Properties a{{"x", 1}, {"y", "s"}};
  Properties b{{"y", "s"}, {"x", 1}};
  EXPECT_EQ(a.Hash(), b.Hash());
  Properties c{{"x", 1}};
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(PropertiesTest, FindReturnsPointerWithoutCopy) {
  Properties p{{"k", "value"}};
  const PropertyValue* v = p.Find("k");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsString(), "value");
  EXPECT_EQ(p.Find("other"), nullptr);
}

TEST(PropertiesTest, ToString) {
  Properties p{{"b", 2}, {"a", "x"}};
  EXPECT_EQ(p.ToString(), "{a=x, b=2}");
  EXPECT_EQ(Properties().ToString(), "{}");
}

}  // namespace
}  // namespace tgraph
