#include "sg/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace tgraph::sg {
namespace {

TEST(PartitionTest, InRangeForAllStrategies) {
  const PartitionStrategy strategies[] = {
      PartitionStrategy::kEdgePartition1D, PartitionStrategy::kEdgePartition2D,
      PartitionStrategy::kCanonicalRandomVertexCut,
      PartitionStrategy::kRandomVertexCut};
  Rng rng(1);
  for (PartitionStrategy strategy : strategies) {
    for (int parts : {1, 3, 7, 16}) {
      for (int i = 0; i < 200; ++i) {
        int p = GetEdgePartition(strategy,
                                 static_cast<VertexId>(rng.NextBounded(1000)),
                                 static_cast<VertexId>(rng.NextBounded(1000)),
                                 parts);
        EXPECT_GE(p, 0);
        EXPECT_LT(p, parts);
      }
    }
  }
}

TEST(PartitionTest, Deterministic) {
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GetEdgePartition(PartitionStrategy::kEdgePartition2D, i, i + 1, 9),
              GetEdgePartition(PartitionStrategy::kEdgePartition2D, i, i + 1, 9));
  }
}

TEST(PartitionTest, EdgePartition1DDependsOnlyOnSource) {
  for (VertexId src = 0; src < 20; ++src) {
    int expected =
        GetEdgePartition(PartitionStrategy::kEdgePartition1D, src, 0, 8);
    for (VertexId dst = 1; dst < 20; ++dst) {
      EXPECT_EQ(GetEdgePartition(PartitionStrategy::kEdgePartition1D, src, dst, 8),
                expected);
    }
  }
}

TEST(PartitionTest, CanonicalIsSymmetric) {
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = 0; b < 30; ++b) {
      EXPECT_EQ(
          GetEdgePartition(PartitionStrategy::kCanonicalRandomVertexCut, a, b, 13),
          GetEdgePartition(PartitionStrategy::kCanonicalRandomVertexCut, b, a, 13));
    }
  }
}

TEST(PartitionTest, EdgePartition2DBoundsVertexReplication) {
  // Under 2D partitioning, the partitions a single source vertex touches
  // are bounded by the grid side (one row of the grid).
  const int parts = 16;
  const int bound = MaxVertexReplication(PartitionStrategy::kEdgePartition2D, parts);
  EXPECT_EQ(bound, 8);  // 2 * ceil(sqrt(16))
  for (VertexId src = 0; src < 10; ++src) {
    std::set<int> touched;
    for (VertexId dst = 0; dst < 500; ++dst) {
      touched.insert(
          GetEdgePartition(PartitionStrategy::kEdgePartition2D, src, dst, parts));
    }
    EXPECT_LE(static_cast<int>(touched.size()), 4);  // one grid row
  }
}

TEST(PartitionTest, SpreadsAcrossPartitions) {
  std::set<int> used;
  for (int i = 0; i < 1000; ++i) {
    used.insert(GetEdgePartition(PartitionStrategy::kRandomVertexCut, i,
                                 i * 31 + 7, 16));
  }
  EXPECT_EQ(used.size(), 16u);
}

TEST(PartitionSkewTest, HubVertexFloodsOnePartitionUnder1D) {
  // A power-law hub: every edge leaves vertex 0. 1D partitioning keys on
  // the source alone, so the whole hub load lands in a single partition —
  // the skew pathology the dataflow shuffle rebalancer exists to fix.
  const int parts = 16;
  std::vector<int> load(parts, 0);
  for (VertexId dst = 1; dst <= 4000; ++dst) {
    ++load[static_cast<size_t>(GetEdgePartition(
        PartitionStrategy::kEdgePartition1D, 0, dst, parts))];
  }
  int max_load = *std::max_element(load.begin(), load.end());
  EXPECT_EQ(max_load, 4000);
}

TEST(PartitionSkewTest, HubVertexSpreadBoundedUnder2D) {
  // 2D partitioning spreads the hub's edges across one grid row: more
  // than one partition, at most MaxVertexReplication, with the load
  // within the row roughly even.
  const int parts = 16;
  const int bound =
      MaxVertexReplication(PartitionStrategy::kEdgePartition2D, parts);
  std::vector<int> load(parts, 0);
  for (VertexId dst = 1; dst <= 4000; ++dst) {
    ++load[static_cast<size_t>(GetEdgePartition(
        PartitionStrategy::kEdgePartition2D, 0, dst, parts))];
  }
  int touched = 0;
  int max_load = 0;
  for (int l : load) {
    touched += l > 0 ? 1 : 0;
    max_load = std::max(max_load, l);
  }
  EXPECT_GT(touched, 1);
  EXPECT_LE(touched, bound);
  // Even spread within the touched row: nobody holds more than ~2x the
  // per-slot mean.
  EXPECT_LE(max_load, 2 * 4000 / touched);
}

TEST(PartitionSkewTest, RandomVertexCutSpreadsHubEvenly) {
  // Random vertex cut hashes both endpoints, so even an all-hub edge set
  // spreads across every partition.
  const int parts = 16;
  std::vector<int> load(parts, 0);
  for (VertexId dst = 1; dst <= 4000; ++dst) {
    ++load[static_cast<size_t>(GetEdgePartition(
        PartitionStrategy::kRandomVertexCut, 0, dst, parts))];
  }
  for (int l : load) EXPECT_GT(l, 0);
  int max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 2 * 4000 / parts);
}

}  // namespace
}  // namespace tgraph::sg
