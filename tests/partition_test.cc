#include "sg/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace tgraph::sg {
namespace {

TEST(PartitionTest, InRangeForAllStrategies) {
  const PartitionStrategy strategies[] = {
      PartitionStrategy::kEdgePartition1D, PartitionStrategy::kEdgePartition2D,
      PartitionStrategy::kCanonicalRandomVertexCut,
      PartitionStrategy::kRandomVertexCut};
  Rng rng(1);
  for (PartitionStrategy strategy : strategies) {
    for (int parts : {1, 3, 7, 16}) {
      for (int i = 0; i < 200; ++i) {
        int p = GetEdgePartition(strategy,
                                 static_cast<VertexId>(rng.NextBounded(1000)),
                                 static_cast<VertexId>(rng.NextBounded(1000)),
                                 parts);
        EXPECT_GE(p, 0);
        EXPECT_LT(p, parts);
      }
    }
  }
}

TEST(PartitionTest, Deterministic) {
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GetEdgePartition(PartitionStrategy::kEdgePartition2D, i, i + 1, 9),
              GetEdgePartition(PartitionStrategy::kEdgePartition2D, i, i + 1, 9));
  }
}

TEST(PartitionTest, EdgePartition1DDependsOnlyOnSource) {
  for (VertexId src = 0; src < 20; ++src) {
    int expected =
        GetEdgePartition(PartitionStrategy::kEdgePartition1D, src, 0, 8);
    for (VertexId dst = 1; dst < 20; ++dst) {
      EXPECT_EQ(GetEdgePartition(PartitionStrategy::kEdgePartition1D, src, dst, 8),
                expected);
    }
  }
}

TEST(PartitionTest, CanonicalIsSymmetric) {
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = 0; b < 30; ++b) {
      EXPECT_EQ(
          GetEdgePartition(PartitionStrategy::kCanonicalRandomVertexCut, a, b, 13),
          GetEdgePartition(PartitionStrategy::kCanonicalRandomVertexCut, b, a, 13));
    }
  }
}

TEST(PartitionTest, EdgePartition2DBoundsVertexReplication) {
  // Under 2D partitioning, the partitions a single source vertex touches
  // are bounded by the grid side (one row of the grid).
  const int parts = 16;
  const int bound = MaxVertexReplication(PartitionStrategy::kEdgePartition2D, parts);
  EXPECT_EQ(bound, 8);  // 2 * ceil(sqrt(16))
  for (VertexId src = 0; src < 10; ++src) {
    std::set<int> touched;
    for (VertexId dst = 0; dst < 500; ++dst) {
      touched.insert(
          GetEdgePartition(PartitionStrategy::kEdgePartition2D, src, dst, parts));
    }
    EXPECT_LE(static_cast<int>(touched.size()), 4);  // one grid row
  }
}

TEST(PartitionTest, SpreadsAcrossPartitions) {
  std::set<int> used;
  for (int i = 0; i < 1000; ++i) {
    used.insert(GetEdgePartition(PartitionStrategy::kRandomVertexCut, i,
                                 i * 31 + 7, 16));
  }
  EXPECT_EQ(used.size(), 16u);
}

}  // namespace
}  // namespace tgraph::sg
