#include "tgraph/rg.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/convert.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Figure1;

RgGraph Figure1Rg() { return VeToRg(Figure1()); }

TEST(RgGraphTest, OneSnapshotPerElementaryInterval) {
  RgGraph g = Figure1Rg();
  // Change points {1,2,5,7,9} -> 4 snapshots, exactly Figure 4's shape.
  ASSERT_EQ(g.NumSnapshots(), 4u);
  EXPECT_EQ(g.intervals()[0], Interval(1, 2));
  EXPECT_EQ(g.intervals()[1], Interval(2, 5));
  EXPECT_EQ(g.intervals()[2], Interval(5, 7));
  EXPECT_EQ(g.intervals()[3], Interval(7, 9));
  TG_CHECK_OK(ValidateRg(g));
}

TEST(RgGraphTest, SnapshotContents) {
  RgGraph g = Figure1Rg();
  // [1,2): Ann, Cat; no edges.
  EXPECT_EQ(g.snapshots()[0].NumVertices(), 2);
  EXPECT_EQ(g.snapshots()[0].NumEdges(), 0);
  // [2,5): all three; e1.
  EXPECT_EQ(g.snapshots()[1].NumVertices(), 3);
  EXPECT_EQ(g.snapshots()[1].NumEdges(), 1);
  // [5,7): all three; e1.
  EXPECT_EQ(g.snapshots()[2].NumVertices(), 3);
  EXPECT_EQ(g.snapshots()[2].NumEdges(), 1);
  // [7,9): Bob, Cat; e2.
  EXPECT_EQ(g.snapshots()[3].NumVertices(), 2);
  EXPECT_EQ(g.snapshots()[3].NumEdges(), 1);
}

TEST(RgGraphTest, RecordCountsShowRedundancy) {
  RgGraph g = Figure1Rg();
  // 2 + 3 + 3 + 2 vertices, 0 + 1 + 1 + 1 edges.
  EXPECT_EQ(g.NumVertexRecords(), 10);
  EXPECT_EQ(g.NumEdgeRecords(), 3);
}

TEST(RgGraphTest, SnapshotAt) {
  RgGraph g = Figure1Rg();
  EXPECT_EQ(g.SnapshotAt(3).NumVertices(), 3);
  EXPECT_EQ(g.SnapshotAt(8).NumVertices(), 2);
  EXPECT_EQ(g.SnapshotAt(100).NumVertices(), 0);
}

TEST(RgGraphTest, CoalesceMergesIdenticalAdjacentSnapshots) {
  // Two identical snapshots: same vertex set, no changes.
  std::vector<VeVertex> vertices = {{1, {0, 10}, Properties{{"type", "n"}}}};
  VeGraph ve = VeGraph::Create(testing::Ctx(), vertices, {});
  RgGraph rg = VeToRg(ve);
  ASSERT_EQ(rg.NumSnapshots(), 1u);

  // Manually split into two identical snapshots and re-coalesce.
  std::vector<Interval> intervals = {Interval(0, 5), Interval(5, 10)};
  std::vector<sg::PropertyGraph> snapshots = {rg.snapshots()[0],
                                              rg.snapshots()[0]};
  RgGraph split(testing::Ctx(), intervals, snapshots, Interval(0, 10));
  RgGraph coalesced = split.Coalesce();
  ASSERT_EQ(coalesced.NumSnapshots(), 1u);
  EXPECT_EQ(coalesced.intervals()[0], Interval(0, 10));
}

TEST(RgGraphTest, CoalesceKeepsDifferingSnapshots) {
  RgGraph g = Figure1Rg();
  EXPECT_EQ(g.Coalesce().NumSnapshots(), 4u);
}

TEST(RgGraphTest, RoundTripThroughVe) {
  VeGraph ve = Figure1();
  VeGraph back = RgToVe(VeToRg(ve));
  EXPECT_EQ(testing::Canonical(ve.Coalesce()), testing::Canonical(back));
}

}  // namespace
}  // namespace tgraph
