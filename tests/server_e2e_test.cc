#include <arpa/inet.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/graph_io.h"
#include "test_util.h"

namespace tgraph::server {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

/// Minimal HTTP/1.0 GET against the metrics listener: sends the request,
/// returns the whole response (headers + body) or "" on any failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string ReadFileOrEmpty(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buffer[4096];
  size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), f)) > 0) content.append(buffer, n);
  fclose(f);
  return content;
}

/// Starts one tgraphd in-process on an ephemeral loopback port, backed by
/// the paper's Figure 1 graph written to a temp directory.
class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/tgraphd_e2e_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    graph_dir_ = dir_ + "/fig1";
    ASSERT_TRUE(storage::WriteVeGraph(testing::Figure1(), graph_dir_,
                                      storage::GraphWriteOptions())
                    .ok());
  }

  void TearDown() override {
    std::string cleanup = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cleanup.c_str()), 0);
  }

  std::unique_ptr<Server> StartServer(ServerOptions options) {
    options.port = 0;  // ephemeral
    auto server = std::make_unique<Server>(testing::Ctx(), options);
    Status status = server->Start();
    EXPECT_TRUE(status.ok()) << status;
    return server;
  }

  Client Connect(const Server& server) {
    Client client;
    Status status = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(status.ok()) << status;
    return client;
  }

  /// The same dataset through both zoom operators — the repeated-query
  /// workload the result cache exists for.
  std::string ZoomScript() const {
    return "LOAD '" + graph_dir_ +
           "' AS g;\n"
           "SET a = AZOOM g BY school AGGREGATE COUNT() AS students;\n"
           "SET w = WZOOM g WINDOW 2 NODES EXISTS EDGES EXISTS;\n"
           "INFO a;\n"
           "INFO w;";
  }

  std::string dir_;
  std::string graph_dir_;
};

TEST_F(ServerE2eTest, PingAndStatsRoundTrip) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);

  Result<Response> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->body, "pong");

  Result<Response> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats->body.find("tgraphd port="), std::string::npos);
  EXPECT_NE(stats->body.find("server.requests"), std::string::npos);
}

TEST_F(ServerE2eTest, SecondIdenticalZoomQueryIsServedFromCache) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);

  int64_t hits_before = CounterValue(obs::metric_names::kCacheHits);

  Result<Response> first = client.Query(ZoomScript());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit());

  Result<Response> second = client.Query(ZoomScript());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit());
  EXPECT_EQ(second->body, first->body);
  EXPECT_EQ(CounterValue(obs::metric_names::kCacheHits), hits_before + 1);
  EXPECT_GT(second->request_id, first->request_id);

  // Surface variation must not defeat the canonicalized-plan key.
  Result<Response> third = client.Query("  " + ZoomScript() + "\n");
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(third->cache_hit());
}

TEST_F(ServerE2eTest, NoCacheFlagBypassesTheCache) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  Result<Response> first = client.Query(ZoomScript(), /*no_cache=*/true);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<Response> second = client.Query(ZoomScript(), /*no_cache=*/true);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->cache_hit());
  EXPECT_EQ(server->cache().entries(), 0u);
  EXPECT_EQ(second->body, first->body);
}

TEST_F(ServerE2eTest, StoreScriptsAreNeverCached) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  std::string script = "LOAD '" + graph_dir_ + "' AS g;\nSTORE g TO '" + dir_ +
                       "/out';";
  Result<Response> first = client.Query(script);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<Response> second = client.Query(script);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->cache_hit());
  EXPECT_EQ(server->cache().entries(), 0u);
}

TEST_F(ServerE2eTest, MalformedQueryAnswersAnErrorNotACrash) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  Result<Response> bad = client.Query("SET = nonsense (((");
  EXPECT_FALSE(bad.ok());
  // The connection survives a bad script; the next request still works.
  Result<Response> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
}

TEST_F(ServerE2eTest, SaturatedQueueRejectsInsteadOfHanging) {
  ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  auto server = StartServer(options);

  // Occupy the only worker: a connection that sends nothing parks it in
  // ReadFrame. Poll until the worker owns it, so the setup is race-free.
  Client occupier = Connect(*server);
  while (server->active_count() < 1) std::this_thread::yield();

  // Fill the only queue slot the same way.
  Client queued = Connect(*server);
  while (server->pending_count() < 1) std::this_thread::yield();

  // The next connection must be refused with ResourceExhausted — a bounded
  // wait, not an unbounded hang.
  int64_t rejected_before = CounterValue(obs::metric_names::kServerRejected);
  Client overflow = Connect(*server);
  Result<Response> refused = overflow.Ping();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted()) << refused.status();
  EXPECT_GE(CounterValue(obs::metric_names::kServerRejected),
            rejected_before + 1);
}

TEST_F(ServerE2eTest, DeadlineExceededAnswersCancelled) {
  ServerOptions options;
  options.deadline_ms = 1;
  auto server = StartServer(options);
  Client client = Connect(*server);

  int64_t exceeded_before =
      CounterValue(obs::metric_names::kServerDeadlineExceeded);
  // The first statement outlasts the 1 ms deadline; the cooperative check
  // before the second statement converts it to Cancelled.
  Result<Response> result =
      client.Query("GENERATE snb(scale = 0.5, seed = 3) AS g;\nINFO g;");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  EXPECT_EQ(CounterValue(obs::metric_names::kServerDeadlineExceeded),
            exceeded_before + 1);
}

TEST_F(ServerE2eTest, DrainStopsAcceptingAndFinishesCleanly) {
  auto server = StartServer(ServerOptions{});
  int port = server->port();

  Client busy = Connect(*server);
  Result<Response> result = busy.Query(ZoomScript());
  ASSERT_TRUE(result.ok()) << result.status();

  Client idle = Connect(*server);  // parked in a worker, mid-read
  while (server->active_count() < 2) std::this_thread::yield();

  server->Drain();
  EXPECT_FALSE(server->running());
  EXPECT_EQ(server->active_count(), 0);
  EXPECT_EQ(server->pending_count(), 0);

  // Nothing listens any more.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());

  server->Drain();  // idempotent
}

TEST_F(ServerE2eTest, OperatorStatsPersistAcrossRestarts) {
  ServerOptions options;
  options.stats_path = dir_ + "/profile.stats";

  // First lifetime: queries populate the in-memory profile, Drain saves it.
  {
    auto server = StartServer(options);
    Client client = Connect(*server);
    Result<Response> result = client.Query(ZoomScript());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(server->stats().TotalObservations(), 0);

    Result<Response> stats = client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_NE(stats->body.find("opt.stats observations="), std::string::npos);

    server->Drain();
  }

  // Second lifetime: Start warm-loads the saved profile before any query.
  {
    auto server = StartServer(options);
    EXPECT_GT(server->stats().TotalObservations(), 0);
    auto azoom =
        server->stats().Get(opt::OpKind::kAZoom, Representation::kVe);
    ASSERT_TRUE(azoom.has_value());
    EXPECT_GT(azoom->rows_in, 0);
    server->Drain();
  }

  // A corrupt profile degrades to a cold start, not a failed boot.
  {
    FILE* f = fopen(options.stats_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not a stats profile\n", f);
    fclose(f);
    auto server = StartServer(options);
    EXPECT_EQ(server->stats().TotalObservations(), 0);
    server->Drain();
  }
}

TEST_F(ServerE2eTest, ConcurrentClientsShareCatalogAndCacheSafely) {
  ServerOptions options;
  options.workers = 4;
  options.queue_depth = 16;
  auto server = StartServer(options);

  const int kThreads = 4;
  const int kQueriesPerThread = 6;
  std::vector<std::string> first_bodies(kThreads);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", server->port()).ok()) {
        failures[t] = kQueriesPerThread;
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // Odd requests bypass the cache so both the execute path and the
        // cache path run concurrently against the shared catalog.
        Result<Response> response =
            client.Query(ZoomScript(), /*no_cache=*/(i % 2) == 1);
        if (!response.ok()) {
          ++failures[t];
          continue;
        }
        if (first_bodies[t].empty()) {
          first_bodies[t] = response->body;
        } else if (response->body != first_bodies[t]) {
          ++failures[t];  // every repetition must agree
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(first_bodies[t], first_bodies[0]) << "thread " << t;
  }
  // One dataset, many sessions: the catalog held exactly one load.
  EXPECT_EQ(server->catalog().size(), 1u);
}

TEST_F(ServerE2eTest, MetricsVerbServesPrometheusText) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  ASSERT_TRUE(client.Query(ZoomScript()).ok());

  Result<Response> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->body.find("# TYPE tgraph_server_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tgraph_server_query_count"),
            std::string::npos);
  // Histograms expose cumulative buckets plus sum and count.
  EXPECT_NE(metrics->body.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(metrics->body.find("_count"), std::string::npos);
  // No raw dotted metric names may leak into the exposition.
  EXPECT_EQ(metrics->body.find("server.requests"), std::string::npos);
}

TEST_F(ServerE2eTest, StatsJsonFlagReturnsParseableJson) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  ASSERT_TRUE(client.Query(ZoomScript()).ok());

  Result<Response> stats = client.Stats(/*json=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->body.front(), '{');
  EXPECT_EQ(stats->body.back(), '}');
  EXPECT_NE(stats->body.find("\"server\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"cache\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"opt_stats\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"metrics\":"), std::string::npos);

  // The plain-text report is still the default.
  Result<Response> text = client.Stats();
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->body.find("tgraphd port="), std::string::npos);
}

TEST_F(ServerE2eTest, TraceFlagReturnsTheQuerysNestedSpans) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);

  Result<Response> traced =
      client.Query(ZoomScript(), /*no_cache=*/false, /*want_trace=*/true);
  ASSERT_TRUE(traced.ok()) << traced.status();
  ASSERT_TRUE(traced->has_trace());
  // Chrome trace JSON with the root query span and the per-query id on
  // every event (qid args are emitted by QueryTrace::ToChromeTraceJson).
  EXPECT_NE(traced->trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(traced->trace.find("\"tgraphd.query\""), std::string::npos);
  EXPECT_NE(traced->trace.find("\"qid\""), std::string::npos);
  // Operator spans nested under the query made it into the export.
  EXPECT_NE(traced->trace.find("tgraph.azoom"), std::string::npos);

  // Without the flag, no trace rides along.
  Result<Response> plain = client.Query(ZoomScript(), /*no_cache=*/true);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(plain->has_trace());
}

TEST_F(ServerE2eTest, SlowQueryLogRecordsStructuredEntries) {
  ServerOptions options;
  options.slow_query_log = dir_ + "/slow.jsonl";
  options.slow_query_ms = 0;  // everything is slow
  auto server = StartServer(options);
  Client client = Connect(*server);
  ASSERT_TRUE(client.Query(ZoomScript()).ok());
  ASSERT_TRUE(client.Query(ZoomScript()).ok());  // cache hit
  server->Drain();

  std::string log = ReadFileOrEmpty(options.slow_query_log);
  ASSERT_FALSE(log.empty());
  // One JSON object per line, carrying the query id, per-stage breakdown,
  // and cache disposition.
  EXPECT_NE(log.find("\"query_id\":\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(log.find("\"canonical\":\""), std::string::npos);
  EXPECT_NE(log.find("AZOOM g BY school"), std::string::npos);
  EXPECT_NE(log.find("\"cache\":\"miss\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"cache\":\"hit\""), std::string::npos) << log;
  // The miss entry carries executed stages; AZOOM ran.
  EXPECT_NE(log.find("\"label\":\"AZOOM\""), std::string::npos) << log;
}

ingest::Event AddVertexEvent(int64_t vid, TimePoint at) {
  ingest::Event event;
  event.kind = ingest::EventKind::kAddVertex;
  event.id = vid;
  event.at = at;
  event.props = Properties{{"type", "person"}};
  return event;
}

ingest::Event AddEdgeEvent(int64_t eid, VertexId src, VertexId dst,
                           TimePoint at) {
  ingest::Event event;
  event.kind = ingest::EventKind::kAddEdge;
  event.id = eid;
  event.src = src;
  event.dst = dst;
  event.at = at;
  event.props = Properties{{"type", "knows"}};
  return event;
}

TEST_F(ServerE2eTest, IngestVerbMakesEventsDurableAndQueryable) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  std::string live_dir = dir_ + "/live";
  std::string script = "LOAD '" + live_dir + "' AS g;\nINFO g;";

  Result<Response> ack = client.Ingest(
      live_dir, {AddVertexEvent(1, 1), AddVertexEvent(2, 2),
                 AddEdgeEvent(9, 1, 2, 3)},
      /*horizon=*/100);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_NE(ack->body.find("ingested 3 events"), std::string::npos)
      << ack->body;
  EXPECT_NE(ack->body.find("seq=1"), std::string::npos) << ack->body;

  Result<Response> first = client.Query(script);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NE(first->body.find("vertices=2 edges=1"), std::string::npos)
      << first->body;

  // A second batch advances the graph; the same script must answer with
  // the new state, not a stale cached result (the key carries the epoch).
  Result<Response> ack2 =
      client.Ingest(live_dir, {AddVertexEvent(3, 10)});
  ASSERT_TRUE(ack2.ok()) << ack2.status();
  EXPECT_NE(ack2->body.find("seq=2"), std::string::npos) << ack2->body;
  Result<Response> second = client.Query(script);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->cache_hit());
  EXPECT_NE(second->body.find("vertices=3 edges=1"), std::string::npos)
      << second->body;

  // The acked batches survive a server restart: the WAL replays on open.
  server->Drain();
  auto reborn = StartServer(ServerOptions{});
  Client again = Connect(*reborn);
  Result<Response> replayed = again.Query(script);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_NE(replayed->body.find("vertices=3 edges=1"), std::string::npos)
      << replayed->body;
}

TEST_F(ServerE2eTest, RejectedIngestBatchAnswersAnErrorAndChangesNothing) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  std::string live_dir = dir_ + "/live";

  ASSERT_TRUE(
      client.Ingest(live_dir, {AddVertexEvent(1, 5)}, /*horizon=*/100).ok());

  // Timestamps must advance across batches: an event at the watermark is
  // rejected wholesale, along with everything riding in the same batch.
  Result<Response> stale = client.Ingest(
      live_dir, {AddVertexEvent(2, 5), AddVertexEvent(3, 6)});
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsInvalidArgument()) << stale.status();

  Result<Response> info =
      client.Query("LOAD '" + live_dir + "' AS g;\nINFO g;");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_NE(info->body.find("vertices=1"), std::string::npos) << info->body;
  // The connection survives; the next well-formed batch is accepted.
  ASSERT_TRUE(client.Ingest(live_dir, {AddVertexEvent(2, 6)}).ok());
}

TEST_F(ServerE2eTest, IngestInvalidatesOnlyTheChangedGraphsCachedResults) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  std::string live_dir = dir_ + "/live";
  std::string live_script = "LOAD '" + live_dir + "' AS g;\nINFO g;";

  ASSERT_TRUE(
      client.Ingest(live_dir, {AddVertexEvent(1, 1)}, /*horizon=*/100).ok());

  // Warm the cache with one result per graph.
  ASSERT_TRUE(client.Query(ZoomScript()).ok());
  ASSERT_TRUE(client.Query(live_script).ok());
  ASSERT_TRUE(client.Query(live_script)->cache_hit());
  size_t entries_before = server->cache().entries();
  ASSERT_GE(entries_before, 2u);

  // Ingesting into the live graph evicts its tagged entries — and only
  // its — so the static graph's result is still served from cache.
  ASSERT_TRUE(client.Ingest(live_dir, {AddVertexEvent(2, 2)}).ok());
  EXPECT_LT(server->cache().entries(), entries_before);
  Result<Response> fig1 = client.Query(ZoomScript());
  ASSERT_TRUE(fig1.ok()) << fig1.status();
  EXPECT_TRUE(fig1->cache_hit());
  Result<Response> live = client.Query(live_script);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_FALSE(live->cache_hit());
  EXPECT_NE(live->body.find("vertices=2"), std::string::npos) << live->body;
}

TEST_F(ServerE2eTest, ViewVerbLifecycleOverTheWire) {
  ServerOptions options;
  options.views_path = dir_ + "/views.tql";
  auto server = StartServer(options);
  Client client = Connect(*server);
  std::string live_dir = dir_ + "/live";
  ASSERT_TRUE(client.Ingest(live_dir,
                            {AddVertexEvent(1, 1), AddVertexEvent(2, 2),
                             AddEdgeEvent(9, 1, 2, 3)},
                            /*horizon=*/100)
                  .ok());

  // Registration travels through the regular query verb (TQL DDL).
  Result<Response> created = client.Query(
      "CREATE VIEW people ON '" + live_dir +
      "' AS AZOOM BY type AGGREGATE COUNT() AS n;");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_NE(created->body.find("created view people"), std::string::npos)
      << created->body;

  // The dedicated view verb: empty name lists, a name serves.
  Result<Response> listed = client.View("");
  ASSERT_TRUE(listed.ok()) << listed.status();
  EXPECT_NE(listed->body.find("people ON '" + live_dir + "'"),
            std::string::npos)
      << listed->body;
  Result<Response> first = client.View("people");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->body.rfind("view people [", 0), 0u) << first->body;
  EXPECT_NE(first->body.find("content "), std::string::npos);

  // New source epoch => refreshed content on the next read.
  ASSERT_TRUE(client.Ingest(live_dir, {AddVertexEvent(3, 10)}).ok());
  Result<Response> second = client.View("people");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(second->body, first->body);

  Result<Response> dropped = client.Query("DROP VIEW people;");
  ASSERT_TRUE(dropped.ok()) << dropped.status();
  Result<Response> missing = client.View("people");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status();
  EXPECT_NE(client.View("")->body.find("no views"), std::string::npos);
}

TEST_F(ServerE2eTest, ViewQueriesCacheByVersionAndInvalidateOnDrop) {
  auto server = StartServer(ServerOptions{});
  Client client = Connect(*server);
  std::string live_dir = dir_ + "/live";
  ASSERT_TRUE(
      client.Ingest(live_dir, {AddVertexEvent(1, 1), AddVertexEvent(2, 2)},
                    /*horizon=*/100)
          .ok());
  ASSERT_TRUE(client
                  .Query("CREATE VIEW people ON '" + live_dir +
                         "' AS AZOOM BY type AGGREGATE COUNT() AS n;")
                  .ok());

  // Identical VIEW statements hit the cache; the key carries the served
  // view version.
  Result<Response> first = client.Query("VIEW people;");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit());
  Result<Response> again = client.Query("VIEW people;");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->cache_hit());
  EXPECT_EQ(again->body, first->body);

  // A new epoch bumps the view version: same script, fresh execution.
  ASSERT_TRUE(client.Ingest(live_dir, {AddVertexEvent(3, 10)}).ok());
  Result<Response> after = client.Query("VIEW people;");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache_hit());
  EXPECT_NE(after->body, first->body);

  // DROP VIEW evicts the view's tagged entries.
  ASSERT_TRUE(client.Query("VIEW people;")->cache_hit());
  ASSERT_TRUE(client.Query("DROP VIEW people;").ok());
  Result<Response> gone = client.Query("VIEW people;");
  ASSERT_FALSE(gone.ok());
  EXPECT_TRUE(gone.status().IsNotFound()) << gone.status();
}

TEST_F(ServerE2eTest, ViewsSurviveRestartAndConvergeByteIdentically) {
  ServerOptions options;
  options.views_path = dir_ + "/views.tql";
  std::string live_dir = dir_ + "/live";
  std::string body_before;

  {
    auto server = StartServer(options);
    Client client = Connect(*server);
    ASSERT_TRUE(client.Ingest(live_dir,
                              {AddVertexEvent(1, 1), AddVertexEvent(2, 2),
                               AddEdgeEvent(9, 1, 2, 3),
                               AddVertexEvent(3, 4)},
                              /*horizon=*/100)
                    .ok());
    ASSERT_TRUE(client
                    .Query("CREATE VIEW people ON '" + live_dir +
                           "' AS AZOOM BY type AGGREGATE COUNT() AS n;")
                    .ok());
    Result<Response> served = client.View("people");
    ASSERT_TRUE(served.ok()) << served.status();
    body_before = served->body;
    server->Drain();
  }

  // A reborn server re-registers the persisted definition and rebuilds
  // the view's state from the compacted store + WAL tail; the rendering
  // is version-free, so the result is byte-identical.
  {
    auto server = StartServer(options);
    Client client = Connect(*server);
    Result<Response> listed = client.View("");
    ASSERT_TRUE(listed.ok()) << listed.status();
    EXPECT_NE(listed->body.find("people ON"), std::string::npos)
        << listed->body;
    Result<Response> served = client.View("people");
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_EQ(served->body, body_before);
    server->Drain();
  }
}

TEST_F(ServerE2eTest, MetricsPortServesPrometheusOverHttp) {
  ServerOptions options;
  options.metrics_port = 0;  // ephemeral
  auto server = StartServer(options);
  ASSERT_GT(server->metrics_port(), 0);
  Client client = Connect(*server);
  ASSERT_TRUE(client.Query(ZoomScript()).ok());

  std::string response = HttpGet(server->metrics_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("tgraph_server_requests"), std::string::npos);

  std::string missing = HttpGet(server->metrics_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server->Drain();
  // The listener dies with the server.
  EXPECT_EQ(HttpGet(server->metrics_port(), "/metrics"), "");
}

}  // namespace
}  // namespace tgraph::server
