#include "tgraph/algebra.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "tgraph/slice.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;
using ::tgraph::testing::RandomTGraph;

PropertiesMerge LeftWins() {
  return [](const Properties& a, const Properties&) { return a; };
}

TEST(SubgraphTest, VertexPredicateRemovesDanglingEdgePeriods) {
  // Keep only MIT people: Bob disappears entirely, so e1 and e2 vanish.
  VeGraph result = SubgraphVe(
      Figure1(),
      [](VertexId, const Properties& props) {
        const PropertyValue* school = props.Find("school");
        return school != nullptr && school->AsString() == "MIT";
      },
      [](EdgeId, VertexId, VertexId, const Properties&) { return true; });
  EXPECT_EQ(result.NumVertices(), 2);  // Ann, Cat
  EXPECT_EQ(result.NumEdgeRecords(), 0);
  TG_CHECK_OK(ValidateVe(result));
}

TEST(SubgraphTest, EdgeClippedToSurvivingEndpointPeriods) {
  // Keep states where a school is known: Bob's [2,5) state drops, so e1
  // (valid [2,7)) must clip to [5,7).
  VeGraph result = SubgraphVe(
      Figure1(),
      [](VertexId, const Properties& props) { return props.Has("school"); },
      [](EdgeId, VertexId, VertexId, const Properties&) { return true; });
  std::map<EdgeId, Interval> edges;
  for (const VeEdge& e : result.edges().Collect()) edges[e.eid] = e.interval;
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1], Interval(5, 7));
  EXPECT_EQ(edges[2], Interval(7, 9));
  TG_CHECK_OK(ValidateVe(result));
}

TEST(SubgraphTest, EdgePredicate) {
  VeGraph result = SubgraphVe(
      Figure1(), [](VertexId, const Properties&) { return true; },
      [](EdgeId eid, VertexId, VertexId, const Properties&) {
        return eid == 2;
      });
  EXPECT_EQ(result.NumEdges(), 1);
  EXPECT_EQ(result.NumVertices(), 3);
}

TEST(SubgraphTest, KeepAllIsIdentity) {
  VeGraph result = SubgraphVe(
      Figure1(), [](VertexId, const Properties&) { return true; },
      [](EdgeId, VertexId, VertexId, const Properties&) { return true; });
  EXPECT_EQ(Canonical(result), Canonical(Figure1()));
}

TEST(MapVeTest, RewritesPropertiesAndCoalesces) {
  // Dropping the school attribute makes Bob's two states value-equivalent;
  // the map must coalesce them back into one.
  VeGraph result = MapVe(
      Figure1(),
      [](VertexId, const Properties& props) {
        Properties out = props;
        out.Erase("school");
        return out;
      },
      [](EdgeId, const Properties& props) { return props; });
  EXPECT_EQ(result.NumVertexRecords(), 3);
  TG_CHECK_OK(CheckCoalescedVe(result));
  TG_CHECK_OK(ValidateVe(result));
}

class BinaryOpsTest : public ::testing::Test {
 protected:
  // a: vertex 1 over [0,6), vertex 2 over [0,10), edge 1->2 over [2,6).
  VeGraph A() {
    return VeGraph::Create(
        Ctx(),
        {{1, {0, 6}, Properties{{"type", "n"}, {"from", "a"}}},
         {2, {0, 10}, Properties{{"type", "n"}, {"from", "a"}}}},
        {{7, 1, 2, {2, 6}, Properties{{"type", "e"}, {"from", "a"}}}});
  }
  // b: vertex 1 over [4,10), vertex 3 over [0,10), edge 7 over [4,8).
  VeGraph B() {
    return VeGraph::Create(
        Ctx(),
        {{1, {4, 10}, Properties{{"type", "n"}, {"from", "b"}}},
         {2, {0, 10}, Properties{{"type", "n"}, {"from", "b"}}},
         {3, {0, 10}, Properties{{"type", "n"}, {"from", "b"}}}},
        {{7, 1, 2, {4, 8}, Properties{{"type", "e"}, {"from", "b"}}}});
  }
};

TEST_F(BinaryOpsTest, UnionCoversEitherPresence) {
  VeGraph result = TemporalUnion(A(), B(), LeftWins());
  std::map<VertexId, std::vector<Interval>> presence;
  for (const VeVertex& v : result.vertices().Collect()) {
    presence[v.vid].push_back(v.interval);
  }
  // Vertex 1: [0,6) from a, [4,10) from b; merged segments with "left
  // wins" give [0,6) from=a then [6,10) from=b.
  ASSERT_EQ(presence[1].size(), 2u);
  EXPECT_EQ(CoalesceIntervals(presence[1]).front(), Interval(0, 10));
  ASSERT_EQ(presence[3].size(), 1u);
  EXPECT_EQ(presence[3][0], Interval(0, 10));
  // Edge 7: [2,6) ∪ [4,8) = [2,8).
  std::vector<Interval> edge_intervals;
  for (const VeEdge& e : result.edges().Collect()) {
    edge_intervals.push_back(e.interval);
  }
  EXPECT_EQ(CoalesceIntervals(edge_intervals).front(), Interval(2, 8));
  TG_CHECK_OK(ValidateVe(result));
}

TEST_F(BinaryOpsTest, IntersectionKeepsCommonPresence) {
  VeGraph result = TemporalIntersection(A(), B(), LeftWins());
  std::map<VertexId, Interval> presence;
  for (const VeVertex& v : result.vertices().Collect()) {
    presence[v.vid] = v.interval;
  }
  ASSERT_EQ(presence.size(), 2u);  // vertex 3 only in b
  EXPECT_EQ(presence[1], Interval(4, 6));
  EXPECT_EQ(presence[2], Interval(0, 10));
  std::vector<VeEdge> edges = result.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].interval, Interval(4, 6));
  TG_CHECK_OK(ValidateVe(result));
}

TEST_F(BinaryOpsTest, IntersectionMergesProperties) {
  PropertiesMerge tag_both = [](const Properties& a, const Properties& b) {
    Properties out = a;
    out.Set("also_from", *b.Get("from"));
    return out;
  };
  VeGraph result = TemporalIntersection(A(), B(), tag_both);
  for (const VeVertex& v : result.vertices().Collect()) {
    EXPECT_EQ(v.properties.Get("from")->AsString(), "a");
    EXPECT_EQ(v.properties.Get("also_from")->AsString(), "b");
  }
}

TEST_F(BinaryOpsTest, DifferenceSubtractsPresenceAndClipsEdges) {
  VeGraph result = TemporalDifference(A(), B());
  std::map<VertexId, Interval> presence;
  for (const VeVertex& v : result.vertices().Collect()) {
    presence[v.vid] = v.interval;
  }
  // Vertex 1: [0,6) \ [4,10) = [0,4). Vertex 2: fully removed.
  ASSERT_EQ(presence.size(), 1u);
  EXPECT_EQ(presence[1], Interval(0, 4));
  // Edge 7: [2,6) \ [4,8) = [2,4), but endpoint 2 is gone -> dropped.
  EXPECT_EQ(result.NumEdgeRecords(), 0);
  TG_CHECK_OK(ValidateVe(result));
}

TEST_F(BinaryOpsTest, DifferenceWithEmptyIsIdentity) {
  VeGraph empty = VeGraph::Create(Ctx(), {}, {});
  EXPECT_EQ(Canonical(TemporalDifference(A(), empty)), Canonical(A()));
}

TEST_F(BinaryOpsTest, UnionWithSelfIsIdentity) {
  VeGraph a = A();
  EXPECT_EQ(Canonical(TemporalUnion(a, a, LeftWins())), Canonical(a));
  EXPECT_EQ(Canonical(TemporalIntersection(a, a, LeftWins())), Canonical(a));
}

TEST_F(BinaryOpsTest, AlgebraicIdentitiesOnRandomGraphs) {
  for (uint64_t seed : {71u, 72u, 73u}) {
    VeGraph g = RandomTGraph(seed).Coalesce();
    // g \ g is empty; g ∩ g = g ∪ g = g.
    EXPECT_EQ(TemporalDifference(g, g).NumVertexRecords(), 0) << seed;
    EXPECT_EQ(Canonical(TemporalIntersection(g, g, LeftWins())), Canonical(g))
        << seed;
    EXPECT_EQ(Canonical(TemporalUnion(g, g, LeftWins())), Canonical(g))
        << seed;
  }
}

TEST_F(BinaryOpsTest, UnionDistributesOverSlices) {
  // Slicing a graph into two halves and unioning them restores it.
  for (uint64_t seed : {74u, 75u}) {
    VeGraph g = RandomTGraph(seed).Coalesce();
    VeGraph first = SliceVe(g, Interval(0, 9));
    VeGraph second = SliceVe(g, Interval(9, 100));
    EXPECT_EQ(Canonical(TemporalUnion(first, second, LeftWins())),
              Canonical(g))
        << seed;
  }
}

}  // namespace
}  // namespace tgraph
