#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataflow/context.h"
#include "tests/test_util.h"
#include "tgraph/pipeline.h"
#include "tgraph/tgraph.h"

namespace tgraph::obs {
namespace {

using ::tgraph::testing::Figure1;
using ::tgraph::testing::SchoolZoom;

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate Chrome trace_event output by
// actually parsing it back rather than grepping for substrings.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipWhitespace();
    return ok && pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipWhitespace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // decoded code point not needed for these tests
            *out += '?';
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [&](const char* literal) {
      size_t n = std::char_traits<char>::length(literal);
      if (text_.compare(pos_, n, literal) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Enable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Global().Disable();
  {
    Span span("ignored", "test");
    TG_SPAN("also_ignored", "test");
  }
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansTrackParents) {
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      { Span leaf("leaf", "test"); }
    }
    { Span sibling("sibling", "test"); }
  }
  std::vector<SpanEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 4u);
  std::map<std::string, const SpanEvent*> by_name;
  for (const SpanEvent& e : events) by_name[e.name] = &e;
  ASSERT_TRUE(by_name.count("outer") && by_name.count("inner") &&
              by_name.count("leaf") && by_name.count("sibling"));
  EXPECT_EQ(by_name["outer"]->parent_id, 0u);
  EXPECT_EQ(by_name["inner"]->parent_id, by_name["outer"]->id);
  EXPECT_EQ(by_name["leaf"]->parent_id, by_name["inner"]->id);
  // The sibling opens after inner closed: its parent is outer, not inner.
  EXPECT_EQ(by_name["sibling"]->parent_id, by_name["outer"]->id);
  // Containment: children start no earlier and end no later than parents.
  EXPECT_GE(by_name["inner"]->start_us, by_name["outer"]->start_us);
  EXPECT_LE(by_name["inner"]->start_us + by_name["inner"]->duration_us,
            by_name["outer"]->start_us + by_name["outer"]->duration_us);
}

TEST_F(TraceTest, ParallelForSpansAreNotLost) {
  dataflow::ExecutionContext ctx({.num_workers = 4});
  constexpr size_t kTasks = 200;
  ctx.ParallelFor(kTasks, [](size_t) { TG_SPAN("test.work", "test"); });

  std::vector<SpanEvent> events = Tracer::Global().Events();
  size_t work_spans = 0;
  std::set<uint32_t> tids;
  std::map<std::pair<uint32_t, uint64_t>, const SpanEvent*> by_id;
  for (const SpanEvent& e : events) by_id[{e.tid, e.id}] = &e;
  for (const SpanEvent& e : events) {
    if (e.name != "test.work") continue;
    ++work_spans;
    tids.insert(e.tid);
    // Each user-code span nests under the per-task instrumentation span,
    // which itself nests under the stage span.
    auto task = by_id.find({e.tid, e.parent_id});
    ASSERT_NE(task, by_id.end());
    EXPECT_EQ(task->second->name, "dataflow.task");
  }
  EXPECT_EQ(work_spans, kTasks);  // no events dropped under concurrency
  EXPECT_GE(tids.size(), 1u);
  // The stage itself was recorded once, on the calling thread.
  size_t stage_spans = 0;
  for (const SpanEvent& e : events) {
    if (e.name == "dataflow.stage") ++stage_spans;
  }
  EXPECT_EQ(stage_spans, 1u);
}

TEST_F(TraceTest, PipelineRunEmitsWellFormedChromeTrace) {
  Pipeline pipeline;
  pipeline.AZoom(SchoolZoom()).Coalesce().Slice(Interval(1, 8));
  Result<TGraph> result = pipeline.Run(TGraph::FromVe(Figure1(), true));
  ASSERT_TRUE(result.ok());
  result->Materialize();

  std::string json = Tracer::Global().ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json.substr(0, 500);
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.object.count("traceEvents"));
  const JsonValue& trace_events = root.object.at("traceEvents");
  ASSERT_EQ(trace_events.type, JsonValue::Type::kArray);
  ASSERT_FALSE(trace_events.array.empty());

  std::set<std::string> names;
  for (const JsonValue& event : trace_events.array) {
    ASSERT_EQ(event.type, JsonValue::Type::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      ASSERT_TRUE(event.object.count(key)) << "missing key " << key;
    }
    EXPECT_EQ(event.object.at("name").type, JsonValue::Type::kString);
    EXPECT_EQ(event.object.at("ph").string, "X");  // complete events
    EXPECT_EQ(event.object.at("ts").type, JsonValue::Type::kNumber);
    EXPECT_EQ(event.object.at("dur").type, JsonValue::Type::kNumber);
    EXPECT_GE(event.object.at("dur").number, 0);
    names.insert(event.object.at("name").string);
  }
  // One span per pipeline step, plus the surrounding run.
  EXPECT_TRUE(names.count("pipeline.run"));
  EXPECT_TRUE(names.count("pipeline.step.azoom"));
  EXPECT_TRUE(names.count("pipeline.step.coalesce"));
  EXPECT_TRUE(names.count("pipeline.step.slice"));
  // The azoom step shuffles through the dataflow engine.
  EXPECT_TRUE(names.count("dataflow.shuffle"));
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughAFile) {
  { Span span("file.span", "test"); }
  std::string path = ::testing::TempDir() + "/tg_obs_trace_test.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path));
  FILE* file = fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), file)) > 0) contents.append(buf, n);
  fclose(file);
  remove(path.c_str());
  JsonValue root;
  ASSERT_TRUE(JsonParser(contents).Parse(&root));
  ASSERT_EQ(root.object.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.object.at("traceEvents").array[0].object.at("name").string,
            "file.span");
}

TEST_F(TraceTest, JsonEscapesHostileSpanNames) {
  { Span span("quote\"back\\slash\nnewline", "test"); }
  std::string json = Tracer::Global().ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  EXPECT_EQ(root.object.at("traceEvents").array[0].object.at("name").string,
            "quote\"back\\slash\nnewline");
}

// --- query contexts --------------------------------------------------------

TEST_F(TraceTest, QueryIdsAreUniqueAndNonZero) {
  uint64_t a = NextQueryId();
  uint64_t b = NextQueryId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, SampleQueryRespectsRateEndpoints) {
  for (uint64_t id = 1; id <= 100; ++id) {
    EXPECT_FALSE(SampleQuery(id, 0.0));
    EXPECT_TRUE(SampleQuery(id, 1.0));
    // Deterministic: the same id always gets the same decision.
    EXPECT_EQ(SampleQuery(id, 0.5), SampleQuery(id, 0.5));
  }
  int sampled = 0;
  for (uint64_t id = 1; id <= 2000; ++id) {
    if (SampleQuery(id, 0.5)) ++sampled;
  }
  // Statistical, but with 2000 ids and a hash this is a ~22-sigma bound.
  EXPECT_GT(sampled, 500);
  EXPECT_LT(sampled, 1500);
}

TEST_F(TraceTest, SpansCarryTheActiveQueryId) {
  QueryTrace trace(77);
  {
    ScopedQueryContext scope(QueryContext{77, &trace, 0});
    Span span("query.work", "test");
  }
  std::vector<SpanEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "query.work");
  EXPECT_EQ(events[0].query_id, 77u);
  // The global tracer (enabled in SetUp) saw it too: sampled queries
  // feed both sinks.
  EXPECT_EQ(Tracer::Global().EventCount(), 1u);
}

TEST_F(TraceTest, UnsampledQuerySuppressesGlobalTracing) {
  {
    // query_id set, no trace buffer: this query was not sampled, so even
    // the enabled global tracer must not record its spans.
    ScopedQueryContext scope(QueryContext{123, nullptr, 0});
    Span span("suppressed", "test");
  }
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
  // Context restored: spans outside the query record again.
  { Span span("recorded", "test"); }
  EXPECT_EQ(Tracer::Global().EventCount(), 1u);
}

TEST_F(TraceTest, SampledQueryRecordsEvenWhenGlobalTracerIsDisabled) {
  Tracer::Global().Disable();
  QueryTrace trace(9);
  {
    ScopedQueryContext scope(QueryContext{9, &trace, 0});
    Span span("on.demand", "test");
  }
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
}

TEST_F(TraceTest, QueryContextPropagatesThroughParallelFor) {
  Tracer::Global().Disable();  // per-query collection must not need it
  dataflow::ExecutionContext ctx({.num_workers = 4});
  QueryTrace trace(42);
  {
    ScopedQueryContext scope(QueryContext{42, &trace, 0});
    Span root("query.root", "test");
    ctx.ParallelFor(50, [](size_t) { TG_SPAN("query.task.work", "test"); });
  }
  std::vector<SpanEvent> events = trace.Events();
  std::map<std::pair<uint32_t, uint64_t>, const SpanEvent*> by_id;
  for (const SpanEvent& e : events) by_id[{e.tid, e.id}] = &e;
  size_t work_spans = 0;
  uint64_t root_id = 0;
  for (const SpanEvent& e : events) {
    EXPECT_EQ(e.query_id, 42u) << e.name;
    if (e.name == "query.root") root_id = e.id;
    if (e.name == "query.task.work") ++work_spans;
  }
  EXPECT_EQ(work_spans, 50u);
  ASSERT_NE(root_id, 0u);
  // Every span reaches query.root through its parent chain, even those
  // recorded on pool threads: the capture hands workers the calling
  // scope as nesting parent.
  for (const SpanEvent& e : events) {
    if (e.id == root_id) continue;
    const SpanEvent* cursor = &e;
    int hops = 0;
    while (cursor != nullptr && cursor->id != root_id && hops < 16) {
      uint64_t parent = cursor->parent_id;
      cursor = nullptr;
      for (const SpanEvent& candidate : events) {
        if (candidate.id == parent) {
          cursor = &candidate;
          break;
        }
      }
      ++hops;
    }
    ASSERT_NE(cursor, nullptr) << e.name << " is orphaned";
    EXPECT_EQ(cursor->id, root_id);
  }
}

TEST_F(TraceTest, QueryTraceJsonCarriesTheQueryId) {
  QueryTrace trace(0xabcdef);
  {
    ScopedQueryContext scope(QueryContext{0xabcdef, &trace, 0});
    Span span("traced", "test");
  }
  std::string json = trace.ToChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue& events = root.object.at("traceEvents");
  ASSERT_EQ(events.array.size(), 1u);
  const JsonValue& args = events.array[0].object.at("args");
  EXPECT_EQ(args.object.at("qid").string, "0000000000abcdef");
}

// Regression test for the drain-time flush guarantee tgzd relies on: a
// span that *ended* on a worker thread must be visible to an export
// issued from another thread while those workers are still alive (a
// SIGTERM drain exports before any pool thread exits). The old
// implementation buffered events per thread without synchronization, so
// an export could miss or tear spans recorded by live threads.
TEST_F(TraceTest, ExportSeesSpansEndedOnLiveThreadsImmediately) {
  dataflow::ExecutionContext ctx({.num_workers = 4});
  for (int round = 0; round < 5; ++round) {
    Tracer::Global().Clear();
    constexpr size_t kTasks = 64;
    ctx.ParallelFor(kTasks, [](size_t) { TG_SPAN("drain.work", "test"); });
    // The pool threads are idle but alive; the export must already see
    // every ended span, fully formed.
    std::vector<SpanEvent> events = Tracer::Global().Events();
    size_t work = 0;
    for (const SpanEvent& e : events) {
      if (e.name != "drain.work") continue;
      ++work;
      EXPECT_GE(e.duration_us, 0);
      EXPECT_NE(e.id, 0u);
    }
    EXPECT_EQ(work, kTasks) << "round " << round;
  }
}

// Export/record concurrency: Events() and Clear() from one thread while
// pool threads are mid-span must neither crash nor return torn events.
TEST_F(TraceTest, ConcurrentExportWhileRecordingIsSafe) {
  dataflow::ExecutionContext ctx({.num_workers = 4});
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load()) {
      std::vector<SpanEvent> events = Tracer::Global().Events();
      for (const SpanEvent& e : events) {
        ASSERT_FALSE(e.name.empty());
        ASSERT_NE(e.id, 0u);
      }
    }
  });
  for (int round = 0; round < 20; ++round) {
    ctx.ParallelFor(32, [](size_t) { TG_SPAN("stress.work", "test"); });
  }
  stop.store(true);
  exporter.join();
}

TEST_F(TraceTest, SummaryAggregatesByCallPath) {
  {
    Span outer("summary.outer", "test");
    for (int i = 0; i < 3; ++i) { Span inner("summary.inner", "test"); }
  }
  std::string summary = Tracer::Global().Summary();
  EXPECT_NE(summary.find("summary.outer"), std::string::npos);
  EXPECT_NE(summary.find("summary.inner"), std::string::npos);
  EXPECT_NE(summary.find("count=3"), std::string::npos);  // inner, aggregated
  // The child renders indented beneath its parent.
  EXPECT_LT(summary.find("summary.outer"), summary.find("summary.inner"));
  EXPECT_NE(summary.find("\n  summary.inner"), std::string::npos);
}

}  // namespace
}  // namespace tgraph::obs
