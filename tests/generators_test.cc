#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/stats.h"
#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph::gen {
namespace {

using ::tgraph::testing::Canonical;
using ::tgraph::testing::Ctx;

TEST(WikiTalkGeneratorTest, ShapeMatchesConfig) {
  WikiTalkConfig config;
  config.num_users = 500;
  config.num_months = 24;
  config.seed = 1;
  VeGraph g = GenerateWikiTalk(Ctx(), config);
  EXPECT_EQ(g.NumVertices(), 500);
  EXPECT_EQ(g.NumVertexRecords(), 500);  // growth-only, attrs never change
  EXPECT_GT(g.NumEdgeRecords(), 500);
  EXPECT_EQ(g.lifetime(), Interval(0, 24));
  TG_CHECK_OK(ValidateVe(g));
}

TEST(WikiTalkGeneratorTest, DeterministicInSeed) {
  WikiTalkConfig config;
  config.num_users = 200;
  config.num_months = 12;
  EXPECT_EQ(Canonical(GenerateWikiTalk(Ctx(), config)),
            Canonical(GenerateWikiTalk(Ctx(), config)));
  config.seed = 99;
  EXPECT_NE(Canonical(GenerateWikiTalk(Ctx(), config)),
            Canonical(GenerateWikiTalk(Ctx(), {200, 12, 0.5, 0.35, 1000, 1})));
}

TEST(WikiTalkGeneratorTest, VerticesAreGrowthOnly) {
  WikiTalkConfig config;
  config.num_users = 300;
  config.num_months = 24;
  VeGraph g = GenerateWikiTalk(Ctx(), config);
  for (const VeVertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.interval.end, 24);  // persists to the end once added
    EXPECT_TRUE(v.properties.Has("name"));
    EXPECT_TRUE(v.properties.Has("editCount"));
  }
}

TEST(WikiTalkGeneratorTest, LowEvolutionRate) {
  WikiTalkConfig config;
  config.num_users = 1000;
  config.num_months = 36;
  VeGraph g = GenerateWikiTalk(Ctx(), config);
  DatasetStats stats = ComputeStats(g);
  // Short-lived edges -> low edit similarity (paper: 14.4 for WikiTalk).
  EXPECT_LT(stats.evolution_rate, 60.0);
}

TEST(SnbGeneratorTest, GrowthOnlyWithHighEvolutionRate) {
  SnbConfig config;
  config.num_persons = 800;
  config.num_months = 36;
  VeGraph g = GenerateSnb(Ctx(), config);
  TG_CHECK_OK(ValidateVe(g));
  for (const VeVertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.interval.end, 36);
    EXPECT_TRUE(v.properties.Has("firstName"));
  }
  for (const VeEdge& e : g.edges().Collect()) {
    EXPECT_EQ(e.interval.end, 36);  // edges persist too
  }
  DatasetStats stats = ComputeStats(g);
  // Growth-only graph: consecutive snapshots overlap heavily (paper: ~90).
  EXPECT_GT(stats.evolution_rate, 75.0);
}

TEST(SnbGeneratorTest, FirstNameCardinalityBounded) {
  SnbConfig config;
  config.num_persons = 2000;
  config.num_first_names = 50;
  VeGraph g = GenerateSnb(Ctx(), config);
  std::set<std::string> names;
  for (const VeVertex& v : g.vertices().Collect()) {
    names.insert(v.properties.Get("firstName")->AsString());
  }
  EXPECT_LE(names.size(), 50u);
  EXPECT_GT(names.size(), 30u);  // most names used at this scale
}

TEST(NGramsGeneratorTest, PersistentVerticesChurningEdges) {
  NGramsConfig config;
  config.num_words = 500;
  config.num_years = 50;
  config.appearances_per_year = 300;
  config.attribute_change_every = 0;  // single-state vertices for this check
  VeGraph g = GenerateNGrams(Ctx(), config);
  TG_CHECK_OK(ValidateVe(g));
  EXPECT_EQ(g.NumVertexRecords(), 500);
  for (const VeVertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.interval, Interval(0, 50));
  }
  // Recurring pairs make multi-state edges: more records than edges.
  EXPECT_GT(g.NumEdgeRecords(), g.NumEdges());
}

TEST(NGramsGeneratorTest, EdgeStatesDisjointPerPair) {
  NGramsConfig config;
  config.num_words = 100;
  config.num_years = 60;
  config.appearances_per_year = 400;  // dense: plenty of recurrences
  VeGraph g = GenerateNGrams(Ctx(), config);
  TG_CHECK_OK(CheckCoalescedVe(g));
}

TEST(NGramsGeneratorTest, AttributeChurnMakesMultiStateVertices) {
  NGramsConfig config;
  config.num_words = 400;
  config.num_years = 100;
  config.appearances_per_year = 200;
  config.attribute_change_every = 20;
  VeGraph g = GenerateNGrams(Ctx(), config);
  TG_CHECK_OK(ValidateVe(g));
  EXPECT_GT(g.NumVertexRecords(), 2 * g.NumVertices());
  // Presence is still the full lifetime despite the state splits.
  std::map<VertexId, int64_t> covered;
  for (const VeVertex& v : g.vertices().Collect()) {
    covered[v.vid] += v.interval.duration();
  }
  for (auto& [vid, duration] : covered) EXPECT_EQ(duration, 100);
}

// Degree of each vertex as an edge endpoint (undirected count), summed
// over edge records.
std::map<VertexId, int64_t> DegreeHistogram(const VeGraph& g) {
  std::map<VertexId, int64_t> degree;
  for (const VeEdge& e : g.edges().Collect()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  return degree;
}

TEST(PowerLawGeneratorTest, ShapeAndValidity) {
  PowerLawConfig config;
  config.num_vertices = 500;
  config.num_edges = 5000;
  config.seed = 1;
  VeGraph g = GeneratePowerLaw(Ctx(), config);
  TG_CHECK_OK(ValidateVe(g));
  EXPECT_EQ(g.NumVertices(), 500);
  EXPECT_EQ(g.lifetime(), Interval(0, config.num_snapshots));
  // Self-loops are skipped, so slightly fewer edges than requested.
  EXPECT_GT(g.NumEdgeRecords(), 4000);
  EXPECT_LE(g.NumEdgeRecords(), 5000);
  for (const VeVertex& v : g.vertices().Collect()) {
    EXPECT_EQ(v.interval, Interval(0, config.num_snapshots));
    EXPECT_TRUE(v.properties.Has("group"));
    EXPECT_TRUE(v.properties.Has("weight"));
  }
}

TEST(PowerLawGeneratorTest, DeterministicInSeed) {
  PowerLawConfig config;
  config.num_vertices = 300;
  config.num_edges = 2000;
  EXPECT_EQ(Canonical(GeneratePowerLaw(Ctx(), config)),
            Canonical(GeneratePowerLaw(Ctx(), config)));
  PowerLawConfig other = config;
  other.seed = 99;
  EXPECT_NE(Canonical(GeneratePowerLaw(Ctx(), config)),
            Canonical(GeneratePowerLaw(Ctx(), other)));
}

TEST(PowerLawGeneratorTest, HubDominatesDegreeDistribution) {
  PowerLawConfig config;
  config.num_vertices = 1000;
  config.num_edges = 20000;
  config.zipf_exponent = 1.2;
  config.hub_fraction = 0.2;
  VeGraph g = GeneratePowerLaw(Ctx(), config);
  std::map<VertexId, int64_t> degree = DegreeHistogram(g);
  int64_t total = 0;
  int64_t max_other = 0;
  for (auto& [vid, d] : degree) {
    total += d;
    if (vid != 0) max_other = std::max(max_other, d);
  }
  double mean = static_cast<double>(total) / static_cast<double>(degree.size());
  // The hub carries at least its forced share (~20% of sources) — orders
  // of magnitude above the mean — and tops every other vertex.
  EXPECT_GT(degree[0], static_cast<int64_t>(0.15 * 20000));
  EXPECT_GT(static_cast<double>(degree[0]), 10.0 * mean);
  EXPECT_GT(degree[0], max_other);
}

TEST(PowerLawGeneratorTest, ZipfExponentControlsSkew) {
  PowerLawConfig config;
  config.num_vertices = 1000;
  config.num_edges = 20000;
  config.hub_fraction = 0;  // isolate the Zipf tail from the forced hub

  config.zipf_exponent = 0;  // uniform endpoints
  std::map<VertexId, int64_t> uniform =
      DegreeHistogram(GeneratePowerLaw(Ctx(), config));
  config.zipf_exponent = 1.2;
  std::map<VertexId, int64_t> skewed =
      DegreeHistogram(GeneratePowerLaw(Ctx(), config));

  auto max_degree = [](const std::map<VertexId, int64_t>& d) {
    int64_t max = 0;
    for (auto& [vid, count] : d) max = std::max(max, count);
    return max;
  };
  // Uniform sampling keeps the max near the mean (~40); Zipf 1.2
  // concentrates a large multiple of that on the head ranks.
  EXPECT_GT(max_degree(skewed), 4 * max_degree(uniform));
}

TEST(NGramsGeneratorTest, MediumEvolutionRate) {
  NGramsConfig config;
  config.num_words = 800;
  config.num_years = 60;
  config.appearances_per_year = 1500;
  config.mean_duration = 3.0;
  VeGraph g = GenerateNGrams(Ctx(), config);
  DatasetStats stats = ComputeStats(g);
  // Multi-year edges give moderate overlap (paper: 16-18 for NGrams).
  EXPECT_GT(stats.evolution_rate, 20.0);
  EXPECT_LT(stats.evolution_rate, 90.0);
}

}  // namespace
}  // namespace tgraph::gen
