// Property tests for the shuffle primitive itself (internal_shuffle):
// seeded key distributions — uniform, Zipf, all-one-key, empty — pushed
// through PlanShuffle/ShuffleWithPlan directly, checking the invariants
// the wide operators rely on:
//
//  * multiset preservation: every record comes out exactly once (kSpread,
//    kIsolate) or exactly `splits` times (kReplicate, hot keys only);
//  * the partition invariant: a non-hot key's records land in
//    `hash % num_base`, a hot key's records stay inside its dedicated
//    sub-partition range — so each key is visible to exactly one reduce
//    group after the operator's merge step;
//  * metrics ground truth: `records_shuffled`, `dataflow.shuffle.records`
//    and `.bytes` match hand-computed totals, and the pre-rebalance
//    partition-size histogram accounts for every routed record.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dataflow/dataset.h"
#include "dataflow/hashing.h"
#include "dataflow/shuffle.h"
#include "obs/metrics.h"

namespace tgraph::dataflow::internal_shuffle {
namespace {

using KV = std::pair<int64_t, int64_t>;

constexpr auto kKeyOf = [](const KV& kv) -> const int64_t& {
  return kv.first;
};

/// Chunks `data` into `parts` input partitions (round-robin, so every
/// partition sees every key class).
Partitions<KV> Chunk(const std::vector<KV>& data, size_t parts) {
  Partitions<KV> out(parts);
  for (size_t i = 0; i < data.size(); ++i) {
    out[i % parts].push_back(data[i]);
  }
  return out;
}

std::vector<KV> Flattened(const Partitions<KV>& parts) {
  std::vector<KV> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  return all;
}

enum class Distribution { kUniform, kZipf, kAllOneKey };

std::vector<KV> MakeRecords(Distribution distribution, int64_t n,
                            uint64_t seed, int64_t key_space = 500) {
  Rng rng(seed);
  std::vector<KV> data;
  data.reserve(static_cast<size_t>(n));
  std::vector<double> cdf;
  double cumulative = 0;
  if (distribution == Distribution::kZipf) {
    cdf.resize(static_cast<size_t>(key_space));
    for (int64_t r = 0; r < key_space; ++r) {
      cumulative += 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
      cdf[static_cast<size_t>(r)] = cumulative;
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    int64_t key = 0;
    switch (distribution) {
      case Distribution::kUniform:
        key = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(key_space)));
        break;
      case Distribution::kZipf: {
        auto it = std::lower_bound(cdf.begin(), cdf.end(),
                                   rng.NextDouble() * cumulative);
        key = it == cdf.end() ? key_space - 1 : it - cdf.begin();
        break;
      }
      case Distribution::kAllOneKey:
        key = 7;
        break;
    }
    data.emplace_back(key, i);
  }
  return data;
}

ExecutionContext MakeContext(double skew_threshold = 2.0, int max_splits = 4,
                             int64_t min_records = 0) {
  return ExecutionContext(
      ContextOptions{.num_workers = 2,
                     .default_parallelism = 8,
                     .shuffle = ShuffleOptions{.enable = true,
                                               .skew_threshold = skew_threshold,
                                               .max_splits = max_splits,
                                               .min_records = min_records}});
}

/// Asserts the partition invariant of `plan` over shuffled output:
/// every key's records confined to the partitions its routing allows.
void ExpectPartitionInvariant(const ShufflePlan& plan,
                              const Partitions<KV>& shuffled,
                              HotRouting routing) {
  for (size_t p = 0; p < shuffled.size(); ++p) {
    for (const KV& kv : shuffled[p]) {
      uint64_t h = DfHash(kv.first);
      const HotKey* hk = plan.Find(h);
      if (hk == nullptr) {
        EXPECT_EQ(p, h % plan.num_base)
            << "non-hot key " << kv.first << " misrouted to partition " << p;
      } else if (routing == HotRouting::kIsolate) {
        EXPECT_EQ(p, hk->first_sub)
            << "isolated key " << kv.first << " left its partition";
      } else {
        EXPECT_GE(p, hk->first_sub) << "hot key " << kv.first;
        EXPECT_LT(p, hk->first_sub + static_cast<size_t>(hk->splits))
            << "hot key " << kv.first << " outside its sub-partition range";
      }
    }
  }
}

class ShuffleDistributions
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(ShuffleDistributions, MultisetAndPartitionInvariants) {
  ExecutionContext ctx = MakeContext();
  std::vector<KV> data = MakeRecords(GetParam(), 10000, 21);
  Partitions<KV> input = Chunk(data, 4);

  for (HotRouting routing : {HotRouting::kSpread, HotRouting::kIsolate}) {
    ShufflePlan plan =
        PlanShuffle(&ctx, input, 8, kKeyOf,
                    /*allow_spread=*/routing == HotRouting::kSpread);
    Partitions<KV> shuffled =
        ShuffleWithPlan(&ctx, input, plan, kKeyOf, routing);
    ASSERT_EQ(shuffled.size(), plan.total_partitions());

    std::vector<KV> out = Flattened(shuffled);
    std::vector<KV> expected = data;
    std::sort(out.begin(), out.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(out, expected) << "shuffle lost or duplicated records";

    ExpectPartitionInvariant(plan, shuffled, routing);
  }
}

TEST_P(ShuffleDistributions, MetricsMatchGroundTruth) {
  ExecutionContext ctx = MakeContext();
  std::vector<KV> data = MakeRecords(GetParam(), 8000, 22);
  Partitions<KV> input = Chunk(data, 4);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  int64_t before_legacy = ctx.metrics().Snap().records_shuffled;

  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  Partitions<KV> shuffled =
      ShuffleWithPlan(&ctx, input, plan, kKeyOf, HotRouting::kSpread);

  int64_t total = static_cast<int64_t>(data.size());
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  // kSpread routes every record exactly once, so all three record counts
  // and the byte volume are exact.
  EXPECT_EQ(ctx.metrics().Snap().records_shuffled - before_legacy, total);
  EXPECT_EQ(delta.counters.at(obs::metric_names::kShuffleRecords), total);
  EXPECT_EQ(delta.counters.at(obs::metric_names::kShuffleBytes),
            total * static_cast<int64_t>(sizeof(KV)));
  // The pre-rebalance histogram accounts for every routed record.
  const obs::HistogramSnapshot& skew =
      delta.histograms.at(obs::metric_names::kShufflePartitionSize);
  EXPECT_EQ(skew.sum, total);
  int64_t out_total = 0;
  for (const auto& p : shuffled) out_total += static_cast<int64_t>(p.size());
  EXPECT_EQ(out_total, total);
}

INSTANTIATE_TEST_SUITE_P(Distributions, ShuffleDistributions,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kZipf,
                                           Distribution::kAllOneKey),
                         [](const auto& info) {
                           switch (info.param) {
                             case Distribution::kUniform: return "uniform";
                             case Distribution::kZipf: return "zipf";
                             case Distribution::kAllOneKey: return "all_one_key";
                           }
                           return "unknown";
                         });

TEST(ShuffleProperty, EmptyInput) {
  ExecutionContext ctx = MakeContext();
  Partitions<KV> input(4);  // four empty partitions
  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  EXPECT_FALSE(plan.rebalanced());
  Partitions<KV> shuffled =
      ShuffleWithPlan(&ctx, input, plan, kKeyOf, HotRouting::kSpread);
  ASSERT_EQ(shuffled.size(), 8u);
  for (const auto& p : shuffled) EXPECT_TRUE(p.empty());
}

TEST(ShuffleProperty, AllOneKeyGetsSplitEvenly) {
  ExecutionContext ctx = MakeContext(/*skew_threshold=*/2.0, /*max_splits=*/4);
  std::vector<KV> data = MakeRecords(Distribution::kAllOneKey, 10000, 23);
  Partitions<KV> input = Chunk(data, 4);

  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  ASSERT_TRUE(plan.rebalanced());
  ASSERT_EQ(plan.hot.size(), 1u);
  EXPECT_EQ(plan.hot[0].splits, 4);
  // The sketch sees only this key, so its estimate is exact.
  EXPECT_EQ(plan.hot[0].estimated_count, 10000);

  Partitions<KV> shuffled =
      ShuffleWithPlan(&ctx, input, plan, kKeyOf, HotRouting::kSpread);
  // Base partitions are empty; the four sub-partitions share the load
  // within one record per input partition of each other.
  size_t max_size = 0;
  for (size_t p = 0; p < plan.num_base; ++p) EXPECT_TRUE(shuffled[p].empty());
  for (size_t p = plan.num_base; p < shuffled.size(); ++p) {
    max_size = std::max(max_size, shuffled[p].size());
    EXPECT_GT(shuffled[p].size(), 0u);
  }
  EXPECT_LE(max_size, 10000 / 4 + input.size());
}

TEST(ShuffleProperty, ReplicateCopiesHotKeysToEverySub) {
  ExecutionContext ctx = MakeContext();
  // Mixed input: one dominant key plus a uniform tail.
  std::vector<KV> data = MakeRecords(Distribution::kZipf, 6000, 24, 40);
  Partitions<KV> input = Chunk(data, 4);

  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  ASSERT_TRUE(plan.rebalanced());
  Partitions<KV> shuffled =
      ShuffleWithPlan(&ctx, input, plan, kKeyOf, HotRouting::kReplicate);

  // Hand-count expected replication: hot records appear `splits` times.
  std::map<KV, int64_t> expected_copies;
  int64_t expected_total = 0;
  for (const KV& kv : data) {
    const HotKey* hk = plan.Find(DfHash(kv.first));
    int64_t copies = hk == nullptr ? 1 : hk->splits;
    expected_copies[kv] += copies;
    expected_total += copies;
  }
  EXPECT_GT(expected_total, static_cast<int64_t>(data.size()));

  std::map<KV, int64_t> actual_copies;
  int64_t actual_total = 0;
  for (const auto& p : shuffled) {
    for (const KV& kv : p) {
      ++actual_copies[kv];
      ++actual_total;
    }
  }
  EXPECT_EQ(actual_copies, expected_copies);
  EXPECT_EQ(actual_total, expected_total);

  // The shuffle volume counters include the replicas.
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at(obs::metric_names::kShuffleRecords),
            expected_total);
  EXPECT_EQ(delta.counters.at(obs::metric_names::kShuffleBytes),
            expected_total * static_cast<int64_t>(sizeof(KV)));
}

TEST(ShuffleProperty, DisabledRebalancingNeverPlansHotKeys) {
  ExecutionContext ctx = MakeContext();
  ctx.set_shuffle_options(ShuffleOptions{.enable = false});
  std::vector<KV> data = MakeRecords(Distribution::kAllOneKey, 10000, 25);
  Partitions<KV> input = Chunk(data, 4);
  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  EXPECT_FALSE(plan.rebalanced());
  Partitions<KV> shuffled =
      ShuffleWithPlan(&ctx, input, plan, kKeyOf, HotRouting::kSpread);
  ASSERT_EQ(shuffled.size(), 8u);
  // Legacy behavior: the single key's hash picks exactly one partition.
  size_t non_empty = 0;
  for (const auto& p : shuffled) non_empty += p.empty() ? 0 : 1;
  EXPECT_EQ(non_empty, 1u);
}

TEST(ShuffleProperty, MinRecordsGateSkipsSmallShuffles) {
  ExecutionContext ctx =
      MakeContext(/*skew_threshold=*/2.0, /*max_splits=*/4,
                  /*min_records=*/100000);
  std::vector<KV> data = MakeRecords(Distribution::kAllOneKey, 10000, 26);
  Partitions<KV> input = Chunk(data, 4);
  ShufflePlan plan = PlanShuffle(&ctx, input, 8, kKeyOf, /*allow_spread=*/true);
  EXPECT_FALSE(plan.rebalanced());
}

/// Fuzz sweep: random sizes, key spaces, fan-outs, thresholds, and
/// routings; the core invariants must hold for every combination.
TEST(ShuffleProperty, FuzzInvariants) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 977);
    int64_t n = static_cast<int64_t>(rng.NextBounded(4000));
    int64_t key_space = 1 + static_cast<int64_t>(rng.NextBounded(200));
    size_t num_base = 1 + rng.NextBounded(12);
    size_t num_input = 1 + rng.NextBounded(6);
    double threshold = 1.5 + rng.NextDouble() * 5.0;
    int max_splits = 2 + static_cast<int>(rng.NextBounded(6));
    Distribution distribution = static_cast<Distribution>(rng.NextBounded(3));
    HotRouting routing =
        rng.NextBounded(2) == 0 ? HotRouting::kSpread : HotRouting::kIsolate;

    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                 " keys=" + std::to_string(key_space) +
                 " base=" + std::to_string(num_base) +
                 " routing=" + (routing == HotRouting::kSpread ? "spread"
                                                               : "isolate"));

    ExecutionContext ctx = MakeContext(threshold, max_splits);
    std::vector<KV> data = MakeRecords(distribution, n, seed, key_space);
    Partitions<KV> input = Chunk(data, num_input);

    ShufflePlan plan =
        PlanShuffle(&ctx, input, num_base, kKeyOf,
                    /*allow_spread=*/routing == HotRouting::kSpread);
    Partitions<KV> shuffled =
        ShuffleWithPlan(&ctx, input, plan, kKeyOf, routing);
    ASSERT_EQ(shuffled.size(), plan.total_partitions());

    std::vector<KV> out = Flattened(shuffled);
    std::vector<KV> expected = data;
    std::sort(out.begin(), out.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(out, expected);
    ExpectPartitionInvariant(plan, shuffled, routing);
  }
}

}  // namespace
}  // namespace tgraph::dataflow::internal_shuffle
