#include "tgraph/ve.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tgraph/validate.h"

namespace tgraph {
namespace {

using ::tgraph::testing::Ctx;
using ::tgraph::testing::Figure1;

TEST(VeGraphTest, CreateDerivesLifetime) {
  VeGraph g = Figure1();
  EXPECT_EQ(g.lifetime(), Interval(1, 9));
  EXPECT_EQ(g.NumVertexRecords(), 4);
  EXPECT_EQ(g.NumEdgeRecords(), 2);
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
}

TEST(VeGraphTest, CreateRespectsExplicitLifetime) {
  VeGraph g = VeGraph::Create(Ctx(), {}, {}, Interval(0, 100));
  EXPECT_EQ(g.lifetime(), Interval(0, 100));
}

TEST(VeGraphTest, CoalesceMergesValueEquivalentAdjacentStates) {
  std::vector<VeVertex> vertices = {
      {1, {1, 3}, Properties{{"type", "n"}}},
      {1, {3, 6}, Properties{{"type", "n"}}},     // same value, adjacent
      {1, {6, 9}, Properties{{"type", "m"}}},     // value change
      {2, {1, 4}, Properties{{"type", "n"}}},
      {2, {5, 8}, Properties{{"type", "n"}}},     // gap at 4
  };
  VeGraph g = VeGraph::Create(Ctx(), vertices, {});
  VeGraph c = g.Coalesce();
  EXPECT_EQ(c.NumVertexRecords(), 4);
  TG_CHECK_OK(CheckCoalescedVe(c));
}

TEST(VeGraphTest, CoalesceMergesEdgeStates) {
  std::vector<VeVertex> vertices = {{1, {0, 10}, Properties{{"type", "n"}}},
                                    {2, {0, 10}, Properties{{"type", "n"}}}};
  std::vector<VeEdge> edges = {
      {7, 1, 2, {0, 4}, Properties{{"type", "e"}}},
      {7, 1, 2, {4, 9}, Properties{{"type", "e"}}},
  };
  VeGraph g = VeGraph::Create(Ctx(), vertices, edges);
  VeGraph c = g.Coalesce();
  EXPECT_EQ(c.NumEdgeRecords(), 1);
  std::vector<VeEdge> collected = c.edges().Collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].interval, Interval(0, 9));
  EXPECT_EQ(collected[0].src, 1);
  EXPECT_EQ(collected[0].dst, 2);
}

TEST(VeGraphTest, CoalesceIsIdempotent) {
  VeGraph once = Figure1().Coalesce();
  VeGraph twice = once.Coalesce();
  EXPECT_EQ(testing::Canonical(once), testing::Canonical(twice));
}

TEST(VeGraphTest, ChangePoints) {
  std::vector<TimePoint> points = Figure1().ChangePoints();
  EXPECT_EQ(points, (std::vector<TimePoint>{1, 2, 5, 7, 9}));
}

TEST(VeGraphTest, SnapshotAtExtractsState) {
  VeGraph g = Figure1();
  sg::PropertyGraph at3 = g.SnapshotAt(3);
  EXPECT_EQ(at3.NumVertices(), 3);
  EXPECT_EQ(at3.NumEdges(), 1);  // only e1 alive at 3
  sg::PropertyGraph at8 = g.SnapshotAt(8);
  EXPECT_EQ(at8.NumVertices(), 2);  // Ann gone at 7
  EXPECT_EQ(at8.NumEdges(), 1);     // e2
  sg::PropertyGraph at0 = g.SnapshotAt(0);
  EXPECT_EQ(at0.NumVertices(), 0);
}

TEST(VeGraphTest, SnapshotReflectsAttributeState) {
  VeGraph g = Figure1();
  for (const sg::Vertex& v : g.SnapshotAt(3).vertices().Collect()) {
    if (v.vid == 2) {
      EXPECT_FALSE(v.properties.Has("school"));
    }
  }
  for (const sg::Vertex& v : g.SnapshotAt(6).vertices().Collect()) {
    if (v.vid == 2) {
      EXPECT_EQ(v.properties.Get("school")->AsString(), "CMU");
    }
  }
}

TEST(VeGraphTest, PartitionByEntityColocatesStates) {
  VeGraph g = Figure1().PartitionByEntity();
  const auto& parts = g.vertices().MaterializedPartitions();
  // Bob's two states must share a partition.
  int partitions_with_bob = 0;
  for (const auto& part : parts) {
    bool found = false;
    for (const VeVertex& v : part) {
      if (v.vid == 2) found = true;
    }
    if (found) ++partitions_with_bob;
  }
  EXPECT_EQ(partitions_with_bob, 1);
  EXPECT_EQ(g.NumVertexRecords(), 4);
}

}  // namespace
}  // namespace tgraph
