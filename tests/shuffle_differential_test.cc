// Differential correctness harness for skew-aware shuffle rebalancing:
// every wide operator and both zoom operators run twice — rebalancing on
// vs. off — on power-law inputs, and the canonicalized results must be
// identical. This is the proof obligation that lets rebalancing stay on
// by default: the rebalanced shuffle may route records differently, but
// it must never change what an operator computes.
//
// The suite is parameterized over worker counts (1, 2, and the
// TGRAPH_THREADS environment override, which the CI sanitizer matrix
// sets) so the equivalence also holds under real thread interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dataflow/dataset.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

namespace tgraph::dataflow {
namespace {

using KV = std::pair<int64_t, int64_t>;

int EnvThreads() {
  if (const char* env = std::getenv("TGRAPH_THREADS"); env != nullptr) {
    int value = std::atoi(env);
    if (value > 0) return value;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 2;
}

std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2};
  if (int env = EnvThreads();
      std::find(counts.begin(), counts.end(), env) == counts.end()) {
    counts.push_back(env);
  }
  return counts;
}

/// Aggressive rebalancing: no minimum size, low threshold, so the small
/// test inputs actually trigger hot-key splitting.
ShuffleOptions Rebalancing() {
  return ShuffleOptions{.enable = true,
                        .skew_threshold = 2.0,
                        .max_splits = 4,
                        .min_records = 0};
}

ShuffleOptions Legacy() { return ShuffleOptions{.enable = false}; }

/// Zipf-keyed records with a super-hot key 0: key frequency of rank r is
/// proportional to 1/(r+1)^1.2, plus `hub_share` of all records forced to
/// key 0. Values enumerate positions so every record is unique.
std::vector<KV> PowerLawRecords(int64_t n, uint64_t seed,
                                double hub_share = 0.2,
                                int64_t key_space = 200) {
  Rng rng(seed);
  std::vector<double> cdf(static_cast<size_t>(key_space));
  double cumulative = 0;
  for (int64_t r = 0; r < key_space; ++r) {
    cumulative += 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
    cdf[static_cast<size_t>(r)] = cumulative;
  }
  std::vector<KV> data;
  data.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t key;
    if (rng.NextDouble() < hub_share) {
      key = 0;
    } else {
      auto it = std::lower_bound(cdf.begin(), cdf.end(),
                                 rng.NextDouble() * cumulative);
      key = it == cdf.end() ? key_space - 1 : it - cdf.begin();
    }
    data.emplace_back(key, i);
  }
  return data;
}

template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Runs `pipeline` against a context with the given shuffle options and
/// worker count, returning its (already canonicalized) result.
template <typename Fn>
auto RunWith(int workers, const ShuffleOptions& options, const Fn& pipeline) {
  ExecutionContext ctx(ContextOptions{
      .num_workers = workers, .default_parallelism = 8, .shuffle = options});
  return pipeline(&ctx);
}

class ShuffleDifferential : public ::testing::TestWithParam<int> {};

// ---------------------------------------------------------------------------
// Wide operators on power-law keyed records.
// ---------------------------------------------------------------------------

TEST_P(ShuffleDifferential, GroupByKey) {
  std::vector<KV> data = PowerLawRecords(20000, 7);
  auto pipeline = [&](ExecutionContext* ctx) {
    auto grouped =
        Dataset<KV>::FromVector(ctx, data).GroupByKey().Collect();
    // Canonicalize: sort values within groups, then groups.
    for (auto& [key, values] : grouped) std::sort(values.begin(), values.end());
    std::sort(grouped.begin(), grouped.end());
    return grouped;
  };
  auto rebalanced = RunWith(GetParam(), Rebalancing(), pipeline);
  auto legacy = RunWith(GetParam(), Legacy(), pipeline);
  EXPECT_EQ(rebalanced, legacy);
  EXPECT_FALSE(rebalanced.empty());
}

TEST_P(ShuffleDifferential, ReduceByKey) {
  std::vector<KV> data = PowerLawRecords(20000, 11);
  auto pipeline = [&](ExecutionContext* ctx) {
    return Sorted(Dataset<KV>::FromVector(ctx, data)
                      .ReduceByKey([](const int64_t& a, const int64_t& b) {
                        return a + b;
                      })
                      .Collect());
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

TEST_P(ShuffleDifferential, AggregateByKey) {
  std::vector<KV> data = PowerLawRecords(15000, 13);
  auto pipeline = [&](ExecutionContext* ctx) {
    auto agg =
        Dataset<KV>::FromVector(ctx, data)
            .AggregateByKey<std::vector<int64_t>>(
                {},
                [](std::vector<int64_t>* acc, const int64_t& v) {
                  acc->push_back(v);
                },
                [](std::vector<int64_t>* acc, std::vector<int64_t>&& other) {
                  acc->insert(acc->end(), other.begin(), other.end());
                })
            .Collect();
    for (auto& [key, values] : agg) std::sort(values.begin(), values.end());
    std::sort(agg.begin(), agg.end());
    return agg;
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

TEST_P(ShuffleDifferential, CountByKey) {
  std::vector<KV> data = PowerLawRecords(20000, 17);
  auto pipeline = [&](ExecutionContext* ctx) {
    return Sorted(Dataset<KV>::FromVector(ctx, data).CountByKey().Collect());
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

TEST_P(ShuffleDifferential, Distinct) {
  // Many duplicates of the hot records: the input repeats a small record
  // space so the hot record is also the most duplicated one.
  std::vector<KV> skewed = PowerLawRecords(20000, 19, 0.3, 50);
  for (KV& kv : skewed) kv.second %= 7;  // collapse values: real duplicates
  auto pipeline = [&](ExecutionContext* ctx) {
    return Sorted(Dataset<KV>::FromVector(ctx, skewed).Distinct().Collect());
  };
  auto rebalanced = RunWith(GetParam(), Rebalancing(), pipeline);
  auto legacy = RunWith(GetParam(), Legacy(), pipeline);
  EXPECT_EQ(rebalanced, legacy);
  // Sanity: duplicates actually existed and were removed.
  EXPECT_LT(rebalanced.size(), skewed.size());
}

TEST_P(ShuffleDifferential, Join) {
  std::vector<KV> left = PowerLawRecords(12000, 23);
  std::vector<KV> right = PowerLawRecords(300, 29, 0.05);
  auto pipeline = [&](ExecutionContext* ctx) {
    auto l = Dataset<KV>::FromVector(ctx, left);
    auto r = Dataset<KV>::FromVector(ctx, right);
    return Sorted(l.Join<int64_t>(r).Collect());
  };
  auto rebalanced = RunWith(GetParam(), Rebalancing(), pipeline);
  auto legacy = RunWith(GetParam(), Legacy(), pipeline);
  EXPECT_EQ(rebalanced, legacy);
  EXPECT_FALSE(rebalanced.empty());
}

TEST_P(ShuffleDifferential, SemiJoin) {
  std::vector<KV> left = PowerLawRecords(12000, 31);
  std::vector<KV> right = {{0, 0}, {3, 0}, {17, 0}, {99, 0}};
  auto pipeline = [&](ExecutionContext* ctx) {
    auto l = Dataset<KV>::FromVector(ctx, left);
    auto r = Dataset<KV>::FromVector(ctx, right);
    return Sorted(l.SemiJoin<int64_t>(r).Collect());
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

TEST_P(ShuffleDifferential, CoGroup) {
  std::vector<KV> left = PowerLawRecords(10000, 37);
  std::vector<KV> right = PowerLawRecords(10000, 41);
  auto pipeline = [&](ExecutionContext* ctx) {
    auto l = Dataset<KV>::FromVector(ctx, left);
    auto r = Dataset<KV>::FromVector(ctx, right);
    auto cogrouped = l.CoGroup<int64_t>(r).Collect();
    for (auto& [key, sides] : cogrouped) {
      std::sort(sides.first.begin(), sides.first.end());
      std::sort(sides.second.begin(), sides.second.end());
    }
    std::sort(cogrouped.begin(), cogrouped.end());
    return cogrouped;
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

TEST_P(ShuffleDifferential, PartitionByKeepsCoLocation) {
  std::vector<KV> data = PowerLawRecords(20000, 43);
  auto pipeline = [&](ExecutionContext* ctx) {
    auto partitioned = Dataset<KV>::FromVector(ctx, data).PartitionBy(
        [](const KV& kv) { return kv.first; });
    // Record the multiset of records and the co-location invariant.
    std::map<int64_t, std::set<size_t>> partitions_of_key;
    const Partitions<KV>& parts = partitioned.MaterializedPartitions();
    for (size_t p = 0; p < parts.size(); ++p) {
      for (const KV& kv : parts[p]) partitions_of_key[kv.first].insert(p);
    }
    for (auto& [key, owners] : partitions_of_key) {
      EXPECT_EQ(owners.size(), 1u) << "key " << key << " split across "
                                   << owners.size() << " partitions";
    }
    return Sorted(partitioned.Collect());
  };
  EXPECT_EQ(RunWith(GetParam(), Rebalancing(), pipeline),
            RunWith(GetParam(), Legacy(), pipeline));
}

// ---------------------------------------------------------------------------
// Zoom operators on a power-law hub graph, across all representations.
// ---------------------------------------------------------------------------

gen::PowerLawConfig HubGraphConfig() {
  gen::PowerLawConfig config;
  config.num_vertices = 400;
  config.num_edges = 6000;
  config.zipf_exponent = 1.2;
  config.hub_fraction = 0.25;
  config.num_snapshots = 8;
  config.num_groups = 5;
  config.seed = 3;
  return config;
}

AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator(
      "cluster", "key",
      {{"members", AggKind::kCount, ""}, {"total", AggKind::kSum, "weight"}});
  spec.edge_type = "clustered";
  return spec;
}

WZoomSpec WindowZoom() {
  WZoomSpec spec{WindowSpec::TimePoints(3), Quantifier::Most(),
                 Quantifier::Exists(), {}, {}};
  spec.vertex_resolve.default_resolver = Resolver::kLast;
  return spec;
}

/// Canonical aZoom^T result for one representation under one context.
std::vector<std::string> AZoomResult(ExecutionContext* ctx,
                                     Representation rep) {
  VeGraph ve = gen::GeneratePowerLaw(ctx, HubGraphConfig());
  TGraph g = TGraph::FromVe(ve, true);
  Result<TGraph> converted = g.As(rep);
  TG_CHECK(converted.ok()) << converted.status();
  Result<TGraph> zoomed = converted->AZoom(GroupZoom());
  TG_CHECK(zoomed.ok()) << zoomed.status();
  return testing::Canonical(*zoomed);
}

std::vector<std::string> WZoomResult(ExecutionContext* ctx,
                                     Representation rep) {
  VeGraph ve = gen::GeneratePowerLaw(ctx, HubGraphConfig());
  TGraph g = TGraph::FromVe(ve, true);
  Result<TGraph> converted = g.As(rep);
  TG_CHECK(converted.ok()) << converted.status();
  Result<TGraph> zoomed = converted->WZoom(WindowZoom());
  TG_CHECK(zoomed.ok()) << zoomed.status();
  if (rep == Representation::kOgc) {
    // OGC keeps topology only; compare presence, not attributes.
    Result<TGraph> as_ve = zoomed->As(Representation::kVe);
    TG_CHECK(as_ve.ok()) << as_ve.status();
    return testing::CanonicalTopology(as_ve->ve());
  }
  return testing::Canonical(*zoomed);
}

TEST_P(ShuffleDifferential, AZoomAllRepresentations) {
  for (Representation rep :
       {Representation::kRg, Representation::kVe, Representation::kOg}) {
    auto rebalanced = RunWith(GetParam(), Rebalancing(), [&](auto* ctx) {
      return AZoomResult(ctx, rep);
    });
    auto legacy = RunWith(GetParam(), Legacy(), [&](auto* ctx) {
      return AZoomResult(ctx, rep);
    });
    EXPECT_EQ(rebalanced, legacy)
        << "aZoom differs on " << RepresentationName(rep);
    EXPECT_FALSE(rebalanced.empty());
  }
}

TEST_P(ShuffleDifferential, WZoomAllRepresentations) {
  for (Representation rep : {Representation::kRg, Representation::kVe,
                             Representation::kOg, Representation::kOgc}) {
    auto rebalanced = RunWith(GetParam(), Rebalancing(), [&](auto* ctx) {
      return WZoomResult(ctx, rep);
    });
    auto legacy = RunWith(GetParam(), Legacy(), [&](auto* ctx) {
      return WZoomResult(ctx, rep);
    });
    EXPECT_EQ(rebalanced, legacy)
        << "wZoom differs on " << RepresentationName(rep);
    EXPECT_FALSE(rebalanced.empty());
  }
}

/// The harness must actually exercise the rebalancer — otherwise the
/// suite silently degenerates into legacy-vs-legacy.
TEST_P(ShuffleDifferential, RebalancerActuallyFires) {
  std::vector<KV> data = PowerLawRecords(20000, 7);
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  RunWith(GetParam(), Rebalancing(), [&](ExecutionContext* ctx) {
    return Dataset<KV>::FromVector(ctx, data).GroupByKey().Count();
  });
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters[obs::metric_names::kShuffleRebalanced], 1);
  EXPECT_GE(delta.counters[obs::metric_names::kShuffleHotKeys], 1);
}

INSTANTIATE_TEST_SUITE_P(Workers, ShuffleDifferential,
                         ::testing::ValuesIn(ThreadCounts()),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "workers_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tgraph::dataflow
