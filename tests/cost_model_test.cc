// Unit tests for the tgraph::opt statistics store, cost model, and plan
// enumerator: synthetic-statistics plan picks, the no-stats fallback to
// the rule rewrites, cost monotonicity in observed means, and profile
// persistence.

#include "opt/cost_model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "opt/planner.h"
#include "tgraph/pipeline.h"
#include "tgraph/stats.h"

namespace tgraph {
namespace {

using opt::CostModel;
using opt::Observation;
using opt::OpKind;
using opt::PlanContext;
using opt::Stats;

AZoomSpec GroupZoom() {
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator("cluster", "group", {});
  return spec;
}

WZoomSpec ExistsWindows(int64_t size) {
  return WZoomSpec{WindowSpec::TimePoints(size), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
}

Observation Obs(int64_t wall_us, int64_t rows_in, int64_t rows_out,
                int64_t shuffle_bytes = 0) {
  Observation o;
  o.wall_us = wall_us;
  o.shuffle_bytes = shuffle_bytes;
  o.rows_in = rows_in;
  o.rows_out = rows_out;
  return o;
}

PlanContext VeContext(double rows) {
  PlanContext context;
  context.representation = Representation::kVe;
  context.rows = rows;
  context.snapshots = 1;
  return context;
}

bool StartsWithConvertTo(const Pipeline& plan, Representation target) {
  if (plan.steps().empty()) return false;
  const auto* convert = std::get_if<Pipeline::ConvertStep>(&plan.steps()[0]);
  return convert != nullptr && convert->target == target;
}

// ---------------------------------------------------------------------------
// Statistics store.

TEST(StatsTest, AggregatesObservationsPerCell) {
  Stats stats;
  EXPECT_TRUE(stats.empty());
  stats.Observe(OpKind::kAZoom, Representation::kVe, Obs(100, 10, 7));
  stats.Observe(OpKind::kAZoom, Representation::kVe, Obs(300, 30, 14));
  stats.Observe(OpKind::kWZoom, Representation::kOg, Obs(50, 5, 5));
  EXPECT_EQ(stats.TotalObservations(), 3);

  auto cell = stats.Get(OpKind::kAZoom, Representation::kVe);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->observations, 2);
  EXPECT_EQ(cell->wall_us, 400);
  EXPECT_EQ(cell->rows_in, 40);
  EXPECT_DOUBLE_EQ(cell->MeanWallUsPerRow(), 10.0);
  EXPECT_DOUBLE_EQ(cell->Selectivity(), 21.0 / 40.0);
  EXPECT_FALSE(stats.Get(OpKind::kSlice, Representation::kRg).has_value());
}

TEST(StatsTest, SerializeParseRoundTrip) {
  Stats stats;
  stats.Observe(OpKind::kAZoom, Representation::kVe, Obs(100, 10, 7, 2048));
  stats.Observe(OpKind::kConvert, Representation::kRg, Obs(9, 3, 3));
  Result<Stats> parsed = Stats::Parse(stats.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Serialize(), stats.Serialize());
  auto cell = parsed->Get(OpKind::kAZoom, Representation::kVe);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->shuffle_bytes, 2048);
}

TEST(StatsTest, ParseRejectsMalformedProfiles) {
  EXPECT_FALSE(Stats::Parse("not a profile\n").ok());
  EXPECT_FALSE(
      Stats::Parse("tgraph-stats v1\nop=warp rep=VE n=1\n").ok());
  EXPECT_FALSE(
      Stats::Parse("tgraph-stats v1\nop=azoom rep=XX n=1\n").ok());
  EXPECT_FALSE(
      Stats::Parse("tgraph-stats v1\nop=azoom rep=VE n=banana\n").ok());
  EXPECT_FALSE(Stats::Parse("tgraph-stats v1\nop=azoom rep=VE\n").ok());
}

TEST(StatsTest, FilePersistenceRoundTripAndColdStart) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "cost_model_test_stats_profile.txt")
                         .string();
  std::remove(path.c_str());
  Result<Stats> missing = Stats::LoadFromFile(path);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());

  Stats stats;
  stats.Observe(OpKind::kWZoom, Representation::kOg, Obs(640, 64, 32));
  ASSERT_TRUE(stats.SaveToFile(path).ok());
  Result<Stats> loaded = Stats::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Serialize(), stats.Serialize());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fallback behavior.

TEST(CostPlannerTest, EmptyStatsFallsBackToRuleRewrites) {
  Pipeline pipeline;
  pipeline.AZoom(GroupZoom()).Coalesce().WZoom(ExistsWindows(3)).Slice(
      Interval(0, 10));
  Pipeline::Hints hints;
  Stats empty;
  Pipeline cost_based =
      pipeline.OptimizedWithCost(empty, hints, VeContext(100));
  EXPECT_EQ(cost_based.Explain(), pipeline.Optimized(hints).Explain());
}

// ---------------------------------------------------------------------------
// Synthetic-statistics plan selection.

TEST(CostPlannerTest, ExpensiveVeZoomBuysConversionToOg) {
  // aZoom on VE observed three orders of magnitude slower than on OG,
  // with cheap conversions: the planner should pay for an up-front
  // OG conversion.
  Stats stats;
  stats.Observe(OpKind::kAZoom, Representation::kVe,
                Obs(1'000'000, 1'000, 700));
  stats.Observe(OpKind::kAZoom, Representation::kOg, Obs(100, 1'000, 700));
  stats.Observe(OpKind::kConvert, Representation::kVe, Obs(10, 1'000, 700));

  Pipeline pipeline;
  pipeline.AZoom(GroupZoom());
  Pipeline plan =
      pipeline.OptimizedWithCost(stats, Pipeline::Hints{}, VeContext(1'000));
  EXPECT_TRUE(StartsWithConvertTo(plan, Representation::kOg))
      << plan.Explain();
}

TEST(CostPlannerTest, ShuffleHeavyVeObservationsSteerAwayFromVe) {
  // Identical wall time everywhere, but VE shuffles heavily: the byte
  // cost alone must tip the choice off VE.
  Stats stats;
  stats.Observe(OpKind::kAZoom, Representation::kVe,
                Obs(100, 1'000, 700, /*shuffle_bytes=*/100'000'000));
  stats.Observe(OpKind::kAZoom, Representation::kOg, Obs(100, 1'000, 700));
  stats.Observe(OpKind::kConvert, Representation::kVe, Obs(10, 1'000, 700));

  Pipeline pipeline;
  pipeline.AZoom(GroupZoom());
  Pipeline plan =
      pipeline.OptimizedWithCost(stats, Pipeline::Hints{}, VeContext(1'000));
  EXPECT_TRUE(StartsWithConvertTo(plan, Representation::kOg))
      << plan.Explain();
}

TEST(CostPlannerTest, CheapVeZoomKeepsTheRulePlan) {
  // With VE observed cheap, a conversion detour cannot win; the choice
  // must coincide with the rule plan (no inserted conversions).
  Stats stats;
  stats.Observe(OpKind::kAZoom, Representation::kVe, Obs(100, 1'000, 700));
  stats.Observe(OpKind::kAZoom, Representation::kOg, Obs(90, 1'000, 700));
  stats.Observe(OpKind::kConvert, Representation::kVe,
                Obs(1'000'000, 1'000, 700));

  Pipeline pipeline;
  pipeline.AZoom(GroupZoom());
  Pipeline plan =
      pipeline.OptimizedWithCost(stats, Pipeline::Hints{}, VeContext(1'000));
  EXPECT_EQ(plan.Explain(), pipeline.Optimized(Pipeline::Hints{}).Explain());
}

// ---------------------------------------------------------------------------
// Monotonicity: inflating a representation's observed cost never makes
// the planner more likely to choose it, and never lowers a plan's price.

TEST(CostPlannerTest, MoreObservedCostNeverMakesARepresentationPreferred) {
  Pipeline pipeline;
  pipeline.AZoom(GroupZoom());
  const PlanContext context = VeContext(1'000);

  Pipeline og_plan;
  og_plan.Convert(Representation::kOg).AZoom(GroupZoom()).Convert(
      Representation::kVe);

  double previous_price = 0.0;
  bool og_was_rejected = false;
  for (int64_t wall_us : {100, 10'000, 1'000'000, 100'000'000}) {
    Stats stats;
    stats.Observe(OpKind::kAZoom, Representation::kOg,
                  Obs(wall_us, 1'000, 700));
    stats.Observe(OpKind::kAZoom, Representation::kVe,
                  Obs(10'000, 1'000, 700));
    stats.Observe(OpKind::kConvert, Representation::kVe, Obs(10, 1'000, 700));

    const double price = CostModel(stats).PricePipeline(og_plan, context);
    EXPECT_GE(price, previous_price)
        << "price of the OG plan fell as OG observations got slower";
    previous_price = price;

    const bool chose_og = StartsWithConvertTo(
        pipeline.OptimizedWithCost(stats, Pipeline::Hints{}, context),
        Representation::kOg);
    if (og_was_rejected) {
      EXPECT_FALSE(chose_og)
          << "planner re-chose OG after rejecting it at a lower observed "
             "cost (wall_us="
          << wall_us << ")";
    }
    og_was_rejected = og_was_rejected || !chose_og;
  }
  EXPECT_TRUE(og_was_rejected)
      << "inflating OG cost by 6 orders of magnitude never made the "
         "planner drop it";
}

// ---------------------------------------------------------------------------
// Enumerator shape.

TEST(CostPlannerTest, EnumeratorPutsRulePlanFirstAndDeduplicates) {
  Pipeline pipeline;
  pipeline.AZoom(GroupZoom()).Slice(Interval(0, 10));
  Pipeline::Hints hints;
  std::vector<Pipeline> candidates =
      opt::EnumerateCandidates(pipeline, hints, VeContext(100));
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].Explain(), pipeline.Optimized(hints).Explain());
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_NE(candidates[i].Explain(), candidates[j].Explain());
    }
  }
}

TEST(CostPlannerTest, EnumeratorNeverInsertsOgcConversions) {
  Pipeline pipeline;
  pipeline.AZoom(GroupZoom()).WZoom(ExistsWindows(3));
  for (const Pipeline& candidate :
       opt::EnumerateCandidates(pipeline, Pipeline::Hints{}, VeContext(100))) {
    for (const Pipeline::Step& step : candidate.steps()) {
      if (const auto* convert = std::get_if<Pipeline::ConvertStep>(&step)) {
        EXPECT_NE(convert->target, Representation::kOgc)
            << candidate.Explain();
      }
    }
  }
}

TEST(CostPlannerTest, EnumeratorInsertsNothingForOgcInput) {
  // On an OGC input, converting before an operator changes semantics
  // (aZoom errors on OGC, runs after a conversion), so the enumerator
  // must leave conversions exactly as the user wrote them.
  Pipeline pipeline;
  pipeline.Convert(Representation::kVe).AZoom(GroupZoom()).WZoom(
      ExistsWindows(3));
  PlanContext context;
  context.representation = Representation::kOgc;
  context.rows = 100;
  for (const Pipeline& candidate :
       opt::EnumerateCandidates(pipeline, Pipeline::Hints{}, context)) {
    int converts = 0;
    for (const Pipeline::Step& step : candidate.steps()) {
      if (std::holds_alternative<Pipeline::ConvertStep>(step)) ++converts;
    }
    EXPECT_EQ(converts, 1) << candidate.Explain();
  }
}

TEST(CostPlannerTest, EnumeratorNeverReordersForallWindows) {
  // The negative of the Section 5.3 reorder: under all/all
  // quantification the swap is illegal, so no candidate may have the
  // aZoom ahead of the wZoom — even with the stable-attributes hint set.
  Pipeline pipeline;
  pipeline
      .WZoom(WZoomSpec{WindowSpec::TimePoints(4), Quantifier::All(),
                       Quantifier::All(), {}, {}})
      .AZoom(GroupZoom());
  Pipeline::Hints stable;
  stable.attributes_stable = true;
  for (const Pipeline& candidate :
       opt::EnumerateCandidates(pipeline, stable, VeContext(100))) {
    size_t wzoom_at = 0, azoom_at = 0;
    for (size_t i = 0; i < candidate.steps().size(); ++i) {
      if (std::holds_alternative<Pipeline::WZoomStep>(candidate.steps()[i])) {
        wzoom_at = i;
      }
      if (std::holds_alternative<Pipeline::AZoomStep>(candidate.steps()[i])) {
        azoom_at = i;
      }
    }
    EXPECT_LT(wzoom_at, azoom_at) << candidate.Explain();
  }
}

TEST(CostPlannerTest, ZoomReorderSafeRequiresExistsExists) {
  auto spec = [](Quantifier nodes, Quantifier edges) {
    return WZoomSpec{WindowSpec::TimePoints(3), nodes, edges, {}, {}};
  };
  EXPECT_TRUE(Pipeline::ZoomReorderSafe(
      spec(Quantifier::Exists(), Quantifier::Exists())));
  EXPECT_FALSE(
      Pipeline::ZoomReorderSafe(spec(Quantifier::All(), Quantifier::All())));
  EXPECT_FALSE(
      Pipeline::ZoomReorderSafe(spec(Quantifier::Most(), Quantifier::Most())));
  EXPECT_FALSE(Pipeline::ZoomReorderSafe(
      spec(Quantifier::AtLeast(0.25), Quantifier::Exists())));
  EXPECT_FALSE(Pipeline::ZoomReorderSafe(
      spec(Quantifier::Exists(), Quantifier::All())));
}

}  // namespace
}  // namespace tgraph
