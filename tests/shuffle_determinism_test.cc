// Thread-count determinism: the rebalanced shuffle's routing must be a
// pure function of (input partitioning, record order) — never of the
// thread schedule. These suites run the same pipelines under 1 worker,
// 2 workers, and the TGRAPH_THREADS environment override (the CI
// sanitizer matrix sets 1 and 4), with a fixed default_parallelism, and
// require bit-identical outputs. Run under TSan this also shakes out
// data races in the parallel bucketing/concat stages.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dataflow/dataset.h"
#include "gen/generators.h"
#include "tests/test_util.h"
#include "tgraph/tgraph.h"

namespace tgraph::dataflow {
namespace {

using KV = std::pair<int64_t, int64_t>;

int EnvThreads() {
  if (const char* env = std::getenv("TGRAPH_THREADS"); env != nullptr) {
    int value = std::atoi(env);
    if (value > 0) return value;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

/// Worker counts under test: serial, minimal parallelism, and the
/// CI-controlled count (hardware concurrency by default).
std::vector<int> WorkerCounts() {
  std::vector<int> counts = {1, 2};
  if (int env = EnvThreads();
      std::find(counts.begin(), counts.end(), env) == counts.end()) {
    counts.push_back(env);
  }
  return counts;
}

ExecutionContext MakeContext(int workers, bool rebalance) {
  ShuffleOptions shuffle;
  if (rebalance) {
    shuffle = ShuffleOptions{.enable = true,
                             .skew_threshold = 2.0,
                             .max_splits = 4,
                             .min_records = 0};
  } else {
    shuffle.enable = false;
  }
  return ExecutionContext(ContextOptions{
      .num_workers = workers, .default_parallelism = 8, .shuffle = shuffle});
}

/// Skewed records: ~30% of keys are 0, the rest cycle a small key space.
std::vector<KV> SkewedRecords(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KV> data;
  data.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t key = rng.NextDouble() < 0.3
                      ? 0
                      : static_cast<int64_t>(rng.NextBounded(97));
    data.emplace_back(key, i);
  }
  return data;
}

/// Runs `pipeline` once per worker count (rebalancing on) and asserts
/// every run produces the exact same output as the single-worker run —
/// including record order, which the shuffle contract pins down.
template <typename Fn>
void ExpectDeterministicAcrossWorkers(const Fn& pipeline) {
  std::vector<int> counts = WorkerCounts();
  ExecutionContext baseline_ctx = MakeContext(counts[0], /*rebalance=*/true);
  auto baseline = pipeline(&baseline_ctx);
  ASSERT_FALSE(baseline.empty());
  for (size_t i = 1; i < counts.size(); ++i) {
    ExecutionContext ctx = MakeContext(counts[i], /*rebalance=*/true);
    auto result = pipeline(&ctx);
    EXPECT_EQ(result, baseline)
        << "output differs between " << counts[0] << " and " << counts[i]
        << " workers";
  }
}

TEST(ShuffleDeterminism, GroupByKeyExactOutput) {
  std::vector<KV> data = SkewedRecords(20000, 5);
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    // No canonicalization: partition order, group order, and value order
    // must all be schedule-independent.
    return Dataset<KV>::FromVector(ctx, data).GroupByKey().Collect();
  });
}

TEST(ShuffleDeterminism, ReduceByKeyExactOutput) {
  std::vector<KV> data = SkewedRecords(20000, 6);
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    return Dataset<KV>::FromVector(ctx, data)
        .ReduceByKey(
            [](const int64_t& a, const int64_t& b) { return a ^ (b * 31); })
        .Collect();
  });
}

TEST(ShuffleDeterminism, DistinctExactOutput) {
  std::vector<KV> data = SkewedRecords(20000, 7);
  for (KV& kv : data) kv.second %= 11;
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    return Dataset<KV>::FromVector(ctx, data).Distinct().Collect();
  });
}

TEST(ShuffleDeterminism, JoinExactOutput) {
  std::vector<KV> left = SkewedRecords(12000, 8);
  std::vector<KV> right = SkewedRecords(500, 9);
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    auto l = Dataset<KV>::FromVector(ctx, left);
    auto r = Dataset<KV>::FromVector(ctx, right);
    return l.Join<int64_t>(r).Collect();
  });
}

TEST(ShuffleDeterminism, CoGroupExactOutput) {
  std::vector<KV> left = SkewedRecords(8000, 10);
  std::vector<KV> right = SkewedRecords(8000, 11);
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    auto l = Dataset<KV>::FromVector(ctx, left);
    auto r = Dataset<KV>::FromVector(ctx, right);
    return l.CoGroup<int64_t>(r).Collect();
  });
}

TEST(ShuffleDeterminism, PartitionByExactLayout) {
  std::vector<KV> data = SkewedRecords(20000, 12);
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    // Compare the full physical layout, not just the flattened records:
    // every record must land in the same partition at the same offset
    // regardless of worker count.
    auto partitioned = Dataset<KV>::FromVector(ctx, data).PartitionBy(
        [](const KV& kv) { return kv.first; });
    return partitioned.MaterializedPartitions();
  });
}

TEST(ShuffleDeterminism, ZoomPipelineCanonicalOutput) {
  gen::PowerLawConfig config;
  config.num_vertices = 300;
  config.num_edges = 4000;
  config.hub_fraction = 0.25;
  config.num_snapshots = 6;
  config.seed = 13;
  AZoomSpec spec;
  spec.group_of = GroupByProperty("group");
  spec.aggregator = MakeAggregator(
      "cluster", "key",
      {{"members", AggKind::kCount, ""}, {"total", AggKind::kSum, "weight"}});
  spec.edge_type = "clustered";
  ExpectDeterministicAcrossWorkers([&](ExecutionContext* ctx) {
    VeGraph ve = gen::GeneratePowerLaw(ctx, config);
    Result<TGraph> zoomed = TGraph::FromVe(ve, true).AZoom(spec);
    TG_CHECK(zoomed.ok()) << zoomed.status();
    return testing::Canonical(*zoomed);
  });
}

/// Control: the legacy (rebalancing-off) shuffle has the same
/// thread-count determinism guarantee; the harness must not mask a
/// regression there.
TEST(ShuffleDeterminism, LegacyShuffleAlsoDeterministic) {
  std::vector<KV> data = SkewedRecords(20000, 14);
  std::vector<int> counts = WorkerCounts();
  ExecutionContext baseline_ctx = MakeContext(counts[0], /*rebalance=*/false);
  auto baseline =
      Dataset<KV>::FromVector(&baseline_ctx, data).GroupByKey().Collect();
  for (size_t i = 1; i < counts.size(); ++i) {
    ExecutionContext ctx = MakeContext(counts[i], /*rebalance=*/false);
    EXPECT_EQ(Dataset<KV>::FromVector(&ctx, data).GroupByKey().Collect(),
              baseline);
  }
}

}  // namespace
}  // namespace tgraph::dataflow
