#!/bin/sh
# End-to-end test of the observability plane: starts tgzd with the metrics
# endpoint, slow-query log, and always-on trace sampling; drives queries
# through tgz; then validates
#   - the /metrics HTTP endpoint parses as Prometheus text exposition
#     (TYPE lines, cumulative monotonic histogram buckets, +Inf == _count),
#   - the kMetrics protocol verb returns the same exposition,
#   - `tgz query --trace` exports the query's spans nested under its id,
#   - `tgz stats --json` is well-formed,
#   - the slow-query log holds structured per-stage entries,
#   - SIGTERM drains cleanly with sampling on.
#
# Usage: metrics_e2e.sh <tgz> <tgzd>
set -e
TGZ="$1"
TGZD="$2"
[ -x "$TGZ" ] && [ -x "$TGZD" ] || { echo "usage: $0 <tgz> <tgzd>" >&2; exit 2; }
CURL="${CURL:-curl}"
command -v "$CURL" > /dev/null || { echo "curl not found" >&2; exit 2; }

DIR="$(mktemp -d)"
TGZD_PID=""
cleanup() {
  [ -n "$TGZD_PID" ] && kill "$TGZD_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

"$TGZ" generate --dataset snb --out "$DIR/base" --scale 0.1 --seed 7

TGRAPH_TRACE_SAMPLE=1 "$TGZD" --port 0 --workers 2 --metrics-port 0 \
    --slow-query-log "$DIR/slow.jsonl" --slow-query-ms 0 \
    > "$DIR/tgzd.out" 2> "$DIR/tgzd.err" &
TGZD_PID=$!
for _ in $(seq 1 200); do
  PORT=$(sed -n 's/^tgraphd listening on port \([0-9]*\)$/\1/p' "$DIR/tgzd.out")
  MPORT=$(sed -n 's/^tgraphd metrics on port \([0-9]*\)$/\1/p' "$DIR/tgzd.out")
  [ -n "$PORT" ] && [ -n "$MPORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "tgzd never reported its port" >&2; exit 1; }
[ -n "$MPORT" ] || { echo "tgzd never reported its metrics port" >&2; exit 1; }

cat > "$DIR/query.tql" <<EOF
LOAD '$DIR/base' AS g;
SET cohorts = AZOOM g BY firstName AGGREGATE COUNT() AS people;
INFO cohorts;
EOF
"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/q1.out"
grep -q "cohorts" "$DIR/q1.out"
# Same script again — a cache hit, so the slow log sees both dispositions.
"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > /dev/null 2> /dev/null
# Per-query trace export: spans nest under the query id.
"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    --trace "$DIR/trace.json" > /dev/null 2> "$DIR/q3.err"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"tgraphd.query"' "$DIR/trace.json"
grep -q '"qid"' "$DIR/trace.json"
grep -q "wrote query trace to" "$DIR/q3.err"

# --- /metrics over HTTP ----------------------------------------------------
"$CURL" -sS -D "$DIR/headers" "http://127.0.0.1:$MPORT/metrics" \
    > "$DIR/metrics.txt"
grep -q "200 OK" "$DIR/headers"
grep -q "text/plain; version=0.0.4" "$DIR/headers"
# Prometheus text exposition shape: TYPE lines for each kind, no raw
# dotted names, and the counters the workload must have moved.
grep -q "^# TYPE tgraph_server_requests counter$" "$DIR/metrics.txt"
grep -q "^# TYPE tgraph_server_request_micros histogram$" "$DIR/metrics.txt"
grep -q "^tgraph_server_query_count [1-9]" "$DIR/metrics.txt"
grep -q "^tgraph_server_cache_hits [1-9]" "$DIR/metrics.txt"
grep -q "^tgraph_server_query_sampled [1-9]" "$DIR/metrics.txt"
grep -q "tgraph_storage_load_row_groups_total" "$DIR/metrics.txt"
if grep -q "^[a-z_]*\." "$DIR/metrics.txt"; then
  echo "dotted metric name leaked into exposition" >&2
  exit 1
fi
# Every metric line is NAME VALUE; histogram buckets are cumulative,
# monotone, and end with +Inf == _count.
awk '
  /^#/ { next }
  !/^[A-Za-z_][A-Za-z0-9_]*(\{le="[^"]*"\})? -?[0-9]+$/ {
    print "unparseable line: " $0; exit 1
  }
  /_bucket\{le="/ {
    name = $0; sub(/\{.*/, "", name)
    if (name == prev && $2 + 0 < last + 0) {
      print "non-monotonic buckets in " name; exit 1
    }
    if ($0 ~ /le="\+Inf"/) inf[name] = $2 + 0
    prev = name; last = $2 + 0
    next
  }
  /_count [0-9]+$/ { base = $1; sub(/_count$/, "", base); cnt[base] = $2 + 0 }
  END {
    for (b in inf) {
      base = b; sub(/_bucket$/, "", base)
      if (!(base in cnt) || inf[b] != cnt[base]) {
        print "+Inf bucket != _count for " base; exit 1
      }
    }
  }
' "$DIR/metrics.txt"
# Unknown paths answer 404, and the connection still closes cleanly.
CODE=$("$CURL" -sS -o /dev/null -w "%{http_code}" "http://127.0.0.1:$MPORT/nope")
[ "$CODE" = "404" ] || { echo "expected 404 for /nope, got $CODE" >&2; exit 1; }

# --- the same exposition over the wire protocol ----------------------------
"$TGZ" metrics --connect "127.0.0.1:$PORT" > "$DIR/metrics_verb.txt"
grep -q "^# TYPE tgraph_server_requests counter$" "$DIR/metrics_verb.txt"
grep -q "^tgraph_server_query_count [1-9]" "$DIR/metrics_verb.txt"

# --- stats --json ----------------------------------------------------------
"$TGZ" stats --connect "127.0.0.1:$PORT" --json v > "$DIR/stats.json"
grep -q '"server":{' "$DIR/stats.json"
grep -q '"opt_stats":' "$DIR/stats.json"
grep -q '"metrics":' "$DIR/stats.json"

# --- slow-query log --------------------------------------------------------
grep -q '"query_id":"' "$DIR/slow.jsonl"
grep -q '"cache":"miss"' "$DIR/slow.jsonl"
grep -q '"cache":"hit"' "$DIR/slow.jsonl"
grep -q '"label":"AZOOM"' "$DIR/slow.jsonl"

# --- SIGTERM drains with sampling on ---------------------------------------
kill -TERM "$TGZD_PID"
for _ in $(seq 1 200); do
  kill -0 "$TGZD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$TGZD_PID" 2>/dev/null; then
  echo "tgzd did not exit after SIGTERM" >&2
  exit 1
fi
wait "$TGZD_PID"
TGZD_PID=""
grep -q "tgraphd drained, exiting" "$DIR/tgzd.out"

echo "metrics e2e OK"
