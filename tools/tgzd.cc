// tgzd — the resident TGraphZoom query server.
//
//   tgzd [--port N] [--workers N] [--queue-depth N]
//        [--cache-bytes N] [--cache-ttl-ms N]
//        [--deadline-ms N] [--idle-timeout-ms N]
//        [--stats-file FILE] [--trace-out FILE] [--metrics]
//        [--metrics-port N] [--slow-query-log FILE] [--slow-query-ms N]
//        [--wal-dir DIR] [--ingest-delta-events N] [--ingest-compact-ms N]
//        [--views-file FILE] [--view-max-suffix-fraction F]
//        [--decode-cache-mb N]
//
// Listens on loopback for framed TQL requests (src/server/protocol.h),
// executes them on a bounded worker pool over one shared
// dataflow::ExecutionContext, and serves repeated zoom queries from a
// canonicalized-plan result cache. SIGTERM/SIGINT trigger a graceful
// drain: stop accepting, finish in-flight requests, flush the trace and
// metrics, exit 0.
//
// Talk to it with `tgz query --connect host:port --script FILE`,
// `tgz stats --connect host:port`, or any client of the wire protocol.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "dataflow/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server.h"
#include "storage/store_reader.h"

namespace {

using namespace tgraph;  // NOLINT — binary-local brevity

// Self-pipe: the signal handler only writes one byte; main blocks on the
// read end so all drain work happens on a normal thread, not in a
// handler.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int /*signum*/) {
  char byte = 1;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "tgzd: %s\n", message.c_str());
  std::exit(2);
}

int Help(std::FILE* out) {
  std::fprintf(
      out,
      "usage: tgzd [--port N] [--workers N] [--queue-depth N]\n"
      "            [--cache-bytes N] [--cache-ttl-ms N] [--deadline-ms N]\n"
      "            [--idle-timeout-ms N] [--stats-file FILE]\n"
      "            [--trace-out FILE] [--metrics] [--metrics-port N]\n"
      "            [--slow-query-log FILE] [--slow-query-ms N]\n"
      "            [--wal-dir DIR] [--ingest-delta-events N]\n"
      "            [--ingest-compact-ms N] [--views-file FILE]\n"
      "            [--view-max-suffix-fraction F] [--decode-cache-mb N]\n"
      "  --port N            TCP port, loopback only (0 = ephemeral; "
      "default 7464)\n"
      "  --workers N         concurrent request executors (default 4)\n"
      "  --queue-depth N     waiting connections before refusing "
      "(default 16)\n"
      "  --cache-bytes N     result-cache budget, 0 disables (default "
      "64MiB)\n"
      "  --cache-ttl-ms N    result-cache entry TTL, 0 = no expiry\n"
      "  --deadline-ms N     per-query deadline, 0 = none (default "
      "60000)\n"
      "  --idle-timeout-ms N close idle connections after N ms (default "
      "60000)\n"
      "  --stats-file FILE   per-operator cost profile: loaded on start,\n"
      "                      written back on drain (warm-starts the cost "
      "model)\n"
      "  --trace-out FILE    write a Chrome trace on shutdown\n"
      "  --metrics           print the metrics registry on shutdown\n"
      "  --metrics-port N    serve GET /metrics (Prometheus text) over\n"
      "                      plain HTTP on loopback port N (0 = ephemeral;\n"
      "                      default off)\n"
      "  --slow-query-log FILE  append queries slower than --slow-query-ms\n"
      "                      as JSONL records with per-stage breakdowns\n"
      "  --slow-query-ms N   slow-query threshold (default 100; 0 logs\n"
      "                      every query)\n"
      "  --wal-dir DIR       collect live graphs' write-ahead logs in DIR\n"
      "                      (default: each graph keeps <dir>/wal)\n"
      "  --ingest-delta-events N  compact a live graph once its in-memory\n"
      "                      delta holds N events (default 4096)\n"
      "  --ingest-compact-ms N  also compact non-empty deltas every N ms\n"
      "  --views-file FILE   persist CREATE VIEW definitions here and\n"
      "                      re-register them on start (default: in-memory\n"
      "                      views only)\n"
      "  --view-max-suffix-fraction F  fall back to a full view recompute\n"
      "                      when the incremental suffix would span more\n"
      "                      than this fraction of the source lifetime\n"
      "                      (default 0.75)\n"
      "                      (default 0 = size-triggered only)\n"
      "  --decode-cache-mb N soft budget (MiB) for the decoded-segment\n"
      "                      cache shared by all open v3 stores; crossing\n"
      "                      it counts overflows instead of evicting\n"
      "                      (default 1024; env TGRAPH_DECODE_CACHE_MB)\n"
      "  --help              print this help and exit\n"
      "Graph dirs named in TQL LOAD statements hold v1 columnar files or a\n"
      "tgraph-store v2/v3 container (graph.tgs, docs/FORMAT.md); the catalog\n"
      "auto-detects and serves store dirs off one shared mmap — and one\n"
      "shared decoded-segment cache — per directory.\n");
  return out == stdout ? 0 : 2;
}

int Usage() { return Help(stderr); }

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Help(stdout);
    if (arg == "--metrics") {
      metrics = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) Die("unexpected argument: " + arg);
    std::string key = arg.substr(2);
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      flags[key.substr(0, eq)] = key.substr(eq + 1);
    } else {
      if (i + 1 >= argc) Die("flag --" + key + " needs a value");
      flags[key] = argv[++i];
    }
  }
  auto int_flag = [&](const char* key, int64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoll(it->second);
  };

  server::ServerOptions options;
  options.port = static_cast<int>(int_flag("port", options.port));
  options.workers = static_cast<int>(int_flag("workers", options.workers));
  options.queue_depth =
      static_cast<int>(int_flag("queue-depth", options.queue_depth));
  options.cache_bytes = static_cast<size_t>(
      int_flag("cache-bytes", static_cast<int64_t>(options.cache_bytes)));
  options.cache_ttl_ms = int_flag("cache-ttl-ms", options.cache_ttl_ms);
  options.deadline_ms = int_flag("deadline-ms", options.deadline_ms);
  options.idle_timeout_ms =
      int_flag("idle-timeout-ms", options.idle_timeout_ms);
  if (auto it = flags.find("stats-file"); it != flags.end()) {
    options.stats_path = it->second;
  }
  options.metrics_port =
      static_cast<int>(int_flag("metrics-port", options.metrics_port));
  if (auto it = flags.find("slow-query-log"); it != flags.end()) {
    options.slow_query_log = it->second;
  }
  options.slow_query_ms = int_flag("slow-query-ms", options.slow_query_ms);
  if (auto it = flags.find("wal-dir"); it != flags.end()) {
    options.ingest_wal_dir = it->second;
  }
  options.ingest_delta_events = static_cast<size_t>(int_flag(
      "ingest-delta-events", static_cast<int64_t>(options.ingest_delta_events)));
  options.ingest_compact_ms =
      int_flag("ingest-compact-ms", options.ingest_compact_ms);
  if (auto it = flags.find("views-file"); it != flags.end()) {
    options.views_path = it->second;
  }
  if (auto it = flags.find("view-max-suffix-fraction"); it != flags.end()) {
    options.view_max_suffix_fraction = std::stod(it->second);
  }
  if (auto it = flags.find("decode-cache-mb"); it != flags.end()) {
    int64_t mb = std::stoll(it->second);
    if (mb < 0) Die("--decode-cache-mb must be >= 0");
    tgraph::storage::SetStoreDecodeCacheBudgetBytes(
        static_cast<uint64_t>(mb) << 20);
  }
  std::string trace_out;
  if (auto it = flags.find("trace-out"); it != flags.end()) {
    trace_out = it->second;
  }

  if (::pipe(g_signal_pipe) != 0) Die("pipe: " + std::string(strerror(errno)));
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // failed response writes surface as EPIPE

  if (!trace_out.empty()) tgraph::obs::Tracer::Global().Enable();

  tgraph::dataflow::ExecutionContext ctx;
  server::Server server(&ctx, options);
  tgraph::Status status = server.Start();
  if (!status.ok()) Die(status.ToString());
  // Machine-readable startup line: scripts (and the CLI smoke test) parse
  // the bound port from here, which is how --port 0 is usable.
  std::printf("tgraphd listening on port %d\n", server.port());
  if (server.metrics_port() >= 0) {
    std::printf("tgraphd metrics on port %d\n", server.metrics_port());
  }
  std::fflush(stdout);

  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.Drain();

  if (!trace_out.empty()) {
    if (tgraph::obs::Tracer::Global().WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "tgzd: wrote trace to %s (%zu spans)\n",
                   trace_out.c_str(),
                   tgraph::obs::Tracer::Global().EventCount());
    } else {
      std::fprintf(stderr, "tgzd: cannot write trace to %s\n",
                   trace_out.c_str());
    }
  }
  if (metrics) {
    std::string report = tgraph::obs::MetricsRegistry::Global().ToString();
    std::fprintf(stderr, "%s", report.c_str());
  }
  std::printf("tgraphd drained, exiting\n");
  return 0;
}
