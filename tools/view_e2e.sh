#!/bin/sh
# End-to-end test of materialized views over the wire: starts tgzd with a
# views file, then drives the full view lifecycle through tgz:
#   - CREATE VIEW through `tgz query` registers and persists the
#     definition (canonical TQL in the --views-file),
#   - `tgz view --name` serves the view, refreshed through the source's
#     current ingest epoch; `tgz view` with no name lists the catalog,
#   - every appended batch is visible on the next read,
#   - kill -9 loses nothing: a restarted tgzd re-registers the persisted
#     definitions, rebuilds the view from the compacted store + WAL tail,
#     and serves a byte-identical result (renders are version-free),
#   - DROP VIEW unregisters and survives a restart too.
#
# Usage: view_e2e.sh <tgz> <tgzd>
set -e
TGZ="$1"
TGZD="$2"
[ -x "$TGZ" ] && [ -x "$TGZD" ] || { echo "usage: $0 <tgz> <tgzd>" >&2; exit 2; }

DIR="$(mktemp -d)"
LIVE="$DIR/live"
VIEWS="$DIR/views.tql"
TGZD_PID=""
cleanup() {
  [ -n "$TGZD_PID" ] && kill -9 "$TGZD_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

start_tgzd() {
  : > "$DIR/tgzd.out"
  "$TGZD" --port 0 --workers 2 --ingest-delta-events 6 \
      --views-file "$VIEWS" \
      > "$DIR/tgzd.out" 2> "$DIR/tgzd.err" &
  TGZD_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^tgraphd listening on port \([0-9]*\)$/\1/p' "$DIR/tgzd.out")
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "tgzd never reported its port" >&2; exit 1; }
}

start_tgzd

# --- register a view over a live ingest directory ---------------------------
cat > "$DIR/batch1.events" <<EOF
add-vertex 1 1 type=person team=infra
add-vertex 2 2 type=person team=search
add-edge 9 1 2 3 type=knows
EOF
"$TGZ" ingest --graph "$LIVE" --events "$DIR/batch1.events" \
    --connect "127.0.0.1:$PORT" --horizon 1000 > "$DIR/ack1.out"
grep -q "ingested 3 events" "$DIR/ack1.out"

printf "CREATE VIEW teams ON '%s' AS AZOOM BY team AGGREGATE COUNT() AS members;\n" \
    "$LIVE" > "$DIR/create.tql"
"$TGZ" query --script "$DIR/create.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/create.out"
grep -q "created view teams" "$DIR/create.out"

# The definition is on disk, in canonical TQL.
grep -q "CREATE VIEW teams ON" "$VIEWS"

# --- serve it: list and read ------------------------------------------------
"$TGZ" view --connect "127.0.0.1:$PORT" > "$DIR/list1.out"
grep -q "teams ON '$LIVE'" "$DIR/list1.out"
"$TGZ" view --name teams --connect "127.0.0.1:$PORT" > "$DIR/v1.out"
grep -q "^view teams \[" "$DIR/v1.out"
grep -q "^content " "$DIR/v1.out"

# --- a new batch is visible on the next read --------------------------------
cat > "$DIR/batch2.events" <<EOF
add-vertex 3 10 type=person team=infra
add-vertex 4 11 type=person team=infra
EOF
"$TGZ" ingest --graph "$LIVE" --events "$DIR/batch2.events" \
    --connect "127.0.0.1:$PORT" > "$DIR/ack2.out"
"$TGZ" view --name teams --connect "127.0.0.1:$PORT" > "$DIR/v2.out"
if diff "$DIR/v1.out" "$DIR/v2.out" > /dev/null; then
  echo "view did not refresh after ingest" >&2
  exit 1
fi

# --- kill -9 mid-flight; restart must converge byte-identically -------------
# One more batch so the WAL tail (past the background-compacted base) is
# non-trivial at the moment of death.
printf 'add-vertex 5 20 type=person team=search\n' | "$TGZ" ingest \
    --graph "$LIVE" --connect "127.0.0.1:$PORT" > "$DIR/ack3.out"
"$TGZ" view --name teams --connect "127.0.0.1:$PORT" > "$DIR/v3.out"

kill -9 "$TGZD_PID"
wait "$TGZD_PID" 2>/dev/null || true
TGZD_PID=""

start_tgzd
"$TGZ" view --connect "127.0.0.1:$PORT" > "$DIR/list2.out"
grep -q "teams ON '$LIVE'" "$DIR/list2.out"
"$TGZ" view --name teams --connect "127.0.0.1:$PORT" > "$DIR/v4.out"
diff "$DIR/v3.out" "$DIR/v4.out"

# --- DROP VIEW persists too -------------------------------------------------
printf 'DROP VIEW teams;\n' > "$DIR/drop.tql"
"$TGZ" query --script "$DIR/drop.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/drop.out"
grep -q "dropped view teams" "$DIR/drop.out"
if "$TGZ" view --name teams --connect "127.0.0.1:$PORT" > "$DIR/gone.out" 2>&1; then
  echo "dropped view still served" >&2
  exit 1
fi

kill -9 "$TGZD_PID"
wait "$TGZD_PID" 2>/dev/null || true
TGZD_PID=""
start_tgzd
"$TGZ" view --connect "127.0.0.1:$PORT" > "$DIR/list3.out"
grep -q "no views" "$DIR/list3.out"

echo "view e2e OK"
