// tgz — command-line front end for TGraphZoom.
//
//   tgz generate --dataset wikitalk|snb|ngrams --out DIR [--seed N]
//                [--scale F] [--sort temporal|structural]
//   tgz info --in DIR
//   tgz slice --in DIR --out DIR --from T --to T
//   tgz azoom --in DIR --out DIR --group-by PROP [--type NAME]
//             [--count PROP] [--rep ve|og|rg]
//   tgz wzoom --in DIR --out DIR --window N [--vq all|most|exists]
//             [--eq all|most|exists] [--rep ve|og|ogc|rg]
//   tgz snapshot --in DIR --at T
//   tgz query --script FILE [--trace FILE]  (run a TQL script)
//   tgz query --script FILE --connect host:port [--no-cache v] [--trace FILE]
//                                (run it on a tgraphd server)
//   tgz ingest --graph DIR [--events FILE|-] [--connect host:port]
//              [--horizon T] [--compact v]  (stream events into a live graph)
//   tgz stats --connect host:port [--json v]
//
//   tgz view --connect host:port [--name NAME] (fetch the named
//   materialized view, refreshed through the source's current epoch;
//   without --name, lists the server's view catalog)
//                                (fetch server metrics / cache stats)
//   tgz metrics --connect host:port (Prometheus text exposition)
//   tgz save-store --in DIR --out DIR [--rep ve|og|ogc]
//                                (convert to the mmap'd tgraph-store v2)
//   tgz repl                     (interactive TQL, statements end with ;)
//
// Graph directories hold either the v1 columnar files (vertices.tcol +
// edges.tcol) or a tgraph-store v2 container (graph.tgs, docs/FORMAT.md);
// loads auto-detect which one is present, so every command composes with
// every other.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "gen/stats.h"
#include "ingest/event.h"
#include "ingest/live_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "storage/graph_io.h"
#include "tgraph/convert.h"
#include "tgraph/tgraph.h"
#include "tql/interpreter.h"

namespace {

using namespace tgraph;  // NOLINT — binary-local brevity

// --- tiny flag parser ------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        Die("unexpected argument: " + arg);
      }
      std::string key = arg.substr(2);
      size_t eq = key.find('=');
      if (eq != std::string::npos) {  // --flag=value form
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (i + 1 >= argc) Die("flag --" + key + " needs a value");
      values_[key] = argv[++i];
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  std::string Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) Die("missing required flag --" + key);
    return it->second;
  }

  std::string GetOr(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key) const { return std::stoll(Get(key)); }
  int64_t GetIntOr(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  double GetDoubleOr(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[noreturn]] static void Die(const std::string& message) {
    std::fprintf(stderr, "tgz: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
};

void DieOnError(const Status& status) {
  if (!status.ok()) Flags::Die(status.ToString());
}

dataflow::ExecutionContext* Ctx() {
  static auto* ctx = new dataflow::ExecutionContext();
  return ctx;
}

VeGraph LoadInput(const Flags& flags) {
  storage::LoadOptions options;
  Result<VeGraph> graph = storage::LoadVeGraph(Ctx(), flags.Get("in"), options);
  DieOnError(graph.status());
  return *graph;
}

void StoreOutput(const VeGraph& graph, const Flags& flags) {
  storage::GraphWriteOptions options;
  if (flags.GetOr("sort", "temporal") == "structural") {
    options.sort_order = storage::SortOrder::kStructuralLocality;
  }
  DieOnError(storage::WriteVeGraph(graph, flags.Get("out"), options));
  gen::DatasetStats stats = gen::ComputeStats(graph);
  std::printf("wrote %s: %s\n", flags.Get("out").c_str(),
              stats.ToString().c_str());
}

Quantifier ParseQuantifier(const std::string& name) {
  if (name == "all") return Quantifier::All();
  if (name == "most") return Quantifier::Most();
  if (name == "exists") return Quantifier::Exists();
  if (name.rfind("atleast:", 0) == 0) {
    return Quantifier::AtLeast(std::stod(name.substr(8)));
  }
  Flags::Die("unknown quantifier '" + name +
             "' (use all|most|exists|atleast:<fraction>)");
}

Representation ParseRepresentation(const std::string& name) {
  if (name == "ve") return Representation::kVe;
  if (name == "og") return Representation::kOg;
  if (name == "ogc") return Representation::kOgc;
  if (name == "rg") return Representation::kRg;
  Flags::Die("unknown representation '" + name + "' (use ve|og|ogc|rg)");
}

// --- subcommands -----------------------------------------------------------

int Generate(const Flags& flags) {
  std::string dataset = flags.Get("dataset");
  uint64_t seed = static_cast<uint64_t>(flags.GetIntOr("seed", 42));
  double scale = flags.GetDoubleOr("scale", 1.0);
  VeGraph graph;
  if (dataset == "wikitalk") {
    gen::WikiTalkConfig config;
    config.num_users = static_cast<int64_t>(config.num_users * scale);
    config.seed = seed;
    graph = gen::GenerateWikiTalk(Ctx(), config);
  } else if (dataset == "snb") {
    gen::SnbConfig config;
    config.num_persons = static_cast<int64_t>(config.num_persons * scale);
    config.seed = seed;
    graph = gen::GenerateSnb(Ctx(), config);
  } else if (dataset == "ngrams") {
    gen::NGramsConfig config;
    config.num_words = static_cast<int64_t>(config.num_words * scale);
    config.appearances_per_year *= scale;
    config.seed = seed;
    graph = gen::GenerateNGrams(Ctx(), config);
  } else {
    Flags::Die("unknown dataset '" + dataset + "' (use wikitalk|snb|ngrams)");
  }
  StoreOutput(graph, flags);
  return 0;
}

int Info(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  gen::DatasetStats stats = gen::ComputeStats(graph);
  std::printf("lifetime       %s\n", graph.lifetime().ToString().c_str());
  std::printf("vertices       %lld\n",
              static_cast<long long>(stats.num_vertices));
  std::printf("edges          %lld\n", static_cast<long long>(stats.num_edges));
  std::printf("vertex states  %lld\n",
              static_cast<long long>(stats.num_vertex_records));
  std::printf("edge states    %lld\n",
              static_cast<long long>(stats.num_edge_records));
  std::printf("snapshots      %lld\n",
              static_cast<long long>(stats.num_snapshots));
  std::printf("evolution rate %.1f\n", stats.evolution_rate);
  return 0;
}

int Slice(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  TGraph sliced = TGraph::FromVe(graph, true).Slice(
      Interval(flags.GetInt("from"), flags.GetInt("to")));
  StoreOutput(sliced.ve(), flags);
  return 0;
}

int AZoomCommand(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  std::string group_by = flags.Get("group-by");
  AZoomSpec spec;
  spec.group_of = GroupByProperty(group_by);
  std::vector<AggregateSpec> aggregates;
  if (flags.GetOr("count", "") != "") {
    aggregates.push_back({flags.Get("count"), AggKind::kCount, ""});
  }
  spec.aggregator = MakeAggregator(flags.GetOr("type", "group"), group_by,
                                   std::move(aggregates));
  Representation rep = ParseRepresentation(flags.GetOr("rep", "og"));
  Result<TGraph> as_rep = TGraph::FromVe(graph, true).As(rep);
  DieOnError(as_rep.status());
  Result<TGraph> zoomed = as_rep->AZoom(spec);
  DieOnError(zoomed.status());
  Result<TGraph> back = zoomed->Coalesce().As(Representation::kVe);
  DieOnError(back.status());
  StoreOutput(back->ve(), flags);
  return 0;
}

int WZoomCommand(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  WZoomSpec spec{WindowSpec::TimePoints(flags.GetInt("window")),
                 ParseQuantifier(flags.GetOr("vq", "all")),
                 ParseQuantifier(flags.GetOr("eq", "all")),
                 {},
                 {}};
  Representation rep = ParseRepresentation(flags.GetOr("rep", "og"));
  Result<TGraph> as_rep = TGraph::FromVe(graph, true).As(rep);
  DieOnError(as_rep.status());
  Result<TGraph> zoomed = as_rep->WZoom(spec);
  DieOnError(zoomed.status());
  Result<TGraph> back = zoomed->As(Representation::kVe);
  DieOnError(back.status());
  StoreOutput(back->Coalesce().ve(), flags);
  return 0;
}

int Snapshot(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  TimePoint at = flags.GetInt("at");
  sg::PropertyGraph snapshot = graph.SnapshotAt(at);
  std::printf("snapshot at %lld: %lld vertices, %lld edges\n",
              static_cast<long long>(at),
              static_cast<long long>(snapshot.NumVertices()),
              static_cast<long long>(snapshot.NumEdges()));
  int64_t limit = flags.GetIntOr("limit", 10);
  for (const sg::Vertex& v : snapshot.vertices().Take(limit)) {
    std::printf("  v%lld %s\n", static_cast<long long>(v.vid),
                v.properties.ToString().c_str());
  }
  for (const sg::Edge& e : snapshot.edges().Take(limit)) {
    std::printf("  e%lld %lld->%lld %s\n", static_cast<long long>(e.eid),
                static_cast<long long>(e.src), static_cast<long long>(e.dst),
                e.properties.ToString().c_str());
  }
  return 0;
}

/// Splits "host:port" (the value of --connect); dies on a bad spec.
std::pair<std::string, int> ParseHostPort(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    Flags::Die("--connect wants host:port, got '" + spec + "'");
  }
  return {spec.substr(0, colon), std::stoi(spec.substr(colon + 1))};
}

server::Client ConnectedClient(const Flags& flags) {
  auto [host, port] = ParseHostPort(flags.Get("connect"));
  server::Client client;
  DieOnError(client.Connect(host, port));
  return client;
}

void WriteTraceFile(const std::string& path, const std::string& json) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) Flags::Die("cannot write trace to " + path);
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "tgz: wrote query trace to %s\n", path.c_str());
}

/// Local-mode loader that understands live (streaming-ingest) directories:
/// a dir with a WAL or CURRENT pointer is opened briefly, its merged
/// snapshot copied out, and its WAL closed again — so `tgz query` and the
/// repl can read what `tgz ingest` wrote without a server. Static dirs
/// fall through to the storage loaders.
Result<TGraph> LoadLocal(const tql::LoadStatement& load) {
  if (ingest::IsLiveDir(load.path)) {
    ingest::LiveGraph::Options options;
    options.delta_events_threshold = 0;  // read-only visit: no compactor
    TG_ASSIGN_OR_RETURN(std::unique_ptr<ingest::LiveGraph> live,
                        ingest::LiveGraph::Open(Ctx(), load.path, options));
    std::shared_ptr<const ingest::LiveSnapshot> snap = live->snapshot();
    TG_RETURN_IF_ERROR(live->Close());
    TG_ASSIGN_OR_RETURN(const VeGraph* merged, snap->Graph());
    TGraph graph = TGraph::FromVe(*merged, /*coalesced=*/true);
    if (load.range.has_value()) graph = graph.Slice(*load.range);
    return graph;
  }
  storage::LoadOptions options;
  options.time_range = load.range;
  TG_ASSIGN_OR_RETURN(VeGraph graph,
                      storage::LoadVeGraph(Ctx(), load.path, options));
  return TGraph::FromVe(std::move(graph), /*coalesced=*/true);
}

int Query(const Flags& flags) {
  std::string path = flags.Get("script");
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) Flags::Die("cannot open script " + path);
  std::string script;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    script.append(buffer, n);
  }
  std::fclose(file);
  const std::string trace_path = flags.GetOr("trace", "");
  if (flags.Has("connect")) {
    // Client mode: ship the script to a tgraphd and print its answer.
    // --trace asks the server to trace this query and return its spans.
    server::Client client = ConnectedClient(flags);
    Result<server::Response> response =
        client.Query(script, /*no_cache=*/flags.Has("no-cache"),
                     /*want_trace=*/!trace_path.empty());
    DieOnError(response.status());
    std::fputs(response->body.c_str(), stdout);
    if (response->cache_hit()) {
      std::fprintf(stderr, "tgz: served from cache (request %llu)\n",
                   static_cast<unsigned long long>(response->request_id));
    }
    if (!trace_path.empty()) {
      if (!response->has_trace()) {
        Flags::Die("server returned no trace (older tgraphd?)");
      }
      WriteTraceFile(trace_path, response->trace);
    }
    return 0;
  }
  // Local mode --trace: run the script under its own sampled query
  // context, so exactly this query's spans are exported — the same
  // per-query collection path tgraphd uses, not the global tracer.
  std::unique_ptr<obs::QueryTrace> query_trace;
  std::optional<obs::ScopedQueryContext> query_scope;
  if (!trace_path.empty()) {
    query_trace = std::make_unique<obs::QueryTrace>(obs::NextQueryId());
    query_scope.emplace(obs::QueryContext{query_trace->query_id(),
                                          query_trace.get(),
                                          /*parent_span=*/0});
  }
  tql::Interpreter interpreter(Ctx());
  interpreter.set_loader(LoadLocal);
  Result<std::string> output = interpreter.ExecuteScript(script);
  query_scope.reset();
  DieOnError(output.status());
  std::fputs(output->c_str(), stdout);
  if (query_trace != nullptr) {
    WriteTraceFile(trace_path, query_trace->ToChromeTraceJson());
  }
  return 0;
}

/// Reads the whole of `path` ("-" = stdin) into a string; dies on error.
std::string ReadEventsInput(const std::string& path) {
  std::FILE* file = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (file == nullptr) Flags::Die("cannot open events file " + path);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  if (file != stdin) std::fclose(file);
  return text;
}

int Ingest(const Flags& flags) {
  std::string dir = flags.Get("graph");
  std::string text = ReadEventsInput(flags.GetOr("events", "-"));
  Result<std::vector<ingest::Event>> events = ingest::ParseEventText(text);
  DieOnError(events.status());
  TimePoint horizon = flags.GetIntOr("horizon", 0);
  if (flags.Has("connect")) {
    // Remote mode: the server owns the WAL and the live graph; the ack
    // means the batch is fsynced there.
    server::Client client = ConnectedClient(flags);
    Result<server::Response> response = client.Ingest(dir, *events, horizon);
    DieOnError(response.status());
    std::printf("%s\n", response->body.c_str());
    return 0;
  }
  // Local mode: open (or create) the live directory in-process. Do not
  // point this at a directory a running tgraphd is serving — two WAL
  // writers do not compose.
  ingest::LiveGraph::Options options;
  if (horizon != 0) options.horizon = horizon;
  options.delta_events_threshold = 0;  // no background compactor
  Result<std::unique_ptr<ingest::LiveGraph>> graph =
      ingest::LiveGraph::Open(Ctx(), dir, std::move(options));
  DieOnError(graph.status());
  if (!events->empty()) {
    Result<uint64_t> seq = (*graph)->Append(*events);
    if (!seq.ok()) {
      (void)(*graph)->Close();
      DieOnError(seq.status());
    }
    std::printf("ingested %zu events graph=%s epoch=%llu seq=%llu\n",
                events->size(), dir.c_str(),
                static_cast<unsigned long long>((*graph)->epoch()),
                static_cast<unsigned long long>(*seq));
  }
  if (flags.Has("compact")) {
    DieOnError((*graph)->Compact());
    std::printf("compacted graph=%s epoch=%llu\n", dir.c_str(),
                static_cast<unsigned long long>((*graph)->epoch()));
  }
  DieOnError((*graph)->Close());
  return 0;
}

int Stats(const Flags& flags) {
  server::Client client = ConnectedClient(flags);
  Result<server::Response> response = client.Stats(flags.Has("json"));
  DieOnError(response.status());
  std::fputs(response->body.c_str(), stdout);
  return 0;
}

int Metrics(const Flags& flags) {
  server::Client client = ConnectedClient(flags);
  Result<server::Response> response = client.Metrics();
  DieOnError(response.status());
  std::fputs(response->body.c_str(), stdout);
  return 0;
}

// Views live in tgraphd (they track its ingest epochs), so this
// subcommand is remote-only: --connect is required, like stats/metrics.
int View(const Flags& flags) {
  server::Client client = ConnectedClient(flags);
  Result<server::Response> response = client.View(flags.GetOr("name", ""));
  DieOnError(response.status());
  std::fputs(response->body.c_str(), stdout);
  return 0;
}

int SaveStore(const Flags& flags) {
  VeGraph graph = LoadInput(flags);
  storage::GraphWriteOptions options;
  if (flags.GetOr("sort", "temporal") == "structural") {
    options.sort_order = storage::SortOrder::kStructuralLocality;
  }
  options.row_group_size =
      flags.GetIntOr("partition-rows", options.row_group_size);
  int64_t store_version = flags.GetIntOr("store-version", 3);
  if (store_version != 2 && store_version != 3) {
    Flags::Die("unknown --store-version " + std::to_string(store_version) +
               " (use 2 for raw segments, 3 for encoded)");
  }
  options.store_version = static_cast<uint32_t>(store_version);
  std::string rep = flags.GetOr("rep", "ve");
  std::string out = flags.Get("out");
  if (rep == "ve") {
    DieOnError(storage::WriteVeStore(graph, out, options));
  } else if (rep == "og") {
    DieOnError(storage::WriteOgStore(VeToOg(graph), out, options));
  } else if (rep == "ogc") {
    DieOnError(storage::WriteOgcStore(VeToOgc(graph), out, options));
  } else {
    Flags::Die("unknown representation '" + rep + "' (use ve|og|ogc)");
  }
  std::printf("wrote %s (tgraph-store v%lld, %s)\n",
              storage::StorePath(out).c_str(),
              static_cast<long long>(store_version), rep.c_str());
  return 0;
}

int Repl() {
  tql::Interpreter interpreter(Ctx());
  interpreter.set_loader(LoadLocal);
  std::string pending;
  std::printf("tgz TQL repl — statements end with ';', ctrl-d exits\n");
  std::printf("> ");
  std::fflush(stdout);
  int c;
  while ((c = std::fgetc(stdin)) != EOF) {
    pending.push_back(static_cast<char>(c));
    if (c != ';') continue;
    Result<std::string> output = interpreter.ExecuteScript(pending);
    if (output.ok()) {
      std::fputs(output->c_str(), stdout);
    } else {
      std::fprintf(stderr, "error: %s\n", output.status().ToString().c_str());
    }
    pending.clear();
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}

int Help(std::FILE* out) {
  std::fprintf(
      out,
      "usage: tgz [--trace-out FILE] [--metrics] <command> [--flag value ...]\n"
      "\n"
      "global flags (any command, --flag value or --flag=value):\n"
      "  --trace-out FILE   write a Chrome trace_event JSON\n"
      "                     (chrome://tracing, Perfetto)\n"
      "  --metrics          print metric deltas for the run to stderr\n"
      "  --help             print this help and exit\n"
      "\n"
      "commands:\n"
      "  generate    --dataset wikitalk|snb|ngrams --out DIR [--seed N]\n"
      "              [--scale F] [--sort temporal|structural]\n"
      "  info        --in DIR\n"
      "  slice       --in DIR --out DIR --from T --to T [--sort ...]\n"
      "  azoom       --in DIR --out DIR --group-by PROP [--type NAME]\n"
      "              [--count PROP] [--rep ve|og|rg] [--sort ...]\n"
      "  wzoom       --in DIR --out DIR --window N [--vq all|most|exists]\n"
      "              [--eq all|most|exists] [--rep ve|og|ogc|rg] [--sort ...]\n"
      "  snapshot    --in DIR --at T [--limit N]\n"
      "  query       --script FILE [--connect host:port] [--no-cache v]\n"
      "              [--trace FILE]  (write this query's spans as Chrome\n"
      "              trace JSON; with --connect the server traces it)\n"
      "  ingest      --graph DIR [--events FILE|-] [--connect host:port]\n"
      "              [--horizon T] [--compact v]  (append events from the\n"
      "              text grammar in docs/FORMAT.md; default reads stdin.\n"
      "              Without --connect, opens DIR's WAL in-process)\n"
      "  stats       --connect host:port [--json v]\n"
      "  view        --connect host:port [--name NAME]  (fetch the named\n"
      "              materialized view; without --name, list the view\n"
      "              catalog. Register with: tgz query and CREATE VIEW)\n"
      "  metrics     --connect host:port  (Prometheus text exposition)\n"
      "  save-store  --in DIR --out DIR [--rep ve|og|ogc]\n"
      "              [--partition-rows N] [--sort temporal|structural]\n"
      "              [--store-version 2|3]  (3 = per-segment encodings\n"
      "              with raw fallback; 2 = raw v2 layout)\n"
      "  repl        (interactive TQL; statements end with ';')\n"
      "\n"
      "Graph dirs hold v1 columnar files (vertices.tcol) or a tgraph-store\n"
      "v2/v3 container (graph.tgs); loads auto-detect by magic. See\n"
      "docs/FORMAT.md for the on-disk formats and README.md for the full\n"
      "flag and environment-variable reference.\n");
  return out == stdout ? 0 : 2;
}

int Usage() { return Help(stderr); }

/// Observability flags: recognized anywhere on the command line, in both
/// "--flag value" and "--flag=value" forms, and stripped before subcommand
/// flag parsing.
struct ObsFlags {
  std::string trace_out;
  bool metrics = false;
};

ObsFlags ExtractObsFlags(std::vector<std::string>* args) {
  ObsFlags obs_flags;
  std::vector<std::string> kept;
  for (size_t i = 0; i < args->size(); ++i) {
    const std::string& arg = (*args)[i];
    if (arg == "--metrics") {
      obs_flags.metrics = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= args->size()) Flags::Die("flag --trace-out needs a value");
      obs_flags.trace_out = (*args)[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      obs_flags.trace_out = arg.substr(std::string("--trace-out=").size());
    } else {
      kept.push_back(arg);
    }
  }
  *args = std::move(kept);
  return obs_flags;
}

int Dispatch(const std::string& command, const Flags& flags) {
  if (command == "generate") return Generate(flags);
  if (command == "info") return Info(flags);
  if (command == "slice") return Slice(flags);
  if (command == "azoom") return AZoomCommand(flags);
  if (command == "wzoom") return WZoomCommand(flags);
  if (command == "snapshot") return Snapshot(flags);
  if (command == "query") return Query(flags);
  if (command == "ingest") return Ingest(flags);
  if (command == "stats") return Stats(flags);
  if (command == "metrics") return Metrics(flags);
  if (command == "view") return View(flags);
  if (command == "save-store") return SaveStore(flags);
  if (command == "repl") return Repl();
  if (command == "help" || command == "--help" || command == "-h") {
    return Help(stdout);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  ObsFlags obs_flags = ExtractObsFlags(&args);
  if (args.empty()) return Usage();

  if (!obs_flags.trace_out.empty()) obs::Tracer::Global().Enable();
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  std::string command = args[0];
  std::vector<char*> cargs;
  cargs.push_back(argv[0]);
  for (std::string& arg : args) cargs.push_back(arg.data());
  Flags flags(static_cast<int>(cargs.size()), cargs.data(), 2);

  int code;
  {
    obs::Span command_span("tgz." + command, "cli");
    code = Dispatch(command, flags);
  }

  if (!obs_flags.trace_out.empty()) {
    if (obs::Tracer::Global().WriteChromeTrace(obs_flags.trace_out)) {
      std::fprintf(stderr, "tgz: wrote trace to %s (%zu spans)\n",
                   obs_flags.trace_out.c_str(),
                   obs::Tracer::Global().EventCount());
      std::fprintf(stderr, "%s", obs::Tracer::Global().Summary().c_str());
    } else {
      std::fprintf(stderr, "tgz: cannot write trace to %s\n",
                   obs_flags.trace_out.c_str());
      return 2;
    }
  }
  if (obs_flags.metrics) {
    std::string report = obs::MetricsRegistry::Global()
                             .Snapshot()
                             .DeltaSince(before)
                             .ToString();
    std::fprintf(stderr, "%s", report.c_str());
  }
  return code;
}
