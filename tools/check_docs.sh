#!/bin/sh
# check_docs.sh — fail if the README stops matching reality.
#
#   tools/check_docs.sh REPO_ROOT TGZ_BINARY [TGZD_BINARY]
#
# Cross-checks two kinds of user-facing surface against README.md:
#   1. every --flag printed by `tgz --help` and `tgzd --help`
#   2. every TGRAPH_* environment variable read anywhere under src/
# Anything a binary advertises (or an env var the code consults) that the
# README does not mention is reported and the script exits nonzero, so a
# new flag cannot land without its documentation.
set -eu

ROOT="$1"
TGZ="$2"
TGZD="${3:-}"
README="$ROOT/README.md"
[ -f "$README" ] || { echo "check_docs: no README.md at $ROOT" >&2; exit 2; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- surface 1: command-line flags from --help ----------------------------
"$TGZ" --help > "$TMP/help.txt"
if [ -n "$TGZD" ]; then
  "$TGZD" --help >> "$TMP/help.txt"
fi
# "--flag" is the help text's placeholder for "any flag", not a flag.
grep -oE -- '--[a-z][a-z-]+' "$TMP/help.txt" | sort -u \
  | grep -vx -- '--flag' > "$TMP/flags.txt"

# --- surface 2: TGRAPH_* environment variables read by the code -----------
# Only getenv() call sites count (header guards also match TGRAPH_[A-Z_]+).
grep -rhoE 'getenv\("TGRAPH_[A-Z_]+"' \
    "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" 2>/dev/null \
  | grep -oE 'TGRAPH_[A-Z_]+' | sort -u > "$TMP/envs.txt"

MISSING=0
while IFS= read -r flag; do
  if ! grep -qF -- "$flag" "$README"; then
    echo "check_docs: flag $flag is in --help but not in README.md" >&2
    MISSING=1
  fi
done < "$TMP/flags.txt"

while IFS= read -r var; do
  if ! grep -qF -- "$var" "$README"; then
    echo "check_docs: env var $var is read by the code but not in README.md" >&2
    MISSING=1
  fi
done < "$TMP/envs.txt"

if [ "$MISSING" -ne 0 ]; then
  echo "check_docs: README.md is out of date (see above)" >&2
  exit 1
fi
echo "check_docs: OK ($(wc -l < "$TMP/flags.txt") flags, $(wc -l < "$TMP/envs.txt") env vars documented)"
