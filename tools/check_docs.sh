#!/bin/sh
# check_docs.sh — fail if the README stops matching reality.
#
#   tools/check_docs.sh REPO_ROOT TGZ_BINARY [TGZD_BINARY]
#
# Cross-checks three kinds of user-facing surface against the docs:
#   1. every --flag printed by `tgz --help` and `tgzd --help`
#   2. every TGRAPH_* environment variable read anywhere under src/
#   3. the normative format spec: every docs/FORMAT.md section anchor the
#      code cites (e.g. "FORMAT.md §5.2") must exist in the document, and
#      every segment-encoding wire name the store advertises must be
#      specified in §5
# Anything a binary advertises (or an env var the code consults) that the
# README does not mention is reported and the script exits nonzero, so a
# new flag cannot land without its documentation.
set -eu

ROOT="$1"
TGZ="$2"
TGZD="${3:-}"
README="$ROOT/README.md"
[ -f "$README" ] || { echo "check_docs: no README.md at $ROOT" >&2; exit 2; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- surface 1: command-line flags from --help ----------------------------
"$TGZ" --help > "$TMP/help.txt"
if [ -n "$TGZD" ]; then
  "$TGZD" --help >> "$TMP/help.txt"
fi
# "--flag" is the help text's placeholder for "any flag", not a flag.
grep -oE -- '--[a-z][a-z-]+' "$TMP/help.txt" | sort -u \
  | grep -vx -- '--flag' > "$TMP/flags.txt"

# --- surface 2: TGRAPH_* environment variables read by the code -----------
# Only getenv() call sites count (header guards also match TGRAPH_[A-Z_]+).
grep -rhoE 'getenv\("TGRAPH_[A-Z_]+"' \
    "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" 2>/dev/null \
  | grep -oE 'TGRAPH_[A-Z_]+' | sort -u > "$TMP/envs.txt"

MISSING=0
while IFS= read -r flag; do
  if ! grep -qF -- "$flag" "$README"; then
    echo "check_docs: flag $flag is in --help but not in README.md" >&2
    MISSING=1
  fi
done < "$TMP/flags.txt"

while IFS= read -r var; do
  if ! grep -qF -- "$var" "$README"; then
    echo "check_docs: env var $var is read by the code but not in README.md" >&2
    MISSING=1
  fi
done < "$TMP/envs.txt"

# --- surface 3: the normative FORMAT.md spec --------------------------------
FORMAT="$ROOT/docs/FORMAT.md"
if [ -f "$FORMAT" ]; then
  # Every "FORMAT.md §N[.M]" citation in the code must resolve to a real
  # heading ("## N." or "### N.M") — a renumbered or deleted section may
  # not leave dangling references behind.
  grep -rhoE 'FORMAT\.md §[0-9]+(\.[0-9]+)?' \
      "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" 2>/dev/null \
    | grep -oE '[0-9]+(\.[0-9]+)?' | sort -u > "$TMP/anchors.txt"
  while IFS= read -r anchor; do
    if ! grep -qE "^##+ $anchor([. ]|$)" "$FORMAT"; then
      echo "check_docs: code cites FORMAT.md §$anchor but docs/FORMAT.md has no such section" >&2
      MISSING=1
    fi
  done < "$TMP/anchors.txt"
  # Every segment-encoding wire name the store implements must appear in
  # the §5 spec (between "## 5." and the next "## "): an encoding cannot
  # ship without its byte-level specification.
  awk '/^## 5\./{s=1; next} /^## /{s=0} s' "$FORMAT" > "$TMP/sec5.txt"
  for enc in raw delta_varint for dict rle; do
    if ! grep -qE "\`$enc\`|\($enc\)|tag [0-9]+.*$enc|$enc.*tag [0-9]+" \
        "$TMP/sec5.txt"; then
      echo "check_docs: segment encoding '$enc' is not specified in docs/FORMAT.md §5" >&2
      MISSING=1
    fi
  done
fi

if [ "$MISSING" -ne 0 ]; then
  echo "check_docs: README.md is out of date (see above)" >&2
  exit 1
fi
ANCHORS=0
[ -f "$TMP/anchors.txt" ] && ANCHORS=$(wc -l < "$TMP/anchors.txt")
echo "check_docs: OK ($(wc -l < "$TMP/flags.txt") flags, $(wc -l < "$TMP/envs.txt") env vars, $ANCHORS format anchors documented)"
