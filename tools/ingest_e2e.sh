#!/bin/sh
# End-to-end test of the streaming write path: starts tgzd with a small
# compaction threshold, then drives the full ingest lifecycle through tgz:
#   - `tgz ingest --connect` appends text-grammar events; the ack names
#     the WAL sequence and snapshot epoch,
#   - queries against the live directory see every acknowledged batch,
#   - crossing the delta threshold triggers a background compaction that
#     writes a gen-NNNNNN.tgs base generation,
#   - kill -9 mid-stream loses nothing: restart replays the CURRENT
#     generation plus the WAL tail and answers the same query with the
#     same result,
#   - local (serverless) `tgz ingest` + `tgz query` work against their
#     own directory, including an explicit --compact.
#
# Usage: ingest_e2e.sh <tgz> <tgzd>
set -e
TGZ="$1"
TGZD="$2"
[ -x "$TGZ" ] && [ -x "$TGZD" ] || { echo "usage: $0 <tgz> <tgzd>" >&2; exit 2; }

DIR="$(mktemp -d)"
LIVE="$DIR/live"
TGZD_PID=""
cleanup() {
  [ -n "$TGZD_PID" ] && kill -9 "$TGZD_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

start_tgzd() {
  : > "$DIR/tgzd.out"
  "$TGZD" --port 0 --workers 2 --ingest-delta-events 6 \
      > "$DIR/tgzd.out" 2> "$DIR/tgzd.err" &
  TGZD_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^tgraphd listening on port \([0-9]*\)$/\1/p' "$DIR/tgzd.out")
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "tgzd never reported its port" >&2; exit 1; }
}

start_tgzd

cat > "$DIR/query.tql" <<EOF
LOAD '$LIVE' AS g;
INFO g;
SNAPSHOT g AT 50;
EOF

# --- first batch: WAL-durable and immediately queryable --------------------
cat > "$DIR/batch1.events" <<EOF
# two people and one edge (comments and blank lines are skipped)

add-vertex 1 1 type=person name=ada
add-vertex 2 2 type=person name=grace
add-edge 9 1 2 3 type=knows
EOF
"$TGZ" ingest --graph "$LIVE" --events "$DIR/batch1.events" \
    --connect "127.0.0.1:$PORT" --horizon 1000 > "$DIR/ack1.out"
grep -q "ingested 3 events" "$DIR/ack1.out"
grep -q "seq=1" "$DIR/ack1.out"

"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/q1.out"
grep -q "vertices=2 edges=1" "$DIR/q1.out"

# --- second batch crosses the threshold: background compaction -------------
cat > "$DIR/batch2.events" <<EOF
add-vertex 3 10 type=person
add-vertex 4 11 type=person
add-vertex 5 12 type=person
add-vertex 6 13 type=person
EOF
"$TGZ" ingest --graph "$LIVE" --events "$DIR/batch2.events" \
    --connect "127.0.0.1:$PORT" > "$DIR/ack2.out"
grep -q "ingested 4 events" "$DIR/ack2.out"

# A later threshold compaction may supersede (and unlink) gen-000001.tgs
# before we look, so accept any generation; CURRENT is swung after the
# generation file lands, so poll until it names one.
GEN=""
for _ in $(seq 1 100); do
  [ -f "$LIVE/CURRENT" ] && grep -q "gen-" "$LIVE/CURRENT" && GEN=yes && break
  sleep 0.1
done
[ -n "$GEN" ] || { echo "background compaction never published a gen-*.tgs" >&2; exit 1; }

"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/q2.out"
grep -q "vertices=6 edges=1" "$DIR/q2.out"

# --- third batch stays in the WAL tail; kill -9 must not lose it -----------
printf 'add-vertex 7 20 type=person\n' | "$TGZ" ingest --graph "$LIVE" \
    --connect "127.0.0.1:$PORT" > "$DIR/ack3.out"
grep -q "ingested 1 events" "$DIR/ack3.out"
"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/q3.out"
grep -q "vertices=7 edges=1" "$DIR/q3.out"

kill -9 "$TGZD_PID"
wait "$TGZD_PID" 2>/dev/null || true
TGZD_PID=""

# Restart: CURRENT generation + WAL replay reconstruct the exact state.
start_tgzd
"$TGZ" query --script "$DIR/query.tql" --connect "127.0.0.1:$PORT" \
    > "$DIR/q4.out"
diff "$DIR/q3.out" "$DIR/q4.out"

kill "$TGZD_PID" 2>/dev/null
wait "$TGZD_PID" 2>/dev/null || true
TGZD_PID=""

# --- local (serverless) ingest against its own directory -------------------
LOCAL="$DIR/local"
"$TGZ" ingest --graph "$LOCAL" --events "$DIR/batch1.events" \
    --horizon 1000 > "$DIR/local1.out"
grep -q "ingested 3 events" "$DIR/local1.out"
"$TGZ" ingest --graph "$LOCAL" --events "$DIR/batch2.events" \
    --compact v > "$DIR/local2.out"
[ -f "$LOCAL/gen-000001.tgs" ] || { echo "--compact wrote no generation" >&2; exit 1; }

cat > "$DIR/local_query.tql" <<EOF
LOAD '$LOCAL' AS g;
INFO g;
EOF
"$TGZ" query --script "$DIR/local_query.tql" > "$DIR/local_q.out"
grep -q "vertices=6 edges=1" "$DIR/local_q.out"

echo "ingest e2e OK"
