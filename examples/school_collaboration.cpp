// The paper's running example, end to end: the TGraph of Figure 1, the
// attribute-based zoom of Figure 2 (schools as nodes, students counted,
// co-author edges re-pointed), and the window-based zoom of Figure 3
// (fiscal quarters, all/all, school resolved with `last`) — each computed
// on every physical representation to show they agree.

#include <iostream>

#include "tgraph/tgraph.h"
#include "tgraph/validate.h"

using namespace tgraph;  // NOLINT — example brevity

namespace {

VeGraph Figure1(dataflow::ExecutionContext* ctx) {
  // Ann=1 (MIT, [1,7)), Bob=2 (no school [2,5), CMU [5,9)), Cat=3 (MIT, [1,9)).
  std::vector<VeVertex> vertices = {
      {1, {1, 7}, Properties{{"type", "person"}, {"school", "MIT"}}},
      {2, {2, 5}, Properties{{"type", "person"}}},
      {2, {5, 9}, Properties{{"type", "person"}, {"school", "CMU"}}},
      {3, {1, 9}, Properties{{"type", "person"}, {"school", "MIT"}}},
  };
  std::vector<VeEdge> edges = {
      {1, 1, 2, {2, 7}, Properties{{"type", "co-author"}}},
      {2, 2, 3, {7, 9}, Properties{{"type", "co-author"}}},
  };
  return VeGraph::Create(ctx, vertices, edges);
}

void Print(const char* title, const TGraph& graph) {
  std::cout << "== " << title << "\n";
  VeGraph ve = graph.As(Representation::kVe)->Coalesce().ve();
  for (const VeVertex& v : ve.vertices().Collect()) {
    std::cout << "  " << v.ToString() << "\n";
  }
  for (const VeEdge& e : ve.edges().Collect()) {
    std::cout << "  " << e.ToString() << "\n";
  }
}

}  // namespace

int main() {
  dataflow::ExecutionContext ctx;
  TGraph g1 = TGraph::FromVe(Figure1(&ctx), /*coalesced=*/true);
  TG_CHECK_OK(ValidateVe(g1.ve()));
  Print("Figure 1: the input TGraph", g1);

  // --- Figure 2: aZoom^T ---------------------------------------------------
  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("school");
  azoom.aggregator =
      MakeAggregator("school", "name", {{"students", AggKind::kCount, ""}});
  azoom.edge_type = "collaborate";

  for (Representation rep :
       {Representation::kVe, Representation::kOg, Representation::kRg}) {
    TGraph zoomed = g1.As(rep)->AZoom(azoom)->Coalesce();
    Print((std::string("Figure 2 via ") + RepresentationName(rep)).c_str(),
          zoomed);
  }

  // --- Figure 3: wZoom^T ---------------------------------------------------
  WZoomSpec wzoom{WindowSpec::TimePoints(3), Quantifier::All(),
                  Quantifier::All(), {}, {}};
  wzoom.vertex_resolve.overrides = {{"school", Resolver::kLast}};
  for (Representation rep :
       {Representation::kVe, Representation::kOg, Representation::kRg}) {
    Print((std::string("Figure 3 via ") + RepresentationName(rep)).c_str(),
          *g1.As(rep)->WZoom(wzoom));
  }

  // Quantifier comparison of Example 2.3.
  WZoomSpec exists{WindowSpec::TimePoints(3), Quantifier::Exists(),
                   Quantifier::Exists(), {}, {}};
  Print("Example 2.3: quarters under exists/exists", *g1.WZoom(exists));

  // Chaining with representation switching (Section 5.3).
  TGraph chained = *g1.AZoom(azoom)->As(Representation::kOg)->WZoom(exists);
  Print("aZoom (VE) -> switch to OG -> wZoom", chained);
  return 0;
}
