// Quickstart: build a tiny evolving graph, zoom out structurally
// (aZoom^T) and temporally (wZoom^T), and print the results.

#include <iostream>

#include "tgraph/tgraph.h"

using namespace tgraph;  // NOLINT — example brevity

namespace {

void Print(const char* title, const TGraph& graph) {
  std::cout << "== " << title << " ("
            << RepresentationName(graph.representation()) << ")\n";
  VeGraph ve = graph.As(Representation::kVe)->Coalesce().ve();
  for (const VeVertex& v : ve.vertices().Collect()) {
    std::cout << "  " << v.ToString() << "\n";
  }
  for (const VeEdge& e : ve.edges().Collect()) {
    std::cout << "  " << e.ToString() << "\n";
  }
}

}  // namespace

int main() {
  dataflow::ExecutionContext ctx;

  // An evolving co-authorship graph: people with a "lab" attribute, and
  // collaboration edges valid over [start, end) time intervals.
  std::vector<VeVertex> vertices = {
      {1, {0, 8}, Properties{{"type", "person"}, {"lab", "db"}}},
      {2, {0, 5}, Properties{{"type", "person"}, {"lab", "ml"}}},
      {2, {5, 8}, Properties{{"type", "person"}, {"lab", "db"}}},  // moves lab
      {3, {2, 8}, Properties{{"type", "person"}, {"lab", "ml"}}},
  };
  std::vector<VeEdge> edges = {
      {1, 1, 2, {1, 7}, Properties{{"type", "coauthor"}}},
      {2, 2, 3, {3, 8}, Properties{{"type", "coauthor"}}},
  };
  TGraph graph =
      TGraph::FromVe(VeGraph::Create(&ctx, vertices, edges), /*coalesced=*/true);
  Print("input", graph);

  // Structural zoom: labs become nodes, members are counted, coauthor
  // edges become lab-to-lab collaboration edges.
  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("lab");
  azoom.aggregator =
      MakeAggregator("lab", "name", {{"members", AggKind::kCount, ""}});
  azoom.edge_type = "collaborates";
  TGraph labs = graph.AZoom(azoom)->Coalesce();
  Print("aZoom: labs instead of people", labs);

  // Temporal zoom: 4-point windows, keeping entities that exist at any
  // point of a window.
  WZoomSpec wzoom{WindowSpec::TimePoints(4), Quantifier::Exists(),
                  Quantifier::Exists(), {}, {}};
  TGraph coarse = *graph.WZoom(wzoom);
  Print("wZoom: 4-point windows, exists/exists", coarse);

  // The two compose; the engine coalesces lazily in between.
  TGraph both = *graph.AZoom(azoom)->WZoom(wzoom);
  Print("aZoom then wZoom", both);
  return 0;
}
