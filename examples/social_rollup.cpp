// Rolling up a growing social network (the SNB-style workload the paper's
// evaluation uses): zoom out structurally to first-name cohorts, zoom out
// temporally to quarters, and compare the cost of representations.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "gen/generators.h"
#include "gen/stats.h"
#include "tgraph/tgraph.h"

using namespace tgraph;  // NOLINT — example brevity

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  dataflow::ExecutionContext ctx;

  gen::SnbConfig config;
  config.num_persons = 20000;
  config.num_months = 36;
  config.avg_friendships = 12;
  config.num_first_names = 200;
  VeGraph snb = gen::GenerateSnb(&ctx, config);
  std::cout << "SNB-like dataset: " << gen::ComputeStats(snb).ToString()
            << "\n\n";
  TGraph graph = TGraph::FromVe(snb, /*coalesced=*/true);

  // Structural rollup: one node per first name, counting the cohort and
  // re-typing friendships as cohort-to-cohort affinity edges.
  AZoomSpec azoom;
  azoom.group_of = GroupByProperty("firstName");
  azoom.aggregator =
      MakeAggregator("cohort", "firstName", {{"people", AggKind::kCount, ""}});
  azoom.edge_type = "affinity";

  auto start = std::chrono::steady_clock::now();
  TGraph cohorts = graph.AZoom(azoom)->Coalesce();
  std::cout << "aZoom by firstName (VE): " << cohorts.NumVertexRecords()
            << " vertex states, " << cohorts.NumEdgeRecords()
            << " edge states in " << Seconds(start) << "s\n";

  // Largest cohorts at the final month.
  std::vector<std::pair<int64_t, std::string>> sizes;
  for (const sg::Vertex& v :
       cohorts.ve().SnapshotAt(config.num_months - 1).vertices().Collect()) {
    sizes.emplace_back(v.properties.Get("people")->AsInt(),
                       v.properties.Get("firstName")->AsString());
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::cout << "largest cohorts at month " << config.num_months - 1 << ":";
  for (size_t i = 0; i < 5 && i < sizes.size(); ++i) {
    std::cout << " " << sizes[i].second << "(" << sizes[i].first << ")";
  }
  std::cout << "\n\n";

  // Temporal rollup to quarters, requiring presence through the full
  // quarter, on two representations.
  WZoomSpec quarterly{WindowSpec::TimePoints(3), Quantifier::All(),
                      Quantifier::All(), {}, {}};
  for (Representation rep : {Representation::kVe, Representation::kOg}) {
    TGraph as_rep = *graph.As(rep);
    start = std::chrono::steady_clock::now();
    TGraph quarters = *as_rep.WZoom(quarterly);
    std::cout << "wZoom to quarters on " << RepresentationName(rep) << ": "
              << quarters.NumVertexRecords() << " vertex states in "
              << Seconds(start) << "s\n";
  }

  // Chained, with the lazy coalescing the paper describes: the aZoom output
  // stays uncoalesced until wZoom needs it.
  start = std::chrono::steady_clock::now();
  TGraph chained = *graph.AZoom(azoom)->WZoom(quarterly);
  std::cout << "\naZoom -> wZoom chained (lazy coalescing): "
            << chained.NumVertexRecords() << " vertex states in "
            << Seconds(start) << "s\n";
  return 0;
}
