// Language-evolution analysis on an NGrams-style corpus: temporal algebra
// (difference between eras), decade-level temporal zoom, and per-snapshot
// analytics — the extensions built on top of the paper's operators.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <vector>

#include "gen/generators.h"
#include "gen/stats.h"
#include "tgraph/algebra.h"
#include "tgraph/analytics.h"
#include "tgraph/slice.h"
#include "tgraph/tgraph.h"

using namespace tgraph;  // NOLINT — example brevity

int main() {
  dataflow::ExecutionContext ctx;

  gen::NGramsConfig config;
  config.num_words = 4000;
  config.num_years = 100;
  config.appearances_per_year = 1500;
  VeGraph corpus = gen::GenerateNGrams(&ctx, config);
  std::cout << "corpus: " << gen::ComputeStats(corpus).ToString() << "\n\n";
  TGraph graph = TGraph::FromVe(corpus, /*coalesced=*/true);

  // Zoom out to decades, keeping co-occurrences seen at any point of a
  // decade, then compare two eras with the temporal algebra.
  WZoomSpec decades{WindowSpec::TimePoints(10), Quantifier::Exists(),
                    Quantifier::Exists(), {}, {}};
  VeGraph by_decade = graph.WZoom(decades)->ve();
  std::cout << "decade-level graph: " << by_decade.NumEdgeRecords()
            << " co-occurrence states\n";

  VeGraph early = SliceVe(by_decade, Interval(0, 50)).Coalesce();
  VeGraph late = SliceVe(by_decade, Interval(50, 100)).Coalesce();
  std::cout << "early-era edge states:  " << early.NumEdgeRecords() << "\n";
  std::cout << "late-era edge states:   " << late.NumEdgeRecords() << "\n";

  // Temporal algebra: the strictly-quantified decade graph (pairs
  // co-occurring at least 3 of a decade's 10 years) is by construction a
  // sub-TGraph of the exists-quantified one; TemporalIntersection makes
  // that checkable.
  WZoomSpec strict{WindowSpec::TimePoints(10), Quantifier::Exists(),
                   Quantifier::AtLeast(0.3), {}, {}};
  VeGraph persistent = graph.WZoom(strict)->ve();
  VeGraph both = TemporalIntersection(
      by_decade, persistent,
      [](const Properties& a, const Properties&) { return a; });
  std::cout << "decade-persistent pairs (>= 3 years):   "
            << persistent.NumEdgeRecords() << " edge states\n";
  std::cout << "intersection with the exists graph:     "
            << both.NumEdgeRecords()
            << " edge states (subsumption: equals the line above)\n";

  // Which words gained connectivity over time? Temporal degree evolution
  // at decade granularity, then rank by (last - first) degree.
  VeGraph degrees = TemporalDegree(by_decade);
  struct Trend {
    VertexId vid;
    int64_t first = -1;
    int64_t last = -1;
  };
  std::map<VertexId, Trend> trends;
  for (const VeVertex& v : degrees.vertices().Collect()) {
    Trend& t = trends[v.vid];
    t.vid = v.vid;
    int64_t degree = v.properties.Get("degree")->AsInt();
    if (t.first < 0) t.first = degree;
    t.last = degree;
  }
  std::vector<Trend> rising;
  for (auto& [vid, t] : trends) rising.push_back(t);
  std::sort(rising.begin(), rising.end(), [](const Trend& a, const Trend& b) {
    return (a.last - a.first) > (b.last - b.first);
  });
  std::cout << "\nwords with the steepest connectivity growth (decade "
               "granularity):\n";
  for (size_t i = 0; i < 5 && i < rising.size(); ++i) {
    std::cout << "  w" << rising[i].vid << ": degree " << rising[i].first
              << " -> " << rising[i].last << "\n";
  }

  // Subgraph selection with the temporal algebra: the dense core — only
  // words whose decade-degree ever reaches 5, and the edges among them.
  std::set<VertexId> core;
  for (auto& [vid, t] : trends) {
    if (t.last >= 5 || t.first >= 5) core.insert(vid);
  }
  VeGraph dense = SubgraphVe(
      by_decade,
      [&core](VertexId vid, const Properties&) { return core.contains(vid); },
      [](EdgeId, VertexId, VertexId, const Properties&) { return true; });
  std::cout << "\ndense core: " << dense.NumVertices() << " words, "
            << dense.NumEdges() << " co-occurrence pairs\n";
  return 0;
}
