// Analyzing a volatile communication network (the WikiTalk-style workload):
// quantifier-controlled temporal zoom to find strong connections, columnar
// storage round-trip with time-ranged loading and filter pushdown, and a
// Pregel analysis of a snapshot (the paper's future-work extension).

#include <filesystem>
#include <iostream>
#include <map>

#include "gen/generators.h"
#include "gen/stats.h"
#include "sg/algorithms.h"
#include "storage/graph_io.h"
#include "tgraph/tgraph.h"

using namespace tgraph;  // NOLINT — example brevity

int main() {
  dataflow::ExecutionContext ctx;

  gen::WikiTalkConfig config;
  config.num_users = 20000;
  config.num_months = 60;
  config.events_per_user_month = 0.6;
  VeGraph wiki = gen::GenerateWikiTalk(&ctx, config);
  std::cout << "WikiTalk-like dataset: " << gen::ComputeStats(wiki).ToString()
            << "\n\n";
  TGraph graph = TGraph::FromVe(wiki, /*coalesced=*/true);

  // "To observe strong connections over a volatile evolving graph we may
  // include nodes that span the entire window and edges that span a large
  // portion of the window" (Section 2.3): nodes=all, edges=most.
  WZoomSpec strong{WindowSpec::TimePoints(6), Quantifier::All(),
                   Quantifier::Most(), {}, {}};
  TGraph strong_halves = *graph.WZoom(strong);
  WZoomSpec any{WindowSpec::TimePoints(6), Quantifier::Exists(),
                Quantifier::Exists(), {}, {}};
  TGraph any_halves = *graph.WZoom(any);
  std::cout << "half-year windows, edges=most (strong ties): "
            << strong_halves.NumEdgeRecords() << " edge states\n";
  std::cout << "half-year windows, edges=exists (any contact): "
            << any_halves.NumEdgeRecords() << " edge states\n\n";

  // Columnar storage round-trip with a date-range load. Structural sort
  // clusters each snapshot's rows, so pushdown skips most row groups.
  std::string dir =
      (std::filesystem::temp_directory_path() / "wiki_example").string();
  storage::GraphWriteOptions write_options;
  write_options.sort_order = storage::SortOrder::kStructuralLocality;
  write_options.row_group_size = 4096;
  TG_CHECK_OK(storage::WriteVeGraph(wiki, dir, write_options));
  storage::LoadOptions load_options;
  load_options.time_range = Interval(24, 36);  // one year of history
  storage::LoadMetrics metrics;
  Result<VeGraph> year = storage::LoadVeGraph(&ctx, dir, load_options, &metrics);
  TG_CHECK_OK(year.status());
  std::cout << "loaded year [24,36): " << year->NumEdgeRecords()
            << " edge states; pushdown scanned " << metrics.edge_groups_scanned
            << "/" << metrics.edge_groups_total << " edge row groups\n\n";

  // Pregel-style analytics on the communication graph of that year
  // (Section 7 names this as the system's next extension).
  sg::PropertyGraph mid_year = year->SnapshotAt(30);
  auto components = sg::ConnectedComponents(mid_year);
  std::map<sg::VertexId, int64_t> sizes;
  for (auto& [vid, component] : components.Collect()) ++sizes[component];
  int64_t largest = 0;
  for (auto& [component, size] : sizes) largest = std::max(largest, size);
  std::cout << "snapshot at month 30: " << mid_year.NumVertices()
            << " users, " << mid_year.NumEdges() << " active threads, "
            << sizes.size() << " components, largest = " << largest << "\n";
  return 0;
}
