#ifndef TGRAPH_INGEST_EVENT_H_
#define TGRAPH_INGEST_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/properties.h"
#include "common/result.h"
#include "tgraph/types.h"

namespace tgraph::ingest {

/// \brief The six change-event kinds the write path accepts — exactly the
/// operations of tgraph::TGraphBuilder, so a WAL replayed through a
/// builder produces the same graph an offline build over the same log
/// would.
enum class EventKind : uint8_t {
  kAddVertex = 0,
  kRemoveVertex = 1,
  kSetVertexProperty = 2,
  kAddEdge = 3,
  kRemoveEdge = 4,
  kSetEdgeProperty = 5,
};

const char* EventKindName(EventKind kind);

/// \brief One timestamped graph change. `id` is the vertex or edge id;
/// `src`/`dst` are meaningful only for kAddEdge; `props` carries the full
/// initial property set for adds and exactly one entry (the key being
/// set) for the two set kinds; removes carry no payload.
struct Event {
  EventKind kind = EventKind::kAddVertex;
  int64_t id = 0;
  TimePoint at = 0;
  VertexId src = 0;
  VertexId dst = 0;
  Properties props;

  bool is_vertex() const { return kind <= EventKind::kSetVertexProperty; }
  bool is_add() const {
    return kind == EventKind::kAddVertex || kind == EventKind::kAddEdge;
  }
  bool is_set() const {
    return kind == EventKind::kSetVertexProperty ||
           kind == EventKind::kSetEdgeProperty;
  }

  std::string ToString() const;  ///< The `tgz ingest` text-line form.
};

/// Appends the binary encoding of `event` (the WAL and kIngest wire form;
/// docs/FORMAT.md "tgraph-wal v1", Record payload grammar).
void EncodeEvent(const Event& event, std::string* out);

/// Decodes one event at *pos, advancing it. Structural failures and
/// payload-shape violations (a set event without exactly one entry, an
/// unknown kind byte) return IoError — WAL bytes are adversarial until
/// checksummed *and* parsed.
Result<Event> DecodeEvent(std::string_view data, size_t* pos);

/// Encodes a batch as varint count + events.
void EncodeEvents(const std::vector<Event>& events, std::string* out);
Result<std::vector<Event>> DecodeEvents(std::string_view data, size_t* pos);

/// \brief Parses the `tgz ingest` text form, one event per line:
///
///   add-vertex <vid> <at> key=value ...
///   remove-vertex <vid> <at>
///   set-vertex <vid> <at> key=value
///   add-edge <eid> <src> <dst> <at> key=value ...
///   remove-edge <eid> <at>
///   set-edge <eid> <at> key=value
///
/// Values parse as int64, then double, then true/false, else string.
/// Blank lines and lines starting with '#' are skipped.
Result<Event> ParseEventLine(std::string_view line);

/// Parses a whole text stream of event lines (errors name the line).
Result<std::vector<Event>> ParseEventText(std::string_view text);

}  // namespace tgraph::ingest

#endif  // TGRAPH_INGEST_EVENT_H_
