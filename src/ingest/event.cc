#include "ingest/event.h"

#include <cctype>
#include <charconv>

#include "storage/serde.h"

namespace tgraph::ingest {

namespace {

using storage::DeserializeProperties;
using storage::GetVarint;
using storage::PutVarint;
using storage::SerializeProperties;

uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

bool IsAddOrSet(EventKind kind) {
  return kind == EventKind::kAddVertex || kind == EventKind::kAddEdge ||
         kind == EventKind::kSetVertexProperty ||
         kind == EventKind::kSetEdgeProperty;
}

Result<std::vector<std::string_view>> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    size_t start = i;
    if (line[i] == '"') {  // quoted field, may contain spaces
      ++i;
      while (i < line.size() && line[i] != '"') ++i;
      if (i >= line.size()) {
        return Status::InvalidArgument("unterminated quote");
      }
      ++i;  // closing quote
    } else {
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        if (line[i] == '"') {
          // key="value with spaces": scan to the closing quote
          ++i;
          while (i < line.size() && line[i] != '"') ++i;
          if (i >= line.size()) {
            return Status::InvalidArgument("unterminated quote");
          }
        }
        ++i;
      }
    }
    fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

Result<int64_t> ParseInt(std::string_view field, const char* what) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Status::InvalidArgument(std::string("bad ") + what + ": '" +
                                   std::string(field) + "'");
  }
  return value;
}

PropertyValue ParseValue(std::string_view text) {
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return PropertyValue(std::string(text.substr(1, text.size() - 2)));
  }
  if (text == "true") return PropertyValue(true);
  if (text == "false") return PropertyValue(false);
  int64_t as_int = 0;
  auto [iptr, iec] =
      std::from_chars(text.data(), text.data() + text.size(), as_int);
  if (iec == std::errc() && iptr == text.data() + text.size()) {
    return PropertyValue(as_int);
  }
  double as_double = 0;
  auto [dptr, dec] =
      std::from_chars(text.data(), text.data() + text.size(), as_double);
  if (dec == std::errc() && dptr == text.data() + text.size()) {
    return PropertyValue(as_double);
  }
  return PropertyValue(std::string(text));
}

Result<Properties> ParseKeyValues(
    const std::vector<std::string_view>& fields, size_t first) {
  Properties props;
  for (size_t i = first; i < fields.size(); ++i) {
    std::string_view field = fields[i];
    size_t eq = field.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(field) + "'");
    }
    props.Set(field.substr(0, eq), ParseValue(field.substr(eq + 1)));
  }
  return props;
}

std::string FormatValue(const PropertyValue& value) {
  if (value.is_string()) return "\"" + value.AsString() + "\"";
  if (value.is_bool()) return value.AsBool() ? "true" : "false";
  return value.ToString();
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAddVertex:
      return "add-vertex";
    case EventKind::kRemoveVertex:
      return "remove-vertex";
    case EventKind::kSetVertexProperty:
      return "set-vertex";
    case EventKind::kAddEdge:
      return "add-edge";
    case EventKind::kRemoveEdge:
      return "remove-edge";
    case EventKind::kSetEdgeProperty:
      return "set-edge";
  }
  return "unknown";
}

std::string Event::ToString() const {
  std::string out = EventKindName(kind);
  out += " " + std::to_string(id);
  if (kind == EventKind::kAddEdge) {
    out += " " + std::to_string(src) + " " + std::to_string(dst);
  }
  out += " " + std::to_string(at);
  for (const auto& [key, value] : props.entries()) {
    out += " " + key + "=" + FormatValue(value);
  }
  return out;
}

void EncodeEvent(const Event& event, std::string* out) {
  out->push_back(static_cast<char>(event.kind));
  PutVarint(out, ZigZag(event.id));
  PutVarint(out, ZigZag(event.at));
  if (event.kind == EventKind::kAddEdge) {
    PutVarint(out, ZigZag(event.src));
    PutVarint(out, ZigZag(event.dst));
  }
  if (IsAddOrSet(event.kind)) {
    SerializeProperties(event.props, out);
  }
}

Result<Event> DecodeEvent(std::string_view data, size_t* pos) {
  if (*pos >= data.size()) {
    return Status::IoError("truncated event: missing kind byte");
  }
  uint8_t kind_byte = static_cast<uint8_t>(data[(*pos)++]);
  if (kind_byte > static_cast<uint8_t>(EventKind::kSetEdgeProperty)) {
    return Status::IoError("unknown event kind " + std::to_string(kind_byte));
  }
  Event event;
  event.kind = static_cast<EventKind>(kind_byte);
  TG_ASSIGN_OR_RETURN(uint64_t id, GetVarint(data, pos));
  event.id = UnZigZag(id);
  TG_ASSIGN_OR_RETURN(uint64_t at, GetVarint(data, pos));
  event.at = UnZigZag(at);
  if (event.kind == EventKind::kAddEdge) {
    TG_ASSIGN_OR_RETURN(uint64_t src, GetVarint(data, pos));
    TG_ASSIGN_OR_RETURN(uint64_t dst, GetVarint(data, pos));
    event.src = UnZigZag(src);
    event.dst = UnZigZag(dst);
  }
  if (IsAddOrSet(event.kind)) {
    TG_ASSIGN_OR_RETURN(event.props, DeserializeProperties(data, pos));
  }
  if (event.is_set() && event.props.size() != 1) {
    return Status::IoError("set event must carry exactly one property, has " +
                           std::to_string(event.props.size()));
  }
  return event;
}

void EncodeEvents(const std::vector<Event>& events, std::string* out) {
  PutVarint(out, events.size());
  for (const Event& event : events) EncodeEvent(event, out);
}

Result<std::vector<Event>> DecodeEvents(std::string_view data, size_t* pos) {
  TG_ASSIGN_OR_RETURN(uint64_t count, GetVarint(data, pos));
  // Every event encodes to at least three bytes (kind + id + at), so a
  // count above remaining/3 cannot be satisfied and is rejected before
  // any allocation.
  if (count > (data.size() - *pos) / 3) {
    return Status::IoError("event count " + std::to_string(count) +
                           " exceeds payload bytes");
  }
  std::vector<Event> events;
  // A wire-legal count can still be millions for a max-size frame, and an
  // in-memory Event is an order of magnitude bigger than its encoding —
  // cap the up-front reservation and let the vector grow amortized past
  // it rather than reserving gigabytes before the first decode fails.
  events.reserve(std::min<uint64_t>(count, 64 * 1024));
  for (uint64_t i = 0; i < count; ++i) {
    TG_ASSIGN_OR_RETURN(Event event, DecodeEvent(data, pos));
    events.push_back(std::move(event));
  }
  return events;
}

Result<Event> ParseEventLine(std::string_view line) {
  TG_ASSIGN_OR_RETURN(std::vector<std::string_view> fields, SplitFields(line));
  if (fields.empty()) {
    return Status::InvalidArgument("empty event line");
  }
  Event event;
  std::string_view verb = fields[0];
  if (verb == "add-vertex") {
    event.kind = EventKind::kAddVertex;
  } else if (verb == "remove-vertex") {
    event.kind = EventKind::kRemoveVertex;
  } else if (verb == "set-vertex") {
    event.kind = EventKind::kSetVertexProperty;
  } else if (verb == "add-edge") {
    event.kind = EventKind::kAddEdge;
  } else if (verb == "remove-edge") {
    event.kind = EventKind::kRemoveEdge;
  } else if (verb == "set-edge") {
    event.kind = EventKind::kSetEdgeProperty;
  } else {
    return Status::InvalidArgument("unknown event verb '" + std::string(verb) +
                                   "'");
  }
  const size_t id_fields = event.kind == EventKind::kAddEdge ? 3 : 1;
  if (fields.size() < 1 + id_fields + 1) {
    return Status::InvalidArgument(std::string("too few fields for ") +
                                   EventKindName(event.kind));
  }
  TG_ASSIGN_OR_RETURN(event.id, ParseInt(fields[1], "id"));
  if (event.kind == EventKind::kAddEdge) {
    TG_ASSIGN_OR_RETURN(event.src, ParseInt(fields[2], "src"));
    TG_ASSIGN_OR_RETURN(event.dst, ParseInt(fields[3], "dst"));
  }
  TG_ASSIGN_OR_RETURN(event.at, ParseInt(fields[1 + id_fields], "timestamp"));
  TG_ASSIGN_OR_RETURN(event.props, ParseKeyValues(fields, 2 + id_fields));
  if (event.is_set() && event.props.size() != 1) {
    return Status::InvalidArgument(std::string(EventKindName(event.kind)) +
                                   " takes exactly one key=value");
  }
  if (!event.is_add() && !event.is_set() && !event.props.empty()) {
    return Status::InvalidArgument(std::string(EventKindName(event.kind)) +
                                   " takes no key=value fields");
  }
  return event;
}

Result<std::vector<Event>> ParseEventText(std::string_view text) {
  std::vector<Event> events;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_number;
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.remove_suffix(1);
    }
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.front()))) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    Result<Event> event = ParseEventLine(line);
    if (!event.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + event.status().message());
    }
    events.push_back(*std::move(event));
  }
  return events;
}

}  // namespace tgraph::ingest
