#include "ingest/live_graph.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/graph_io.h"
#include "storage/store_reader.h"

namespace tgraph::ingest {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status MkDirs(const std::string& dir) {
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    partial = dir.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir '" + partial +
                             "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

Result<std::string> ReadSmallFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file at '" + path + "'");
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::string data;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (n < 0) {
    return Status::IoError("read '" + path + "': " + std::strerror(errno));
  }
  return data;
}

std::string Trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  return s;
}

/// Generation filenames in `dir` matching gen-NNNNNN.tgs, sorted (name
/// order == generation order thanks to the fixed-width counter).
std::vector<std::string> ListGenFiles(const std::string& dir) {
  std::vector<std::string> gens;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return gens;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() == 14 && name.rfind("gen-", 0) == 0 &&
        name.substr(10) == ".tgs" &&
        std::all_of(name.begin() + 4, name.begin() + 10, [](char c) {
          return c >= '0' && c <= '9';
        })) {
      gens.push_back(std::move(name));
    }
  }
  ::closedir(d);
  std::sort(gens.begin(), gens.end());
  return gens;
}

Result<int64_t> ParseMetaInt(const storage::StoreReader& reader,
                             const char* key) {
  const std::string* value = reader.FindMetadata(key);
  if (value == nullptr) {
    return Status::IoError(std::string("generation store is missing the '") +
                           key + "' metadata entry");
  }
  int64_t parsed = 0;
  auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    return Status::IoError(std::string("bad '") + key + "' metadata: '" +
                           *value + "'");
  }
  return parsed;
}

/// Writes `contents` to `path` durably via temp file + rename.
Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open '" + tmp + "': " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::IoError("write '" + tmp + "': " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status =
        Status::IoError("fsync '" + tmp + "': " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status =
        Status::IoError("rename '" + tmp + "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  FsyncParentDir(path);
  return Status::OK();
}

/// Converts a materialized graph back into seed form for the next round
/// of appends: each entity's rows become its folded History.
std::shared_ptr<const BaseState> BaseFromGraph(const VeGraph& graph,
                                               uint64_t last_seq,
                                               TimePoint watermark,
                                               uint64_t generation) {
  auto base = std::make_shared<BaseState>();
  base->last_seq = last_seq;
  base->watermark = watermark;
  base->generation = generation;
  for (const VeVertex& row : graph.vertices().Collect()) {
    base->vertex_seeds[row.vid].push_back(
        HistoryItem{row.interval, row.properties});
  }
  for (const VeEdge& row : graph.edges().Collect()) {
    BaseState::EdgeSeed& seed = base->edge_seeds[row.eid];
    seed.src = row.src;
    seed.dst = row.dst;
    seed.states.push_back(HistoryItem{row.interval, row.properties});
  }
  auto by_start = [](const HistoryItem& a, const HistoryItem& b) {
    return a.interval.start < b.interval.start;
  };
  for (auto& [vid, states] : base->vertex_seeds) {
    std::sort(states.begin(), states.end(), by_start);
  }
  for (auto& [eid, seed] : base->edge_seeds) {
    std::sort(seed.states.begin(), seed.states.end(), by_start);
  }
  return base;
}

}  // namespace

bool IsLiveDir(const std::string& dir) {
  return FileExists(dir + "/" + kCurrentFileName) ||
         FileExists(dir + "/" + kWalFileName);
}

std::string WalPathFor(const std::string& dir, const std::string& wal_dir) {
  if (wal_dir.empty()) return dir + "/" + kWalFileName;
  size_t slash = dir.find_last_of('/');
  std::string base =
      slash == std::string::npos ? dir : dir.substr(slash + 1);
  if (base.empty()) base = "graph";
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(HashBytes(dir)));
  return wal_dir + "/" + base + "-" + hash + ".wal";
}

// --- LiveSnapshot ----------------------------------------------------------

uint64_t LiveSnapshot::last_seq() const {
  return delta_->empty() ? base_->last_seq : delta_->last_seq();
}

TimePoint LiveSnapshot::watermark() const {
  return std::max(base_->watermark, delta_->max_event_time());
}

Result<const VeGraph*> LiveSnapshot::Graph() const {
  std::call_once(merge_once_, [this] {
    obs::Span span("ingest.merge", "ingest");
    TGraphBuilder builder(ctx_);
    for (const auto& [vid, states] : base_->vertex_seeds) {
      builder.SeedVertex(vid, states);
    }
    for (const auto& [eid, seed] : base_->edge_seeds) {
      builder.SeedEdge(eid, seed.src, seed.dst, seed.states);
    }
    delta_->ApplyToBuilder(&builder);
    Result<VeGraph> merged = builder.Finish(horizon_);
    if (!merged.ok()) {
      // Batches are validated before acknowledgement, so this indicates a
      // bug or on-disk tampering, not a user error.
      merge_status_ = merged.status();
      return;
    }
    merged_ = *std::move(merged);
  });
  TG_RETURN_IF_ERROR(merge_status_);
  return &*merged_;
}

// --- LiveGraph -------------------------------------------------------------

std::string LiveGraph::CurrentPath() const {
  return dir_ + "/" + kCurrentFileName;
}

std::string LiveGraph::GenPath(uint64_t generation) const {
  char name[32];
  std::snprintf(name, sizeof(name), "gen-%06llu.tgs",
                static_cast<unsigned long long>(generation));
  return dir_ + "/" + name;
}

Result<std::shared_ptr<const BaseState>> LiveGraph::LoadBase(
    const std::string& gen_file) {
  if (gen_file == "none") return std::make_shared<const BaseState>();
  const std::string path = dir_ + "/" + gen_file;
  TG_ASSIGN_OR_RETURN(std::unique_ptr<storage::StoreReader> reader,
                      storage::StoreReader::Open(path));
  TG_ASSIGN_OR_RETURN(int64_t last_seq,
                      ParseMetaInt(*reader, kMetaIngestLastSeq));
  TG_ASSIGN_OR_RETURN(int64_t watermark,
                      ParseMetaInt(*reader, kMetaIngestWatermark));
  TG_ASSIGN_OR_RETURN(int64_t horizon,
                      ParseMetaInt(*reader, kMetaIngestHorizon));
  TG_ASSIGN_OR_RETURN(int64_t generation,
                      ParseMetaInt(*reader, kMetaIngestGeneration));
  TG_ASSIGN_OR_RETURN(VeGraph graph,
                      storage::LoadVeGraphFromStore(ctx_, *reader));
  horizon_ = horizon;
  return BaseFromGraph(graph, static_cast<uint64_t>(last_seq), watermark,
                       static_cast<uint64_t>(generation));
}

Result<std::unique_ptr<LiveGraph>> LiveGraph::Open(
    dataflow::ExecutionContext* ctx, const std::string& dir,
    Options options) {
  TG_RETURN_IF_ERROR(MkDirs(dir));
  std::unique_ptr<LiveGraph> live(new LiveGraph(ctx, dir, std::move(options)));
  live->horizon_ = live->options_.horizon;

  // Resolve the base generation through the CURRENT pointer; fall back to
  // the newest generation on disk when the pointer is absent (a
  // hand-assembled directory — no crash window produces this state).
  std::string gen_file = "none";
  Result<std::string> current = ReadSmallFile(live->CurrentPath());
  if (current.ok()) {
    gen_file = Trim(*std::move(current));
    if (gen_file.empty()) gen_file = "none";
  } else if (!current.status().IsNotFound()) {
    return current.status();
  } else {
    std::vector<std::string> gens = ListGenFiles(dir);
    if (!gens.empty()) gen_file = gens.back();
  }
  TG_ASSIGN_OR_RETURN(std::shared_ptr<const BaseState> base,
                      live->LoadBase(gen_file));

  // A generation not referenced by CURRENT is an orphan from a crash
  // between writing the file and swinging the pointer; its batches are
  // still in the WAL, so deleting it loses nothing.
  for (const std::string& gen : ListGenFiles(dir)) {
    if (gen != gen_file) ::unlink((dir + "/" + gen).c_str());
  }

  const std::string wal_path = live->options_.wal_path.empty()
                                   ? dir + "/" + kWalFileName
                                   : live->options_.wal_path;
  WalHeader create_header;
  create_header.horizon = live->horizon_;
  create_header.base_seq = base->last_seq;
  WalReplay replay;
  TG_ASSIGN_OR_RETURN(live->wal_,
                      Wal::Open(wal_path, create_header,
                                live->options_.sync, &replay));
  if (replay.header.base_seq > base->last_seq) {
    return Status::IoError(
        "WAL at '" + wal_path + "' starts after sequence " +
        std::to_string(replay.header.base_seq) +
        " but the base generation only covers up to " +
        std::to_string(base->last_seq) + ": acknowledged events are missing");
  }
  if (base->generation > 0 && replay.header.horizon != live->horizon_) {
    return Status::IoError(
        "WAL horizon " + std::to_string(replay.header.horizon) +
        " does not match the base generation's horizon " +
        std::to_string(live->horizon_));
  }
  live->horizon_ = replay.header.horizon;

  // Rebuild the delta, skipping records already folded into the base
  // (left behind when a crash hit between the CURRENT swap and the WAL
  // rotation — replaying them would double-apply acknowledged events).
  std::shared_ptr<const DeltaPartition> delta = DeltaPartition::Empty();
  uint64_t max_seq = base->last_seq;
  for (WalRecord& record : replay.records) {
    if (record.seq <= base->last_seq) continue;
    max_seq = record.seq;
    delta = delta->Append(DeltaBatch{record.seq, std::move(record.events)});
  }
  live->next_seq_ = max_seq + 1;
  live->watermark_ = std::max(base->watermark, delta->max_event_time());

  {
    std::lock_guard<std::mutex> lock(live->mu_);
    live->Publish(std::move(base), std::move(delta));
  }

  // Make sure the directory is recognizably live even when the WAL lives
  // elsewhere (--wal-dir) and nothing has been compacted yet.
  if (!FileExists(live->CurrentPath())) {
    TG_RETURN_IF_ERROR(
        WriteFileAtomic(live->CurrentPath(), gen_file + "\n"));
  }

  if (live->options_.delta_events_threshold > 0 ||
      live->options_.compact_interval_ms > 0) {
    live->compactor_ = std::thread([graph = live.get()] {
      graph->CompactorLoop();
    });
  }
  return live;
}

LiveGraph::~LiveGraph() { (void)Close(); }

std::shared_ptr<const LiveSnapshot> LiveGraph::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

uint64_t LiveGraph::Publish(std::shared_ptr<const BaseState> base,
                            std::shared_ptr<const DeltaPartition> delta) {
  static obs::Gauge* epoch_gauge =
      obs::MetricsRegistry::Global().GetGauge(obs::metric_names::kIngestEpoch);
  static obs::Gauge* delta_gauge = obs::MetricsRegistry::Global().GetGauge(
      obs::metric_names::kIngestDeltaEvents);

  ++epoch_;
  auto snap = std::shared_ptr<const LiveSnapshot>(new LiveSnapshot(
      epoch_, horizon_, std::move(base), std::move(delta), ctx_));
  epoch_gauge->Set(static_cast<int64_t>(epoch_));
  delta_gauge->Set(static_cast<int64_t>(snap->delta_events()));
  snapshot_.store(snap, std::memory_order_release);
  return epoch_;
}

Status LiveGraph::ValidateBatch(const LiveSnapshot& snap,
                                const std::vector<Event>& events) const {
  // Seed only the entities the batch touches (plus the endpoint vertices
  // of touched edges, which edge validation consults), replay their
  // existing delta events, then the batch: a Finish() error means the
  // batch is inconsistent with the graph as acknowledged so far.
  std::set<VertexId> vids;
  std::set<EdgeId> eids;
  for (const Event& event : events) {
    if (event.is_vertex()) {
      vids.insert(event.id);
    } else {
      eids.insert(event.id);
      if (event.kind == EventKind::kAddEdge) {
        vids.insert(event.src);
        vids.insert(event.dst);
      }
    }
  }
  const BaseState& base = *snap.base_;
  const DeltaPartition& delta = *snap.delta_;
  for (EdgeId eid : eids) {
    VertexId src = 0;
    VertexId dst = 0;
    if (delta.FindEdgeEndpoints(eid, &src, &dst)) {
      vids.insert(src);
      vids.insert(dst);
    } else if (auto it = base.edge_seeds.find(eid);
               it != base.edge_seeds.end()) {
      vids.insert(it->second.src);
      vids.insert(it->second.dst);
    }
  }

  TGraphBuilder builder(ctx_);
  for (VertexId vid : vids) {
    if (auto it = base.vertex_seeds.find(vid); it != base.vertex_seeds.end()) {
      builder.SeedVertex(vid, it->second);
    }
    for (const Event* event : delta.EventsForVertex(vid)) {
      ApplyEventToBuilder(*event, &builder);
    }
  }
  for (EdgeId eid : eids) {
    if (auto it = base.edge_seeds.find(eid); it != base.edge_seeds.end()) {
      builder.SeedEdge(eid, it->second.src, it->second.dst,
                       it->second.states);
    }
    for (const Event* event : delta.EventsForEdge(eid)) {
      ApplyEventToBuilder(*event, &builder);
    }
  }
  for (const Event& event : events) {
    ApplyEventToBuilder(event, &builder);
  }
  return builder.Finish(horizon_).status();
}

Result<uint64_t> LiveGraph::Append(const std::vector<Event>& events) {
  static obs::Counter* ingested = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestEvents);
  static obs::Counter* rejected = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestRejectedBatches);

  if (events.empty()) {
    return Status::InvalidArgument("empty ingest batch");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("live graph is closed");
  for (const Event& event : events) {
    if (event.at >= horizon_) {
      rejected->Increment();
      return Status::InvalidArgument(
          "event at " + std::to_string(event.at) +
          " is not before the horizon " + std::to_string(horizon_));
    }
    if (event.at <= watermark_) {
      rejected->Increment();
      return Status::InvalidArgument(
          "event at " + std::to_string(event.at) +
          " does not advance past the ingest watermark " +
          std::to_string(watermark_) +
          " (timestamps must strictly increase between batches)");
    }
    if (event.is_set() && event.props.size() != 1) {
      rejected->Increment();
      return Status::InvalidArgument(
          std::string(EventKindName(event.kind)) +
          " must carry exactly one property");
    }
  }
  std::shared_ptr<const LiveSnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  Status valid = ValidateBatch(*snap, events);
  if (!valid.ok()) {
    rejected->Increment();
    return valid;
  }

  const uint64_t seq = next_seq_;
  TG_RETURN_IF_ERROR(wal_->Append(seq, events));  // the durability ack
  next_seq_ = seq + 1;
  for (const Event& event : events) {
    watermark_ = std::max(watermark_, event.at);
  }
  std::shared_ptr<const DeltaPartition> delta =
      snap->delta_->Append(DeltaBatch{seq, events});
  const size_t delta_events = delta->event_count();
  const uint64_t epoch = Publish(snap->base_, std::move(delta));
  ingested->Add(static_cast<int64_t>(events.size()));
  if (options_.delta_events_threshold > 0 &&
      delta_events >= options_.delta_events_threshold) {
    compact_requested_ = true;
    compact_cv_.notify_all();
  }
  lock.unlock();
  if (options_.epoch_listener) options_.epoch_listener(dir_, epoch);
  return seq;
}

Status LiveGraph::Compact() {
  static obs::Counter* compactions = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestCompactions);
  static obs::Histogram* duration =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::metric_names::kIngestCompactionMicros);

  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  std::shared_ptr<const LiveSnapshot> snap = snapshot();
  if (snap->delta_->empty()) return Status::OK();

  obs::Span span("ingest.compact", "ingest");
  const auto started = std::chrono::steady_clock::now();

  // Freeze: everything up to this sequence number folds into the new
  // generation; batches appended while we merge stay in the delta.
  const uint64_t frozen_last_seq = snap->delta_->last_seq();
  const uint64_t generation = snap->base_->generation + 1;
  const TimePoint watermark =
      std::max(snap->base_->watermark, snap->delta_->max_event_time());
  TG_ASSIGN_OR_RETURN(const VeGraph* merged, snap->Graph());

  // 1. Write the new generation and make it durable before any pointer
  //    names it.
  const std::string gen_path = GenPath(generation);
  const std::string gen_file =
      gen_path.substr(gen_path.find_last_of('/') + 1);
  std::vector<std::pair<std::string, std::string>> meta = {
      {kMetaIngestLastSeq, std::to_string(frozen_last_seq)},
      {kMetaIngestWatermark, std::to_string(watermark)},
      {kMetaIngestHorizon, std::to_string(horizon_)},
      {kMetaIngestGeneration, std::to_string(generation)},
  };
  TG_RETURN_IF_ERROR(
      storage::WriteVeStoreFile(*merged, gen_path, {}, meta));
  TG_RETURN_IF_ERROR(FsyncPath(gen_path));
  FsyncParentDir(gen_path);

  // 2. Swing CURRENT (temp + rename: readers of the directory see the old
  //    or the new generation, never a half-written pointer).
  TG_RETURN_IF_ERROR(WriteFileAtomic(CurrentPath(), gen_file + "\n"));

  std::shared_ptr<const BaseState> base =
      BaseFromGraph(*merged, frozen_last_seq, watermark, generation);

  // 3. Swap the in-memory snapshot and truncate the WAL down to the
  //    unfolded suffix. A crash before the rotation replays the folded
  //    records as duplicates, which recovery skips by sequence number.
  Status rotate_status;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<const DeltaPartition> suffix =
        snapshot_.load(std::memory_order_acquire)
            ->delta_->Suffix(frozen_last_seq);
    std::vector<WalRecord> records;
    records.reserve(suffix->batches().size());
    for (const auto& batch : suffix->batches()) {
      records.push_back(WalRecord{batch->seq, batch->events});
    }
    WalHeader header;
    header.horizon = horizon_;
    header.base_seq = frozen_last_seq;
    rotate_status = wal_->Rotate(header, records);
    epoch = Publish(std::move(base), std::move(suffix));
  }
  if (options_.epoch_listener) options_.epoch_listener(dir_, epoch);

  // 4. Drop superseded generations.
  for (const std::string& gen : ListGenFiles(dir_)) {
    if (gen != gen_file) ::unlink((dir_ + "/" + gen).c_str());
  }

  compactions->Increment();
  duration->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - started)
                       .count());
  return rotate_status;
}

void LiveGraph::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (options_.compact_interval_ms > 0) {
      compact_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.compact_interval_ms),
          [this] { return stop_ || compact_requested_; });
    } else {
      compact_cv_.wait(lock,
                       [this] { return stop_ || compact_requested_; });
    }
    if (stop_) return;
    const bool requested = compact_requested_;
    compact_requested_ = false;
    const bool due =
        requested ||
        (options_.compact_interval_ms > 0 &&
         !snapshot_.load(std::memory_order_acquire)->delta_->empty());
    if (!due) continue;
    lock.unlock();
    Status status = Compact();
    if (!status.ok()) {
      TG_LOG(WARN) << "compaction of " << dir_
                   << " failed: " << status.message();
    }
    lock.lock();
  }
}

Status LiveGraph::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::OK();
    closed_ = true;
    stop_ = true;
    compact_cv_.notify_all();
  }
  if (compactor_.joinable()) compactor_.join();
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? Status::OK() : wal_->Close();
}

// --- LiveGraphRegistry -----------------------------------------------------

void LiveGraphRegistry::set_options(LiveGraph::Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = std::move(options);
}

Result<LiveGraph*> LiveGraphRegistry::GetOrOpen(const std::string& dir,
                                                TimePoint horizon_if_create) {
  // Claim the open or wait for whoever holds it, as GraphCatalog does for
  // loads: the mutex is held for map bookkeeping only, never across
  // LiveGraph::Open, so the first open of a large graph (store load +
  // full WAL replay) does not block Find/GetOrOpen on other graphs.
  std::shared_ptr<OpenSlot> slot;
  LiveGraph::Options options;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = graphs_.find(dir);
    if (it != graphs_.end()) return it->second.get();
    auto opening = opening_.find(dir);
    if (opening == opening_.end()) {
      slot = std::make_shared<OpenSlot>();
      opening_[dir] = slot;
      options = options_;
      break;  // this thread owns the open
    }
    std::shared_ptr<OpenSlot> existing = opening->second;
    opened_cv_.wait(lock, [&] { return !existing->opening; });
    if (!existing->error.ok()) return existing->error;
    // Success: loop around and pick the graph up from graphs_.
  }

  if (horizon_if_create != 0) options.horizon = horizon_if_create;
  if (!options.wal_path.empty()) {
    // The registry-level option names a *directory* for WALs; each graph
    // gets its own file inside it.
    options.wal_path = WalPathFor(dir, options.wal_path);
  }
  Result<std::unique_ptr<LiveGraph>> graph =
      LiveGraph::Open(ctx_, dir, std::move(options));

  std::lock_guard<std::mutex> lock(mu_);
  slot->opening = false;
  opening_.erase(dir);
  if (!graph.ok()) {
    // No negative caching: the error wakes current waiters, and the next
    // GetOrOpen claims a fresh slot and retries.
    slot->error = graph.status();
    opened_cv_.notify_all();
    return graph.status();
  }
  LiveGraph* raw = graph->get();
  graphs_.emplace(dir, *std::move(graph));
  opened_cv_.notify_all();
  return raw;
}

LiveGraph* LiveGraphRegistry::Find(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(dir);
  return it == graphs_.end() ? nullptr : it->second.get();
}

void LiveGraphRegistry::CloseAll() {
  std::map<std::string, std::unique_ptr<LiveGraph>> graphs;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wait out in-flight opens: a graph finishing its open after the swap
    // below would land in the map with nobody left to close it.
    opened_cv_.wait(lock, [this] { return opening_.empty(); });
    graphs.swap(graphs_);
  }
  for (auto& [dir, graph] : graphs) {
    Status status = graph->Close();
    if (!status.ok()) {
      TG_LOG(WARN) << "closing live graph " << dir
                   << " failed: " << status.message();
    }
  }
}

}  // namespace tgraph::ingest
