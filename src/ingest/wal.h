#ifndef TGRAPH_INGEST_WAL_H_
#define TGRAPH_INGEST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "ingest/event.h"

namespace tgraph::ingest {

/// tgraph-wal v1 — the record-framed, checksummed write-ahead log of the
/// streaming ingest path. The normative byte spec lives in docs/FORMAT.md;
/// in one sentence: a fixed 32-byte header (magic, version, flags,
/// horizon, base sequence number) followed by length-prefixed records,
/// each sealed with a HashBytesFast checksum over its payload:
///
///   [header 32B] ([u32 payload_len][u64 checksum][payload])*
///   payload := varint seq, varint event_count, event*
///
/// A record is the durability unit: one acknowledged ingest batch is one
/// record, written with a single write(2) and (by default) fdatasync'd
/// before the ack. Replay accepts any valid prefix — a torn final record
/// (crash mid-append) is dropped silently because its batch was never
/// acknowledged, while a checksum mismatch on a complete record is
/// corruption of acknowledged data and surfaces as IoError.

inline constexpr char kWalMagic[8] = {'T', 'G', 'W', 'A', 'L', '0', '0', '1'};
inline constexpr uint32_t kWalVersion = 1;
/// Header flag bit: fixed-width integers are little-endian (always set).
inline constexpr uint32_t kWalFlagLittleEndian = 0x1;
/// magic(8) + version(u32) + flags(u32) + horizon(u64) + base_seq(u64).
inline constexpr size_t kWalHeaderSize = 32;
/// len(u32) + checksum(u64) preceding every record payload.
inline constexpr size_t kWalRecordFrameSize = 12;
/// Upper bound on one record's payload; larger length prefixes are
/// rejected before allocation (the bytes are adversarial until proven
/// otherwise), matching the wire protocol's frame cap.
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;

struct WalHeader {
  /// The live graph's end of time: every event is strictly before it, and
  /// entities still alive are closed at it when the graph materializes.
  TimePoint horizon = 0;
  /// Sequence number of the last record folded into the base store when
  /// this file was created (0 for a brand-new graph). Records in this
  /// file always carry larger sequence numbers; replay additionally
  /// filters against the base generation's own last_seq metadata, which
  /// is what makes a crash between compaction and log truncation replay
  /// duplicates harmlessly.
  uint64_t base_seq = 0;
};

/// One replayed record: an acknowledged ingest batch.
struct WalRecord {
  uint64_t seq = 0;
  std::vector<Event> events;
};

/// The outcome of scanning a WAL file front to back.
struct WalReplay {
  WalHeader header;
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix (header + intact records).
  uint64_t valid_bytes = 0;
  /// True when trailing bytes past the valid prefix were dropped (a torn
  /// final record or a torn header on an otherwise empty file).
  bool torn_tail = false;
};

/// Reads and validates `path` without modifying it. NotFound when the
/// file does not exist; IoError on bad magic/version/flags, a checksum
/// mismatch, an undecodable payload, or a non-increasing sequence number.
/// Truncation mid-record is NOT an error: replay stops at the valid
/// prefix and reports torn_tail.
Result<WalReplay> ReplayWalFile(const std::string& path);

/// fsync's an existing file by path (the compactor runs this on a freshly
/// written generation before pointing CURRENT at it).
Status FsyncPath(const std::string& path);

/// Best-effort fsync of the directory containing `path`, making a
/// creation or rename durable (some filesystems refuse directory fsync).
void FsyncParentDir(const std::string& path);

/// \brief Appender for one tgraph-wal v1 file.
///
/// Open() creates the file (header + fsync) when absent, or replays the
/// existing one — returning the acknowledged records through *replay —
/// and truncates a torn tail so appends continue from the valid prefix.
/// Append() is not thread-safe; the ingest layer serializes writers.
class Wal {
 public:
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const WalHeader& create_header,
                                           bool sync, WalReplay* replay);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record with a single write(2) and, when `sync` was set,
  /// fdatasync's before returning: an OK status is the durability ack.
  /// `bytes_out` (optional) reports the appended frame size.
  ///
  /// A failed append never leaves a torn frame for later appends to bury:
  /// the file is rolled back to the last acknowledged byte. If that
  /// rollback fails — or fdatasync fails, after which the kernel may have
  /// dropped dirty pages without persisting them — the WAL is *poisoned*:
  /// every further Append returns IoError until the file is reopened
  /// (Open re-scans the valid prefix) or Rotate rewrites it from scratch.
  Status Append(uint64_t seq, const std::vector<Event>& events,
                size_t* bytes_out = nullptr);

  /// Atomically replaces the log with a fresh file holding `header` and
  /// `records` (the delta batches not yet folded into the base): write to
  /// a temp path, fsync, rename over the live path. This is the
  /// compactor's "truncate the WAL" step; a crash before the rename
  /// leaves the old log, whose already-folded records replay as
  /// harmless duplicates.
  Status Rotate(const WalHeader& header, const std::vector<WalRecord>& records);

  const WalHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  uint64_t bytes() const { return bytes_; }

  Status Close();

 private:
  Wal(std::string path, bool sync) : path_(std::move(path)), sync_(sync) {}

  std::string path_;
  bool sync_ = true;
  int fd_ = -1;
  WalHeader header_;
  uint64_t bytes_ = 0;  ///< Current valid file length.
  /// Set when a failed append could not be rolled back (or a fdatasync
  /// failed): the bytes past bytes_ are untrustworthy, so appends are
  /// refused until Open or Rotate re-establishes a clean file.
  bool poisoned_ = false;
};

}  // namespace tgraph::ingest

#endif  // TGRAPH_INGEST_WAL_H_
