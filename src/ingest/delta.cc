#include "ingest/delta.h"

#include <algorithm>

namespace tgraph::ingest {

std::shared_ptr<const DeltaPartition> DeltaPartition::Empty() {
  static const std::shared_ptr<const DeltaPartition> kEmpty =
      std::make_shared<const DeltaPartition>();
  return kEmpty;
}

std::shared_ptr<const DeltaPartition> DeltaPartition::Append(
    DeltaBatch batch) const {
  auto next = std::make_shared<DeltaPartition>();
  next->batches_ = batches_;
  next->event_count_ = event_count_ + batch.events.size();
  next->max_event_time_ = max_event_time_;
  for (const Event& event : batch.events) {
    next->max_event_time_ = std::max(next->max_event_time_, event.at);
  }
  next->batches_.push_back(
      std::make_shared<const DeltaBatch>(std::move(batch)));
  return next;
}

std::shared_ptr<const DeltaPartition> DeltaPartition::Suffix(
    uint64_t after_seq) const {
  auto next = std::make_shared<DeltaPartition>();
  for (const auto& batch : batches_) {
    if (batch->seq <= after_seq) continue;
    next->event_count_ += batch->events.size();
    for (const Event& event : batch->events) {
      next->max_event_time_ = std::max(next->max_event_time_, event.at);
    }
    next->batches_.push_back(batch);
  }
  return next;
}

void DeltaPartition::ApplyToBuilder(TGraphBuilder* builder) const {
  for (const auto& batch : batches_) {
    for (const Event& event : batch->events) {
      ApplyEventToBuilder(event, builder);
    }
  }
}

std::vector<const Event*> DeltaPartition::EventsForVertex(
    VertexId vid) const {
  std::vector<const Event*> events;
  for (const auto& batch : batches_) {
    for (const Event& event : batch->events) {
      if (event.is_vertex() && event.id == vid) events.push_back(&event);
    }
  }
  return events;
}

std::vector<const Event*> DeltaPartition::EventsForEdge(EdgeId eid) const {
  std::vector<const Event*> events;
  for (const auto& batch : batches_) {
    for (const Event& event : batch->events) {
      if (!event.is_vertex() && event.id == eid) events.push_back(&event);
    }
  }
  return events;
}

bool DeltaPartition::FindEdgeEndpoints(EdgeId eid, VertexId* src,
                                       VertexId* dst) const {
  for (const auto& batch : batches_) {
    for (const Event& event : batch->events) {
      if (event.kind == EventKind::kAddEdge && event.id == eid) {
        *src = event.src;
        *dst = event.dst;
        return true;
      }
    }
  }
  return false;
}

void ApplyEventToBuilder(const Event& event, TGraphBuilder* builder) {
  switch (event.kind) {
    case EventKind::kAddVertex:
      builder->AddVertex(event.id, event.at, event.props);
      return;
    case EventKind::kRemoveVertex:
      builder->RemoveVertex(event.id, event.at);
      return;
    case EventKind::kSetVertexProperty: {
      const auto& entry = event.props.entries().front();
      builder->SetVertexProperty(event.id, event.at, entry.first,
                                 entry.second);
      return;
    }
    case EventKind::kAddEdge:
      builder->AddEdge(event.id, event.src, event.dst, event.at, event.props);
      return;
    case EventKind::kRemoveEdge:
      builder->RemoveEdge(event.id, event.at);
      return;
    case EventKind::kSetEdgeProperty: {
      const auto& entry = event.props.entries().front();
      builder->SetEdgeProperty(event.id, event.at, entry.first, entry.second);
      return;
    }
  }
}

}  // namespace tgraph::ingest
