#ifndef TGRAPH_INGEST_LIVE_GRAPH_H_
#define TGRAPH_INGEST_LIVE_GRAPH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "ingest/delta.h"
#include "ingest/event.h"
#include "ingest/wal.h"
#include "tgraph/ve.h"

namespace tgraph::ingest {

/// Default end-of-time for live graphs: every ingested event must be
/// strictly before the horizon, and still-alive entities are closed at it
/// when a snapshot materializes. 10^12 leaves room for microsecond
/// timestamps while staying printable.
inline constexpr TimePoint kDefaultHorizon = 1'000'000'000'000;

/// Name of the pointer file inside a live graph directory. It holds the
/// current base generation's filename (e.g. "gen-000003.tgs"), or the
/// literal "none" before the first compaction. Updated via write-to-temp +
/// rename, so it is always either the old or the new generation — never
/// half of each.
inline constexpr char kCurrentFileName[] = "CURRENT";

/// Default WAL filename inside a live graph directory ("wal", no
/// extension, mirroring the CURRENT pointer's bare name).
inline constexpr char kWalFileName[] = "wal";

// Footer metadata keys a compacted generation carries beyond the standard
// store keys, tying the generation back to the WAL (docs/FORMAT.md):
/// Last WAL sequence number folded into this generation.
inline constexpr char kMetaIngestLastSeq[] = "ingest_last_seq";
/// Largest event timestamp folded into this generation.
inline constexpr char kMetaIngestWatermark[] = "ingest_watermark";
/// The live graph's end of time.
inline constexpr char kMetaIngestHorizon[] = "ingest_horizon";
/// This generation's number (also in the filename, authoritative here).
inline constexpr char kMetaIngestGeneration[] = "ingest_generation";

/// Whether `dir` is a live (streaming-ingest) graph directory: it has a
/// CURRENT pointer or a WAL. The server catalog uses this to route loads
/// through the LiveGraphRegistry instead of the static store loaders.
bool IsLiveDir(const std::string& dir);

/// The WAL path for live graph `dir`: `dir/wal` by default, or — when
/// `wal_dir` is non-empty (tgraphd --wal-dir, e.g. a faster device) —
/// `wal_dir/<basename>-<hash>.wal`, the hash disambiguating graphs whose
/// directories share a basename.
std::string WalPathFor(const std::string& dir, const std::string& wal_dir);

/// \brief The immutable base of a live graph: the newest compacted
/// generation, reloaded into seed form so the next merge or compaction can
/// continue the builder's replay exactly where the offline fold stopped.
struct BaseState {
  /// Seeded states per entity (empty maps before the first compaction).
  std::map<VertexId, History> vertex_seeds;
  struct EdgeSeed {
    VertexId src = 0;
    VertexId dst = 0;
    History states;
  };
  std::map<EdgeId, EdgeSeed> edge_seeds;
  /// Last WAL sequence number folded into this generation (0 = none).
  uint64_t last_seq = 0;
  /// Largest event timestamp folded into this generation. Every later
  /// event must be strictly greater — the monotonicity that makes seeded
  /// replay equivalent to an offline rebuild.
  TimePoint watermark = std::numeric_limits<TimePoint>::min();
  uint64_t generation = 0;  ///< 0 before the first compaction.
};

/// \brief A consistent, immutable view of a live graph: base generation +
/// frozen delta at one publication instant. Reads are completely lock-free
/// — grab the snapshot (one atomic shared_ptr load), then everything
/// reachable from it is frozen. Writers publish a *new* snapshot for every
/// acknowledged batch and every compaction; they never mutate an old one,
/// so a reader holding epoch N can never observe a partial batch from
/// epoch N+1.
class LiveSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  uint64_t generation() const { return base_->generation; }
  TimePoint horizon() const { return horizon_; }
  uint64_t last_seq() const;
  size_t delta_events() const { return delta_->event_count(); }

  /// Largest event timestamp folded into the base generation
  /// (TimePoint::min before the first compaction). Events at or before
  /// this are no longer individually addressable — they live only in the
  /// compacted seeds — which is what forces a view that missed epochs
  /// past a compaction onto the full-recompute path.
  TimePoint base_watermark() const { return base_->watermark; }

  /// Largest event timestamp visible in this snapshot: the base
  /// watermark, advanced by any delta events (TimePoint::min for an empty
  /// graph). Append() admits only strictly larger timestamps, so between
  /// two snapshots the graph can differ only on times in
  /// (watermark_old, horizon) — the suffix property incremental view
  /// maintenance splices on.
  TimePoint watermark() const;

  /// The frozen delta partition (never null; may be empty).
  const DeltaPartition& delta() const { return *delta_; }

  /// The merged base-plus-delta graph, materialized lazily on first use
  /// and cached for the snapshot's lifetime (concurrent callers
  /// synchronize on a once_flag; the result is immutable after that).
  Result<const VeGraph*> Graph() const;

 private:
  friend class LiveGraph;
  LiveSnapshot(uint64_t epoch, TimePoint horizon,
               std::shared_ptr<const BaseState> base,
               std::shared_ptr<const DeltaPartition> delta,
               dataflow::ExecutionContext* ctx)
      : epoch_(epoch),
        horizon_(horizon),
        base_(std::move(base)),
        delta_(std::move(delta)),
        ctx_(ctx) {}

  uint64_t epoch_ = 0;
  TimePoint horizon_ = kDefaultHorizon;
  std::shared_ptr<const BaseState> base_;
  std::shared_ptr<const DeltaPartition> delta_;
  dataflow::ExecutionContext* ctx_ = nullptr;

  mutable std::once_flag merge_once_;
  mutable Status merge_status_ = Status::OK();
  mutable std::optional<VeGraph> merged_;
};

/// \brief One live (write-accepting) graph: WAL + delta partition + base
/// generation, with snapshot-isolated reads and LSM-style compaction.
///
/// Writers call Append(); an OK return means the batch is WAL-durable
/// (fdatasync'd by default) and visible to every snapshot taken from then
/// on. A background compactor (or an explicit Compact() call) freezes the
/// delta, merges it with the base through the seeded TGraphBuilder, writes
/// a new `gen-NNNNNN.tgs` tgraph-store v2 generation, swaps the CURRENT
/// pointer, and truncates the WAL to the unfolded suffix. Every crash
/// window in that sequence recovers: replay skips records already folded
/// into the base generation (by sequence number), so duplicates are
/// harmless and acknowledged events are never lost.
class LiveGraph {
 public:
  struct Options {
    /// WAL location override; empty means `<dir>/wal`.
    std::string wal_path;
    /// End of time for a graph created by this open (an existing WAL's
    /// header wins over this value).
    TimePoint horizon = kDefaultHorizon;
    /// fdatasync every append before acknowledging (disable only in
    /// benchmarks that accept losing the tail on power failure).
    bool sync = true;
    /// Compact when the delta holds at least this many events (0 disables
    /// size-triggered compaction).
    size_t delta_events_threshold = 4096;
    /// Also compact on this cadence when the delta is non-empty (0
    /// disables time-triggered compaction).
    int64_t compact_interval_ms = 0;
    /// Invoked (outside internal locks) after each new snapshot
    /// publication — the server uses this to scope result-cache
    /// invalidation to the one graph that changed.
    std::function<void(const std::string& dir, uint64_t epoch)>
        epoch_listener;
  };

  /// Opens (creating if necessary) the live graph in `dir`: loads the
  /// CURRENT base generation, replays the WAL into the delta (skipping
  /// already-folded records), deletes orphaned generations, publishes the
  /// first snapshot, and starts the compactor thread if configured.
  static Result<std::unique_ptr<LiveGraph>> Open(
      dataflow::ExecutionContext* ctx, const std::string& dir,
      Options options);

  ~LiveGraph();
  LiveGraph(const LiveGraph&) = delete;
  LiveGraph& operator=(const LiveGraph&) = delete;

  /// Validates, logs, and publishes one batch; returns its WAL sequence
  /// number. InvalidArgument rejects the whole batch atomically (nothing
  /// logged, nothing visible) on: an empty batch, an event at or after
  /// the horizon, an event at or before the ingest watermark (timestamps
  /// must advance between batches), or a batch that is inconsistent with
  /// the current graph (double add, remove of an absent entity, edge with
  /// an absent endpoint, ...).
  Result<uint64_t> Append(const std::vector<Event>& events);

  /// The current snapshot (lock-free; callers keep the shared_ptr for as
  /// long as they read from it).
  std::shared_ptr<const LiveSnapshot> snapshot() const;

  /// Synchronously folds the current delta into a new base generation.
  /// No-op when the delta is empty.
  Status Compact();

  /// Stops the compactor and closes the WAL. Idempotent.
  Status Close();

  const std::string& dir() const { return dir_; }
  TimePoint horizon() const { return horizon_; }
  uint64_t epoch() const { return snapshot()->epoch(); }

 private:
  LiveGraph(dataflow::ExecutionContext* ctx, std::string dir,
            Options options)
      : ctx_(ctx), dir_(std::move(dir)), options_(std::move(options)) {}

  std::string CurrentPath() const;
  std::string GenPath(uint64_t generation) const;

  /// Loads generation `gen_file` (or an empty base when "none") into seed
  /// form.
  Result<std::shared_ptr<const BaseState>> LoadBase(
      const std::string& gen_file);

  /// Mini-builder consistency check of `events` against the snapshot:
  /// seeds only the touched entities (plus edge endpoints), replays their
  /// existing delta events and the batch, and runs Finish. Errors reject
  /// the batch before it reaches the WAL.
  Status ValidateBatch(const LiveSnapshot& snap,
                       const std::vector<Event>& events) const;

  /// Publishes a new snapshot (epoch+1). Requires mu_ held; returns the
  /// published epoch. Callers invoke the epoch listener after unlocking.
  uint64_t Publish(std::shared_ptr<const BaseState> base,
                   std::shared_ptr<const DeltaPartition> delta);

  void CompactorLoop();

  dataflow::ExecutionContext* ctx_;
  std::string dir_;
  Options options_;
  TimePoint horizon_ = kDefaultHorizon;

  /// Serializes writers (Append) and snapshot publication.
  mutable std::mutex mu_;
  /// Serializes compactions (taken before mu_; never the reverse).
  std::mutex compact_mu_;
  std::unique_ptr<Wal> wal_;              // guarded by mu_
  uint64_t next_seq_ = 1;                 // guarded by mu_
  TimePoint watermark_ = std::numeric_limits<TimePoint>::min();  // mu_
  std::atomic<std::shared_ptr<const LiveSnapshot>> snapshot_;
  uint64_t epoch_ = 0;                    // guarded by mu_

  std::thread compactor_;
  std::condition_variable compact_cv_;
  bool stop_ = false;           // guarded by mu_
  bool compact_requested_ = false;  // guarded by mu_
  bool closed_ = false;         // guarded by mu_
};

/// \brief Process-wide table of open live graphs, keyed by directory. The
/// server's catalog routes live directories here; `tgz ingest` (local
/// mode) opens a registry of its own.
class LiveGraphRegistry {
 public:
  explicit LiveGraphRegistry(dataflow::ExecutionContext* ctx) : ctx_(ctx) {}
  ~LiveGraphRegistry() { CloseAll(); }

  /// Default options applied to graphs opened after this call. Unlike a
  /// single LiveGraph's Options, `wal_path` here names a *directory*
  /// (tgraphd --wal-dir): each graph gets its own WalPathFor file in it.
  void set_options(LiveGraph::Options options);

  /// The open live graph for `dir`, opening (or creating) it on first use.
  /// `horizon_if_create` (when nonzero) overrides the default horizon for
  /// a graph created by this call; it is ignored for graphs that already
  /// exist on disk or in the registry — their horizon is authoritative.
  Result<LiveGraph*> GetOrOpen(const std::string& dir,
                               TimePoint horizon_if_create = 0);

  /// The already-open live graph for `dir`, or nullptr.
  LiveGraph* Find(const std::string& dir) const;

  /// Closes every open graph (stopping compactors, closing WALs).
  void CloseAll();

 private:
  /// One in-flight LiveGraph::Open per directory. The registry mutex only
  /// guards the maps; the open itself (base store load, full WAL replay,
  /// fsyncs) runs outside it, so opening one large graph never stalls
  /// lookups or opens of other graphs.
  struct OpenSlot {
    bool opening = true;
    Status error;  ///< Set when the open finished unsuccessfully.
  };

  dataflow::ExecutionContext* ctx_;
  mutable std::mutex mu_;
  std::condition_variable opened_cv_;
  LiveGraph::Options options_;
  std::map<std::string, std::unique_ptr<LiveGraph>> graphs_;
  std::map<std::string, std::shared_ptr<OpenSlot>> opening_;
};

}  // namespace tgraph::ingest

#endif  // TGRAPH_INGEST_LIVE_GRAPH_H_
