#include "ingest/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/hash.h"
#include "obs/metrics.h"
#include "storage/serde.h"

namespace tgraph::ingest {

namespace {

using storage::GetVarint;
using storage::PutVarint;

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(p[i]);
  }
  return value;
}

uint64_t GetU64(const char* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(p[i]);
  }
  return value;
}

std::string EncodeHeader(const WalHeader& header) {
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&out, kWalVersion);
  PutU32(&out, kWalFlagLittleEndian);
  PutU64(&out, static_cast<uint64_t>(header.horizon));
  PutU64(&out, header.base_seq);
  return out;
}

std::string EncodeRecord(uint64_t seq, const std::vector<Event>& events) {
  std::string payload;
  PutVarint(&payload, seq);
  EncodeEvents(events, &payload);
  std::string frame;
  frame.reserve(kWalRecordFrameSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, HashBytesFast(payload));
  frame += payload;
  return frame;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no WAL at '" + path + "'");
    }
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::string data;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::IoError("read '" + path + "': " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write '" + path + "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0) {
    return Status::IoError("fdatasync '" + path + "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status status =
        Status::IoError("fsync '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

void FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

Result<WalReplay> ReplayWalFile(const std::string& path) {
  TG_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  WalReplay replay;
  if (data.size() < kWalHeaderSize) {
    // A header shorter than 32 bytes can only be a crash during file
    // creation, before anything was acknowledged: recover as empty. The
    // exception is a non-empty file that does not even start with our
    // magic — that is not a torn tgraph-wal, and clobbering it would
    // destroy someone else's data.
    if (!data.empty() &&
        std::memcmp(data.data(), kWalMagic,
                    std::min(data.size(), sizeof(kWalMagic))) != 0) {
      return Status::IoError("'" + path + "' is not a tgraph-wal v1 file");
    }
    replay.torn_tail = !data.empty();
    replay.valid_bytes = 0;
    return replay;
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a tgraph-wal v1 file");
  }
  const uint32_t version = GetU32(data.data() + 8);
  if (version != kWalVersion) {
    return Status::IoError("unsupported tgraph-wal version " +
                           std::to_string(version));
  }
  const uint32_t flags = GetU32(data.data() + 12);
  if ((flags & kWalFlagLittleEndian) == 0 ||
      (flags & ~kWalFlagLittleEndian) != 0) {
    return Status::IoError("unsupported tgraph-wal flags " +
                           std::to_string(flags));
  }
  replay.header.horizon = static_cast<TimePoint>(GetU64(data.data() + 16));
  replay.header.base_seq = GetU64(data.data() + 24);
  replay.valid_bytes = kWalHeaderSize;

  uint64_t last_seq = replay.header.base_seq;
  size_t pos = kWalHeaderSize;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordFrameSize) {
      replay.torn_tail = true;  // crash mid-frame: the batch was never acked
      break;
    }
    const uint32_t len = GetU32(data.data() + pos);
    if (len > kMaxWalRecordBytes) {
      return Status::IoError("WAL record length " + std::to_string(len) +
                             " exceeds the " +
                             std::to_string(kMaxWalRecordBytes) + " byte cap");
    }
    if (data.size() - pos - kWalRecordFrameSize < len) {
      replay.torn_tail = true;  // crash mid-payload
      break;
    }
    const uint64_t checksum = GetU64(data.data() + pos + 4);
    std::string_view payload(data.data() + pos + kWalRecordFrameSize, len);
    if (HashBytesFast(payload) != checksum) {
      // A complete record with a bad checksum is corruption of data that
      // was acknowledged — unlike a torn tail, silently dropping it would
      // lose writes, so recovery must stop and say so.
      return Status::IoError("WAL record at offset " + std::to_string(pos) +
                             " fails its checksum");
    }
    size_t payload_pos = 0;
    WalRecord record;
    TG_ASSIGN_OR_RETURN(record.seq, GetVarint(payload, &payload_pos));
    TG_ASSIGN_OR_RETURN(record.events, DecodeEvents(payload, &payload_pos));
    if (payload_pos != payload.size()) {
      return Status::IoError("WAL record at offset " + std::to_string(pos) +
                             " has trailing garbage");
    }
    if (record.seq <= last_seq) {
      return Status::IoError("WAL sequence regressed: record " +
                             std::to_string(record.seq) + " after " +
                             std::to_string(last_seq));
    }
    last_seq = record.seq;
    pos += kWalRecordFrameSize + len;
    replay.valid_bytes = pos;
    replay.records.push_back(std::move(record));
  }
  return replay;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const WalHeader& create_header,
                                       bool sync, WalReplay* replay) {
  static obs::Counter* replayed = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestWalReplayedRecords);

  Result<WalReplay> scanned = ReplayWalFile(path);
  bool fresh = false;
  if (!scanned.ok()) {
    if (!scanned.status().IsNotFound()) return scanned.status();
    fresh = true;
  } else if (scanned->valid_bytes == 0) {
    fresh = true;  // empty or torn-header file: recreate
  }

  std::unique_ptr<Wal> wal(new Wal(path, sync));
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  wal->fd_ = ::open(path.c_str(), flags, 0644);
  if (wal->fd_ < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }

  if (fresh) {
    wal->header_ = create_header;
    if (::ftruncate(wal->fd_, 0) != 0) {
      return Status::IoError("ftruncate '" + path +
                             "': " + std::strerror(errno));
    }
    TG_RETURN_IF_ERROR(WriteAll(wal->fd_, EncodeHeader(create_header), path));
    TG_RETURN_IF_ERROR(SyncFd(wal->fd_, path));
    FsyncParentDir(path);
    wal->bytes_ = kWalHeaderSize;
    if (replay != nullptr) {
      *replay = WalReplay{};
      replay->header = create_header;
      replay->valid_bytes = kWalHeaderSize;
    }
    return wal;
  }

  wal->header_ = scanned->header;
  wal->bytes_ = scanned->valid_bytes;
  replayed->Add(static_cast<int64_t>(scanned->records.size()));
  // Drop a torn tail so appends continue from the valid prefix instead of
  // burying garbage between records.
  if (scanned->torn_tail) {
    if (::ftruncate(wal->fd_, static_cast<off_t>(scanned->valid_bytes)) != 0) {
      return Status::IoError("ftruncate '" + path +
                             "': " + std::strerror(errno));
    }
    TG_RETURN_IF_ERROR(SyncFd(wal->fd_, path));
  }
  if (::lseek(wal->fd_, static_cast<off_t>(scanned->valid_bytes), SEEK_SET) <
      0) {
    return Status::IoError("lseek '" + path + "': " + std::strerror(errno));
  }
  if (replay != nullptr) *replay = *std::move(scanned);
  return wal;
}

Wal::~Wal() { (void)Close(); }

Status Wal::Append(uint64_t seq, const std::vector<Event>& events,
                   size_t* bytes_out) {
  static obs::Counter* appends = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestWalAppends);
  static obs::Counter* wal_bytes = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kIngestWalBytes);

  if (fd_ < 0) return Status::Internal("WAL is closed");
  if (poisoned_) {
    return Status::IoError("WAL at '" + path_ +
                           "' is poisoned by an earlier failed append; "
                           "reopen to recover");
  }
  const std::string frame = EncodeRecord(seq, events);
  Status written = WriteAll(fd_, frame, path_);
  if (written.ok()) {
    if (sync_) {
      Status synced = SyncFd(fd_, path_);
      if (!synced.ok()) {
        // After a failed fdatasync the kernel may have marked dirty pages
        // clean without persisting them, so no later sync can be trusted
        // to cover this file again (the "fsyncgate" failure mode): refuse
        // every further append until the WAL is reopened from a clean fd.
        poisoned_ = true;
        return Status::IoError("append to '" + path_ + "' failed (" +
                               synced.message() +
                               "); WAL poisoned until reopened");
      }
    }
  } else {
    // A failed or partial write leaves a torn frame after the valid
    // prefix with the fd offset past it; a later successful append would
    // then bury acknowledged records behind garbage that replay either
    // truncates away (losing them) or trips over (IoError). Roll the
    // file back to the last acknowledged byte — and if even that fails,
    // poison the log so no further append can widen the damage.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
      poisoned_ = true;
      return Status::IoError(
          "append to '" + path_ + "' failed (" + written.message() +
          ") and rollback to offset " + std::to_string(bytes_) +
          " also failed: " + std::strerror(errno) +
          "; WAL poisoned until reopened");
    }
    return written;
  }
  bytes_ += frame.size();
  appends->Increment();
  wal_bytes->Add(static_cast<int64_t>(frame.size()));
  if (bytes_out != nullptr) *bytes_out = frame.size();
  return Status::OK();
}

Status Wal::Rotate(const WalHeader& header,
                   const std::vector<WalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (tmp_fd < 0) {
    return Status::IoError("open '" + tmp + "': " + std::strerror(errno));
  }
  std::string contents = EncodeHeader(header);
  for (const WalRecord& record : records) {
    contents += EncodeRecord(record.seq, record.events);
  }
  Status status = WriteAll(tmp_fd, contents, tmp);
  if (status.ok()) status = SyncFd(tmp_fd, tmp);
  ::close(tmp_fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    Status renamed =
        Status::IoError("rename '" + tmp + "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return renamed;
  }
  FsyncParentDir(path_);
  // The old fd now points at an unlinked inode; reopen the live file.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (fd_ < 0) {
    return Status::IoError("reopen '" + path_ + "': " + std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::IoError("lseek '" + path_ + "': " + std::strerror(errno));
  }
  header_ = header;
  bytes_ = contents.size();
  poisoned_ = false;  // the file was rewritten from scratch on a fresh fd
  return Status::OK();
}

Status Wal::Close() {
  if (fd_ < 0) return Status::OK();
  Status status = sync_ ? SyncFd(fd_, path_) : Status::OK();
  ::close(fd_);
  fd_ = -1;
  return status;
}

}  // namespace tgraph::ingest
