#ifndef TGRAPH_INGEST_DELTA_H_
#define TGRAPH_INGEST_DELTA_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "ingest/event.h"
#include "tgraph/builder.h"

namespace tgraph::ingest {

/// One acknowledged ingest batch held in memory: the in-RAM twin of a WAL
/// record.
struct DeltaBatch {
  uint64_t seq = 0;
  std::vector<Event> events;
};

/// \brief The in-memory delta partition: every acknowledged batch that has
/// not yet been folded into the base store.
///
/// A DeltaPartition is IMMUTABLE — Append and Suffix return new partitions
/// sharing the untouched batches. The live graph publishes the current
/// partition inside an immutable Snapshot, so concurrent readers traverse
/// it with no locking at all: a reader's view is frozen at the instant it
/// grabbed the snapshot, and writers only ever swap in a fresh partition.
class DeltaPartition {
 public:
  /// The shared empty partition.
  static std::shared_ptr<const DeltaPartition> Empty();

  /// A new partition with `batch` appended (cheap: shares prior batches).
  std::shared_ptr<const DeltaPartition> Append(DeltaBatch batch) const;

  /// A new partition keeping only batches with seq > `after_seq` — the
  /// compactor's "freeze a prefix, keep the suffix" step.
  std::shared_ptr<const DeltaPartition> Suffix(uint64_t after_seq) const;

  const std::vector<std::shared_ptr<const DeltaBatch>>& batches() const {
    return batches_;
  }
  bool empty() const { return batches_.empty(); }
  size_t event_count() const { return event_count_; }
  /// Sequence number of the newest batch; 0 when empty.
  uint64_t last_seq() const {
    return batches_.empty() ? 0 : batches_.back()->seq;
  }
  /// Largest event timestamp across all batches; INT64_MIN when empty.
  TimePoint max_event_time() const { return max_event_time_; }

  /// Replays every event, in batch order, into `builder`.
  void ApplyToBuilder(TGraphBuilder* builder) const;

  /// All events touching vertex `vid` / edge `eid`, in batch order.
  /// (Pointers remain valid as long as this partition is alive.)
  std::vector<const Event*> EventsForVertex(VertexId vid) const;
  std::vector<const Event*> EventsForEdge(EdgeId eid) const;

  /// Resolves the endpoints of an edge added somewhere in this delta.
  bool FindEdgeEndpoints(EdgeId eid, VertexId* src, VertexId* dst) const;

 private:
  std::vector<std::shared_ptr<const DeltaBatch>> batches_;
  size_t event_count_ = 0;
  TimePoint max_event_time_ = std::numeric_limits<TimePoint>::min();
};

/// Replays one ingest event into a TGraphBuilder — the single translation
/// point between the wire/WAL event model and the builder's API, used by
/// the delta partition, batch validation, and the offline differential
/// tests alike (so all paths fold events identically by construction).
void ApplyEventToBuilder(const Event& event, TGraphBuilder* builder);

}  // namespace tgraph::ingest

#endif  // TGRAPH_INGEST_DELTA_H_
