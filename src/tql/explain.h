#ifndef TGRAPH_TQL_EXPLAIN_H_
#define TGRAPH_TQL_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tgraph::tql {

/// \brief One executed stage of an EXPLAIN ANALYZE plan: an operator or
/// statement with its wall time and the observable work it caused.
///
/// Counter-derived fields are deltas of the process-global
/// MetricsRegistry taken around the stage, so the numbers are exactly
/// what the cost model and the metrics endpoint see. Under concurrent
/// queries they can over-attribute (another query's shuffle landing in
/// this stage's window) — same caveat as opt::ScopedObservation.
struct StageStats {
  std::string label;   ///< Operator / statement name ("AZOOM", "LOAD"...).
  std::string detail;  ///< Source graph, representation, target, ...
  int64_t wall_us = 0;
  int64_t rows_in = -1;   ///< -1 = not applicable.
  int64_t rows_out = -1;  ///< -1 = not applicable.

  // Dataflow (shuffles and skew rebalancing).
  int64_t shuffles = 0;
  int64_t shuffle_records = 0;
  int64_t shuffle_bytes = 0;
  int64_t shuffles_rebalanced = 0;
  int64_t shuffle_hot_keys = 0;

  // Storage pushdown (v1 row groups and v2 store partitions).
  int64_t row_groups_total = 0;
  int64_t row_groups_scanned = 0;
  int64_t store_partitions_pruned = 0;
  int64_t store_partitions_decoded = 0;
  int64_t store_segment_verifies = 0;
  int64_t store_verified_bytes = 0;

  // Catalog disposition (tgraphd only; 0/0 when loading directly).
  int64_t catalog_hits = 0;
  int64_t catalog_loads = 0;

  /// One plan line: "  AZOOM g [VE]: wall_us=412 rows_in=1000 ..."
  /// Only fields the stage actually moved are printed.
  std::string ToString() const;

  /// The same data as a JSON object (for the slow-query log).
  std::string ToJson() const;
};

/// \brief Accumulates StageStats while the interpreter executes a
/// statement under EXPLAIN ANALYZE (or under the server's slow-query
/// log). Single-query scope: not thread-safe, create one per execution.
class ExplainCollector {
 public:
  /// RAII stage measurement: snapshots the relevant global counters on
  /// construction and commits the delta as one stage on destruction.
  /// A null collector makes the scope a no-op, so call sites don't
  /// branch.
  class Scope {
   public:
    Scope(ExplainCollector* collector, std::string label, std::string detail);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    void set_rows(int64_t rows_in, int64_t rows_out);
    void set_detail(std::string detail);

   private:
    ExplainCollector* collector_;
    StageStats stage_;
    int64_t start_us_ = 0;
    // Counter values at scope entry; deltas become the stage's work.
    int64_t shuffles_ = 0;
    int64_t shuffle_records_ = 0;
    int64_t shuffle_bytes_ = 0;
    int64_t shuffles_rebalanced_ = 0;
    int64_t shuffle_hot_keys_ = 0;
    int64_t row_groups_total_ = 0;
    int64_t row_groups_scanned_ = 0;
    int64_t store_partitions_pruned_ = 0;
    int64_t store_partitions_decoded_ = 0;
    int64_t store_segment_verifies_ = 0;
    int64_t store_verified_bytes_ = 0;
    int64_t catalog_hits_ = 0;
    int64_t catalog_loads_ = 0;
  };

  void Add(StageStats stage) { stages_.push_back(std::move(stage)); }
  const std::vector<StageStats>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }

  /// The rendered EXPLAIN ANALYZE report for one statement:
  ///   EXPLAIN ANALYZE <canonical>
  ///     <stage lines>
  ///   result-cache: bypass (EXPLAIN ANALYZE always re-executes)
  ///   total: wall_us=<total_us>
  std::string Render(const std::string& canonical, int64_t total_us) const;

  /// JSON array of ToJson() stages (for the slow-query log).
  std::string StagesJson() const;

 private:
  std::vector<StageStats> stages_;
};

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_EXPLAIN_H_
