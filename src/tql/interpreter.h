#ifndef TGRAPH_TQL_INTERPRETER_H_
#define TGRAPH_TQL_INTERPRETER_H_

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "tgraph/stats.h"
#include "tql/ast.h"
#include "tql/explain.h"

namespace tgraph::tql {

/// \brief The view verbs' execution surface: CREATE VIEW / DROP VIEW /
/// SHOW VIEWS / VIEW delegate here. Implemented by views::ViewRegistry
/// (declared in tql so the interpreter does not depend on src/views);
/// each method returns the statement's rendered output. A plain
/// interpreter has no catalog — views live in tgraphd, where the
/// registry subscribes to ingest epochs.
class ViewCatalog {
 public:
  virtual ~ViewCatalog() = default;
  virtual Result<std::string> CreateView(const CreateViewStatement& create) = 0;
  virtual Result<std::string> DropView(const std::string& name) = 0;
  virtual Result<std::string> ShowViews() = 0;
  /// Serves the materialized view, refreshing it to the source's current
  /// epoch first.
  virtual Result<std::string> QueryView(const std::string& name) = 0;
};

/// \brief Executes TQL statements against a named-graph environment — the
/// query-language front end the paper's conclusion plans ("we will design
/// a query language with support for the proposed temporal zoom
/// operators").
///
/// The interpreter owns the environment; graphs persist across Execute
/// calls, so a REPL session can build pipelines incrementally.
class Interpreter {
 public:
  explicit Interpreter(dataflow::ExecutionContext* ctx) : ctx_(ctx) {}

  /// Parses and executes a whole script; returns the concatenated output
  /// of its statements. Execution stops at the first failing statement.
  Result<std::string> ExecuteScript(const std::string& script);

  /// Executes one parsed statement and returns its printable output.
  Result<std::string> Execute(const Statement& statement);

  /// Looks up a graph bound by LOAD/GENERATE/SET.
  Result<TGraph> Lookup(const std::string& name) const;

  /// Graphs currently bound.
  const std::map<std::string, TGraph>& environment() const { return env_; }

  /// Hook replacing LOAD's direct storage access. tgraphd points this at
  /// its shared graph catalog so concurrent sessions reuse one loaded
  /// copy of a dataset instead of re-reading it per request. Unset (the
  /// default) means LOAD reads from disk itself.
  using Loader = std::function<Result<TGraph>(const LoadStatement&)>;
  void set_loader(Loader loader) { loader_ = std::move(loader); }

  /// Cooperative interruption: when set, checked before each statement of
  /// ExecuteScript; a non-OK return aborts the script with that status.
  /// tgraphd uses this for per-request deadlines and drain cancellation.
  using InterruptCheck = std::function<Status()>;
  void set_interrupt_check(InterruptCheck check) {
    interrupt_check_ = std::move(check);
  }

  /// When set, every zoom/slice/coalesce/convert expression records one
  /// observation (wall time, shuffle-byte delta, rows in/out, input
  /// representation) into the store — how tgraphd learns a cost profile
  /// from its own query history. The store must outlive the interpreter.
  /// Unset (the default) means no recording.
  void set_stats(opt::Stats* stats) { stats_ = stats; }

  /// When set, every executed statement and operator appends a StageStats
  /// to the collector — the engine behind EXPLAIN ANALYZE and tgraphd's
  /// slow-query log. EXPLAIN ANALYZE statements swap in their own
  /// collector for the inner statement regardless of this setting.
  /// The collector must outlive the interpreter. Unset by default.
  void set_explain(ExplainCollector* explain) { explain_ = explain; }

  /// Routes the view statements (CREATE VIEW, DROP VIEW, SHOW VIEWS,
  /// VIEW). tgraphd points this at its view registry; unset (the
  /// default), view statements fail with FailedPrecondition — views are
  /// maintained by the resident server, not per-process interpreters.
  void set_views(ViewCatalog* views) { views_ = views; }

 private:
  Result<TGraph> Evaluate(const Expr& expr);

  dataflow::ExecutionContext* ctx_;
  std::map<std::string, TGraph> env_;
  Loader loader_;
  InterruptCheck interrupt_check_;
  opt::Stats* stats_ = nullptr;
  ExplainCollector* explain_ = nullptr;
  ViewCatalog* views_ = nullptr;
};

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_INTERPRETER_H_
