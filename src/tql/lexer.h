#ifndef TGRAPH_TQL_LEXER_H_
#define TGRAPH_TQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tql/token.h"

namespace tgraph::tql {

/// \brief Tokenizes a TQL script.
///
/// Whitespace separates tokens; `--` starts a comment running to the end
/// of the line; strings are single-quoted with `''` escaping a quote.
/// Numbers may carry a leading minus and an optional fractional part.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_LEXER_H_
