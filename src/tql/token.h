#ifndef TGRAPH_TQL_TOKEN_H_
#define TGRAPH_TQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace tgraph::tql {

/// \brief Lexical categories of TQL. Keywords are identifiers; the parser
/// matches them case-insensitively so `azoom` and `AZOOM` are equivalent.
enum class TokenType {
  kIdentifier,  // azoom, school, g2
  kString,      // 'single quoted', '' escapes a quote
  kInteger,     // 42, -7
  kFloat,       // 0.5
  kSymbol,      // ; ( ) , = != < <= > >=
  kEnd,         // end of input
};

const char* TokenTypeName(TokenType type);

/// \brief One lexeme with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;

  std::string ToString() const;
};

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_TOKEN_H_
