#ifndef TGRAPH_TQL_PARSER_H_
#define TGRAPH_TQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tql/ast.h"

namespace tgraph::tql {

/// \brief Parses a TQL script (statements separated by `;`).
///
/// The grammar, in rough EBNF (keywords case-insensitive):
///
///   script     := statement (';' statement)* ';'?
///   statement  := LOAD string [FROM int TO int] AS ident
///               | GENERATE ident '(' [ident '=' number {',' ...}] ')' AS ident
///               | SET ident '=' expr
///               | STORE ident TO string [SORT (TEMPORAL|STRUCTURAL)]
///               | INFO ident | SNAPSHOT ident AT int [LIMIT int]
///               | DROP ident | LIST
///               | CREATE VIEW ident ON string AS vstage {THEN vstage}
///               | DROP VIEW ident | SHOW VIEWS | VIEW ident
///   vstage     := sourceless zoom stage: AZOOM BY ... | WZOOM WINDOW ...
///               | SLICE FROM int TO int | COALESCE
///               | CONVERT TO (VE|OG|OGC|RG)
///   expr       := AZOOM ident BY ident [AGGREGATE agg {',' agg}]
///                   [TYPE string] [EDGE TYPE string]
///               | WZOOM ident WINDOW int [POINTS|CHANGES]
///                   [NODES quant] [EDGES quant]
///                   [RESOLVE ident (FIRST|LAST|ANY) {',' ...}]
///               | SLICE ident FROM int TO int
///               | SUBGRAPH ident [WHERE pred] [EDGES WHERE pred]
///               | COALESCE ident | CONVERT ident TO (VE|OG|OGC|RG) | ident
///   agg        := COUNT '(' ')' AS ident
///               | (SUM|MIN|MAX|AVG) '(' ident ')' AS ident
///   quant      := ALL | MOST | EXISTS | ATLEAST number
///   pred       := comparison {AND comparison}
///   comparison := ident ('='|'!='|'<'|'<='|'>'|'>=') literal
///               | HAS '(' ident ')'
///   literal    := string | int | float | TRUE | FALSE
Result<std::vector<Statement>> Parse(const std::string& script);

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_PARSER_H_
