#include "tql/canonical.h"

#include <cinttypes>
#include <cstdio>

#include "tql/parser.h"

namespace tgraph::tql {

namespace {

/// Quotes a string literal the way the lexer expects it back: single
/// quotes, with embedded quotes doubled ('').
std::string QuoteString(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    out.push_back(c);
    if (c == '\'') out.push_back('\'');
  }
  out.push_back('\'');
  return out;
}

/// Shortest round-trip double rendering (%.17g always round-trips IEEE
/// doubles; shorter forms are preferred when exact).
std::string FormatDouble(double value) {
  char buffer[64];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

std::string FormatLiteral(const PropertyValue& value) {
  switch (value.type()) {
    case PropertyValue::Type::kInt:
      return std::to_string(value.AsInt());
    case PropertyValue::Type::kDouble:
      return FormatDouble(value.AsDouble());
    case PropertyValue::Type::kBool:
      return value.AsBool() ? "TRUE" : "FALSE";
    case PropertyValue::Type::kString:
      return QuoteString(value.AsString());
  }
  return "";
}

const char* ComparisonOpName(Comparison::Op op) {
  switch (op) {
    case Comparison::Op::kEq:
      return "=";
    case Comparison::Op::kNe:
      return "!=";
    case Comparison::Op::kLt:
      return "<";
    case Comparison::Op::kLe:
      return "<=";
    case Comparison::Op::kGt:
      return ">";
    case Comparison::Op::kGe:
      return ">=";
    case Comparison::Op::kHas:
      return "HAS";
  }
  return "?";
}

std::string FormatPredicate(const WherePredicate& predicate) {
  std::string out;
  for (size_t i = 0; i < predicate.size(); ++i) {
    if (i > 0) out += " AND ";
    const Comparison& c = predicate[i];
    if (c.op == Comparison::Op::kHas) {
      out += "HAS(" + c.key + ")";
    } else {
      out += c.key + " " + ComparisonOpName(c.op) + " " +
             FormatLiteral(c.literal);
    }
  }
  return out;
}

std::string FormatQuantifier(const Quantifier& q) {
  if (q.threshold() == 1.0 && !q.strict()) return "ALL";
  if (q.threshold() == 0.5 && q.strict()) return "MOST";
  if (q.threshold() == 0.0 && q.strict()) return "EXISTS";
  return "ATLEAST " + FormatDouble(q.threshold());
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

const char* ResolverName(Resolver resolver) {
  switch (resolver) {
    case Resolver::kFirst:
      return "FIRST";
    case Resolver::kLast:
      return "LAST";
    case Resolver::kAny:
      return "ANY";
  }
  return "?";
}

/// " source" for graph-bound expressions, "" for a view stage (sourceless
/// — it consumes the previous stage).
std::string FormatSource(const std::string& source) {
  return source.empty() ? "" : " " + source;
}

std::string FormatExpr(const Expr& expr) {
  if (const auto* ref = std::get_if<RefExpr>(&expr)) {
    return ref->source;
  }
  if (const auto* azoom = std::get_if<AZoomExpr>(&expr)) {
    std::string out =
        "AZOOM" + FormatSource(azoom->source) + " BY " + azoom->group_by;
    for (size_t i = 0; i < azoom->aggregates.size(); ++i) {
      const AggregateClause& agg = azoom->aggregates[i];
      out += i == 0 ? " AGGREGATE " : ", ";
      out += std::string(AggKindName(agg.kind)) + "(" + agg.input + ") AS " +
             agg.output;
    }
    if (!azoom->new_type.empty() && azoom->new_type != azoom->group_by) {
      out += " TYPE " + QuoteString(azoom->new_type);
    }
    if (!azoom->edge_type.empty()) {
      out += " EDGE TYPE " + QuoteString(azoom->edge_type);
    }
    return out;
  }
  if (const auto* wzoom = std::get_if<WZoomExpr>(&expr)) {
    std::string out = "WZOOM" + FormatSource(wzoom->source) + " WINDOW " +
                      std::to_string(wzoom->window) +
                      (wzoom->by_changes ? " CHANGES" : " POINTS");
    out += " NODES " + FormatQuantifier(wzoom->nodes);
    out += " EDGES " + FormatQuantifier(wzoom->edges);
    for (size_t i = 0; i < wzoom->resolves.size(); ++i) {
      const ResolveClause& resolve = wzoom->resolves[i];
      out += i == 0 ? " RESOLVE " : ", ";
      out += resolve.attribute + " " + ResolverName(resolve.resolver);
    }
    return out;
  }
  if (const auto* slice = std::get_if<SliceExpr>(&expr)) {
    return "SLICE" + FormatSource(slice->source) + " FROM " +
           std::to_string(slice->from) + " TO " + std::to_string(slice->to);
  }
  if (const auto* subgraph = std::get_if<SubgraphExpr>(&expr)) {
    std::string out = "SUBGRAPH " + subgraph->source;
    if (!subgraph->vertex_predicate.empty()) {
      out += " WHERE " + FormatPredicate(subgraph->vertex_predicate);
    }
    if (!subgraph->edge_predicate.empty()) {
      out += " EDGES WHERE " + FormatPredicate(subgraph->edge_predicate);
    }
    return out;
  }
  if (const auto* coalesce = std::get_if<CoalesceExpr>(&expr)) {
    return "COALESCE" + FormatSource(coalesce->source);
  }
  if (const auto* convert = std::get_if<ConvertExpr>(&expr)) {
    return "CONVERT" + FormatSource(convert->source) + " TO " +
           RepresentationName(convert->target);
  }
  return "";
}

}  // namespace

std::string Canonicalize(const Statement& statement) {
  if (const auto* load = std::get_if<LoadStatement>(&statement)) {
    std::string out = "LOAD " + QuoteString(load->path);
    if (load->range.has_value()) {
      out += " FROM " + std::to_string(load->range->start) + " TO " +
             std::to_string(load->range->end);
    }
    return out + " AS " + load->name;
  }
  if (const auto* generate = std::get_if<GenerateStatement>(&statement)) {
    std::string out = "GENERATE " + generate->dataset + "(";
    for (size_t i = 0; i < generate->params.size(); ++i) {
      if (i > 0) out += ", ";
      out += generate->params[i].first + " = " +
             FormatDouble(generate->params[i].second);
    }
    return out + ") AS " + generate->name;
  }
  if (const auto* set = std::get_if<SetStatement>(&statement)) {
    return "SET " + set->name + " = " + FormatExpr(set->expr);
  }
  if (const auto* store = std::get_if<StoreStatement>(&statement)) {
    return "STORE " + store->name + " TO " + QuoteString(store->path) +
           (store->sort == storage::SortOrder::kStructuralLocality
                ? " SORT STRUCTURAL"
                : " SORT TEMPORAL");
  }
  if (const auto* info = std::get_if<InfoStatement>(&statement)) {
    return "INFO " + info->name;
  }
  if (const auto* snapshot = std::get_if<SnapshotStatement>(&statement)) {
    return "SNAPSHOT " + snapshot->name + " AT " +
           std::to_string(snapshot->at) + " LIMIT " +
           std::to_string(snapshot->limit);
  }
  if (const auto* drop = std::get_if<DropStatement>(&statement)) {
    return "DROP " + drop->name;
  }
  if (std::get_if<ListStatement>(&statement) != nullptr) {
    return "LIST";
  }
  if (const auto* create = std::get_if<CreateViewStatement>(&statement)) {
    std::string out =
        "CREATE VIEW " + create->name + " ON " + QuoteString(create->path) +
        " AS ";
    for (size_t i = 0; i < create->stages.size(); ++i) {
      if (i > 0) out += " THEN ";
      out += FormatExpr(create->stages[i]);
    }
    return out;
  }
  if (const auto* drop_view = std::get_if<DropViewStatement>(&statement)) {
    return "DROP VIEW " + drop_view->name;
  }
  if (std::get_if<ShowViewsStatement>(&statement) != nullptr) {
    return "SHOW VIEWS";
  }
  if (const auto* view = std::get_if<ViewStatement>(&statement)) {
    return "VIEW " + view->name;
  }
  if (const auto* explain = std::get_if<ExplainStatement>(&statement)) {
    return "EXPLAIN ANALYZE " + Canonicalize(*explain->inner);
  }
  return "";
}

Result<std::string> CanonicalizeScript(const std::string& script) {
  TG_ASSIGN_OR_RETURN(std::vector<Statement> statements, Parse(script));
  std::string out;
  for (const Statement& statement : statements) {
    out += Canonicalize(statement);
    out += ";\n";
  }
  return out;
}

bool IsCacheable(const Statement& statement) {
  // STORE has filesystem side effects; EXPLAIN ANALYZE must re-execute to
  // measure, so serving it from the result cache would defeat its purpose.
  // View DDL mutates the registry, and SHOW VIEWS reports versions and
  // staleness that advance without any TQL write. VIEW itself *is*
  // cacheable — the server folds the view's version into the cache key,
  // exactly as it folds live snapshot epochs in for LOAD.
  return std::get_if<StoreStatement>(&statement) == nullptr &&
         std::get_if<ExplainStatement>(&statement) == nullptr &&
         std::get_if<CreateViewStatement>(&statement) == nullptr &&
         std::get_if<DropViewStatement>(&statement) == nullptr &&
         std::get_if<ShowViewsStatement>(&statement) == nullptr;
}

bool IsCacheableScript(const std::vector<Statement>& statements) {
  for (const Statement& statement : statements) {
    if (!IsCacheable(statement)) return false;
  }
  return true;
}

}  // namespace tgraph::tql
