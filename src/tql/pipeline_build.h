#ifndef TGRAPH_TQL_PIPELINE_BUILD_H_
#define TGRAPH_TQL_PIPELINE_BUILD_H_

#include <vector>

#include "common/result.h"
#include "tgraph/pipeline.h"
#include "tgraph/zoom_spec.h"
#include "tql/ast.h"

namespace tgraph::tql {

/// Spec construction shared by the interpreter's expression evaluator and
/// the view registry's pipeline builder, so `SET g = AZOOM ...` and
/// `CREATE VIEW ... AS AZOOM ...` can never drift apart semantically.

/// The AZoomSpec an AZOOM clause denotes (grouping, aggregates, types).
AZoomSpec BuildAZoomSpec(const AZoomExpr& expr);

/// The WZoomSpec a WZOOM clause denotes (window, quantifiers, resolves).
WZoomSpec BuildWZoomSpec(const WZoomExpr& expr);

/// Lowers a view's stage chain to a tgraph::Pipeline. Stages must be
/// sourceless AZOOM/WZOOM/SLICE/COALESCE/CONVERT expressions (the parser
/// guarantees this for CREATE VIEW; anything else is InvalidArgument).
Result<Pipeline> BuildViewPipeline(const std::vector<Expr>& stages);

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_PIPELINE_BUILD_H_
