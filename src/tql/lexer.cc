#include "tql/lexer.h"

#include <cctype>

namespace tgraph::tql {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kString:
      return "string";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "number";
    case TokenType::kSymbol:
      return "symbol";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  if (type == TokenType::kEnd) return "<end>";
  return std::string(TokenTypeName(type)) + " '" + text + "'";
}

namespace {

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

Status LexError(const std::string& message, size_t position) {
  return Status::InvalidArgument(message + " at offset " +
                                 std::to_string(position));
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentifierStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentifierChar(input[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.')) {
        if (input[i] == '.') {
          if (is_float) return LexError("malformed number", start);
          is_float = true;
        }
        ++i;
      }
      token.text = input.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::stod(token.text);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::stoll(token.text);
        token.float_value = static_cast<double>(token.int_value);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            value.push_back('\'');  // '' escapes a quote
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) return LexError("unterminated string", token.position);
      token.type = TokenType::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char symbols first.
    if ((c == '!' || c == '<' || c == '>') && i + 1 < input.size() &&
        input[i + 1] == '=') {
      token.type = TokenType::kSymbol;
      token.text = input.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == ';' || c == '(' || c == ')' || c == ',' || c == '=' || c == '<' ||
        c == '>' || c == '*') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return LexError(std::string("unexpected character '") + c + "'", i);
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace tgraph::tql
