#include "tql/interpreter.h"

#include <algorithm>

#include "gen/generators.h"
#include "gen/stats.h"
#include "obs/trace.h"
#include "tgraph/algebra.h"
#include "tql/canonical.h"
#include "tql/parser.h"
#include "tql/pipeline_build.h"

namespace tgraph::tql {

namespace {

double ParamOr(const GenerateStatement& statement, const char* key,
               double fallback) {
  for (const auto& [name, value] : statement.params) {
    if (name == key) return value;
  }
  return fallback;
}

// Evaluates one comparison against a property set.
bool Matches(const Comparison& comparison, const Properties& props) {
  const PropertyValue* value = props.Find(comparison.key);
  if (comparison.op == Comparison::Op::kHas) return value != nullptr;
  if (value == nullptr) return false;
  switch (comparison.op) {
    case Comparison::Op::kEq:
      return *value == comparison.literal;
    case Comparison::Op::kNe:
      return !(*value == comparison.literal);
    case Comparison::Op::kLt:
      return *value < comparison.literal;
    case Comparison::Op::kLe:
      return *value <= comparison.literal;
    case Comparison::Op::kGt:
      return *value > comparison.literal;
    case Comparison::Op::kGe:
      return *value >= comparison.literal;
    case Comparison::Op::kHas:
      break;
  }
  return false;
}

bool MatchesAll(const WherePredicate& predicate, const Properties& props) {
  for (const Comparison& comparison : predicate) {
    if (!Matches(comparison, props)) return false;
  }
  return true;
}

int64_t RecordCount(const TGraph& graph) {
  return static_cast<int64_t>(graph.NumVertexRecords() +
                              graph.NumEdgeRecords());
}

/// "source [REP]" — the stage detail for operators over a bound graph.
std::string StageDetail(const std::string& source, Representation rep) {
  return source + " [" + RepresentationName(rep) + "]";
}

Status NoViewCatalog() {
  return Status::InvalidArgument(
      "no view catalog: materialized views are maintained by tgraphd "
      "(connect with --connect)");
}

}  // namespace

Result<std::string> Interpreter::ExecuteScript(const std::string& script) {
  TG_ASSIGN_OR_RETURN(std::vector<Statement> statements, Parse(script));
  std::string output;
  for (const Statement& statement : statements) {
    if (interrupt_check_) TG_RETURN_IF_ERROR(interrupt_check_());
    TG_ASSIGN_OR_RETURN(std::string line, Execute(statement));
    output += line;
  }
  return output;
}

Result<TGraph> Interpreter::Lookup(const std::string& name) const {
  auto it = env_.find(name);
  if (it == env_.end()) {
    return Status::NotFound("no graph named '" + name +
                            "' (LIST shows bound names)");
  }
  return it->second;
}

Result<TGraph> Interpreter::Evaluate(const Expr& expr) {
  if (const auto* ref = std::get_if<RefExpr>(&expr)) {
    return Lookup(ref->source);
  }
  if (const auto* azoom = std::get_if<AZoomExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(azoom->source));
    AZoomSpec spec = BuildAZoomSpec(*azoom);
    const Representation rep = graph.representation();
    const bool observe = stats_ != nullptr || explain_ != nullptr;
    const int64_t rows_in = observe ? RecordCount(graph) : 0;
    ExplainCollector::Scope stage(explain_, "AZOOM",
                                  StageDetail(azoom->source, rep));
    opt::ScopedObservation observation;
    TG_ASSIGN_OR_RETURN(TGraph result, graph.AZoom(spec));
    const int64_t rows_out = RecordCount(result);
    observation.Commit(stats_, opt::OpKind::kAZoom, rep, rows_in, rows_out);
    stage.set_rows(rows_in, rows_out);
    return result;
  }
  if (const auto* wzoom = std::get_if<WZoomExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(wzoom->source));
    WZoomSpec spec = BuildWZoomSpec(*wzoom);
    const Representation rep = graph.representation();
    const bool observe = stats_ != nullptr || explain_ != nullptr;
    const int64_t rows_in = observe ? RecordCount(graph) : 0;
    ExplainCollector::Scope stage(explain_, "WZOOM",
                                  StageDetail(wzoom->source, rep));
    opt::ScopedObservation observation;
    TG_ASSIGN_OR_RETURN(TGraph result, graph.WZoom(spec));
    const int64_t rows_out = RecordCount(result);
    observation.Commit(stats_, opt::OpKind::kWZoom, rep, rows_in, rows_out);
    stage.set_rows(rows_in, rows_out);
    return result;
  }
  if (const auto* slice = std::get_if<SliceExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(slice->source));
    const Representation rep = graph.representation();
    const bool observe = stats_ != nullptr || explain_ != nullptr;
    const int64_t rows_in = observe ? RecordCount(graph) : 0;
    ExplainCollector::Scope stage(explain_, "SLICE",
                                  StageDetail(slice->source, rep));
    opt::ScopedObservation observation;
    TGraph result = graph.Slice(Interval(slice->from, slice->to));
    const int64_t rows_out = RecordCount(result);
    observation.Commit(stats_, opt::OpKind::kSlice, rep, rows_in, rows_out);
    stage.set_rows(rows_in, rows_out);
    return result;
  }
  if (const auto* subgraph = std::get_if<SubgraphExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(subgraph->source));
    ExplainCollector::Scope stage(
        explain_, "SUBGRAPH",
        StageDetail(subgraph->source, graph.representation()));
    const int64_t rows_in = explain_ != nullptr ? RecordCount(graph) : 0;
    TG_ASSIGN_OR_RETURN(TGraph as_ve, graph.As(Representation::kVe));
    WherePredicate vertex_predicate = subgraph->vertex_predicate;
    WherePredicate edge_predicate = subgraph->edge_predicate;
    VeGraph result = SubgraphVe(
        as_ve.ve(),
        [vertex_predicate](VertexId, const Properties& props) {
          return MatchesAll(vertex_predicate, props);
        },
        [edge_predicate](EdgeId, VertexId, VertexId, const Properties& props) {
          return MatchesAll(edge_predicate, props);
        });
    TGraph out = TGraph::FromVe(std::move(result), /*coalesced=*/true);
    stage.set_rows(rows_in, RecordCount(out));
    return out;
  }
  if (const auto* coalesce = std::get_if<CoalesceExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(coalesce->source));
    const Representation rep = graph.representation();
    const bool observe = stats_ != nullptr || explain_ != nullptr;
    const int64_t rows_in = observe ? RecordCount(graph) : 0;
    ExplainCollector::Scope stage(explain_, "COALESCE",
                                  StageDetail(coalesce->source, rep));
    opt::ScopedObservation observation;
    TGraph result = graph.Coalesce();
    const int64_t rows_out = RecordCount(result);
    observation.Commit(stats_, opt::OpKind::kCoalesce, rep, rows_in, rows_out);
    stage.set_rows(rows_in, rows_out);
    return result;
  }
  if (const auto* convert = std::get_if<ConvertExpr>(&expr)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(convert->source));
    const Representation rep = graph.representation();
    const bool observe = stats_ != nullptr || explain_ != nullptr;
    const int64_t rows_in = observe ? RecordCount(graph) : 0;
    ExplainCollector::Scope stage(
        explain_, "CONVERT",
        StageDetail(convert->source, rep) + " -> " +
            RepresentationName(convert->target));
    opt::ScopedObservation observation;
    TG_ASSIGN_OR_RETURN(TGraph result, graph.As(convert->target));
    const int64_t rows_out = RecordCount(result);
    observation.Commit(stats_, opt::OpKind::kConvert, rep, rows_in, rows_out);
    stage.set_rows(rows_in, rows_out);
    return result;
  }
  return Status::Internal("unhandled expression");
}

Result<std::string> Interpreter::Execute(const Statement& statement) {
  if (const auto* load = std::get_if<LoadStatement>(&statement)) {
    ExplainCollector::Scope stage(explain_, "LOAD",
                                  load->name + " '" + load->path + "'");
    if (loader_) {
      TG_ASSIGN_OR_RETURN(TGraph graph, loader_(*load));
      stage.set_rows(-1, RecordCount(graph));
      env_.insert_or_assign(load->name, std::move(graph));
      return "loaded " + load->name + " from '" + load->path + "'\n";
    }
    storage::LoadOptions options;
    options.time_range = load->range;
    TG_ASSIGN_OR_RETURN(VeGraph graph,
                        storage::LoadVeGraph(ctx_, load->path, options));
    TGraph bound = TGraph::FromVe(std::move(graph), /*coalesced=*/true);
    stage.set_rows(-1, RecordCount(bound));
    env_.insert_or_assign(load->name, std::move(bound));
    return "loaded " + load->name + " from '" + load->path + "'\n";
  }
  if (const auto* generate = std::get_if<GenerateStatement>(&statement)) {
    ExplainCollector::Scope stage(explain_, "GENERATE",
                                  generate->name + " " + generate->dataset);
    double scale = ParamOr(*generate, "scale", 1.0);
    uint64_t seed = static_cast<uint64_t>(ParamOr(*generate, "seed", 42));
    VeGraph graph;
    if (generate->dataset == "wikitalk") {
      gen::WikiTalkConfig config;
      config.num_users = static_cast<int64_t>(config.num_users * scale);
      config.num_months =
          static_cast<int64_t>(ParamOr(*generate, "months", 60));
      config.seed = seed;
      graph = gen::GenerateWikiTalk(ctx_, config);
    } else if (generate->dataset == "snb") {
      gen::SnbConfig config;
      config.num_persons = static_cast<int64_t>(config.num_persons * scale);
      config.num_months =
          static_cast<int64_t>(ParamOr(*generate, "months", 36));
      config.seed = seed;
      graph = gen::GenerateSnb(ctx_, config);
    } else if (generate->dataset == "ngrams") {
      gen::NGramsConfig config;
      config.num_words = static_cast<int64_t>(config.num_words * scale);
      config.appearances_per_year *= scale;
      config.num_years =
          static_cast<int64_t>(ParamOr(*generate, "years", 100));
      config.seed = seed;
      graph = gen::GenerateNGrams(ctx_, config);
    } else {
      return Status::InvalidArgument("unknown dataset '" + generate->dataset +
                                     "' (use wikitalk, snb, or ngrams)");
    }
    TGraph bound = TGraph::FromVe(std::move(graph), /*coalesced=*/true);
    stage.set_rows(-1, RecordCount(bound));
    env_.insert_or_assign(generate->name, std::move(bound));
    return "generated " + generate->name + " (" + generate->dataset + ")\n";
  }
  if (const auto* set = std::get_if<SetStatement>(&statement)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Evaluate(set->expr));
    env_.insert_or_assign(set->name, std::move(graph));
    return "set " + set->name + "\n";
  }
  if (const auto* store = std::get_if<StoreStatement>(&statement)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(store->name));
    ExplainCollector::Scope stage(explain_, "STORE",
                                  store->name + " '" + store->path + "'");
    stage.set_rows(RecordCount(graph), -1);
    TG_ASSIGN_OR_RETURN(TGraph as_ve, graph.As(Representation::kVe));
    storage::GraphWriteOptions options;
    options.sort_order = store->sort;
    TG_RETURN_IF_ERROR(
        storage::WriteVeGraph(as_ve.Coalesce().ve(), store->path, options));
    return "stored " + store->name + " to '" + store->path + "'\n";
  }
  if (const auto* info = std::get_if<InfoStatement>(&statement)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(info->name));
    ExplainCollector::Scope stage(
        explain_, "INFO", StageDetail(info->name, graph.representation()));
    stage.set_rows(RecordCount(graph), -1);
    TG_ASSIGN_OR_RETURN(TGraph as_ve, graph.As(Representation::kVe));
    gen::DatasetStats stats = gen::ComputeStats(as_ve.ve());
    return info->name + " [" +
           std::string(RepresentationName(graph.representation())) +
           (graph.coalesced() ? ", coalesced" : "") + "] lifetime " +
           graph.lifetime().ToString() + ": " + stats.ToString() + "\n";
  }
  if (const auto* snapshot = std::get_if<SnapshotStatement>(&statement)) {
    TG_ASSIGN_OR_RETURN(TGraph graph, Lookup(snapshot->name));
    ExplainCollector::Scope stage(
        explain_, "SNAPSHOT",
        StageDetail(snapshot->name, graph.representation()) + " AT " +
            std::to_string(snapshot->at));
    stage.set_rows(RecordCount(graph), -1);
    TG_ASSIGN_OR_RETURN(TGraph as_ve, graph.As(Representation::kVe));
    sg::PropertyGraph state = as_ve.ve().SnapshotAt(snapshot->at);
    std::string out = snapshot->name + " at " + std::to_string(snapshot->at) +
                      ": " + std::to_string(state.NumVertices()) +
                      " vertices, " + std::to_string(state.NumEdges()) +
                      " edges\n";
    for (const sg::Vertex& v : state.vertices().Take(snapshot->limit)) {
      out += "  v" + std::to_string(v.vid) + " " + v.properties.ToString() +
             "\n";
    }
    for (const sg::Edge& e : state.edges().Take(snapshot->limit)) {
      out += "  e" + std::to_string(e.eid) + " " + std::to_string(e.src) +
             "->" + std::to_string(e.dst) + " " + e.properties.ToString() +
             "\n";
    }
    return out;
  }
  if (const auto* drop = std::get_if<DropStatement>(&statement)) {
    if (env_.erase(drop->name) == 0) {
      return Status::NotFound("no graph named '" + drop->name + "'");
    }
    return "dropped " + drop->name + "\n";
  }
  if (const auto* create = std::get_if<CreateViewStatement>(&statement)) {
    if (views_ == nullptr) return NoViewCatalog();
    ExplainCollector::Scope stage(explain_, "CREATE VIEW", create->name);
    return views_->CreateView(*create);
  }
  if (const auto* drop_view = std::get_if<DropViewStatement>(&statement)) {
    if (views_ == nullptr) return NoViewCatalog();
    ExplainCollector::Scope stage(explain_, "DROP VIEW", drop_view->name);
    return views_->DropView(drop_view->name);
  }
  if (std::get_if<ShowViewsStatement>(&statement) != nullptr) {
    if (views_ == nullptr) return NoViewCatalog();
    ExplainCollector::Scope stage(explain_, "SHOW VIEWS", "");
    return views_->ShowViews();
  }
  if (const auto* view = std::get_if<ViewStatement>(&statement)) {
    if (views_ == nullptr) return NoViewCatalog();
    ExplainCollector::Scope stage(explain_, "VIEW", view->name);
    return views_->QueryView(view->name);
  }
  if (const auto* explain = std::get_if<ExplainStatement>(&statement)) {
    // Swap in a fresh collector for the inner statement so the report
    // covers exactly this statement; the outer collector (the server's
    // slow-query log) still sees the stages afterwards.
    ExplainCollector nested;
    ExplainCollector* saved = explain_;
    explain_ = &nested;
    const int64_t start_us = obs::Tracer::NowMicros();
    Result<std::string> inner = Execute(*explain->inner);
    const int64_t total_us = obs::Tracer::NowMicros() - start_us;
    explain_ = saved;
    if (saved != nullptr) {
      for (const StageStats& stage : nested.stages()) saved->Add(stage);
    }
    TG_RETURN_IF_ERROR(inner.status());
    return nested.Render(Canonicalize(*explain->inner), total_us) + *inner;
  }
  if (std::get_if<ListStatement>(&statement) != nullptr) {
    if (env_.empty()) return std::string("no graphs bound\n");
    std::string out;
    for (const auto& [name, graph] : env_) {
      out += name + " [" +
             std::string(RepresentationName(graph.representation())) +
             "] lifetime " + graph.lifetime().ToString() + "\n";
    }
    return out;
  }
  return Status::Internal("unhandled statement");
}

}  // namespace tgraph::tql
