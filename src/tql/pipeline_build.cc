#include "tql/pipeline_build.h"

#include <utility>

namespace tgraph::tql {

AZoomSpec BuildAZoomSpec(const AZoomExpr& expr) {
  AZoomSpec spec;
  spec.group_of = GroupByProperty(expr.group_by);
  std::vector<AggregateSpec> aggregates;
  for (const AggregateClause& agg : expr.aggregates) {
    aggregates.push_back(AggregateSpec{agg.output, agg.kind, agg.input});
  }
  std::string new_type = expr.new_type.empty() ? expr.group_by : expr.new_type;
  spec.aggregator =
      MakeAggregator(new_type, expr.group_by, std::move(aggregates));
  spec.edge_type = expr.edge_type;
  return spec;
}

WZoomSpec BuildWZoomSpec(const WZoomExpr& expr) {
  WZoomSpec spec{expr.by_changes ? WindowSpec::Changes(expr.window)
                                 : WindowSpec::TimePoints(expr.window),
                 expr.nodes,
                 expr.edges,
                 {},
                 {}};
  for (const ResolveClause& resolve : expr.resolves) {
    spec.vertex_resolve.overrides.emplace_back(resolve.attribute,
                                               resolve.resolver);
    spec.edge_resolve.overrides.emplace_back(resolve.attribute,
                                             resolve.resolver);
  }
  return spec;
}

Result<Pipeline> BuildViewPipeline(const std::vector<Expr>& stages) {
  Pipeline pipeline;
  for (const Expr& stage : stages) {
    if (const auto* azoom = std::get_if<AZoomExpr>(&stage)) {
      pipeline.AZoom(BuildAZoomSpec(*azoom));
    } else if (const auto* wzoom = std::get_if<WZoomExpr>(&stage)) {
      pipeline.WZoom(BuildWZoomSpec(*wzoom));
    } else if (const auto* slice = std::get_if<SliceExpr>(&stage)) {
      pipeline.Slice(Interval(slice->from, slice->to));
    } else if (std::get_if<CoalesceExpr>(&stage) != nullptr) {
      pipeline.Coalesce();
    } else if (const auto* convert = std::get_if<ConvertExpr>(&stage)) {
      pipeline.Convert(convert->target);
    } else {
      return Status::InvalidArgument(
          "view stages must be AZOOM, WZOOM, SLICE, COALESCE, or CONVERT");
    }
  }
  if (pipeline.steps().empty()) {
    return Status::InvalidArgument("a view needs at least one stage");
  }
  return pipeline;
}

}  // namespace tgraph::tql
