#include "tql/parser.h"

#include <algorithm>
#include <cctype>

#include "tql/lexer.h"

namespace tgraph::tql {

namespace {

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t n = std::char_traits<char>::length(b);
  if (a.size() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> statements;
    while (!AtEnd()) {
      if (MatchSymbol(";")) continue;  // empty statement
      TG_ASSIGN_OR_RETURN(Statement statement, ParseStatement());
      statements.push_back(std::move(statement));
      if (!AtEnd()) {
        TG_RETURN_IF_ERROR(ExpectSymbol(";"));
      }
    }
    return statements;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* keyword) const {
    return Peek().type == TokenType::kIdentifier &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  bool MatchKeyword(const char* keyword) {
    if (!PeekKeyword(keyword)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(const char* keyword) {
    if (MatchKeyword(keyword)) return Status::OK();
    return Error(std::string("expected ") + keyword);
  }

  bool MatchSymbol(const char* symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* symbol) {
    if (MatchSymbol(symbol)) return Status::OK();
    return Error(std::string("expected '") + symbol + "'");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<std::string> ExpectString(const char* what) {
    if (Peek().type != TokenType::kString) {
      return Error(std::string("expected quoted ") + what);
    }
    return Advance().text;
  }

  Result<int64_t> ExpectInteger(const char* what) {
    if (Peek().type != TokenType::kInteger) {
      return Error(std::string("expected integer ") + what);
    }
    return Advance().int_value;
  }

  Result<double> ExpectNumber(const char* what) {
    if (Peek().type != TokenType::kInteger &&
        Peek().type != TokenType::kFloat) {
      return Error(std::string("expected number ") + what);
    }
    return Advance().float_value;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("parse error: " + message + ", found " +
                                   Peek().ToString() + " at offset " +
                                   std::to_string(Peek().position));
  }

  // --- statements ----------------------------------------------------------

  Result<Statement> ParseStatement() {
    if (MatchKeyword("LOAD")) return ParseLoad();
    if (MatchKeyword("GENERATE")) return ParseGenerate();
    if (MatchKeyword("SET")) return ParseSet();
    if (MatchKeyword("STORE")) return ParseStore();
    if (MatchKeyword("INFO")) {
      TG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("graph name"));
      return Statement(InfoStatement{name});
    }
    if (MatchKeyword("SNAPSHOT")) return ParseSnapshot();
    if (MatchKeyword("DROP")) {
      if (MatchKeyword("VIEW")) {
        TG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
        return Statement(DropViewStatement{name});
      }
      TG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("graph name"));
      return Statement(DropStatement{name});
    }
    if (MatchKeyword("LIST")) return Statement(ListStatement{});
    if (MatchKeyword("CREATE")) return ParseCreateView();
    if (MatchKeyword("SHOW")) {
      TG_RETURN_IF_ERROR(ExpectKeyword("VIEWS"));
      return Statement(ShowViewsStatement{});
    }
    if (MatchKeyword("VIEW")) {
      TG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
      return Statement(ViewStatement{name});
    }
    if (MatchKeyword("EXPLAIN")) {
      TG_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
      if (PeekKeyword("EXPLAIN")) {
        return Error("EXPLAIN ANALYZE cannot be nested");
      }
      TG_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
      return Statement(
          ExplainStatement{std::make_shared<Statement>(std::move(inner))});
    }
    return Error(
        "expected LOAD, GENERATE, SET, STORE, INFO, SNAPSHOT, DROP, LIST, "
        "CREATE VIEW, SHOW VIEWS, VIEW, or EXPLAIN ANALYZE");
  }

  Result<Statement> ParseCreateView() {
    TG_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    CreateViewStatement create;
    TG_ASSIGN_OR_RETURN(create.name, ExpectIdentifier("view name"));
    TG_RETURN_IF_ERROR(ExpectKeyword("ON"));
    TG_ASSIGN_OR_RETURN(create.path, ExpectString("graph directory"));
    TG_RETURN_IF_ERROR(ExpectKeyword("AS"));
    do {
      TG_ASSIGN_OR_RETURN(Expr stage, ParseViewStage());
      create.stages.push_back(std::move(stage));
    } while (MatchKeyword("THEN"));
    return Statement(std::move(create));
  }

  /// A sourceless pipeline stage of a view definition: each stage
  /// consumes the previous one's output, so only the operator and its
  /// clauses appear. SUBGRAPH is not a pipeline step and is rejected.
  Result<Expr> ParseViewStage() {
    if (MatchKeyword("AZOOM")) return ParseAZoom(/*with_source=*/false);
    if (MatchKeyword("WZOOM")) return ParseWZoom(/*with_source=*/false);
    if (MatchKeyword("SLICE")) return ParseSlice(/*with_source=*/false);
    if (MatchKeyword("COALESCE")) return Expr(CoalesceExpr{});
    if (MatchKeyword("CONVERT")) {
      ConvertExpr convert;
      TG_RETURN_IF_ERROR(ExpectKeyword("TO"));
      TG_ASSIGN_OR_RETURN(convert.target, ParseRepresentation());
      return Expr(std::move(convert));
    }
    return Error(
        "expected AZOOM, WZOOM, SLICE, COALESCE, or CONVERT view stage");
  }

  Result<Statement> ParseLoad() {
    LoadStatement load;
    TG_ASSIGN_OR_RETURN(load.path, ExpectString("path"));
    if (MatchKeyword("FROM")) {
      TG_ASSIGN_OR_RETURN(int64_t from, ExpectInteger("after FROM"));
      TG_RETURN_IF_ERROR(ExpectKeyword("TO"));
      TG_ASSIGN_OR_RETURN(int64_t to, ExpectInteger("after TO"));
      load.range = Interval(from, to);
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("AS"));
    TG_ASSIGN_OR_RETURN(load.name, ExpectIdentifier("graph name"));
    return Statement(std::move(load));
  }

  Result<Statement> ParseGenerate() {
    GenerateStatement generate;
    TG_ASSIGN_OR_RETURN(generate.dataset, ExpectIdentifier("dataset name"));
    TG_RETURN_IF_ERROR(ExpectSymbol("("));
    if (!MatchSymbol(")")) {
      do {
        TG_ASSIGN_OR_RETURN(std::string key, ExpectIdentifier("parameter"));
        TG_RETURN_IF_ERROR(ExpectSymbol("="));
        TG_ASSIGN_OR_RETURN(double value, ExpectNumber("parameter value"));
        generate.params.emplace_back(std::move(key), value);
      } while (MatchSymbol(","));
      TG_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("AS"));
    TG_ASSIGN_OR_RETURN(generate.name, ExpectIdentifier("graph name"));
    return Statement(std::move(generate));
  }

  Result<Statement> ParseSet() {
    SetStatement set;
    TG_ASSIGN_OR_RETURN(set.name, ExpectIdentifier("graph name"));
    TG_RETURN_IF_ERROR(ExpectSymbol("="));
    TG_ASSIGN_OR_RETURN(set.expr, ParseExpr());
    return Statement(std::move(set));
  }

  Result<Statement> ParseStore() {
    StoreStatement store;
    TG_ASSIGN_OR_RETURN(store.name, ExpectIdentifier("graph name"));
    TG_RETURN_IF_ERROR(ExpectKeyword("TO"));
    TG_ASSIGN_OR_RETURN(store.path, ExpectString("path"));
    if (MatchKeyword("SORT")) {
      if (MatchKeyword("STRUCTURAL")) {
        store.sort = storage::SortOrder::kStructuralLocality;
      } else {
        TG_RETURN_IF_ERROR(ExpectKeyword("TEMPORAL"));
        store.sort = storage::SortOrder::kTemporalLocality;
      }
    }
    return Statement(std::move(store));
  }

  Result<Statement> ParseSnapshot() {
    SnapshotStatement snapshot;
    TG_ASSIGN_OR_RETURN(snapshot.name, ExpectIdentifier("graph name"));
    TG_RETURN_IF_ERROR(ExpectKeyword("AT"));
    TG_ASSIGN_OR_RETURN(snapshot.at, ExpectInteger("time point"));
    if (MatchKeyword("LIMIT")) {
      TG_ASSIGN_OR_RETURN(snapshot.limit, ExpectInteger("after LIMIT"));
    }
    return Statement(std::move(snapshot));
  }

  // --- expressions ---------------------------------------------------------

  Result<Expr> ParseExpr() {
    if (MatchKeyword("AZOOM")) return ParseAZoom();
    if (MatchKeyword("WZOOM")) return ParseWZoom();
    if (MatchKeyword("SLICE")) return ParseSlice();
    if (MatchKeyword("SUBGRAPH")) return ParseSubgraph();
    if (MatchKeyword("COALESCE")) {
      TG_ASSIGN_OR_RETURN(std::string source, ExpectIdentifier("graph name"));
      return Expr(CoalesceExpr{source});
    }
    if (MatchKeyword("CONVERT")) {
      ConvertExpr convert;
      TG_ASSIGN_OR_RETURN(convert.source, ExpectIdentifier("graph name"));
      TG_RETURN_IF_ERROR(ExpectKeyword("TO"));
      TG_ASSIGN_OR_RETURN(convert.target, ParseRepresentation());
      return Expr(std::move(convert));
    }
    TG_ASSIGN_OR_RETURN(std::string source, ExpectIdentifier("expression"));
    return Expr(RefExpr{source});
  }

  Result<Representation> ParseRepresentation() {
    if (MatchKeyword("VE")) return Representation::kVe;
    if (MatchKeyword("OG")) return Representation::kOg;
    if (MatchKeyword("OGC")) return Representation::kOgc;
    if (MatchKeyword("RG")) return Representation::kRg;
    return Error("expected VE, OG, OGC, or RG");
  }

  Result<Expr> ParseAZoom(bool with_source = true) {
    AZoomExpr azoom;
    if (with_source) {
      TG_ASSIGN_OR_RETURN(azoom.source, ExpectIdentifier("graph name"));
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("BY"));
    TG_ASSIGN_OR_RETURN(azoom.group_by, ExpectIdentifier("grouping attribute"));
    if (MatchKeyword("AGGREGATE")) {
      do {
        TG_ASSIGN_OR_RETURN(AggregateClause agg, ParseAggregate());
        azoom.aggregates.push_back(std::move(agg));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("TYPE")) {
      TG_ASSIGN_OR_RETURN(azoom.new_type, ExpectString("type label"));
    }
    if (MatchKeyword("EDGE")) {
      TG_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
      TG_ASSIGN_OR_RETURN(azoom.edge_type, ExpectString("edge type label"));
    }
    return Expr(std::move(azoom));
  }

  Result<AggregateClause> ParseAggregate() {
    AggregateClause agg;
    if (MatchKeyword("COUNT")) {
      agg.kind = AggKind::kCount;
      TG_RETURN_IF_ERROR(ExpectSymbol("("));
      TG_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      if (MatchKeyword("SUM")) {
        agg.kind = AggKind::kSum;
      } else if (MatchKeyword("MIN")) {
        agg.kind = AggKind::kMin;
      } else if (MatchKeyword("MAX")) {
        agg.kind = AggKind::kMax;
      } else if (MatchKeyword("AVG")) {
        agg.kind = AggKind::kAvg;
      } else {
        return Error("expected COUNT, SUM, MIN, MAX, or AVG");
      }
      TG_RETURN_IF_ERROR(ExpectSymbol("("));
      TG_ASSIGN_OR_RETURN(agg.input, ExpectIdentifier("attribute"));
      TG_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("AS"));
    TG_ASSIGN_OR_RETURN(agg.output, ExpectIdentifier("output attribute"));
    return agg;
  }

  Result<Expr> ParseWZoom(bool with_source = true) {
    WZoomExpr wzoom;
    if (with_source) {
      TG_ASSIGN_OR_RETURN(wzoom.source, ExpectIdentifier("graph name"));
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("WINDOW"));
    TG_ASSIGN_OR_RETURN(wzoom.window, ExpectInteger("window size"));
    if (MatchKeyword("CHANGES")) {
      wzoom.by_changes = true;
    } else {
      MatchKeyword("POINTS");  // optional
    }
    if (MatchKeyword("NODES")) {
      TG_ASSIGN_OR_RETURN(wzoom.nodes, ParseQuantifier());
    }
    if (MatchKeyword("EDGES")) {
      TG_ASSIGN_OR_RETURN(wzoom.edges, ParseQuantifier());
    }
    if (MatchKeyword("RESOLVE")) {
      do {
        ResolveClause resolve;
        TG_ASSIGN_OR_RETURN(resolve.attribute, ExpectIdentifier("attribute"));
        if (MatchKeyword("FIRST")) {
          resolve.resolver = Resolver::kFirst;
        } else if (MatchKeyword("LAST")) {
          resolve.resolver = Resolver::kLast;
        } else {
          TG_RETURN_IF_ERROR(ExpectKeyword("ANY"));
          resolve.resolver = Resolver::kAny;
        }
        wzoom.resolves.push_back(std::move(resolve));
      } while (MatchSymbol(","));
    }
    return Expr(std::move(wzoom));
  }

  Result<Quantifier> ParseQuantifier() {
    if (MatchKeyword("ALL")) return Quantifier::All();
    if (MatchKeyword("MOST")) return Quantifier::Most();
    if (MatchKeyword("EXISTS")) return Quantifier::Exists();
    if (MatchKeyword("ATLEAST")) {
      TG_ASSIGN_OR_RETURN(double fraction, ExpectNumber("after ATLEAST"));
      return Quantifier::AtLeast(fraction);
    }
    return Error("expected ALL, MOST, EXISTS, or ATLEAST");
  }

  Result<Expr> ParseSlice(bool with_source = true) {
    SliceExpr slice;
    if (with_source) {
      TG_ASSIGN_OR_RETURN(slice.source, ExpectIdentifier("graph name"));
    }
    TG_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TG_ASSIGN_OR_RETURN(slice.from, ExpectInteger("after FROM"));
    TG_RETURN_IF_ERROR(ExpectKeyword("TO"));
    TG_ASSIGN_OR_RETURN(slice.to, ExpectInteger("after TO"));
    return Expr(std::move(slice));
  }

  Result<Expr> ParseSubgraph() {
    SubgraphExpr subgraph;
    TG_ASSIGN_OR_RETURN(subgraph.source, ExpectIdentifier("graph name"));
    if (MatchKeyword("WHERE")) {
      TG_ASSIGN_OR_RETURN(subgraph.vertex_predicate, ParsePredicate());
    }
    if (MatchKeyword("EDGES")) {
      TG_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
      TG_ASSIGN_OR_RETURN(subgraph.edge_predicate, ParsePredicate());
    }
    return Expr(std::move(subgraph));
  }

  Result<WherePredicate> ParsePredicate() {
    WherePredicate predicate;
    do {
      TG_ASSIGN_OR_RETURN(Comparison comparison, ParseComparison());
      predicate.push_back(std::move(comparison));
    } while (MatchKeyword("AND"));
    return predicate;
  }

  Result<Comparison> ParseComparison() {
    Comparison comparison;
    if (MatchKeyword("HAS")) {
      comparison.op = Comparison::Op::kHas;
      TG_RETURN_IF_ERROR(ExpectSymbol("("));
      TG_ASSIGN_OR_RETURN(comparison.key, ExpectIdentifier("attribute"));
      TG_RETURN_IF_ERROR(ExpectSymbol(")"));
      return comparison;
    }
    TG_ASSIGN_OR_RETURN(comparison.key, ExpectIdentifier("attribute"));
    if (MatchSymbol("=")) {
      comparison.op = Comparison::Op::kEq;
    } else if (MatchSymbol("!=")) {
      comparison.op = Comparison::Op::kNe;
    } else if (MatchSymbol("<=")) {
      comparison.op = Comparison::Op::kLe;
    } else if (MatchSymbol(">=")) {
      comparison.op = Comparison::Op::kGe;
    } else if (MatchSymbol("<")) {
      comparison.op = Comparison::Op::kLt;
    } else if (MatchSymbol(">")) {
      comparison.op = Comparison::Op::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    TG_ASSIGN_OR_RETURN(comparison.literal, ParseLiteral());
    return comparison;
  }

  Result<PropertyValue> ParseLiteral() {
    if (Peek().type == TokenType::kString) {
      return PropertyValue(Advance().text);
    }
    if (Peek().type == TokenType::kInteger) {
      return PropertyValue(Advance().int_value);
    }
    if (Peek().type == TokenType::kFloat) {
      return PropertyValue(Advance().float_value);
    }
    if (MatchKeyword("TRUE")) return PropertyValue(true);
    if (MatchKeyword("FALSE")) return PropertyValue(false);
    return Error("expected a literal");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> Parse(const std::string& script) {
  TG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  return Parser(std::move(tokens)).ParseScript();
}

}  // namespace tgraph::tql
