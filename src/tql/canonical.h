#ifndef TGRAPH_TQL_CANONICAL_H_
#define TGRAPH_TQL_CANONICAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tql/ast.h"

namespace tgraph::tql {

/// \brief Deterministic re-printing of parsed TQL, used as the result-cache
/// key of tgraphd: two scripts that parse to the same plan — regardless of
/// whitespace, keyword case, comments, or redundant syntax — canonicalize
/// to the same string. The output re-parses to the same statements
/// (round-trip property), so a canonical form is its own fixed point.

/// One statement in canonical form (no trailing separator).
std::string Canonicalize(const Statement& statement);

/// A whole script: each statement canonicalized, joined with ";\n" and
/// terminated with ";". Fails if the script does not parse.
Result<std::string> CanonicalizeScript(const std::string& script);

/// True when executing `statement` neither writes outside the interpreter
/// environment nor depends on anything but the named inputs — the
/// condition under which a script's output may be served from the result
/// cache. STORE writes to the filesystem, so scripts containing it are
/// never cached (they must re-execute for their side effect).
bool IsCacheable(const Statement& statement);

/// True when every statement of the script is cacheable.
bool IsCacheableScript(const std::vector<Statement>& statements);

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_CANONICAL_H_
