#ifndef TGRAPH_TQL_AST_H_
#define TGRAPH_TQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/graph_io.h"
#include "tgraph/tgraph.h"

namespace tgraph::tql {

/// Abstract syntax of TQL. Expressions reference their input graph by
/// name (no nesting — compose with intermediate SETs), which keeps query
/// plans inspectable and errors local.

/// One aggregate of an AZOOM clause: COUNT() AS n | SUM(attr) AS total | ...
struct AggregateClause {
  std::string output;
  AggKind kind = AggKind::kCount;
  std::string input;  // empty for COUNT
};

/// RESOLVE attr FIRST|LAST|ANY of a WZOOM clause.
struct ResolveClause {
  std::string attribute;
  Resolver resolver = Resolver::kAny;
};

/// One conjunct of a WHERE clause: key <op> literal, or HAS(key).
struct Comparison {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kHas };
  std::string key;
  Op op = Op::kEq;
  PropertyValue literal;
};

/// A conjunction of comparisons (empty = keep everything).
using WherePredicate = std::vector<Comparison>;

// --- expressions -----------------------------------------------------------

struct RefExpr {
  std::string source;
};

struct AZoomExpr {
  std::string source;
  std::string group_by;
  std::vector<AggregateClause> aggregates;
  std::string new_type;   // TYPE 'school'; defaults to the group attribute
  std::string edge_type;  // EDGE TYPE 'collaborate'; empty keeps input types
};

struct WZoomExpr {
  std::string source;
  int64_t window = 1;
  bool by_changes = false;  // WINDOW n CHANGES vs WINDOW n [POINTS]
  Quantifier nodes = Quantifier::All();
  Quantifier edges = Quantifier::All();
  std::vector<ResolveClause> resolves;
};

struct SliceExpr {
  std::string source;
  TimePoint from = 0;
  TimePoint to = 0;
};

struct SubgraphExpr {
  std::string source;
  WherePredicate vertex_predicate;
  WherePredicate edge_predicate;
};

struct CoalesceExpr {
  std::string source;
};

struct ConvertExpr {
  std::string source;
  Representation target = Representation::kVe;
};

using Expr = std::variant<RefExpr, AZoomExpr, WZoomExpr, SliceExpr,
                          SubgraphExpr, CoalesceExpr, ConvertExpr>;

// --- statements ------------------------------------------------------------

struct LoadStatement {
  std::string path;
  std::optional<Interval> range;  // LOAD ... FROM a TO b
  std::string name;
};

struct GenerateStatement {
  std::string dataset;  // wikitalk | snb | ngrams
  std::vector<std::pair<std::string, double>> params;  // scale=0.5, seed=7
  std::string name;
};

struct SetStatement {
  std::string name;
  Expr expr;
};

struct StoreStatement {
  std::string name;
  std::string path;
  storage::SortOrder sort = storage::SortOrder::kTemporalLocality;
};

struct InfoStatement {
  std::string name;
};

struct SnapshotStatement {
  std::string name;
  TimePoint at = 0;
  int64_t limit = 10;
};

struct DropStatement {
  std::string name;
};

struct ListStatement {};

/// CREATE VIEW <name> ON '<dir>' AS <stage> (THEN <stage>)*: registers a
/// materialized zoom view over a live (streaming-ingest) graph
/// directory. Stages are sourceless expressions (each consumes the
/// previous stage's output; the first consumes the live graph), limited
/// to the pipeline steps — AZOOM, WZOOM, SLICE, COALESCE, CONVERT.
struct CreateViewStatement {
  std::string name;
  std::string path;  ///< Live graph directory the view is maintained over.
  std::vector<Expr> stages;  ///< `source` fields are empty.
};

/// DROP VIEW <name>: unregisters the view and evicts its cached results.
struct DropViewStatement {
  std::string name;
};

/// SHOW VIEWS: one line per registered view (version, epoch, counters).
struct ShowViewsStatement {};

/// VIEW <name>: serves the materialized view — refreshing it to the
/// source's current epoch first — and renders its canonical summary.
struct ViewStatement {
  std::string name;
};

// EXPLAIN ANALYZE wraps any other statement; forward-declared so the
// Statement variant can contain it (it holds the inner Statement behind a
// pointer, which also keeps the variant small).
struct ExplainStatement;

using Statement =
    std::variant<LoadStatement, GenerateStatement, SetStatement,
                 StoreStatement, InfoStatement, SnapshotStatement,
                 DropStatement, ListStatement, CreateViewStatement,
                 DropViewStatement, ShowViewsStatement, ViewStatement,
                 ExplainStatement>;

/// EXPLAIN ANALYZE <statement>: execute the inner statement and report
/// the executed plan with per-stage timings, row counts, shuffle bytes,
/// and storage/cache disposition.
struct ExplainStatement {
  std::shared_ptr<Statement> inner;
};

}  // namespace tgraph::tql

#endif  // TGRAPH_TQL_AST_H_
