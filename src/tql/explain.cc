#include "tql/explain.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tgraph::tql {

namespace {

/// The counters a stage observes, resolved once per process (registry
/// pointers are stable for the process lifetime).
struct StageCounters {
  obs::Counter* shuffles;
  obs::Counter* shuffle_records;
  obs::Counter* shuffle_bytes;
  obs::Counter* shuffles_rebalanced;
  obs::Counter* shuffle_hot_keys;
  obs::Counter* row_groups_total;
  obs::Counter* row_groups_scanned;
  obs::Counter* store_partitions_pruned;
  obs::Counter* store_partitions_decoded;
  obs::Counter* store_segment_verifies;
  obs::Counter* store_verified_bytes;
  obs::Counter* catalog_hits;
  obs::Counter* catalog_loads;
};

const StageCounters& Counters() {
  static const StageCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    namespace names = obs::metric_names;
    StageCounters c;
    c.shuffles = reg.GetCounter(names::kShuffles);
    c.shuffle_records = reg.GetCounter(names::kShuffleRecords);
    c.shuffle_bytes = reg.GetCounter(names::kShuffleBytes);
    c.shuffles_rebalanced = reg.GetCounter(names::kShuffleRebalanced);
    c.shuffle_hot_keys = reg.GetCounter(names::kShuffleHotKeys);
    c.row_groups_total = reg.GetCounter(names::kLoadRowGroupsTotal);
    c.row_groups_scanned = reg.GetCounter(names::kLoadRowGroupsScanned);
    c.store_partitions_pruned = reg.GetCounter(names::kStorePartitionsPruned);
    c.store_partitions_decoded = reg.GetCounter(names::kStorePartitionsDecoded);
    c.store_segment_verifies = reg.GetCounter(names::kStoreSegmentVerifies);
    c.store_verified_bytes = reg.GetCounter(names::kStoreVerifiedBytes);
    c.catalog_hits = reg.GetCounter(names::kCatalogHits);
    c.catalog_loads = reg.GetCounter(names::kCatalogLoads);
    return c;
  }();
  return counters;
}

void AppendField(std::string* out, const char* key, int64_t value) {
  *out += " ";
  *out += key;
  *out += "=";
  *out += std::to_string(value);
}

}  // namespace

std::string StageStats::ToString() const {
  std::string out = label;
  if (!detail.empty()) out += " " + detail;
  out += ":";
  AppendField(&out, "wall_us", wall_us);
  if (rows_in >= 0) AppendField(&out, "rows_in", rows_in);
  if (rows_out >= 0) AppendField(&out, "rows_out", rows_out);
  if (shuffles != 0) {
    AppendField(&out, "shuffles", shuffles);
    AppendField(&out, "shuffle_records", shuffle_records);
    AppendField(&out, "shuffle_bytes", shuffle_bytes);
  }
  if (shuffles_rebalanced != 0) {
    AppendField(&out, "rebalanced", shuffles_rebalanced);
    AppendField(&out, "hot_keys", shuffle_hot_keys);
  }
  if (row_groups_total != 0) {
    AppendField(&out, "row_groups_scanned", row_groups_scanned);
    AppendField(&out, "row_groups_total", row_groups_total);
  }
  if (store_partitions_pruned != 0 || store_partitions_decoded != 0) {
    AppendField(&out, "partitions_pruned", store_partitions_pruned);
    AppendField(&out, "partitions_decoded", store_partitions_decoded);
  }
  if (store_segment_verifies != 0) {
    AppendField(&out, "segment_verifies", store_segment_verifies);
    AppendField(&out, "verified_bytes", store_verified_bytes);
  }
  if (catalog_hits != 0 || catalog_loads != 0) {
    out += catalog_loads != 0 ? " catalog=load" : " catalog=hit";
  }
  return out;
}

std::string StageStats::ToJson() const {
  // label/detail are operator names and graph identifiers (lexer-safe
  // charsets), so plain quoting suffices.
  std::string out = "{\"label\":\"" + label + "\",\"detail\":\"" + detail +
                    "\",\"wall_us\":" + std::to_string(wall_us);
  auto field = [&out](const char* key, int64_t value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  if (rows_in >= 0) field("rows_in", rows_in);
  if (rows_out >= 0) field("rows_out", rows_out);
  if (shuffles != 0) {
    field("shuffles", shuffles);
    field("shuffle_records", shuffle_records);
    field("shuffle_bytes", shuffle_bytes);
  }
  if (shuffles_rebalanced != 0) {
    field("rebalanced", shuffles_rebalanced);
    field("hot_keys", shuffle_hot_keys);
  }
  if (row_groups_total != 0) {
    field("row_groups_scanned", row_groups_scanned);
    field("row_groups_total", row_groups_total);
  }
  if (store_partitions_pruned != 0 || store_partitions_decoded != 0) {
    field("partitions_pruned", store_partitions_pruned);
    field("partitions_decoded", store_partitions_decoded);
  }
  if (store_segment_verifies != 0) {
    field("segment_verifies", store_segment_verifies);
    field("verified_bytes", store_verified_bytes);
  }
  if (catalog_hits != 0 || catalog_loads != 0) {
    out += ",\"catalog\":\"";
    out += catalog_loads != 0 ? "load" : "hit";
    out += "\"";
  }
  out += "}";
  return out;
}

ExplainCollector::Scope::Scope(ExplainCollector* collector, std::string label,
                               std::string detail)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  stage_.label = std::move(label);
  stage_.detail = std::move(detail);
  const StageCounters& c = Counters();
  shuffles_ = c.shuffles->value();
  shuffle_records_ = c.shuffle_records->value();
  shuffle_bytes_ = c.shuffle_bytes->value();
  shuffles_rebalanced_ = c.shuffles_rebalanced->value();
  shuffle_hot_keys_ = c.shuffle_hot_keys->value();
  row_groups_total_ = c.row_groups_total->value();
  row_groups_scanned_ = c.row_groups_scanned->value();
  store_partitions_pruned_ = c.store_partitions_pruned->value();
  store_partitions_decoded_ = c.store_partitions_decoded->value();
  store_segment_verifies_ = c.store_segment_verifies->value();
  store_verified_bytes_ = c.store_verified_bytes->value();
  catalog_hits_ = c.catalog_hits->value();
  catalog_loads_ = c.catalog_loads->value();
  start_us_ = obs::Tracer::NowMicros();
}

ExplainCollector::Scope::~Scope() {
  if (collector_ == nullptr) return;
  const StageCounters& c = Counters();
  stage_.wall_us = obs::Tracer::NowMicros() - start_us_;
  stage_.shuffles = c.shuffles->value() - shuffles_;
  stage_.shuffle_records = c.shuffle_records->value() - shuffle_records_;
  stage_.shuffle_bytes = c.shuffle_bytes->value() - shuffle_bytes_;
  stage_.shuffles_rebalanced =
      c.shuffles_rebalanced->value() - shuffles_rebalanced_;
  stage_.shuffle_hot_keys = c.shuffle_hot_keys->value() - shuffle_hot_keys_;
  stage_.row_groups_total = c.row_groups_total->value() - row_groups_total_;
  stage_.row_groups_scanned =
      c.row_groups_scanned->value() - row_groups_scanned_;
  stage_.store_partitions_pruned =
      c.store_partitions_pruned->value() - store_partitions_pruned_;
  stage_.store_partitions_decoded =
      c.store_partitions_decoded->value() - store_partitions_decoded_;
  stage_.store_segment_verifies =
      c.store_segment_verifies->value() - store_segment_verifies_;
  stage_.store_verified_bytes =
      c.store_verified_bytes->value() - store_verified_bytes_;
  stage_.catalog_hits = c.catalog_hits->value() - catalog_hits_;
  stage_.catalog_loads = c.catalog_loads->value() - catalog_loads_;
  collector_->Add(std::move(stage_));
}

void ExplainCollector::Scope::set_rows(int64_t rows_in, int64_t rows_out) {
  stage_.rows_in = rows_in;
  stage_.rows_out = rows_out;
}

void ExplainCollector::Scope::set_detail(std::string detail) {
  if (collector_ == nullptr) return;
  stage_.detail = std::move(detail);
}

std::string ExplainCollector::Render(const std::string& canonical,
                                     int64_t total_us) const {
  std::string out = "EXPLAIN ANALYZE " + canonical + "\n";
  for (const StageStats& stage : stages_) {
    out += "  " + stage.ToString() + "\n";
  }
  out += "result-cache: bypass (EXPLAIN ANALYZE always re-executes)\n";
  out += "total: wall_us=" + std::to_string(total_us) + "\n";
  return out;
}

std::string ExplainCollector::StagesJson() const {
  std::string out = "[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += ",";
    out += stages_[i].ToJson();
  }
  out += "]";
  return out;
}

}  // namespace tgraph::tql
