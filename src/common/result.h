#ifndef TGRAPH_COMMON_RESULT_H_
#define TGRAPH_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tgraph {

/// \brief Either a value of type T or an error Status (never both).
///
/// Analogous to arrow::Result / absl::StatusOr. Constructing a Result from an
/// OK status is a programming error and aborts.
template <typename T>
class Result {
 public:
  /// Constructs from an error status. Must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; this is a caller bug.
      std::abort();
    }
  }

  /// Constructs from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alternative` on error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

}  // namespace tgraph

#endif  // TGRAPH_COMMON_RESULT_H_
