#ifndef TGRAPH_COMMON_BITSET_H_
#define TGRAPH_COMMON_BITSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tgraph {

/// \brief A dynamically sized bitset.
///
/// Backs the OGC ("One Graph Columnar") representation, where each vertex or
/// edge stores one presence bit per global interval (Section 3, Figure 7).
class Bitset {
 public:
  Bitset() = default;
  /// Creates `size` bits, all clear.
  explicit Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;
  /// Number of set bits with index in [begin, end).
  size_t CountRange(size_t begin, size_t end) const;
  /// True iff no bit is set.
  bool None() const { return Count() == 0; }
  /// True iff all bits in [begin, end) are set.
  bool AllRange(size_t begin, size_t end) const;
  /// True iff any bit in [begin, end) is set.
  bool AnyRange(size_t begin, size_t end) const;

  /// Sets all bits in [begin, end).
  void SetRange(size_t begin, size_t end);

  /// Index of the lowest set bit, or -1 if none.
  int64_t FirstSetBit() const;
  /// Index of the highest set bit, or -1 if none.
  int64_t LastSetBit() const;

  /// In-place intersection; sizes must match. This is the dangling-edge
  /// removal primitive for wZoom^T over OGC ("logical and between the edge
  /// bitset and the corresponding vertex bitsets", Section 3.2).
  void AndWith(const Bitset& other);
  /// In-place union; sizes must match.
  void OrWith(const Bitset& other);

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  uint64_t Hash() const;

  /// Renders as e.g. "[1, 0, 1]".
  std::string ToString() const;

  /// Raw 64-bit words (for serialization).
  const std::vector<uint64_t>& words() const { return words_; }
  /// Rebuilds from raw words; bits beyond `size` must be zero.
  static Bitset FromWords(size_t size, std::vector<uint64_t> words);

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tgraph

#endif  // TGRAPH_COMMON_BITSET_H_
