#ifndef TGRAPH_COMMON_PROPERTIES_H_
#define TGRAPH_COMMON_PROPERTIES_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/property_value.h"

namespace tgraph {

/// \brief An ordered set of key-value pairs attached to a TGraph vertex or
/// edge (the attribute dictionary of the VE/OG schemas in Section 3).
///
/// Stored as a flat vector sorted by key: property sets are tiny (a handful
/// of entries), so a sorted vector beats a map in both memory and speed, and
/// it gives O(n) value-equivalence comparison — the hot operation during
/// temporal coalescing.
class Properties {
 public:
  Properties() = default;

  /// Builds from unsorted pairs; later duplicates of a key win.
  Properties(std::initializer_list<std::pair<std::string, PropertyValue>> init);

  /// Sets (inserts or overwrites) a property.
  void Set(std::string_view key, PropertyValue value);

  /// Returns the value for `key`, or nullopt.
  std::optional<PropertyValue> Get(std::string_view key) const;

  /// Returns a pointer to the value for `key`, or nullptr. Avoids a copy.
  const PropertyValue* Find(std::string_view key) const;

  /// Removes `key` if present; returns whether it was present.
  bool Erase(std::string_view key);

  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Sorted (key, value) entries; stable iteration order.
  const std::vector<std::pair<std::string, PropertyValue>>& entries() const {
    return entries_;
  }

  /// Value-equivalence (same keys, same values) — the coalescing predicate.
  friend bool operator==(const Properties& a, const Properties& b) {
    return a.entries_ == b.entries_;
  }

  /// Order-consistent hash (entries are kept sorted by key).
  uint64_t Hash() const;

  /// Renders as {k1=v1, k2=v2}.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, PropertyValue>> entries_;
};

std::ostream& operator<<(std::ostream& os, const Properties& p);

}  // namespace tgraph

#endif  // TGRAPH_COMMON_PROPERTIES_H_
