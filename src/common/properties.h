#ifndef TGRAPH_COMMON_PROPERTIES_H_
#define TGRAPH_COMMON_PROPERTIES_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/property_value.h"

namespace tgraph {

/// \brief An ordered set of key-value pairs attached to a TGraph vertex or
/// edge (the attribute dictionary of the VE/OG schemas in Section 3).
///
/// Stored as a flat vector sorted by key: property sets are tiny (a handful
/// of entries), so a sorted vector beats a map in both memory and speed, and
/// it gives O(n) value-equivalence comparison — the hot operation during
/// temporal coalescing.
///
/// The entry vector is copy-on-write: copying a Properties is a refcount
/// bump, and mutation clones only when the storage is shared. Graph loads
/// and shuffles copy property sets by the hundreds of thousands (every
/// VeVertex/VeEdge owns one), and with COW all copies of an identical
/// attribute set share one allocation — the in-memory analogue of the
/// store's zero-copy segments. Mutating a Properties instance while other
/// threads read that same instance was a data race before COW and still is;
/// concurrent reads and copies of a shared instance are safe.
class Properties {
 public:
  Properties() = default;

  using EntryVector = std::vector<std::pair<std::string, PropertyValue>>;

  /// Builds from unsorted pairs; later duplicates of a key win.
  Properties(std::initializer_list<std::pair<std::string, PropertyValue>> init);

  /// Bulk construction: adopts a whole entry vector in one move when it is
  /// already sorted by key with no duplicates (serialized property blobs
  /// store entries that way, so deserialization — the load-time hot loop —
  /// takes this path on every well-formed cell). Unsorted input falls back
  /// to per-entry Set.
  static Properties FromEntries(EntryVector entries);

  /// Sets (inserts or overwrites) a property.
  void Set(std::string_view key, PropertyValue value);

  /// Returns the value for `key`, or nullopt.
  std::optional<PropertyValue> Get(std::string_view key) const;

  /// Returns a pointer to the value for `key`, or nullptr. Avoids a copy.
  const PropertyValue* Find(std::string_view key) const;

  /// Removes `key` if present; returns whether it was present.
  bool Erase(std::string_view key);

  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  bool empty() const { return entries_ == nullptr || entries_->empty(); }
  size_t size() const { return entries_ == nullptr ? 0 : entries_->size(); }

  /// Sorted (key, value) entries; stable iteration order. The reference is
  /// invalidated by any mutation of this instance (as it always was).
  const std::vector<std::pair<std::string, PropertyValue>>& entries() const {
    return entries_ == nullptr ? EmptyEntries() : *entries_;
  }

  /// Value-equivalence (same keys, same values) — the coalescing predicate.
  /// Copies share storage, so the common copied-not-changed case is a
  /// pointer comparison.
  friend bool operator==(const Properties& a, const Properties& b) {
    if (a.entries_ == b.entries_) return true;
    return a.entries() == b.entries();
  }

  /// Order-consistent hash (entries are kept sorted by key).
  uint64_t Hash() const;

  /// Renders as {k1=v1, k2=v2}.
  std::string ToString() const;

 private:
  static const EntryVector& EmptyEntries();

  /// Unique-owner view of the entry vector: allocates when null, clones
  /// when shared (copy-on-write).
  EntryVector& Mutable();

  std::shared_ptr<EntryVector> entries_;  ///< null means empty.
};

std::ostream& operator<<(std::ostream& os, const Properties& p);

}  // namespace tgraph

#endif  // TGRAPH_COMMON_PROPERTIES_H_
