#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <string>

namespace tgraph {

namespace {

LogLevel ParseLogLevel(const char* value) {
  if (value == nullptr) return LogLevel::kWarn;
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lowered == "info" || lowered == "0") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning" || lowered == "1") {
    return LogLevel::kWarn;
  }
  if (lowered == "error" || lowered == "2") return LogLevel::kError;
  if (lowered == "off" || lowered == "none" || lowered == "3") {
    return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

std::atomic<int>& MinLevelStorage() {
  static std::atomic<int> level{
      static_cast<int>(ParseLogLevel(std::getenv("TGRAPH_LOG_LEVEL")))};
  return level;
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelStorage().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(const char* file, int line, const char* severity) {
  // Strip the directory for readability; mirrors the FATAL format.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << severity << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();  // single write; messages do not interleave
}

}  // namespace internal_logging
}  // namespace tgraph
