#include "common/status.h"

namespace tgraph {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace tgraph
