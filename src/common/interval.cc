#include "common/interval.h"

#include <set>

namespace tgraph {

std::string Interval::ToString() const {
  return "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
}

std::ostream& operator<<(std::ostream& os, const Interval& i) {
  return os << i.ToString();
}

void IntervalDifference(const Interval& a, const Interval& b,
                        std::vector<Interval>* out) {
  if (a.empty()) return;
  Interval overlap = a.Intersect(b);
  if (overlap.empty()) {
    out->push_back(a);
    return;
  }
  if (a.start < overlap.start) out->push_back(Interval(a.start, overlap.start));
  if (overlap.end < a.end) out->push_back(Interval(overlap.end, a.end));
}

std::vector<Interval> SplitIntervals(std::vector<Interval> intervals) {
  std::set<TimePoint> points;
  for (const Interval& i : intervals) {
    if (i.empty()) continue;
    points.insert(i.start);
    points.insert(i.end);
  }
  std::vector<Interval> result;
  if (points.size() < 2) return result;
  auto it = points.begin();
  TimePoint prev = *it;
  for (++it; it != points.end(); ++it) {
    result.push_back(Interval(prev, *it));
    prev = *it;
  }
  return result;
}

std::vector<Interval> CoalesceIntervals(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& i) { return i.empty(); });
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> result;
  for (const Interval& i : intervals) {
    if (!result.empty() && result.back().Mergeable(i)) {
      result.back() = result.back().Merge(i);
    } else {
      result.push_back(i);
    }
  }
  return result;
}

int64_t CoveredDuration(const std::vector<Interval>& intervals) {
  int64_t total = 0;
  for (const Interval& i : CoalesceIntervals(intervals)) {
    total += i.duration();
  }
  return total;
}

}  // namespace tgraph
