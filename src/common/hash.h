#ifndef TGRAPH_COMMON_HASH_H_
#define TGRAPH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tgraph {

/// \brief Mixes a 64-bit value (splitmix64 finalizer). Used to decorrelate
/// sequential ids before hash partitioning.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief FNV-1a over a byte string.
constexpr uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Combines an accumulated hash with another hash value
/// (boost::hash_combine, 64-bit variant).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// \brief Four-lane word-at-a-time checksum: splitmix64-mixes little-endian
/// 64-bit words into four independent accumulators (32 bytes per step), so
/// the multiply chains overlap instead of serializing. An order of
/// magnitude faster than byte-wise FNV-1a, which matters when every segment
/// of a multi-megabyte store file is checksummed on first touch. Not
/// FNV-compatible; this is the tgraph-store v2 checksum (docs/FORMAT.md
/// section 1.7). TCOL v1 keeps FNV-1a (HashBytes) so v1 files stay
/// readable.
inline uint64_t HashBytesFast(std::string_view bytes) {
  uint64_t h0 = 0xcbf29ce484222325ULL ^ bytes.size();
  uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  uint64_t h2 = 0xbf58476d1ce4e5b9ULL;
  uint64_t h3 = 0x94d049bb133111ebULL;
  size_t i = 0;
  for (; i + 32 <= bytes.size(); i += 32) {
    uint64_t w0, w1, w2, w3;
    __builtin_memcpy(&w0, bytes.data() + i, 8);
    __builtin_memcpy(&w1, bytes.data() + i + 8, 8);
    __builtin_memcpy(&w2, bytes.data() + i + 16, 8);
    __builtin_memcpy(&w3, bytes.data() + i + 24, 8);
    h0 = Mix64(h0 ^ w0);
    h1 = Mix64(h1 ^ w1);
    h2 = Mix64(h2 ^ w2);
    h3 = Mix64(h3 ^ w3);
  }
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    __builtin_memcpy(&word, bytes.data() + i, 8);
    h0 = Mix64(h0 ^ word);
  }
  if (i < bytes.size()) {
    uint64_t word = 0;
    __builtin_memcpy(&word, bytes.data() + i, bytes.size() - i);
    h0 = Mix64(h0 ^ word);
  }
  return Mix64(Mix64(Mix64(Mix64(h0) ^ h1) ^ h2) ^ h3);
}

}  // namespace tgraph

#endif  // TGRAPH_COMMON_HASH_H_
