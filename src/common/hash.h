#ifndef TGRAPH_COMMON_HASH_H_
#define TGRAPH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tgraph {

/// \brief Mixes a 64-bit value (splitmix64 finalizer). Used to decorrelate
/// sequential ids before hash partitioning.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief FNV-1a over a byte string.
constexpr uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Combines an accumulated hash with another hash value
/// (boost::hash_combine, 64-bit variant).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace tgraph

#endif  // TGRAPH_COMMON_HASH_H_
