#ifndef TGRAPH_COMMON_INTERVAL_H_
#define TGRAPH_COMMON_INTERVAL_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tgraph {

/// Discrete time point drawn from the linearly ordered domain Omega^T
/// (Definition 2.1 of the paper). Typically a month or year index, or a UNIX
/// timestamp — the library never interprets units.
using TimePoint = int64_t;

/// \brief A closed-open interval [start, end) of discrete time points,
/// following the SQL:2011 convention used throughout the paper.
///
/// An interval is empty iff start >= end. Empty intervals compare equal to
/// each other regardless of their endpoints.
struct Interval {
  TimePoint start = 0;
  TimePoint end = 0;

  constexpr Interval() = default;
  constexpr Interval(TimePoint s, TimePoint e) : start(s), end(e) {}

  constexpr bool empty() const { return start >= end; }

  /// Number of time points covered; 0 for empty intervals.
  constexpr int64_t duration() const { return empty() ? 0 : end - start; }

  /// True iff the time point t lies within [start, end).
  constexpr bool Contains(TimePoint t) const { return t >= start && t < end; }

  /// True iff `other` is fully contained in this interval.
  constexpr bool Contains(const Interval& other) const {
    return other.empty() || (other.start >= start && other.end <= end);
  }

  /// True iff the two intervals share at least one time point.
  constexpr bool Overlaps(const Interval& other) const {
    return start < other.end && other.start < end;
  }

  /// True iff this interval ends exactly where `other` begins.
  constexpr bool Meets(const Interval& other) const {
    return !empty() && !other.empty() && end == other.start;
  }

  /// True iff the union of the two intervals is itself an interval
  /// (they overlap or are adjacent in either order).
  constexpr bool Mergeable(const Interval& other) const {
    if (empty() || other.empty()) return true;
    return start <= other.end && other.start <= end;
  }

  /// The shared time points of the two intervals (possibly empty).
  constexpr Interval Intersect(const Interval& other) const {
    return Interval(std::max(start, other.start), std::min(end, other.end));
  }

  /// The smallest interval covering both. Only meaningful if Mergeable().
  constexpr Interval Merge(const Interval& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Interval(std::min(start, other.start), std::max(end, other.end));
  }

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) return true;
    return a.start == b.start && a.end == b.end;
  }

  /// Orders by start, then end. Empty intervals order by raw endpoints; sort
  /// callers normally filter them out first.
  friend constexpr auto operator<=>(const Interval& a, const Interval& b) {
    if (auto c = a.start <=> b.start; c != 0) return c;
    return a.end <=> b.end;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& i);

/// \brief Subtracts `b` from `a`, appending the (0, 1, or 2) remaining pieces.
void IntervalDifference(const Interval& a, const Interval& b,
                        std::vector<Interval>* out);

/// \brief Computes the minimal set of non-overlapping intervals whose
/// endpoints cover all endpoints of the inputs ("temporal splitters",
/// Dignös et al.; used by aZoom^T over VE, Algorithm 2).
///
/// Example: {[1,7), [2,5)} -> {[1,2), [2,5), [5,7)}.
std::vector<Interval> SplitIntervals(std::vector<Interval> intervals);

/// \brief Coalesces a set of intervals: sorts and merges all overlapping or
/// adjacent intervals into maximal disjoint intervals.
std::vector<Interval> CoalesceIntervals(std::vector<Interval> intervals);

/// \brief Total duration covered by the union of the given intervals.
int64_t CoveredDuration(const std::vector<Interval>& intervals);

}  // namespace tgraph

#endif  // TGRAPH_COMMON_INTERVAL_H_
