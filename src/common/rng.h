#ifndef TGRAPH_COMMON_RNG_H_
#define TGRAPH_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"
#include "common/logging.h"

namespace tgraph {

/// \brief Deterministic 64-bit PRNG (splitmix64).
///
/// All dataset generators use this so that every experiment is exactly
/// reproducible from a seed; std::mt19937 is avoided because its stream is
/// not guaranteed identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return Mix64(state_ - 0x9e3779b97f4a7c15ULL + 1);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    TG_CHECK_GT(bound, 0u);
    // Multiply-shift mapping; bias is negligible for bound << 2^64.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    TG_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// A new generator whose stream is independent of this one; deterministic
  /// in (seed, stream_id). Used to give each worker/partition its own stream.
  Rng Fork(uint64_t stream_id) const {
    return Rng(HashCombine(state_, Mix64(stream_id)));
  }

 private:
  uint64_t state_;
};

}  // namespace tgraph

#endif  // TGRAPH_COMMON_RNG_H_
