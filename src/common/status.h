#ifndef TGRAPH_COMMON_STATUS_H_
#define TGRAPH_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace tgraph {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kCancelled = 8,
  kResourceExhausted = 9,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Exception-free error signalling, modelled after arrow::Status /
/// rocksdb::Status.
///
/// Functions that can fail return a Status (or a Result<T>, see result.h).
/// The OK state carries no allocation; error states carry a code and message.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// The 429 of the status space: the operation was refused because a
  /// bounded resource (queue slots, workers) is saturated; retrying later
  /// may succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared (not unique) so Status stays cheaply copyable; error states are
  // immutable once created.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tgraph

/// Evaluates `expr`; returns its Status from the enclosing function if not OK.
#define TG_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::tgraph::Status _tg_status = (expr);         \
    if (!_tg_status.ok()) return _tg_status;      \
  } while (false)

#define TG_CONCAT_IMPL(x, y) x##y
#define TG_CONCAT(x, y) TG_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define TG_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  TG_ASSIGN_OR_RETURN_IMPL(TG_CONCAT(_tg_result_, __LINE__), lhs, rexpr)

#define TG_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie();

#endif  // TGRAPH_COMMON_STATUS_H_
