#ifndef TGRAPH_COMMON_PROPERTY_VALUE_H_
#define TGRAPH_COMMON_PROPERTY_VALUE_H_

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/hash.h"

namespace tgraph {

/// \brief A property value in a TGraph: one of int64, double, bool, string.
///
/// Property graphs (Angles et al.) are schemaless at the value level; this
/// variant covers the types the paper's datasets use (counts, names, words).
class PropertyValue {
 public:
  enum class Type { kInt, kDouble, kBool, kString };

  PropertyValue() : value_(int64_t{0}) {}
  PropertyValue(int64_t v) : value_(v) {}        // NOLINT
  PropertyValue(int v) : value_(int64_t{v}) {}   // NOLINT
  PropertyValue(double v) : value_(v) {}         // NOLINT
  PropertyValue(bool v) : value_(v) {}           // NOLINT
  PropertyValue(std::string v) : value_(std::move(v)) {}  // NOLINT
  PropertyValue(const char* v) : value_(std::string(v)) {}  // NOLINT

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_string() const { return type() == Type::kString; }

  /// Typed accessors; calling the wrong one is a programming error (checked
  /// by std::get, which aborts under -fno-exceptions semantics we rely on
  /// never triggering).
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  /// Numeric view: int and double convert, others yield 0. Used by numeric
  /// aggregation functions (sum/min/max/avg).
  double AsNumber() const;

  /// Hash suitable for Skolem functions and shuffle partitioning.
  uint64_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const PropertyValue& a, const PropertyValue& b) {
    return a.value_ == b.value_;
  }
  /// Total order: values order by type index first, then by value. Gives a
  /// deterministic sort for mixed-type columns.
  friend std::strong_ordering operator<=>(const PropertyValue& a,
                                          const PropertyValue& b);

 private:
  std::variant<int64_t, double, bool, std::string> value_;
};

std::ostream& operator<<(std::ostream& os, const PropertyValue& v);

}  // namespace tgraph

#endif  // TGRAPH_COMMON_PROPERTY_VALUE_H_
