#include "common/property_value.h"

#include <bit>

namespace tgraph {

double PropertyValue::AsNumber() const {
  switch (type()) {
    case Type::kInt:
      return static_cast<double>(AsInt());
    case Type::kDouble:
      return AsDouble();
    case Type::kBool:
      return AsBool() ? 1.0 : 0.0;
    case Type::kString:
      return 0.0;
  }
  return 0.0;
}

uint64_t PropertyValue::Hash() const {
  uint64_t h = Mix64(static_cast<uint64_t>(value_.index()));
  switch (type()) {
    case Type::kInt:
      return HashCombine(h, Mix64(static_cast<uint64_t>(AsInt())));
    case Type::kDouble:
      return HashCombine(h, Mix64(std::bit_cast<uint64_t>(AsDouble())));
    case Type::kBool:
      return HashCombine(h, Mix64(AsBool() ? 1 : 0));
    case Type::kString:
      return HashCombine(h, HashBytes(AsString()));
  }
  return h;
}

std::string PropertyValue::ToString() const {
  switch (type()) {
    case Type::kInt:
      return std::to_string(AsInt());
    case Type::kDouble:
      return std::to_string(AsDouble());
    case Type::kBool:
      return AsBool() ? "true" : "false";
    case Type::kString:
      return AsString();
  }
  return "";
}

std::strong_ordering operator<=>(const PropertyValue& a,
                                 const PropertyValue& b) {
  if (a.value_.index() != b.value_.index()) {
    return a.value_.index() <=> b.value_.index();
  }
  switch (a.type()) {
    case PropertyValue::Type::kInt:
      return a.AsInt() <=> b.AsInt();
    case PropertyValue::Type::kDouble: {
      double x = a.AsDouble(), y = b.AsDouble();
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case PropertyValue::Type::kBool:
      return a.AsBool() <=> b.AsBool();
    case PropertyValue::Type::kString:
      return a.AsString().compare(b.AsString()) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const PropertyValue& v) {
  return os << v.ToString();
}

}  // namespace tgraph
