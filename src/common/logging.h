#ifndef TGRAPH_COMMON_LOGGING_H_
#define TGRAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tgraph {

/// Severity levels for TG_LOG. The minimum emitted level comes from the
/// TGRAPH_LOG_LEVEL environment variable ("info", "warn", "error", "off";
/// default "warn"), read once per process.
enum class LogLevel : int {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
  kOff = 3,
};

/// The process-wide minimum level (cached TGRAPH_LOG_LEVEL).
LogLevel MinLogLevel();

/// Overrides the minimum level at runtime (tests, CLI verbosity flags).
void SetMinLogLevel(LogLevel level);

namespace internal_logging {

// Severity aliases matching the TG_LOG(INFO/WARN/ERROR) spellings.
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARN = LogLevel::kWarn;
inline constexpr LogLevel kERROR = LogLevel::kError;

inline bool LevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevel());
}

/// \brief Collects a leveled message and writes it to stderr on
/// destruction (one write, so concurrent messages do not interleave).
class LogMessage {
 public:
  LogMessage(const char* file, int line, const char* severity);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// \brief Collects a message and aborts the process on destruction.
///
/// Used by the TG_CHECK family; mirrors the glog-style fatal logger but
/// without any global state.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tgraph

/// Leveled logging: TG_LOG(INFO) << "loaded " << n << " records";
/// Severity is INFO, WARN, or ERROR. Messages below the TGRAPH_LOG_LEVEL
/// threshold (default warn) cost one comparison and evaluate no operands.
#define TG_LOG(severity)                                                   \
  if (::tgraph::internal_logging::LevelEnabled(                            \
          ::tgraph::internal_logging::k##severity))                        \
  ::tgraph::internal_logging::LogMessage(__FILE__, __LINE__, #severity)    \
      .stream()

/// Aborts with a message if `condition` is false. Active in all build modes:
/// these guard internal invariants whose violation would corrupt results.
#define TG_CHECK(condition)                                                  \
  if (!(condition))                                                          \
  ::tgraph::internal_logging::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define TG_CHECK_EQ(a, b) TG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_NE(a, b) TG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_LT(a, b) TG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_LE(a, b) TG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_GT(a, b) TG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_GE(a, b) TG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails.
#define TG_CHECK_OK(expr)                        \
  do {                                           \
    ::tgraph::Status _tg_check_status = (expr);  \
    TG_CHECK(_tg_check_status.ok()) << _tg_check_status.ToString(); \
  } while (false)

#endif  // TGRAPH_COMMON_LOGGING_H_
