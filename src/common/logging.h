#ifndef TGRAPH_COMMON_LOGGING_H_
#define TGRAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tgraph {
namespace internal_logging {

/// \brief Collects a message and aborts the process on destruction.
///
/// Used by the TG_CHECK family; mirrors the glog-style fatal logger but
/// without any global state.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tgraph

/// Aborts with a message if `condition` is false. Active in all build modes:
/// these guard internal invariants whose violation would corrupt results.
#define TG_CHECK(condition)                                                  \
  if (!(condition))                                                          \
  ::tgraph::internal_logging::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define TG_CHECK_EQ(a, b) TG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_NE(a, b) TG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_LT(a, b) TG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_LE(a, b) TG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_GT(a, b) TG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TG_CHECK_GE(a, b) TG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails.
#define TG_CHECK_OK(expr)                        \
  do {                                           \
    ::tgraph::Status _tg_check_status = (expr);  \
    TG_CHECK(_tg_check_status.ok()) << _tg_check_status.ToString(); \
  } while (false)

#endif  // TGRAPH_COMMON_LOGGING_H_
