#include "common/properties.h"

#include <algorithm>

namespace tgraph {

namespace {

// Lower bound over the sorted entry vector.
auto FindEntry(std::vector<std::pair<std::string, PropertyValue>>& entries,
               std::string_view key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
}

auto FindEntry(
    const std::vector<std::pair<std::string, PropertyValue>>& entries,
    std::string_view key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
}

}  // namespace

const Properties::EntryVector& Properties::EmptyEntries() {
  static const EntryVector* empty = new EntryVector();
  return *empty;
}

Properties::EntryVector& Properties::Mutable() {
  if (entries_ == nullptr) {
    entries_ = std::make_shared<EntryVector>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<EntryVector>(*entries_);
  }
  return *entries_;
}

Properties::Properties(
    std::initializer_list<std::pair<std::string, PropertyValue>> init) {
  for (const auto& [key, value] : init) {
    Set(key, value);
  }
}

Properties Properties::FromEntries(EntryVector entries) {
  Properties props;
  if (entries.empty()) return props;
  bool sorted = true;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].first >= entries[i].first) {
      sorted = false;
      break;
    }
  }
  if (sorted) {
    props.entries_ = std::make_shared<EntryVector>(std::move(entries));
  } else {
    for (auto& [key, value] : entries) {
      props.Set(key, std::move(value));
    }
  }
  return props;
}

void Properties::Set(std::string_view key, PropertyValue value) {
  EntryVector& entries = Mutable();
  auto it = FindEntry(entries, key);
  if (it != entries.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries.insert(it, {std::string(key), std::move(value)});
  }
}

std::optional<PropertyValue> Properties::Get(std::string_view key) const {
  const PropertyValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const PropertyValue* Properties::Find(std::string_view key) const {
  const EntryVector& e = entries();
  auto it = FindEntry(e, key);
  if (it != e.end() && it->first == key) return &it->second;
  return nullptr;
}

bool Properties::Erase(std::string_view key) {
  if (empty()) return false;
  EntryVector& entries = Mutable();
  auto it = FindEntry(entries, key);
  if (it != entries.end() && it->first == key) {
    entries.erase(it);
    return true;
  }
  return false;
}

uint64_t Properties::Hash() const {
  const EntryVector& e = entries();
  uint64_t h = Mix64(e.size());
  for (const auto& [key, value] : e) {
    h = HashCombine(h, HashBytes(key));
    h = HashCombine(h, value.Hash());
  }
  return h;
}

std::string Properties::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries()) {
    if (!first) out += ", ";
    first = false;
    out += key;
    out += "=";
    out += value.ToString();
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Properties& p) {
  return os << p.ToString();
}

}  // namespace tgraph
