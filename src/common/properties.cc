#include "common/properties.h"

#include <algorithm>

namespace tgraph {

namespace {

// Lower bound over the sorted entry vector.
auto FindEntry(std::vector<std::pair<std::string, PropertyValue>>& entries,
               std::string_view key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
}

auto FindEntry(
    const std::vector<std::pair<std::string, PropertyValue>>& entries,
    std::string_view key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
}

}  // namespace

Properties::Properties(
    std::initializer_list<std::pair<std::string, PropertyValue>> init) {
  for (const auto& [key, value] : init) {
    Set(key, value);
  }
}

void Properties::Set(std::string_view key, PropertyValue value) {
  auto it = FindEntry(entries_, key);
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {std::string(key), std::move(value)});
  }
}

std::optional<PropertyValue> Properties::Get(std::string_view key) const {
  const PropertyValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const PropertyValue* Properties::Find(std::string_view key) const {
  auto it = FindEntry(entries_, key);
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

bool Properties::Erase(std::string_view key) {
  auto it = FindEntry(entries_, key);
  if (it != entries_.end() && it->first == key) {
    entries_.erase(it);
    return true;
  }
  return false;
}

uint64_t Properties::Hash() const {
  uint64_t h = Mix64(entries_.size());
  for (const auto& [key, value] : entries_) {
    h = HashCombine(h, HashBytes(key));
    h = HashCombine(h, value.Hash());
  }
  return h;
}

std::string Properties::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += key;
    out += "=";
    out += value.ToString();
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Properties& p) {
  return os << p.ToString();
}

}  // namespace tgraph
