#include "common/bitset.h"

#include <bit>

#include "common/hash.h"
#include "common/logging.h"

namespace tgraph {

void Bitset::Set(size_t i) {
  TG_CHECK_LT(i, size_);
  words_[i / 64] |= (uint64_t{1} << (i % 64));
}

void Bitset::Clear(size_t i) {
  TG_CHECK_LT(i, size_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool Bitset::Test(size_t i) const {
  TG_CHECK_LT(i, size_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

size_t Bitset::CountRange(size_t begin, size_t end) const {
  if (begin >= end) return 0;
  TG_CHECK_LE(end, size_);
  size_t total = 0;
  size_t first_word = begin / 64;
  size_t last_word = (end - 1) / 64;
  for (size_t w = first_word; w <= last_word; ++w) {
    uint64_t word = words_[w];
    if (w == first_word) {
      word &= ~uint64_t{0} << (begin % 64);
    }
    if (w == last_word && end % 64 != 0) {
      word &= ~uint64_t{0} >> (64 - end % 64);
    }
    total += std::popcount(word);
  }
  return total;
}

bool Bitset::AllRange(size_t begin, size_t end) const {
  if (begin >= end) return true;
  return CountRange(begin, end) == end - begin;
}

bool Bitset::AnyRange(size_t begin, size_t end) const {
  if (begin >= end) return false;
  return CountRange(begin, end) > 0;
}

void Bitset::SetRange(size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) Set(i);
}

int64_t Bitset::FirstSetBit() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int64_t>(w * 64 + std::countr_zero(words_[w]));
    }
  }
  return -1;
}

int64_t Bitset::LastSetBit() const {
  for (size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<int64_t>(w * 64 + 63 - std::countl_zero(words_[w]));
    }
  }
  return -1;
}

void Bitset::AndWith(const Bitset& other) {
  TG_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitset::OrWith(const Bitset& other) {
  TG_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

uint64_t Bitset::Hash() const {
  uint64_t h = Mix64(size_);
  for (uint64_t w : words_) h = HashCombine(h, Mix64(w));
  return h;
}

std::string Bitset::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += Test(i) ? '1' : '0';
  }
  out += "]";
  return out;
}

Bitset Bitset::FromWords(size_t size, std::vector<uint64_t> words) {
  TG_CHECK_EQ(words.size(), (size + 63) / 64);
  Bitset b;
  b.size_ = size;
  b.words_ = std::move(words);
  return b;
}

}  // namespace tgraph
