#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace tgraph::server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect(const std::string& host, int port) {
  Close();

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* resolved = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + gai_strerror(rc));
  }

  Status status = Status::IoError("no addresses for " + host);
  for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status = Status::IoError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      status = Status::OK();
      break;
    }
    status = Status::IoError("connect " + host + ":" + port_str + ": " +
                             std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(resolved);
  return status;
}

Result<Response> Client::RoundTrip(const Request& request) {
  if (fd_ < 0) return Status::Internal("client not connected");
  TG_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request)));
  TG_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_));
  TG_ASSIGN_OR_RETURN(Response response, DecodeResponse(payload));
  // A server-side failure (including a saturation rejection) surfaces as
  // the status the server put on the wire, not as a client-side error.
  TG_RETURN_IF_ERROR(response.ToStatus());
  return response;
}

Result<Response> Client::Query(const std::string& script, bool no_cache,
                               bool want_trace) {
  Request request;
  request.verb = Verb::kQuery;
  if (no_cache) request.flags |= kFlagNoCache;
  if (want_trace) request.flags |= kFlagTrace;
  request.body = script;
  return RoundTrip(request);
}

Result<Response> Client::Stats(bool json) {
  Request request;
  request.verb = Verb::kStats;
  if (json) request.flags |= kFlagJson;
  return RoundTrip(request);
}

Result<Response> Client::Metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  return RoundTrip(request);
}

Result<Response> Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  return RoundTrip(request);
}

Result<Response> Client::Ingest(const std::string& dir,
                                const std::vector<ingest::Event>& events,
                                TimePoint horizon) {
  Request request;
  request.verb = Verb::kIngest;
  IngestRequest body;
  body.dir = dir;
  body.horizon = horizon;
  body.events = events;
  request.body = EncodeIngestBody(body);
  return RoundTrip(request);
}

Result<Response> Client::View(const std::string& name) {
  Request request;
  request.verb = Verb::kView;
  request.body = name;
  return RoundTrip(request);
}

}  // namespace tgraph::server
