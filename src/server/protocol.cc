#include "server/protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "storage/serde.h"

namespace tgraph::server {

namespace {

void PutU32(std::string* out, uint32_t value) {
  char buffer[4];
  std::memcpy(buffer, &value, 4);  // little-endian on all supported targets
  out->append(buffer, 4);
}

Status CheckFullyConsumed(std::string_view payload, size_t pos) {
  if (pos != payload.size()) {
    return Status::IoError("trailing bytes after frame payload");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeIngestBody(const IngestRequest& request) {
  std::string body;
  storage::PutBytes(&body, request.dir);
  storage::PutVarint(&body, static_cast<uint64_t>(request.horizon));
  ingest::EncodeEvents(request.events, &body);
  return body;
}

Result<IngestRequest> DecodeIngestBody(std::string_view body) {
  IngestRequest request;
  size_t pos = 0;
  TG_ASSIGN_OR_RETURN(std::string_view dir, storage::GetBytes(body, &pos));
  request.dir = std::string(dir);
  TG_ASSIGN_OR_RETURN(uint64_t horizon, storage::GetVarint(body, &pos));
  request.horizon = static_cast<TimePoint>(horizon);
  TG_ASSIGN_OR_RETURN(request.events, ingest::DecodeEvents(body, &pos));
  TG_RETURN_IF_ERROR(CheckFullyConsumed(body, pos));
  return request;
}

Status Response::ToStatus() const {
  if (ok()) return Status::OK();
  StatusCode status_code = static_cast<StatusCode>(code);
  return Status(status_code, body);
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  payload.push_back(static_cast<char>(request.verb));
  storage::PutVarint(&payload, request.flags);
  storage::PutBytes(&payload, request.body);
  return payload;
}

Result<Request> DecodeRequest(std::string_view payload) {
  if (payload.empty()) return Status::IoError("empty request payload");
  Request request;
  uint8_t verb = static_cast<uint8_t>(payload[0]);
  switch (static_cast<Verb>(verb)) {
    case Verb::kQuery:
    case Verb::kStats:
    case Verb::kPing:
    case Verb::kMetrics:
    case Verb::kIngest:
    case Verb::kView:
      request.verb = static_cast<Verb>(verb);
      break;
    default:
      return Status::IoError("unknown request verb " + std::to_string(verb));
  }
  size_t pos = 1;
  TG_ASSIGN_OR_RETURN(request.flags, storage::GetVarint(payload, &pos));
  TG_ASSIGN_OR_RETURN(std::string_view body,
                      storage::GetBytes(payload, &pos));
  request.body = std::string(body);
  TG_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  payload.push_back(static_cast<char>(response.code));
  storage::PutVarint(&payload, response.flags);
  storage::PutVarint(&payload, response.request_id);
  storage::PutBytes(&payload, response.body);
  if (response.has_trace()) storage::PutBytes(&payload, response.trace);
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  if (payload.empty()) return Status::IoError("empty response payload");
  Response response;
  response.code = static_cast<uint8_t>(payload[0]);
  size_t pos = 1;
  TG_ASSIGN_OR_RETURN(response.flags, storage::GetVarint(payload, &pos));
  TG_ASSIGN_OR_RETURN(response.request_id, storage::GetVarint(payload, &pos));
  TG_ASSIGN_OR_RETURN(std::string_view body,
                      storage::GetBytes(payload, &pos));
  response.body = std::string(body);
  if (response.has_trace()) {
    TG_ASSIGN_OR_RETURN(std::string_view trace,
                        storage::GetBytes(payload, &pos));
    response.trace = std::string(trace);
  }
  TG_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return response;
}

namespace {

/// Reads exactly `n` bytes; returns the count actually read (short only on
/// EOF) or an errno-derived error.
Result<size_t> ReadFully(int fd, char* buffer, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::read(fd, buffer + done, n - done);
    if (got == 0) return done;  // EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("read timed out");
      }
      return Status::IoError(std::string("read failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(got);
  }
  return done;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t done = 0;
  while (done < frame.size()) {
    ssize_t wrote = ::write(fd, frame.data() + done, frame.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  TG_ASSIGN_OR_RETURN(size_t got, ReadFully(fd, header, 4));
  if (got == 0) return Status::NotFound("connection closed");
  if (got < 4) return Status::IoError("EOF inside frame header");
  uint32_t length;
  std::memcpy(&length, header, 4);
  if (length > kMaxFrameBytes) {
    return Status::IoError("frame length " + std::to_string(length) +
                           " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  std::string payload(length, '\0');
  TG_ASSIGN_OR_RETURN(got, ReadFully(fd, payload.data(), length));
  if (got < length) return Status::IoError("EOF inside frame payload");
  return payload;
}

}  // namespace tgraph::server
