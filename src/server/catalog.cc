#include "server/catalog.h"

#include "ingest/live_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/graph_io.h"
#include "storage/store_reader.h"

namespace tgraph::server {

Result<std::shared_ptr<storage::StoreReader>> GraphCatalog::GetOrOpenStore(
    const std::string& dir) {
  static obs::Gauge* mmap_stores = obs::MetricsRegistry::Global().GetGauge(
      obs::metric_names::kCatalogMmapStores);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stores_.find(dir);
    if (it != stores_.end()) return it->second;
  }
  TG_ASSIGN_OR_RETURN(std::unique_ptr<storage::StoreReader> opened,
                      storage::StoreReader::Open(storage::StorePath(dir)));
  std::shared_ptr<storage::StoreReader> store = std::move(opened);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = stores_.emplace(dir, store);
  mmap_stores->Set(static_cast<int64_t>(stores_.size()));
  return it->second;  // a racing opener's reader wins; ours is dropped
}

Result<TGraph> GraphCatalog::GetOrLoad(const std::string& dir,
                                       const std::optional<Interval>& range,
                                       uint64_t* live_epoch) {
  static obs::Counter* loads = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kCatalogLoads);
  static obs::Counter* hits = obs::MetricsRegistry::Global().GetCounter(
      obs::metric_names::kCatalogHits);
  static obs::Gauge* graphs = obs::MetricsRegistry::Global().GetGauge(
      obs::metric_names::kCatalogGraphs);

  // Live directories are served from the current ingest snapshot,
  // resolved exactly once per call: the epoch in the slot key pins this
  // load to that snapshot even as later appends publish new ones.
  std::shared_ptr<const ingest::LiveSnapshot> snap;
  if (live_graphs_ != nullptr &&
      (live_graphs_->Find(dir) != nullptr || ingest::IsLiveDir(dir))) {
    TG_ASSIGN_OR_RETURN(ingest::LiveGraph * live, live_graphs_->GetOrOpen(dir));
    snap = live->snapshot();
  }
  if (live_epoch != nullptr) {
    *live_epoch = snap == nullptr ? 0 : snap->epoch();
  }

  std::string key = dir;
  if (snap != nullptr) key += "|live@" + std::to_string(snap->epoch());
  if (range.has_value()) key += "|" + range->ToString();

  // Claim the load or wait for whoever holds it. A failed load erases its
  // slot before waking waiters, so looping re-examines a fresh map state:
  // either this thread claims the retry or it waits on someone else's.
  std::shared_ptr<Slot> slot;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_[key] = slot;
      break;  // this thread owns the load
    }
    std::shared_ptr<Slot> existing = it->second;
    loaded_cv_.wait(lock, [&] { return !existing->loading; });
    if (existing->graph.has_value()) {
      hits->Increment();
      return *existing->graph;
    }
  }

  obs::Span span("tgraphd.catalog.load", "server");
  loads->Increment();
  storage::LoadOptions options;
  options.time_range = range;
  // Serve off the directory's shared mmap reader when it has a v2/v3 store
  // with the flat representation; otherwise the plain loader (which still
  // auto-detects a store holding another representation's tables). Sharing
  // the reader also shares its decoded-segment cache, so a v3 segment is
  // decoded at most once per directory no matter how many queries touch it.
  Result<VeGraph> loaded = [&]() -> Result<VeGraph> {
    if (snap != nullptr) return LoadLiveSnapshot(snap, range);
    if (storage::HasStore(dir)) {
      auto store = GetOrOpenStore(dir);
      if (!store.ok()) return store.status();
      if ((*store)->FindTable("vertices") >= 0) {
        return storage::LoadVeGraphFromStore(ctx_, **store, options);
      }
    }
    return storage::LoadVeGraph(ctx_, dir, options);
  }();
  std::optional<TGraph> graph;
  if (loaded.ok()) {
    graph = TGraph::FromVe(*std::move(loaded), /*coalesced=*/true);
    // Materialize before publishing, so concurrent readers of the shared
    // handle start from computed partitions and the cost is attributed to
    // this load's span rather than the first unlucky query.
    graph->Materialize();
  }

  std::lock_guard<std::mutex> lock(mu_);
  slot->loading = false;
  if (!graph.has_value()) {
    slot->error = loaded.status();
    // No negative caching: the next request retries. Erase by identity —
    // an epoch prune may have dropped this slot already and the key could
    // name a newer load.
    auto it = slots_.find(key);
    if (it != slots_.end() && it->second == slot) slots_.erase(it);
    loaded_cv_.notify_all();
    return loaded.status();
  }
  slot->graph = std::move(graph);
  graphs->Set(static_cast<int64_t>(slots_.size()));
  loaded_cv_.notify_all();
  return *slot->graph;
}

Result<VeGraph> GraphCatalog::LoadLiveSnapshot(
    const std::shared_ptr<const ingest::LiveSnapshot>& snap,
    const std::optional<Interval>& range) {
  TG_ASSIGN_OR_RETURN(const VeGraph* merged, snap->Graph());
  if (!range.has_value()) return *merged;
  // Mirror the static loaders' pushdown semantics: clip every state to
  // range ∩ lifetime and drop the ones that vanish.
  const Interval clip = range->Intersect(merged->lifetime());
  std::vector<VeVertex> vertices;
  for (VeVertex row : merged->vertices().Collect()) {
    row.interval = row.interval.Intersect(clip);
    if (!row.interval.empty()) vertices.push_back(std::move(row));
  }
  std::vector<VeEdge> edges;
  for (VeEdge row : merged->edges().Collect()) {
    row.interval = row.interval.Intersect(clip);
    if (!row.interval.empty()) edges.push_back(std::move(row));
  }
  return VeGraph::Create(ctx_, std::move(vertices), std::move(edges), clip);
}

void GraphCatalog::PruneLiveEpochs(const std::string& dir,
                                   uint64_t current_epoch) {
  static obs::Gauge* graphs = obs::MetricsRegistry::Global().GetGauge(
      obs::metric_names::kCatalogGraphs);
  const std::string prefix = dir + "|live@";
  const std::string keep = prefix + std::to_string(current_epoch);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    const std::string& key = it->first;
    const bool of_dir = key.compare(0, prefix.size(), prefix) == 0;
    const bool of_current =
        key.compare(0, keep.size(), keep) == 0 &&
        (key.size() == keep.size() || key[keep.size()] == '|');
    if (of_dir && !of_current) {
      it = slots_.erase(it);  // in-flight readers keep their shared_ptr
    } else {
      ++it;
    }
  }
  graphs->Set(static_cast<int64_t>(slots_.size()));
}

void GraphCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  stores_.clear();
}

size_t GraphCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace tgraph::server
