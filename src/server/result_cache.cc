#include "server/result_cache.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace tgraph::server {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter* CacheCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options)) {}

bool ResultCache::Expired(const Entry& entry, int64_t now) const {
  return options_.ttl_ms > 0 && now - entry.inserted_ms >= options_.ttl_ms;
}

std::optional<std::string> ResultCache::Get(const std::string& key) {
  static obs::Counter* hits = CacheCounter(obs::metric_names::kCacheHits);
  static obs::Counter* misses = CacheCounter(obs::metric_names::kCacheMisses);
  static obs::Counter* expirations =
      CacheCounter(obs::metric_names::kCacheExpirations);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses->Increment();
    return std::nullopt;
  }
  int64_t now = options_.now_ms ? options_.now_ms() : SteadyNowMs();
  if (Expired(*it->second, now)) {
    Erase(it->second);
    PublishGauges();
    expirations->Increment();
    misses->Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits->Increment();
  return it->second->value;
}

void ResultCache::Put(const std::string& key, std::string value,
                      std::vector<std::string> tags) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) Erase(it->second);
  size_t incoming = key.size() + value.size();
  if (incoming > options_.max_bytes) {
    // Never let one oversized result flush the whole cache.
    PublishGauges();
    return;
  }
  EvictToFit(incoming);
  int64_t now = options_.now_ms ? options_.now_ms() : SteadyNowMs();
  lru_.push_front(Entry{key, std::move(value), std::move(tags), now});
  index_[key] = lru_.begin();
  bytes_ += incoming;
  PublishGauges();
}

void ResultCache::EvictTag(const std::string& tag) {
  static obs::Counter* evictions =
      CacheCounter(obs::metric_names::kCacheEvictions);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    const auto& tags = it->tags;
    if (std::find(tags.begin(), tags.end(), tag) != tags.end()) {
      Erase(it);
      evictions->Increment();
    }
    it = next;
  }
  PublishGauges();
}

void ResultCache::EvictToFit(size_t incoming_bytes) {
  static obs::Counter* evictions =
      CacheCounter(obs::metric_names::kCacheEvictions);
  while (!lru_.empty() && bytes_ + incoming_bytes > options_.max_bytes) {
    Erase(std::prev(lru_.end()));
    evictions->Increment();
  }
}

void ResultCache::Erase(std::list<Entry>::iterator it) {
  bytes_ -= EntryBytes(*it);
  index_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  PublishGauges();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void ResultCache::PublishGauges() {
  static obs::Gauge* bytes_gauge =
      obs::MetricsRegistry::Global().GetGauge(obs::metric_names::kCacheBytes);
  static obs::Gauge* entries_gauge =
      obs::MetricsRegistry::Global().GetGauge(obs::metric_names::kCacheEntries);
  bytes_gauge->Set(static_cast<int64_t>(bytes_));
  entries_gauge->Set(static_cast<int64_t>(lru_.size()));
}

}  // namespace tgraph::server
