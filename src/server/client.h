#ifndef TGRAPH_SERVER_CLIENT_H_
#define TGRAPH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace tgraph::server {

/// \brief Blocking client for the tgraphd wire protocol. One Client owns
/// one TCP connection; requests are issued sequentially. Used by
/// `tgz query --connect=host:port`, the e2e tests, and the loopback
/// throughput bench.
///
/// Not thread-safe: callers that want concurrency open one Client per
/// thread (which is also how the server hands out workers).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to host:port. Host may be a dotted quad or "localhost".
  Status Connect(const std::string& host, int port);

  /// True while the underlying socket is open.
  bool connected() const { return fd_ >= 0; }

  void Close();

  /// Sends a TQL script and returns the server's rendered result table.
  /// A response carrying an error status becomes that error. `no_cache`
  /// asks the server to bypass (and not populate) its result cache;
  /// `want_trace` asks it to trace the query and return the spans in
  /// Response::trace (Chrome trace JSON).
  Result<Response> Query(const std::string& script, bool no_cache = false,
                         bool want_trace = false);

  /// Fetches the server's STATS report (metrics + cache/queue state),
  /// plain text by default or JSON with `json`.
  Result<Response> Stats(bool json = false);

  /// Fetches the server's metrics registry in Prometheus text format.
  Result<Response> Metrics();

  /// Liveness probe; returns the round-trip response ("pong").
  Result<Response> Ping();

  /// Sends one ingest batch for the live graph at server-side directory
  /// `dir`. An OK response means the batch is WAL-durable on the server;
  /// the body reports the assigned sequence number and epoch. `horizon`
  /// applies only when this call creates the graph (0 = server default).
  Result<Response> Ingest(const std::string& dir,
                          const std::vector<ingest::Event>& events,
                          TimePoint horizon = 0);

  /// Fetches the named materialized view, refreshed through its source's
  /// current epoch. An empty name lists the view catalog (SHOW VIEWS).
  Result<Response> View(const std::string& name);

 private:
  Result<Response> RoundTrip(const Request& request);

  int fd_ = -1;
};

}  // namespace tgraph::server

#endif  // TGRAPH_SERVER_CLIENT_H_
